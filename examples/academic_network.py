"""Classify paper topics on an AMiner-like academic network.

Reproduces one cell of Table III end to end: generate the synthetic
academic network (authors / papers / venues, four edge types, coauthorship
driven by *institutions* rather than topics), train TransN and two
baselines, and evaluate with the paper's protocol (90/10 splits, logistic
regression, macro/micro F1 averaged over repeats).

Run:
    python examples/academic_network.py
"""

import time

from repro.baselines import LINE, Metapath2Vec
from repro.core import TransNConfig
from repro.datasets import AMinerConfig, make_aminer
from repro.eval import TransNMethod, run_node_classification
from repro.graph import compute_statistics


def main() -> None:
    graph, labels = make_aminer(AMinerConfig(seed=7))
    stats = compute_statistics(graph, "AMiner (synthetic)", labels)
    print("Dataset:", stats.as_row(), "\n")

    methods = {
        "LINE": lambda: LINE(dim=32, seed=0),
        "Metapath2Vec (P-A-P-V-P)": lambda: Metapath2Vec(
            ["paper", "author", "paper", "venue", "paper"], dim=32, seed=0
        ),
        "TransN": lambda: TransNMethod(TransNConfig(dim=32, seed=0)),
    }

    print(f"{'Method':28s} {'Macro-F1':>9s} {'Micro-F1':>9s} {'fit':>6s}")
    for name, factory in methods.items():
        start = time.perf_counter()
        embeddings = factory().fit(graph)
        elapsed = time.perf_counter() - start
        result = run_node_classification(
            embeddings, labels, train_fraction=0.9, repeats=10, seed=0
        )
        print(
            f"{name:28s} {result.macro_f1:9.4f} {result.micro_f1:9.4f} "
            f"{elapsed:5.1f}s"
        )

    print(
        "\nWhy the gap: the coauthorship view follows institutions, not "
        "research topics.  Type-blind methods blend that orthogonal "
        "structure into paper embeddings; TransN keeps it in its own view "
        "(papers never appear there) and transfers only what the shared "
        "nodes support."
    )


if __name__ == "__main__":
    main()
