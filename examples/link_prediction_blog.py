"""Link prediction on a BLOG-like social network (Table IV protocol).

Removes 40% of the edges, trains every method on the remaining
subnetwork, scores candidate pairs by the inner product of end-node
embeddings, and reports ROC-AUC.  The BLOG-like network has strongly
*correlated* views (friends post common keywords) — the paper's
explanation for why cross-view transfer pays off most here.

Run:
    python examples/link_prediction_blog.py
"""

import time

from repro.baselines import LINE, MVE, Node2Vec
from repro.core import TransNConfig
from repro.datasets import make_blog
from repro.eval import TransNMethod, run_link_prediction
from repro.eval.link_prediction import make_split
from repro.graph import compute_statistics


def main() -> None:
    graph, _labels = make_blog()
    stats = compute_statistics(graph, "BLOG (synthetic)")
    print("Dataset:", stats.as_row(), "\n")

    # one shared split so every method faces the identical instance
    split = make_split(graph, removal_fraction=0.4, seed=0)
    print(
        f"Removed {len(split.positive_pairs)} edges (40%); sampled "
        f"{len(split.negative_pairs)} non-adjacent negative pairs.\n"
    )

    methods = {
        "LINE": lambda: LINE(dim=32, seed=0),
        "Node2Vec": lambda: Node2Vec(dim=32, seed=0),
        "MVE": lambda: MVE(dim=32, seed=0),
        "TransN": lambda: TransNMethod(TransNConfig(dim=32, seed=0)),
    }

    print(f"{'Method':10s} {'AUC':>7s} {'fit+score':>10s}")
    for name, factory in methods.items():
        start = time.perf_counter()
        result = run_link_prediction(factory, graph, split=split)
        elapsed = time.perf_counter() - start
        print(f"{name:10s} {result.auc:7.4f} {elapsed:9.1f}s")

    print(
        "\nMost friendship edges in this generator are deliberately "
        "cross-interest noise (that is what keeps Table III unsaturated), "
        "so absolute AUCs sit well below the paper's; the comparison "
        "between methods on the shared split is the meaningful signal."
    )


if __name__ == "__main__":
    main()
