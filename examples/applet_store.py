"""The weighted applet-store scenario: classification + Figure 6 case study.

This is the setting where the paper reports TransN's largest margin
(Table III, App-Daily / App-Weekly): *weighted*, sparse networks whose
edge weights behave like ratings — a user gives similar weights to
applets of the same category (the Figure 4 story).  The correlated walk
term pi_2 (Equation 7) rides exactly that signal; methods that ignore
weights cannot see it at all.

The script trains TransN (full and with the simple-walk ablation) plus a
unit-weight baseline, reports classification F1, and then reproduces the
Figure 6 case study: ten applets per category, t-SNE to 2-D, silhouette
score as the quantitative stand-in for the paper's visual comparison.

Run:
    python examples/applet_store.py
"""

from repro.baselines import SimplE
from repro.core import TransNConfig
from repro.datasets import make_app_daily
from repro.eval import TransNMethod, run_case_study, run_node_classification
from repro.graph import compute_statistics


def main() -> None:
    graph, labels = make_app_daily()
    stats = compute_statistics(graph, "App-Daily (synthetic)", labels)
    print("Dataset:", stats.as_row())
    weights = [e.weight for e in graph.edges]
    print(
        f"Edge weights: min={min(weights):.2f} max={max(weights):.2f} "
        f"(taste levels, not unit)\n"
    )

    base = TransNConfig(dim=32, seed=0)
    methods = {
        "SimplE (unit weights)": lambda: SimplE(dim=32, seed=0),
        "TransN simple-walk ablation": lambda: TransNMethod(
            base.with_simple_walk(), name="TransN-With-Simple-Walk"
        ),
        "TransN (biased correlated walks)": lambda: TransNMethod(base),
    }

    fitted = {}
    print(f"{'Method':34s} {'Macro-F1':>9s} {'Micro-F1':>9s}")
    for name, factory in methods.items():
        embeddings = factory().fit(graph)
        fitted[name] = embeddings
        result = run_node_classification(embeddings, labels, repeats=10, seed=0)
        print(f"{name:34s} {result.macro_f1:9.4f} {result.micro_f1:9.4f}")

    print("\nFigure 6 case study (10 applets per category, t-SNE to 2-D):")
    print(f"{'Method':34s} {'silhouette(emb)':>16s} {'silhouette(2-D)':>16s}")
    for name, embeddings in fitted.items():
        case = run_case_study(embeddings, labels, per_category=10, seed=0)
        print(
            f"{name:34s} {case.silhouette_embedding:16.4f} "
            f"{case.silhouette_projection:16.4f}"
        )
    print(
        "\nHigher silhouette = better-separated categories = the cleaner "
        "scatter the paper shows for TransN in Figure 6(c)."
    )


if __name__ == "__main__":
    main()
