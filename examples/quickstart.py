"""Quickstart: embed a tiny heterogeneous academic network with TransN.

This is the paper's Figure 2(a) network: five authors, two papers with a
mutual citation, two universities — three edge types, three node types.
TransN separates it into one view per edge type, learns view-specific
embeddings with biased correlated random walks, ties the views together
with dual-learning translators, and averages each node's view-specific
embeddings into its final representation.

Run:
    python examples/quickstart.py
"""

import numpy as np

from repro import HeteroGraph, TransN, TransNConfig


def build_network() -> HeteroGraph:
    """The Figure 2(a) academic network."""
    g = HeteroGraph()
    for author in ("A1", "A2", "A3", "A4", "A5"):
        g.add_node(author, "author")
    for paper in ("P1", "P2"):
        g.add_node(paper, "paper")
    for university in ("U1", "U2"):
        g.add_node(university, "university")
    g.add_edge("P1", "P2", "citation")
    for author, paper in [
        ("A1", "P1"), ("A2", "P1"), ("A3", "P2"), ("A4", "P2"), ("A5", "P2")
    ]:
        g.add_edge(author, paper, "authorship")
    for author, university in [
        ("A1", "U1"), ("A3", "U1"), ("A2", "U2"), ("A4", "U2"), ("A5", "U2")
    ]:
        g.add_edge(author, university, "affiliation")
    return g


def cosine(a: np.ndarray, b: np.ndarray) -> float:
    return float(a @ b / (np.linalg.norm(a) * np.linalg.norm(b) + 1e-12))


def main() -> None:
    graph = build_network()
    print(f"Input network: {graph}\n")

    # a nine-node graph needs many cheap iterations with a high rate
    config = TransNConfig(
        dim=16,
        num_iterations=40,
        lr_single=0.2,
        batch_size=32,
        walk_length=10,
        walk_floor=4,
        walk_cap=8,
        cross_path_len=3,
        cross_paths_per_pair=20,
        num_encoders=2,
        seed=0,
    )
    model = TransN(graph, config)

    print("Views (one per edge type):")
    for view in model.views:
        print(f"  {view}")
    print("View-pairs (shared nodes bridge information):")
    for pair in model.view_pairs:
        print(f"  {pair}")

    history = model.fit()
    print(
        f"\nTrained {config.num_iterations} iterations; "
        f"single-view loss {history.single_view[0]:.3f} -> "
        f"{history.single_view[-1]:.3f}"
    )

    embeddings = model.embeddings()
    print("\nAuthor-author cosine similarities (final averaged embeddings):")
    authors = ["A1", "A2", "A3", "A4", "A5"]
    header = "      " + "  ".join(f"{a:>6s}" for a in authors)
    print(header)
    for a in authors:
        cells = "  ".join(
            f"{cosine(embeddings[a], embeddings[b]):6.2f}" for b in authors
        )
        print(f"  {a}  {cells}")

    # The paper's running example: A1 and A3 never co-author, yet they
    # share a university and their papers cite each other — information
    # the cross-view algorithm transfers into the embeddings.
    a1_a3 = cosine(embeddings["A1"], embeddings["A3"])
    print(
        f"\nA1 <-> A3 (same university, mutually-citing papers, never "
        f"co-authored): cosine = {a1_a3:.2f}"
    )


if __name__ == "__main__":
    main()
