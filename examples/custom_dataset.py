"""Bring your own heterogeneous network: files in, embeddings out.

Shows the round trip a downstream user would follow with their own data:

1. build a :class:`~repro.graph.HeteroGraph` (here: a small movie network
   with users, movies and genres, rating-weighted edges),
2. save it in the TSV format the CLI consumes,
3. train TransN and save embeddings in word2vec text format,
4. reload the embeddings and query nearest neighbours.

The same flow works from the shell:

    repro train movies.tsv --out movies-emb.txt --method transn

Run:
    python examples/custom_dataset.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import HeteroGraph, TransN, TransNConfig
from repro.graph import load_embeddings, load_graph, save_embeddings, save_graph


def build_movie_network() -> HeteroGraph:
    """Users rate movies (1-5); movies belong to genres."""
    g = HeteroGraph()
    movies = {
        "Alien": "scifi",
        "Solaris": "scifi",
        "Arrival": "scifi",
        "Heat": "crime",
        "Ronin": "crime",
        "Casino": "crime",
    }
    for movie, genre in movies.items():
        g.add_node(movie, "movie")
        g.add_node(genre, "genre")
        g.add_edge(movie, genre, "genre-of")
    ratings = {
        "ana": {"Alien": 5, "Solaris": 4, "Arrival": 5, "Heat": 2},
        "bob": {"Heat": 5, "Ronin": 4, "Casino": 5, "Alien": 1},
        "cho": {"Alien": 4, "Arrival": 4, "Solaris": 5},
        "dee": {"Casino": 4, "Ronin": 5, "Heat": 4, "Solaris": 2},
        "eva": {"Arrival": 5, "Alien": 4, "Casino": 1},
    }
    for user, scores in ratings.items():
        g.add_node(user, "user")
        for movie, score in scores.items():
            g.add_edge(user, movie, "rating", weight=float(score))
    return g


def nearest(embeddings: dict, node: str, k: int = 3) -> list[tuple[str, float]]:
    query = embeddings[node]
    scored = []
    for other, vector in embeddings.items():
        if other == node:
            continue
        denom = np.linalg.norm(query) * np.linalg.norm(vector)
        if denom < 1e-12:
            continue
        scored.append((other, float(query @ vector / denom)))
    return sorted(scored, key=lambda pair: -pair[1])[:k]


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-movies-"))
    graph_path = workdir / "movies.tsv"
    emb_path = workdir / "movies-emb.txt"

    graph = build_movie_network()
    save_graph(graph, graph_path)
    print(f"saved {graph} -> {graph_path}")

    reloaded = load_graph(graph_path)
    config = TransNConfig(
        dim=16,
        num_iterations=30,
        lr_single=0.15,
        batch_size=32,
        walk_length=10,
        walk_floor=4,
        walk_cap=8,
        cross_path_len=3,
        cross_paths_per_pair=20,
        seed=0,
    )
    model = TransN(reloaded, config)
    model.fit()
    save_embeddings(model.embeddings(), emb_path)
    print(f"saved embeddings -> {emb_path}\n")

    embeddings = load_embeddings(emb_path)
    for node in ("ana", "Alien", "crime"):
        neighbours = ", ".join(
            f"{name} ({cos:.2f})" for name, cos in nearest(embeddings, node)
        )
        print(f"nearest to {node:6s}: {neighbours}")


if __name__ == "__main__":
    main()
