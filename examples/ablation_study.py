"""Run the paper's Table V ablation study on one dataset.

Five components are removed one at a time — the cross-view algorithm, the
biased correlated walks, the encoder-stack translators, the translation
tasks, the reconstruction tasks — and each degenerate variant is evaluated
with the node-classification protocol.

Run:
    python examples/ablation_study.py
"""

from repro.core import TransNConfig
from repro.datasets import make_app_daily
from repro.eval import ablation_methods, run_node_classification


def main() -> None:
    graph, labels = make_app_daily(
        num_applets=200, num_users=80, num_keywords=60
    )
    print(f"Dataset: {graph}\n")

    base = TransNConfig(dim=32, seed=0)
    print(f"{'Variant':40s} {'Macro-F1':>9s} {'Micro-F1':>9s}")
    results = {}
    for name, factory in ablation_methods(base_config=base).items():
        embeddings = factory().fit(graph)
        result = run_node_classification(embeddings, labels, repeats=10, seed=0)
        results[name] = result
        print(f"{name:40s} {result.macro_f1:9.4f} {result.micro_f1:9.4f}")

    full = results["TransN"].macro_f1
    print("\nRelative macro-F1 drop when removing each component:")
    for name, result in results.items():
        if name == "TransN":
            continue
        drop = (full - result.macro_f1) / max(full, 1e-9) * 100
        print(f"  {name:40s} {drop:+6.1f}%")


if __name__ == "__main__":
    main()
