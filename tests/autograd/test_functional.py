"""Tests for composite differentiable functions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd import (
    Tensor,
    cross_entropy,
    gradcheck,
    log_softmax,
    mse_loss,
    sigmoid,
    softmax,
)
from repro.autograd.functional import l2_normalize_rows


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        x = Tensor(rng.normal(size=(4, 5)))
        out = softmax(x).data
        assert np.allclose(out.sum(axis=1), 1.0)
        assert (out > 0).all()

    def test_shift_invariance(self, rng):
        x = rng.normal(size=(3, 4))
        a = softmax(Tensor(x)).data
        b = softmax(Tensor(x + 100.0)).data
        assert np.allclose(a, b)

    def test_large_values_stable(self):
        x = Tensor(np.array([[1000.0, 1001.0]]))
        out = softmax(x).data
        assert np.isfinite(out).all()

    def test_gradcheck(self, rng):
        x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        gradcheck(lambda x: (softmax(x) ** 2).sum(), [x])

    @given(st.integers(2, 6), st.integers(2, 6))
    @settings(max_examples=20, deadline=None)
    def test_rows_sum_to_one_property(self, n, d):
        rng = np.random.default_rng(n * 100 + d)
        out = softmax(Tensor(rng.normal(size=(n, d)) * 10)).data
        assert np.allclose(out.sum(axis=1), 1.0)


class TestLogSoftmax:
    def test_matches_log_of_softmax(self, rng):
        x = Tensor(rng.normal(size=(3, 4)))
        assert np.allclose(
            log_softmax(x).data, np.log(softmax(x).data), atol=1e-10
        )

    def test_gradcheck(self, rng):
        x = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        gradcheck(lambda x: (log_softmax(x) * log_softmax(x)).sum(), [x])


class TestSigmoid:
    def test_values(self):
        x = Tensor(np.array([0.0, 100.0, -100.0]))
        out = sigmoid(x).data
        assert out[0] == pytest.approx(0.5)
        assert out[1] == pytest.approx(1.0)
        assert out[2] == pytest.approx(0.0)

    def test_gradcheck(self, rng):
        x = Tensor(rng.normal(size=(4,)), requires_grad=True)
        gradcheck(lambda x: sigmoid(x).sum(), [x])


class TestCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        logits = Tensor(np.array([[10.0, -10.0], [-10.0, 10.0]]))
        loss = cross_entropy(logits, np.array([0, 1]))
        assert loss.item() < 1e-4

    def test_uniform_prediction_log_k(self):
        logits = Tensor(np.zeros((5, 3)))
        loss = cross_entropy(logits, np.zeros(5, dtype=int))
        assert loss.item() == pytest.approx(np.log(3))

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            cross_entropy(Tensor(np.zeros(3)), np.array([0]))
        with pytest.raises(ValueError):
            cross_entropy(Tensor(np.zeros((2, 3))), np.array([0]))

    def test_gradcheck(self, rng):
        logits = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        targets = np.array([0, 1, 2, 1])
        gradcheck(lambda l: cross_entropy(l, targets), [logits])


class TestMseLoss:
    def test_zero_for_equal(self, rng):
        x = Tensor(rng.normal(size=(3, 3)))
        assert mse_loss(x, x).item() == 0.0

    def test_value(self):
        a = Tensor(np.array([1.0, 2.0]))
        b = Tensor(np.array([0.0, 0.0]))
        assert mse_loss(a, b).item() == pytest.approx(2.5)

    def test_gradcheck(self, rng):
        a = Tensor(rng.normal(size=(3, 2)), requires_grad=True)
        b = Tensor(rng.normal(size=(3, 2)), requires_grad=True)
        gradcheck(lambda a, b: mse_loss(a, b), [a, b])


class TestL2NormalizeRows:
    def test_unit_norms(self, rng):
        x = Tensor(rng.normal(size=(4, 3)))
        norms = np.linalg.norm(l2_normalize_rows(x).data, axis=1)
        assert np.allclose(norms, 1.0)

    def test_zero_row_stays_finite(self):
        x = Tensor(np.zeros((1, 3)))
        out = l2_normalize_rows(x).data
        assert np.isfinite(out).all()

    def test_gradcheck(self, rng):
        x = Tensor(rng.uniform(0.5, 2.0, size=(3, 3)), requires_grad=True)
        gradcheck(lambda x: (l2_normalize_rows(x) * x).sum(), [x])
