"""Gradient checks for the batched (3-D) tensor ops.

The cross-view trainer runs translators over ``(num_chunks, path_len, d)``
tensors, which exercises batched matmul, the broadcast ``(p, p) @ (N, p,
d)`` and ``+ (p, 1)`` bias forms (whose gradients must reduce over the
leading batch axis), the last-two-axes transpose, and row-softmax on 3-D
inputs.  Each is gradchecked against central differences here.
"""

import numpy as np
import pytest

from repro.autograd import Tensor, gradcheck
from repro.autograd.functional import l2_normalize_rows, log_softmax, softmax


class TestBatchedMatmul:
    def test_forward_matches_numpy(self, rng):
        a = rng.normal(size=(4, 3, 5))
        b = rng.normal(size=(4, 5, 2))
        out = Tensor(a) @ Tensor(b)
        assert out.shape == (4, 3, 2)
        np.testing.assert_allclose(out.data, a @ b)

    def test_gradcheck_batched_both_sides(self, rng):
        a = Tensor(rng.normal(size=(3, 2, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(3, 4, 2)), requires_grad=True)
        gradcheck(lambda a, b: ((a @ b) ** 2).sum(), [a, b])

    def test_gradcheck_broadcast_left_operand(self, rng):
        """(p, p) @ (N, p, d): the feed-forward weight against a batch."""
        w = Tensor(rng.normal(size=(3, 3)), requires_grad=True)
        a = Tensor(rng.normal(size=(4, 3, 2)), requires_grad=True)
        gradcheck(lambda w, a: ((w @ a) ** 2).sum(), [w, a])

    def test_gradcheck_batched_transpose_product(self, rng):
        """(N, p, d) @ (N, d, p): the attention score form of Eq. 8."""
        a = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        gradcheck(lambda a: ((a @ a.transpose(-2, -1)) ** 2).sum(), [a])

    def test_broadcast_gradient_sums_over_batch(self, rng):
        """The 2-D operand's gradient is the sum of per-batch gradients."""
        w_data = rng.normal(size=(3, 3))
        a_data = rng.normal(size=(5, 3, 2))
        w = Tensor(w_data, requires_grad=True)
        ((w @ Tensor(a_data)) ** 2).sum().backward()
        expected = np.zeros_like(w_data)
        for k in range(a_data.shape[0]):
            wk = Tensor(w_data, requires_grad=True)
            ((wk @ Tensor(a_data[k])) ** 2).sum().backward()
            expected += wk.grad
        np.testing.assert_allclose(w.grad, expected, atol=1e-12)


class TestBiasBroadcast:
    def test_gradcheck_bias_over_batch(self, rng):
        """(N, p, d) + (p, 1): the Eq. 9 bias against a batch."""
        x = Tensor(rng.normal(size=(4, 3, 2)), requires_grad=True)
        b = Tensor(rng.normal(size=(3, 1)), requires_grad=True)
        gradcheck(lambda x, b: ((x + b) ** 2).sum(), [x, b])

    def test_bias_gradient_shape_and_value(self, rng):
        x = Tensor(rng.normal(size=(4, 3, 2)))
        b = Tensor(np.zeros((3, 1)), requires_grad=True)
        (x + b).sum().backward()
        assert b.grad.shape == (3, 1)
        # d/db sum(x + b) broadcast over N=4 batch and d=2 columns
        np.testing.assert_allclose(b.grad, np.full((3, 1), 8.0))


class TestTranspose:
    def test_swaps_last_two_axes_by_default(self, rng):
        a = rng.normal(size=(2, 3, 4))
        out = Tensor(a).transpose()
        assert out.shape == (2, 4, 3)
        np.testing.assert_array_equal(out.data, np.swapaxes(a, -1, -2))

    def test_explicit_axes(self, rng):
        a = rng.normal(size=(2, 3, 4))
        out = Tensor(a).transpose(0, 2)
        assert out.shape == (4, 3, 2)

    def test_gradcheck(self, rng):
        a = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        w = Tensor(rng.normal(size=(2, 3, 4)))
        gradcheck(lambda a: (a.transpose(-2, -1) * w.transpose(-2, -1)).sum(), [a])


class TestBatchedSoftmax:
    def test_rows_sum_to_one_on_3d(self, rng):
        x = Tensor(rng.normal(size=(4, 3, 5)))
        out = softmax(x, axis=-1)
        np.testing.assert_allclose(out.data.sum(axis=-1), np.ones((4, 3)))

    def test_matches_per_slice_2d(self, rng):
        x = rng.normal(size=(4, 3, 5))
        batched = softmax(Tensor(x), axis=-1).data
        for k in range(4):
            np.testing.assert_allclose(
                batched[k], softmax(Tensor(x[k]), axis=-1).data, atol=1e-12
            )

    def test_gradcheck_3d(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        w = Tensor(rng.normal(size=(2, 3, 4)))
        gradcheck(lambda x: (softmax(x, axis=-1) * w).sum(), [x])

    def test_log_softmax_gradcheck_3d(self, rng):
        x = Tensor(rng.normal(size=(2, 2, 3)), requires_grad=True)
        w = Tensor(rng.normal(size=(2, 2, 3)))
        gradcheck(lambda x: (log_softmax(x, axis=-1) * w).sum(), [x])


class TestBatchedRowNormalize:
    def test_unit_norms_on_3d(self, rng):
        x = Tensor(rng.normal(size=(3, 4, 5)))
        norms = np.linalg.norm(l2_normalize_rows(x).data, axis=-1)
        np.testing.assert_allclose(norms, np.ones((3, 4)))

    def test_gradcheck_3d(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        w = Tensor(rng.normal(size=(2, 3, 4)))
        gradcheck(lambda x: (l2_normalize_rows(x) * w).sum(), [x])


class TestMeanOverChunks:
    def test_batched_mean_is_mean_of_chunk_means(self, rng):
        """The Eq. 11-14 loss reading: mean over (N, p) rows equals the
        mean over chunks of per-chunk row means."""
        x = rng.normal(size=(6, 4, 3))
        batched = (Tensor(x) * Tensor(x)).sum(axis=-1).mean().item()
        per_chunk = np.mean(
            [(Tensor(x[k]) * Tensor(x[k])).sum(axis=-1).mean().item() for k in range(6)]
        )
        assert batched == pytest.approx(per_chunk, abs=1e-12)
