"""Meta-tests: gradcheck itself must catch wrong gradients."""

import numpy as np
import pytest

from repro.autograd import Tensor, gradcheck


class TestGradcheck:
    def test_accepts_correct_gradient(self, rng):
        x = Tensor(rng.normal(size=(3,)), requires_grad=True)
        assert gradcheck(lambda x: (x * x).sum(), [x])

    def test_rejects_wrong_gradient(self, rng):
        x = Tensor(rng.normal(size=(3,)), requires_grad=True)

        def broken(t):
            # forward of x^2 but a gradient closure of x (factor missing)
            out_data = t.data**2
            return Tensor(
                out_data,
                requires_grad=True,
                _parents=(t,),
                _backward=lambda g: [(t, g * t.data)],  # should be 2x
            ).sum()

        with pytest.raises(AssertionError, match="gradient mismatch"):
            gradcheck(broken, [x])

    def test_requires_scalar_output(self, rng):
        x = Tensor(rng.normal(size=(3,)), requires_grad=True)
        with pytest.raises(ValueError, match="scalar"):
            gradcheck(lambda x: x * 2, [x])

    def test_requires_grad_inputs(self):
        x = Tensor(np.ones(3))
        with pytest.raises(ValueError, match="require grad"):
            gradcheck(lambda x: x.sum(), [x])
