"""Unit + gradcheck tests for the autograd engine."""

import numpy as np
import pytest

from repro.autograd import Tensor, gradcheck, no_grad


def leaf(shape, rng, scale=1.0):
    return Tensor(rng.normal(0, scale, size=shape), requires_grad=True)


class TestBasics:
    def test_data_coerced_to_float64(self):
        t = Tensor([1, 2, 3])
        assert t.data.dtype == np.float64

    def test_item_and_shape(self):
        t = Tensor([[2.0]])
        assert t.item() == 2.0
        assert t.shape == (1, 1)
        assert t.ndim == 2
        assert t.size == 1

    def test_detach_cuts_tape(self, rng):
        x = leaf((2, 2), rng)
        y = x.detach()
        assert not y.requires_grad
        assert y.data is x.data

    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_backward_non_scalar_needs_grad(self, rng):
        x = leaf((3,), rng)
        with pytest.raises(RuntimeError):
            (x * 2).backward()

    def test_backward_grad_shape_checked(self, rng):
        x = leaf((3,), rng)
        y = x * 2
        with pytest.raises(ValueError):
            y.backward(np.ones((2,)))

    def test_no_grad_context(self, rng):
        x = leaf((2,), rng)
        with no_grad():
            y = x * x
        assert not y.requires_grad

    def test_grad_accumulates_across_backwards(self, rng):
        x = leaf((2,), rng)
        (x.sum()).backward()
        (x.sum()).backward()
        assert np.allclose(x.grad, 2.0)

    def test_zero_grad(self, rng):
        x = leaf((2,), rng)
        x.sum().backward()
        x.zero_grad()
        assert x.grad is None


class TestGradcheckPrimitives:
    """Every primitive against central finite differences."""

    def test_add(self, rng):
        a, b = leaf((3, 2), rng), leaf((3, 2), rng)
        gradcheck(lambda a, b: (a + b).sum(), [a, b])

    def test_add_broadcast(self, rng):
        a, b = leaf((3, 2), rng), leaf((1, 2), rng)
        gradcheck(lambda a, b: (a + b).sum(), [a, b])

    def test_sub(self, rng):
        a, b = leaf((2, 2), rng), leaf((2, 2), rng)
        gradcheck(lambda a, b: (a - b).sum(), [a, b])

    def test_rsub_scalar(self, rng):
        a = leaf((2, 2), rng)
        gradcheck(lambda a: (1.0 - a).sum(), [a])

    def test_mul(self, rng):
        a, b = leaf((2, 3), rng), leaf((2, 3), rng)
        gradcheck(lambda a, b: (a * b).sum(), [a, b])

    def test_mul_broadcast_scalar(self, rng):
        a = leaf((2, 3), rng)
        gradcheck(lambda a: (a * 3.5).sum(), [a])

    def test_div(self, rng):
        a = leaf((2, 2), rng)
        b = Tensor(rng.uniform(0.5, 2.0, size=(2, 2)), requires_grad=True)
        gradcheck(lambda a, b: (a / b).sum(), [a, b])

    def test_pow(self, rng):
        a = Tensor(rng.uniform(0.5, 2.0, size=(3,)), requires_grad=True)
        gradcheck(lambda a: (a**3).sum(), [a])

    def test_neg(self, rng):
        a = leaf((3,), rng)
        gradcheck(lambda a: (-a).sum(), [a])

    def test_matmul(self, rng):
        a, b = leaf((3, 4), rng), leaf((4, 2), rng)
        gradcheck(lambda a, b: (a @ b).sum(), [a, b])

    def test_matmul_chain(self, rng):
        a, b, c = leaf((2, 3), rng), leaf((3, 3), rng), leaf((3, 2), rng)
        gradcheck(lambda a, b, c: ((a @ b) @ c).sum(), [a, b, c])

    def test_transpose(self, rng):
        a = leaf((2, 4), rng)
        gradcheck(lambda a: (a.T @ a).sum(), [a])

    def test_reshape(self, rng):
        a = leaf((2, 6), rng)
        gradcheck(lambda a: (a.reshape(3, 4) ** 2).sum(), [a])

    def test_sum_axis(self, rng):
        a = leaf((3, 4), rng)
        gradcheck(lambda a: (a.sum(axis=0) ** 2).sum(), [a])

    def test_sum_keepdims(self, rng):
        a = leaf((3, 4), rng)
        gradcheck(lambda a: (a.sum(axis=1, keepdims=True) * a).sum(), [a])

    def test_mean(self, rng):
        a = leaf((4, 2), rng)
        gradcheck(lambda a: (a.mean(axis=0) ** 2).sum(), [a])

    def test_mean_all(self, rng):
        a = leaf((4, 2), rng)
        gradcheck(lambda a: (a * a).mean(), [a])

    def test_relu(self, rng):
        # keep values away from the kink
        a = Tensor(
            rng.choice([-1.0, -0.5, 0.5, 1.0], size=(3, 3)),
            requires_grad=True,
        )
        gradcheck(lambda a: (a.relu() * a).sum(), [a])

    def test_exp_log(self, rng):
        a = Tensor(rng.uniform(0.5, 1.5, size=(3,)), requires_grad=True)
        gradcheck(lambda a: (a.exp().log() * a).sum(), [a])

    def test_sqrt(self, rng):
        a = Tensor(rng.uniform(0.5, 2.0, size=(3,)), requires_grad=True)
        gradcheck(lambda a: a.sqrt().sum(), [a])

    def test_tanh(self, rng):
        a = leaf((3,), rng)
        gradcheck(lambda a: a.tanh().sum(), [a])

    def test_clip_min(self, rng):
        a = Tensor(
            rng.choice([-2.0, -1.0, 1.0, 2.0], size=(4,)), requires_grad=True
        )
        gradcheck(lambda a: (a.clip_min(0.5) * a).sum(), [a])

    def test_take_rows(self, rng):
        a = leaf((5, 3), rng)
        idx = np.array([0, 2, 2, 4])
        gradcheck(lambda a: (a.take_rows(idx) ** 2).sum(), [a])

    def test_shared_subexpression(self, rng):
        """A tensor used twice accumulates both gradient paths."""
        a = leaf((3,), rng)
        gradcheck(lambda a: (a * a + a * 2.0).sum(), [a])


class TestGradValues:
    def test_quadratic_gradient(self):
        x = Tensor([[1.0, -2.0]], requires_grad=True)
        (x * x).sum().backward()
        assert np.allclose(x.grad, [[2.0, -4.0]])

    def test_matmul_gradient_value(self):
        a = Tensor([[1.0, 2.0]], requires_grad=True)
        b = Tensor([[3.0], [4.0]], requires_grad=True)
        (a @ b).sum().backward()
        assert np.allclose(a.grad, [[3.0, 4.0]])
        assert np.allclose(b.grad, [[1.0], [2.0]])

    def test_take_rows_duplicates_accumulate(self):
        a = Tensor(np.ones((3, 2)), requires_grad=True)
        a.take_rows([1, 1, 1]).sum().backward()
        assert np.allclose(a.grad, [[0, 0], [3, 3], [0, 0]])

    def test_constants_get_no_grad(self, rng):
        a = leaf((2,), rng)
        c = Tensor([1.0, 2.0])
        (a * c).sum().backward()
        assert c.grad is None
