"""Gradcheck tests for the extended Tensor ops (abs/max/min/concat/stack)."""

import numpy as np
import pytest

from repro.autograd import Tensor, gradcheck


def leaf(shape, rng, away_from_zero=False):
    data = rng.normal(size=shape)
    if away_from_zero:
        data = np.where(np.abs(data) < 0.3, np.sign(data) * 0.5 + data, data)
    return Tensor(data, requires_grad=True)


class TestAbs:
    def test_value(self):
        t = Tensor([-2.0, 3.0])
        assert np.allclose(t.abs().data, [2.0, 3.0])

    def test_gradcheck(self, rng):
        a = leaf((4,), rng, away_from_zero=True)
        gradcheck(lambda a: (a.abs() * a).sum(), [a])


class TestMaximumMinimum:
    def test_values(self):
        a = Tensor([1.0, 5.0])
        b = Tensor([3.0, 2.0])
        assert np.allclose(a.maximum(b).data, [3.0, 5.0])
        assert np.allclose(a.minimum(b).data, [1.0, 2.0])

    def test_gradcheck_maximum(self, rng):
        a = leaf((3, 2), rng, away_from_zero=True)
        b = leaf((3, 2), rng, away_from_zero=True)
        gradcheck(lambda a, b: (a.maximum(b) ** 2).sum(), [a, b])

    def test_gradcheck_minimum(self, rng):
        a = leaf((3, 2), rng, away_from_zero=True)
        b = leaf((3, 2), rng, away_from_zero=True)
        gradcheck(lambda a, b: (a.minimum(b) ** 2).sum(), [a, b])

    def test_gradient_routing(self):
        a = Tensor([5.0], requires_grad=True)
        b = Tensor([1.0], requires_grad=True)
        a.maximum(b).sum().backward()
        assert a.grad[0] == 1.0
        assert b.grad is None or b.grad[0] == 0.0


class TestConcat:
    def test_value(self, rng):
        a = Tensor(rng.normal(size=(2, 3)))
        b = Tensor(rng.normal(size=(1, 3)))
        out = Tensor.concat([a, b], axis=0)
        assert out.shape == (3, 3)
        assert np.allclose(out.data[:2], a.data)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Tensor.concat([])

    def test_gradcheck_axis0(self, rng):
        a = leaf((2, 3), rng)
        b = leaf((2, 3), rng)
        gradcheck(
            lambda a, b: (Tensor.concat([a, b], axis=0) ** 2).sum(), [a, b]
        )

    def test_gradcheck_axis1(self, rng):
        a = leaf((2, 2), rng)
        b = leaf((2, 3), rng)
        gradcheck(
            lambda a, b: (Tensor.concat([a, b], axis=1) ** 2).sum(), [a, b]
        )


class TestStack:
    def test_value(self, rng):
        a = Tensor(rng.normal(size=(2, 2)))
        b = Tensor(rng.normal(size=(2, 2)))
        out = Tensor.stack([a, b], axis=0)
        assert out.shape == (2, 2, 2)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Tensor.stack([])

    def test_gradcheck(self, rng):
        a = leaf((2, 2), rng)
        b = leaf((2, 2), rng)
        gradcheck(
            lambda a, b: (Tensor.stack([a, b], axis=0) ** 2).sum(), [a, b]
        )
