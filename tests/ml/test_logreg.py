"""Tests for the L-BFGS multinomial logistic regression."""

import numpy as np
import pytest

from repro.ml import LogisticRegression


def blobs(rng, n_per_class=40, centers=((0, 0), (5, 5), (0, 5))):
    xs, ys = [], []
    for label, center in enumerate(centers):
        xs.append(rng.normal(0, 0.7, size=(n_per_class, 2)) + center)
        ys.append(np.full(n_per_class, label))
    return np.vstack(xs), np.concatenate(ys)


class TestValidation:
    def test_bad_c(self):
        with pytest.raises(ValueError):
            LogisticRegression(c=0.0)

    def test_shape_mismatch(self, rng):
        clf = LogisticRegression()
        with pytest.raises(ValueError):
            clf.fit(rng.normal(size=(4, 2)), np.zeros(3))

    def test_single_class_rejected(self, rng):
        clf = LogisticRegression()
        with pytest.raises(ValueError):
            clf.fit(rng.normal(size=(4, 2)), np.zeros(4))

    def test_predict_before_fit(self, rng):
        with pytest.raises(RuntimeError):
            LogisticRegression().predict(rng.normal(size=(2, 2)))


class TestFit:
    def test_separable_blobs(self, rng):
        x, y = blobs(rng)
        clf = LogisticRegression().fit(x, y)
        assert (clf.predict(x) == y).mean() > 0.97

    def test_binary(self, rng):
        x, y = blobs(rng, centers=((0, 0), (4, 4)))
        clf = LogisticRegression().fit(x, y)
        assert (clf.predict(x) == y).mean() > 0.97

    def test_string_labels(self, rng):
        x, _ = blobs(rng, centers=((0, 0), (4, 4)))
        y = np.array(["neg"] * 40 + ["pos"] * 40)
        clf = LogisticRegression().fit(x, y)
        assert set(clf.predict(x)) <= {"neg", "pos"}
        assert (clf.predict(x) == y).mean() > 0.97

    def test_probabilities_normalized(self, rng):
        x, y = blobs(rng)
        clf = LogisticRegression().fit(x, y)
        probs = clf.predict_proba(x)
        assert np.allclose(probs.sum(axis=1), 1.0)
        assert (probs >= 0).all()

    def test_prediction_argmax_consistent(self, rng):
        x, y = blobs(rng)
        clf = LogisticRegression().fit(x, y)
        assert np.array_equal(
            clf.predict(x), clf.classes_[clf.predict_proba(x).argmax(axis=1)]
        )

    def test_regularization_shrinks_weights(self, rng):
        x, y = blobs(rng, centers=((0, 0), (4, 4)))
        loose = LogisticRegression(c=100.0).fit(x, y)
        tight = LogisticRegression(c=0.01).fit(x, y)
        assert np.linalg.norm(tight.coef_) < np.linalg.norm(loose.coef_)

    def test_deterministic(self, rng):
        x, y = blobs(rng)
        a = LogisticRegression().fit(x, y).coef_
        b = LogisticRegression().fit(x, y).coef_
        assert np.allclose(a, b)
