"""Tests for k-means and NMI."""

import numpy as np
import pytest

from repro.ml import KMeans, normalized_mutual_information


def three_blobs(rng, per=25, spread=0.3):
    centers = np.array([[0, 0], [6, 0], [0, 6]], dtype=float)
    x = np.vstack(
        [c + rng.normal(0, spread, size=(per, 2)) for c in centers]
    )
    y = np.repeat(np.arange(3), per)
    return x, y


class TestKMeans:
    def test_validation(self, rng):
        with pytest.raises(ValueError):
            KMeans(0)
        with pytest.raises(ValueError):
            KMeans(5).fit_predict(rng.normal(size=(3, 2)))
        with pytest.raises(ValueError):
            KMeans(2).fit_predict(rng.normal(size=(10,)))

    def test_recovers_blobs(self, rng):
        x, y = three_blobs(rng)
        predicted = KMeans(3, seed=0).fit_predict(x)
        assert normalized_mutual_information(y, predicted) > 0.95

    def test_deterministic(self, rng):
        x, _ = three_blobs(rng)
        a = KMeans(3, seed=1).fit_predict(x)
        b = KMeans(3, seed=1).fit_predict(x)
        assert np.array_equal(a, b)

    def test_inertia_reported(self, rng):
        x, _ = three_blobs(rng)
        km = KMeans(3, seed=0)
        km.fit_predict(x)
        assert km.inertia_ is not None and km.inertia_ >= 0
        assert km.centers_.shape == (3, 2)

    def test_single_cluster(self, rng):
        x = rng.normal(size=(10, 2))
        labels = KMeans(1, seed=0).fit_predict(x)
        assert (labels == 0).all()

    def test_more_restarts_never_worse(self, rng):
        x, _ = three_blobs(rng, spread=1.5)
        one = KMeans(3, num_init=1, seed=0)
        one.fit_predict(x)
        many = KMeans(3, num_init=8, seed=0)
        many.fit_predict(x)
        assert many.inertia_ <= one.inertia_ + 1e-9


class TestNmi:
    def test_perfect_match(self):
        y = np.array([0, 0, 1, 1, 2, 2])
        assert normalized_mutual_information(y, y) == pytest.approx(1.0)

    def test_permuted_labels_still_perfect(self):
        y = np.array([0, 0, 1, 1, 2, 2])
        permuted = np.array([2, 2, 0, 0, 1, 1])
        assert normalized_mutual_information(y, permuted) == pytest.approx(1.0)

    def test_independent_labels_near_zero(self, rng):
        y_true = rng.integers(0, 3, size=3000)
        y_pred = rng.integers(0, 3, size=3000)
        assert normalized_mutual_information(y_true, y_pred) < 0.01

    def test_symmetry(self, rng):
        a = rng.integers(0, 3, size=200)
        b = rng.integers(0, 4, size=200)
        assert normalized_mutual_information(
            a, b
        ) == pytest.approx(normalized_mutual_information(b, a))

    def test_bounds(self, rng):
        for _ in range(10):
            a = rng.integers(0, 4, size=60)
            b = rng.integers(0, 4, size=60)
            nmi = normalized_mutual_information(a, b)
            assert -1e-9 <= nmi <= 1.0 + 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            normalized_mutual_information(np.array([0]), np.array([0, 1]))
        with pytest.raises(ValueError):
            normalized_mutual_information(np.array([]), np.array([]))

    def test_single_class_both(self):
        assert normalized_mutual_information(
            np.zeros(5), np.zeros(5)
        ) == pytest.approx(1.0)
