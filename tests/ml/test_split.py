"""Tests for train/test splitting."""

import numpy as np
import pytest

from repro.ml import train_test_split


class TestValidation:
    def test_bad_fraction(self, rng):
        for frac in (0.0, 1.0, -0.5):
            with pytest.raises(ValueError):
                train_test_split(10, frac, rng)

    def test_too_few_samples(self, rng):
        with pytest.raises(ValueError):
            train_test_split(1, 0.5, rng)

    def test_stratify_shape(self, rng):
        with pytest.raises(ValueError):
            train_test_split(5, 0.5, rng, stratify=np.zeros(4))


class TestPlainSplit:
    def test_partition(self, rng):
        train, test = train_test_split(20, 0.9, rng)
        combined = np.concatenate([train, test])
        assert sorted(combined) == list(range(20))

    def test_sizes(self, rng):
        train, test = train_test_split(100, 0.9, rng)
        assert train.size == 90
        assert test.size == 10

    def test_seeded_reproducibility(self):
        a = train_test_split(50, 0.8, np.random.default_rng(7))
        b = train_test_split(50, 0.8, np.random.default_rng(7))
        assert np.array_equal(a[0], b[0])

    def test_different_seeds_differ(self):
        a = train_test_split(50, 0.8, np.random.default_rng(1))
        b = train_test_split(50, 0.8, np.random.default_rng(2))
        assert not np.array_equal(a[0], b[0])


class TestStratifiedSplit:
    def test_class_proportions_preserved(self, rng):
        labels = np.array([0] * 80 + [1] * 20)
        train, test = train_test_split(100, 0.75, rng, stratify=labels)
        train_labels = labels[train]
        assert (train_labels == 0).sum() == 60
        assert (train_labels == 1).sum() == 15

    def test_partition_property(self, rng):
        labels = np.array([0, 1, 2] * 10)
        train, test = train_test_split(30, 0.7, rng, stratify=labels)
        assert sorted(np.concatenate([train, test])) == list(range(30))

    def test_tiny_class_goes_to_train(self, rng):
        labels = np.array([0] * 19 + [1])
        train, test = train_test_split(20, 0.9, rng, stratify=labels)
        assert 19 in train  # the single class-1 sample trains
