"""Tests for PCA and t-SNE."""

import numpy as np
import pytest

from repro.ml import TSNE, pca, silhouette_score


class TestPca:
    def test_output_shape(self, rng):
        x = rng.normal(size=(20, 5))
        assert pca(x, 2).shape == (20, 2)

    def test_variance_ordering(self, rng):
        x = rng.normal(size=(100, 4)) * np.array([10.0, 5.0, 1.0, 0.1])
        proj = pca(x, 3)
        variances = proj.var(axis=0)
        assert variances[0] >= variances[1] >= variances[2]

    def test_recovers_dominant_direction(self, rng):
        t = rng.normal(size=200)
        x = np.outer(t, [3.0, 4.0]) + rng.normal(0, 0.01, size=(200, 2))
        proj = pca(x, 1)
        corr = np.corrcoef(proj[:, 0], t)[0, 1]
        assert abs(corr) > 0.999

    def test_deterministic_sign(self, rng):
        x = rng.normal(size=(30, 3))
        assert np.allclose(pca(x, 2), pca(x.copy(), 2))

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            pca(rng.normal(size=(5,)), 1)
        with pytest.raises(ValueError):
            pca(rng.normal(size=(5, 3)), 4)


class TestTsne:
    def test_validation(self, rng):
        with pytest.raises(ValueError):
            TSNE(perplexity=0.5)
        with pytest.raises(ValueError):
            TSNE(perplexity=30).fit_transform(rng.normal(size=(20, 4)))
        with pytest.raises(ValueError):
            TSNE().fit_transform(rng.normal(size=(3, 4)))

    def test_output_shape(self, rng):
        x = rng.normal(size=(30, 8))
        out = TSNE(perplexity=5, num_iter=120, seed=0).fit_transform(x)
        assert out.shape == (30, 2)
        assert np.isfinite(out).all()

    def test_separates_clusters(self, rng):
        """Two well-separated Gaussians stay separated in 2-D."""
        x = np.vstack(
            [rng.normal(0, 0.3, (20, 10)), rng.normal(4, 0.3, (20, 10))]
        )
        labels = np.array([0] * 20 + [1] * 20)
        out = TSNE(perplexity=6, num_iter=250, seed=1).fit_transform(x)
        assert silhouette_score(out, labels) > 0.4

    def test_deterministic_given_seed(self, rng):
        x = rng.normal(size=(25, 6))
        a = TSNE(perplexity=5, num_iter=100, seed=3).fit_transform(x)
        b = TSNE(perplexity=5, num_iter=100, seed=3).fit_transform(x)
        assert np.allclose(a, b)

    def test_kl_divergence_nonnegative(self, rng):
        x = rng.normal(size=(25, 6))
        tsne = TSNE(perplexity=5, num_iter=100, seed=0)
        y = tsne.fit_transform(x)
        assert tsne.kl_divergence(x, y) >= 0.0

    def test_optimization_reduces_kl(self, rng):
        x = np.vstack(
            [rng.normal(0, 0.3, (15, 5)), rng.normal(3, 0.3, (15, 5))]
        )
        tsne_short = TSNE(perplexity=5, num_iter=5, seed=0)
        tsne_long = TSNE(perplexity=5, num_iter=300, seed=0)
        kl_short = tsne_short.kl_divergence(x, tsne_short.fit_transform(x))
        kl_long = tsne_long.kl_divergence(x, tsne_long.fit_transform(x))
        assert kl_long < kl_short
