"""Tests for classification and ranking metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import (
    accuracy,
    confusion_matrix,
    f1_scores,
    roc_auc_score,
    silhouette_score,
)


class TestConfusionMatrix:
    def test_perfect(self):
        labels, m = confusion_matrix(np.array([0, 1, 1]), np.array([0, 1, 1]))
        assert np.array_equal(m, [[1, 0], [0, 2]])

    def test_off_diagonal(self):
        _, m = confusion_matrix(np.array([0, 0, 1]), np.array([1, 0, 1]))
        assert m[0, 1] == 1

    def test_string_labels(self):
        labels, m = confusion_matrix(
            np.array(["cat", "dog"]), np.array(["dog", "dog"])
        )
        assert list(labels) == ["cat", "dog"]

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.array([0]), np.array([0, 1]))


class TestAccuracy:
    def test_value(self):
        assert accuracy(np.array([1, 2, 3]), np.array([1, 2, 4])) == pytest.approx(2 / 3)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            accuracy(np.array([]), np.array([]))


class TestF1:
    def test_perfect_prediction(self):
        scores = f1_scores(np.array([0, 1, 2]), np.array([0, 1, 2]))
        assert scores.micro == 1.0
        assert scores.macro == 1.0

    def test_hand_computed_binary(self):
        # TP=2, FP=1, FN=1 for class 1; class 0: TP=1, FP=1, FN=1
        y_true = np.array([1, 1, 1, 0, 0])
        y_pred = np.array([1, 1, 0, 1, 0])
        scores = f1_scores(y_true, y_pred)
        f1_class1 = 2 * 2 / (2 * 2 + 1 + 1)
        f1_class0 = 2 * 1 / (2 * 1 + 1 + 1)
        assert scores.macro == pytest.approx((f1_class0 + f1_class1) / 2)
        # micro-F1 over all classes equals accuracy in single-label tasks
        assert scores.micro == pytest.approx(accuracy(y_true, y_pred))

    def test_missing_class_counts_zero(self):
        # class 2 never predicted and never true-positive
        scores = f1_scores(np.array([0, 0, 2]), np.array([0, 0, 0]))
        per_class0 = 2 * 2 / (2 * 2 + 1 + 0)
        assert scores.macro == pytest.approx(per_class0 / 2)

    def test_micro_equals_accuracy_property(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            y_true = rng.integers(0, 4, size=50)
            y_pred = rng.integers(0, 4, size=50)
            scores = f1_scores(y_true, y_pred)
            assert scores.micro == pytest.approx(accuracy(y_true, y_pred))

    def test_bounds(self):
        rng = np.random.default_rng(1)
        y_true = rng.integers(0, 3, size=30)
        y_pred = rng.integers(0, 3, size=30)
        scores = f1_scores(y_true, y_pred)
        assert 0.0 <= scores.macro <= 1.0
        assert 0.0 <= scores.micro <= 1.0


class TestAuc:
    def test_perfect_ranking(self):
        y = np.array([0, 0, 1, 1])
        s = np.array([0.1, 0.2, 0.8, 0.9])
        assert roc_auc_score(y, s) == 1.0

    def test_reversed_ranking(self):
        y = np.array([0, 0, 1, 1])
        s = np.array([0.9, 0.8, 0.2, 0.1])
        assert roc_auc_score(y, s) == 0.0

    def test_random_is_half(self):
        rng = np.random.default_rng(2)
        y = rng.integers(0, 2, size=5000)
        while y.sum() in (0, y.size):
            y = rng.integers(0, 2, size=5000)
        s = rng.normal(size=5000)
        assert abs(roc_auc_score(y, s) - 0.5) < 0.03

    def test_ties_averaged(self):
        y = np.array([0, 1])
        s = np.array([0.5, 0.5])
        assert roc_auc_score(y, s) == pytest.approx(0.5)

    def test_hand_computed(self):
        y = np.array([1, 0, 1, 0])
        s = np.array([0.9, 0.8, 0.7, 0.1])
        # pairs: (0.9>0.8), (0.9>0.1), (0.7<0.8), (0.7>0.1) -> 3/4
        assert roc_auc_score(y, s) == pytest.approx(0.75)

    def test_antisymmetry(self):
        """AUC(y, s) + AUC(y, -s) == 1 (no ties)."""
        rng = np.random.default_rng(3)
        y = np.array([0, 1] * 20)
        s = rng.normal(size=40)
        assert roc_auc_score(y, s) + roc_auc_score(y, -s) == pytest.approx(1.0)

    def test_single_class_rejected(self):
        with pytest.raises(ValueError):
            roc_auc_score(np.ones(4), np.arange(4.0))

    @given(st.integers(2, 40))
    @settings(max_examples=25, deadline=None)
    def test_monotone_transform_invariance(self, n):
        rng = np.random.default_rng(n)
        y = np.concatenate([np.zeros(n // 2 + 1), np.ones(n // 2 + 1)])
        s = rng.normal(size=y.size)
        a1 = roc_auc_score(y, s)
        a2 = roc_auc_score(y, np.exp(s))  # strictly increasing map
        assert a1 == pytest.approx(a2)


class TestSilhouette:
    def test_well_separated_clusters(self):
        x = np.vstack([np.zeros((5, 2)), np.ones((5, 2)) * 100])
        labels = np.array([0] * 5 + [1] * 5)
        assert silhouette_score(x, labels) > 0.95

    def test_identical_clusters_near_zero(self):
        rng = np.random.default_rng(4)
        x = rng.normal(size=(40, 3))
        labels = np.array([0, 1] * 20)
        assert abs(silhouette_score(x, labels)) < 0.2

    def test_single_cluster_rejected(self):
        with pytest.raises(ValueError):
            silhouette_score(np.ones((4, 2)), np.zeros(4))

    def test_separated_beats_mixed(self):
        rng = np.random.default_rng(5)
        x = np.vstack(
            [rng.normal(0, 1, (20, 2)), rng.normal(8, 1, (20, 2))]
        )
        good = np.array([0] * 20 + [1] * 20)
        bad = np.array([0, 1] * 20)
        assert silhouette_score(x, good) > silhouette_score(x, bad)
