"""Service-layer tests: batched execution, metrics wiring, lifecycle."""

import numpy as np
import pytest

from repro.engine.observability import MetricsRegistry, Tracer
from repro.serving import (
    BruteForceIndex,
    EmbeddingService,
    IVFIndex,
    write_store,
)

from tests.serving.test_index import clustered_embeddings


@pytest.fixture(scope="module")
def store_path(tmp_path_factory):
    x = clustered_embeddings(n=300, dim=8, clusters=10, seed=1)
    path = tmp_path_factory.mktemp("svc") / "e.tnemb"
    write_store(path, [f"n{i}" for i in range(len(x))], x)
    return path


class TestQueries:
    def test_score_links_is_table_iv_inner_product(self, store_path):
        with EmbeddingService(store_path) as svc:
            x = svc.store.matrix
            scores = svc.score_links([("n0", "n1"), ("n5", "n5")])
            assert scores[0] == pytest.approx(float(np.dot(x[0], x[1])))
            assert scores[1] == pytest.approx(float(np.dot(x[5], x[5])))

    def test_score_links_unknown_node(self, store_path):
        with EmbeddingService(store_path) as svc:
            with pytest.raises(KeyError, match="ghost"):
                svc.score_links([("n0", "ghost")])

    def test_top_k_excludes_self_by_default(self, store_path):
        with EmbeddingService(
            store_path, index="ivf", nlist=8, nprobe=8
        ) as svc:
            [entry] = svc.top_k(["n3"], k=5)
            assert len(entry) == 5
            assert all(neighbor != "n3" for neighbor, _ in entry)
            [kept] = svc.top_k(["n3"], k=5, exclude_self=False)
            # a stored query's own vector is its best cosine match
            assert kept[0][0] == "n3"

    def test_batched_equals_unbatched(self, store_path):
        nodes = [f"n{i}" for i in range(0, 50, 3)]
        with EmbeddingService(store_path, index="brute") as one:
            whole = one.top_k(nodes, k=4)
        with EmbeddingService(
            store_path, index="brute", batch_size=3
        ) as many:
            chunked = many.top_k(nodes, k=4)
        # neighbor sets are identical; scores may differ by BLAS-blocking
        # ulps across batch shapes, so compare them tolerantly
        assert [[n for n, _ in e] for e in whole] == [
            [n for n, _ in e] for e in chunked
        ]
        assert np.allclose(
            [[s for _, s in e] for e in whole],
            [[s for _, s in e] for e in chunked],
            rtol=1e-12,
        )

    def test_brute_and_ivf_agree_at_full_probe(self, store_path):
        with EmbeddingService(store_path, index="brute") as brute:
            exact = brute.top_k(["n1", "n2"], k=3)
        with EmbeddingService(
            store_path, index="ivf", nlist=8, nprobe=8
        ) as ivf:
            approx = ivf.top_k(["n1", "n2"], k=3)
        assert [[n for n, _ in e] for e in exact] == [
            [n for n, _ in e] for e in approx
        ]


class TestObservability:
    def test_metrics_and_report_wiring(self, store_path, tmp_path):
        from repro.engine.observability import RunReport, load_report

        metrics = MetricsRegistry()
        tracer = Tracer()
        with EmbeddingService(
            store_path, index="ivf", nlist=8, metrics=metrics, tracer=tracer
        ) as svc:
            svc.top_k(["n0", "n1", "n2"], k=4)
            svc.score_links([("n0", "n1")])
            recall = svc.measure_recall(k=5, sample=16)
        snapshot = metrics.snapshot()
        assert snapshot["counters"]["serving/queries"] == 4.0
        assert snapshot["counters"]["serving/topk_queries"] == 3.0
        assert snapshot["counters"]["serving/link_queries"] == 1.0
        assert snapshot["series"]["serving/batch_size"]["count"] == 2
        assert snapshot["series"]["serving/latency_ms"]["count"] == 2
        assert snapshot["gauges"]["serving/latency_p50_ms"] >= 0.0
        assert snapshot["gauges"]["serving/latency_p99_ms"] >= (
            snapshot["gauges"]["serving/latency_p50_ms"]
        )
        assert snapshot["gauges"]["serving/recall_at_k"] == recall
        assert snapshot["gauges"]["serving/index_nlist"] == 8.0
        assert snapshot["timers"]["serving/index_build"]["count"] == 1
        # the serving session serializes through the standard run report
        report = tmp_path / "serve.json"
        RunReport(metrics, tracer, metadata={"command": "query"}).write(
            report
        )
        document = load_report(report)
        assert document["metrics"]["counters"]["serving/queries"] == 4.0
        assert any(
            span["name"] == "index_build"
            for span in document["trace"]["spans"]
        )

    def test_unobserved_service_records_nothing(self, store_path):
        with EmbeddingService(store_path, index="brute") as svc:
            svc.top_k(["n0"], k=2)
            assert svc.metrics.snapshot()["counters"] == {}

    def test_brute_recall_trivially_one(self, store_path):
        with EmbeddingService(store_path, index="brute") as svc:
            assert svc.measure_recall() == 1.0


class TestLifecycle:
    def test_index_is_lazy(self, store_path):
        with EmbeddingService(store_path, index="ivf", nlist=8) as svc:
            assert svc._index is None
            svc.score_links([("n0", "n1")])  # link scoring needs no index
            assert svc._index is None
            svc.top_k(["n0"], k=2)
            assert isinstance(svc._index, IVFIndex)

    def test_prebuilt_index_accepted(self, store_path):
        from repro.serving import EmbeddingStore

        with EmbeddingStore(store_path) as store:
            index = BruteForceIndex(store.matrix)
            svc = EmbeddingService(store, index=index)
            assert svc.index is index
            assert svc.top_k(["n0"], k=2)
            svc.close()  # must NOT close the caller-owned store
            assert store.count == 300

    def test_bad_options(self, store_path):
        with pytest.raises(ValueError, match="unknown index kind"):
            EmbeddingService(store_path, index="hnsw")
        with pytest.raises(ValueError, match="batch_size"):
            EmbeddingService(store_path, batch_size=0)
