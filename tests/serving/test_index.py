"""Recall goldens and determinism for the top-k indexes.

Brute force is pinned against a direct numpy computation (it is the
correctness reference everything else is judged by); the IVF index must
hit recall@10 >= 0.9 on fixture embeddings at fixed seeds, be
deterministic for a fixed (seed, nprobe), recover exactness at
nprobe == nlist, and have recall non-decreasing in nprobe — the last
two follow from nested candidate sets, which is exactly what the test
pins so a refactor cannot silently break the nesting.
"""

import numpy as np
import pytest

from repro.serving.index import (
    BruteForceIndex,
    IVFIndex,
    make_index,
    recall_at_k,
)


def clustered_embeddings(
    n=2000, dim=16, clusters=25, noise=0.8, dtype=np.float64, seed=0
):
    """Fixture embeddings: a Gaussian mixture, like real embedding
    geometry (tight communities with overlap), hard enough that small
    nprobe misses neighbors."""
    rng = np.random.default_rng(seed)
    centers = rng.standard_normal((clusters, dim)) * 2.0
    assignment = rng.integers(0, clusters, size=n)
    x = centers[assignment] + noise * rng.standard_normal((n, dim))
    return x.astype(dtype)


@pytest.fixture(scope="module")
def base():
    return clustered_embeddings()


@pytest.fixture(scope="module")
def queries(base):
    rng = np.random.default_rng(42)
    return base[rng.choice(len(base), size=64, replace=False)]


class TestBruteForce:
    @pytest.mark.parametrize("metric", ["cosine", "dot"])
    def test_matches_direct_computation(self, base, queries, metric):
        index = BruteForceIndex(base, metric=metric)
        idx, scores = index.search(queries, 10)
        if metric == "cosine":
            b = base / np.linalg.norm(base, axis=1, keepdims=True)
            q = queries / np.linalg.norm(queries, axis=1, keepdims=True)
        else:
            b, q = base, queries
        expected = q @ b.T
        for qi in range(len(queries)):
            order = np.lexsort((np.arange(len(base)), -expected[qi]))[:10]
            assert np.array_equal(idx[qi], order)
            assert np.allclose(scores[qi], expected[qi][order], rtol=1e-12)

    def test_chunked_equals_unchunked(self, base, queries):
        whole = BruteForceIndex(base, metric="cosine", row_chunk=10**9)
        chunked = BruteForceIndex(base, metric="cosine", row_chunk=137)
        wi, ws = whole.search(queries, 10)
        ci, cs = chunked.search(queries, 10)
        assert np.array_equal(wi, ci)
        assert np.array_equal(ws, cs)

    def test_scores_descending(self, base, queries):
        _, scores = BruteForceIndex(base).search(queries, 10)
        assert np.all(np.diff(scores, axis=1) <= 0)

    def test_k_larger_than_rows(self):
        x = np.eye(3)
        idx, _ = BruteForceIndex(x, metric="dot").search(x[:1], 10)
        assert idx.shape == (1, 3)

    def test_bad_inputs(self, base):
        with pytest.raises(ValueError, match="unknown metric"):
            BruteForceIndex(base, metric="l2")
        with pytest.raises(ValueError, match="k must be"):
            BruteForceIndex(base).search(base[:1], 0)
        with pytest.raises(ValueError, match="query dim"):
            BruteForceIndex(base).search(np.ones((1, 3)), 1)


class TestIVFRecall:
    @pytest.mark.parametrize("metric", ["cosine", "dot"])
    def test_recall_at_10_golden(self, base, queries, metric):
        """recall@10 >= 0.9 vs brute force at the documented operating
        point (nlist=sqrt(n)-ish, nprobe=8, seed=0)."""
        exact_idx, _ = BruteForceIndex(base, metric=metric).search(queries, 10)
        ivf = IVFIndex(base, metric=metric, nlist=45, nprobe=8, seed=0)
        approx_idx, _ = ivf.search(queries, 10)
        recall = recall_at_k(approx_idx, exact_idx)
        assert recall >= 0.9, recall

    def test_recall_monotone_in_nprobe(self, base, queries):
        """Probed cells are nested, so recall never drops as nprobe
        grows — and at nprobe == nlist the search is exhaustive."""
        exact_idx, _ = BruteForceIndex(base).search(queries, 10)
        ivf = IVFIndex(base, nlist=32, nprobe=1, seed=0)
        recalls = []
        for nprobe in (1, 2, 4, 8, 16, 32):
            approx_idx, _ = ivf.search(queries, 10, nprobe=nprobe)
            recalls.append(recall_at_k(approx_idx, exact_idx))
        assert all(b >= a for a, b in zip(recalls, recalls[1:])), recalls
        assert recalls[-1] == 1.0  # nprobe == nlist probes every cell
        assert recalls[0] < 1.0  # the fixture actually exercises the ANN

    def test_deterministic_for_fixed_seed_and_nprobe(self, base, queries):
        a = IVFIndex(base, nlist=32, nprobe=4, seed=3)
        b = IVFIndex(base, nlist=32, nprobe=4, seed=3)
        ai, ascores = a.search(queries, 10)
        bi, bscores = b.search(queries, 10)
        assert np.array_equal(ai, bi)
        assert np.array_equal(ascores, bscores)

    def test_scores_are_exact_for_returned_rows(self, base, queries):
        """IVF approximates the candidate set, never the scores."""
        ivf = IVFIndex(base, nlist=32, nprobe=4, seed=0)
        idx, scores = ivf.search(queries[:8], 5)
        b = base / np.linalg.norm(base, axis=1, keepdims=True)
        q = queries[:8] / np.linalg.norm(
            queries[:8], axis=1, keepdims=True
        )
        for qi in range(8):
            expected = b[idx[qi]] @ q[qi]
            assert np.allclose(scores[qi], expected, rtol=1e-12)


class TestIVFStructure:
    def test_cells_partition_the_rows(self, base):
        ivf = IVFIndex(base, nlist=32, seed=0)
        assert ivf.cell_sizes().sum() == len(base)

    def test_small_cells_extend_probing_to_fill_k(self):
        """k larger than the probed cells' population still returns k
        rows (probing extends deterministically, never pads)."""
        x = clustered_embeddings(n=60, clusters=3, seed=5)
        ivf = IVFIndex(x, nlist=20, nprobe=1, seed=0)
        idx, scores = ivf.search(x[:4], 30)
        assert idx.shape == (4, 30)
        assert np.all(idx >= 0)
        for row in idx:
            assert len(set(row.tolist())) == 30

    def test_nlist_defaults_to_sqrt(self):
        x = clustered_embeddings(n=900, clusters=5)
        assert IVFIndex(x, seed=0).nlist == 30

    def test_nprobe_clamped_to_nlist(self, base):
        ivf = IVFIndex(base, nlist=8, nprobe=1000, seed=0)
        assert ivf.nprobe == 8

    def test_float32_supported(self):
        x = clustered_embeddings(dtype=np.float32, n=500, clusters=10)
        ivf = IVFIndex(x, nlist=16, nprobe=16, seed=0)
        idx, scores = ivf.search(x[:4], 5)
        assert scores.dtype == np.float32
        assert idx.shape == (4, 5)

    def test_bad_inputs(self, base):
        with pytest.raises(ValueError, match="nprobe"):
            IVFIndex(base, nlist=8, nprobe=0)
        with pytest.raises(ValueError, match="nprobe"):
            IVFIndex(base, nlist=8).search(base[:1], 5, nprobe=-1)


class TestHelpers:
    def test_recall_at_k_counts_overlap(self):
        exact = np.array([[1, 2, 3, 4]])
        approx = np.array([[4, 3, 9, 8]])
        assert recall_at_k(approx, exact) == 0.5

    def test_recall_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape mismatch"):
            recall_at_k(np.ones((1, 2)), np.ones((1, 3)))

    def test_make_index_factory(self, base):
        assert isinstance(make_index(base, "brute"), BruteForceIndex)
        assert isinstance(make_index(base, "ivf", nlist=8), IVFIndex)
        with pytest.raises(ValueError, match="unknown index kind"):
            make_index(base, "hnsw")
