"""Property and corruption tests for the TNEMB1 embedding store.

The contract under test: write → mmap-load is bit-exact for any
(dtype, ids, shape); damaged files fail loudly with named errors
(truncation at open, bit rot at verify — the TNSPILL2 CRC pattern);
and the text ↔ binary conversion is lossless in both directions.
"""

import struct
import zlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.io import load_embeddings, save_embeddings
from repro.serving.store import (
    HEADER_BYTES,
    MAGIC,
    EmbeddingStore,
    StoreCorruptionError,
    StoreFormatError,
    store_from_embeddings,
    write_store,
)

# ids: any printable text without the newline delimiter
_id_alphabet = st.characters(
    codec="utf-8", exclude_characters="\n", exclude_categories=("C",)
)
_ids = st.lists(
    st.text(alphabet=_id_alphabet, min_size=1, max_size=12),
    min_size=1,
    max_size=8,
    unique=True,
)


def _matrix(draw, rows: int):
    dtype = draw(st.sampled_from([np.float32, np.float64]))
    dim = draw(st.integers(min_value=1, max_value=6))
    rng = np.random.default_rng(draw(st.integers(0, 2**32 - 1)))
    return rng.standard_normal((rows, dim)).astype(dtype)


class TestRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(data=st.data(), ids=_ids)
    def test_write_mmap_load_bit_exact(self, data, ids, tmp_path_factory):
        """Random dtypes/ids/shapes survive the store bit for bit."""
        matrix = _matrix(data.draw, len(ids))
        path = tmp_path_factory.mktemp("store") / "e.tnemb"
        write_store(path, ids, matrix)
        with EmbeddingStore(path) as store:
            assert store.dtype == matrix.dtype
            assert store.count == len(ids)
            assert store.dim == matrix.shape[1]
            assert store.matrix.tobytes() == matrix.tobytes()
            assert store.ids == list(ids)
            store.verify()
            for row, node in enumerate(ids):
                assert store.row_of(node) == row
                assert np.array_equal(store.vector(node), matrix[row])

    def test_write_is_deterministic(self, tmp_path):
        rng = np.random.default_rng(7)
        matrix = rng.standard_normal((5, 3)).astype(np.float32)
        ids = [f"n{i}" for i in range(5)]
        a, b = tmp_path / "a.tnemb", tmp_path / "b.tnemb"
        write_store(a, ids, matrix)
        write_store(b, ids, matrix)
        assert a.read_bytes() == b.read_bytes()

    def test_vectors_gather_and_contains(self, tmp_path):
        matrix = np.arange(12, dtype=np.float64).reshape(4, 3)
        path = write_store(tmp_path / "e.tnemb", list("abcd"), matrix)
        with EmbeddingStore(path) as store:
            assert np.array_equal(store.vectors(["d", "b"]), matrix[[3, 1]])
            assert "c" in store and "z" not in store
            assert len(store) == 4
            with pytest.raises(KeyError, match="'z' is not in store"):
                store.row_of("z")


class TestTextConversion:
    """store ↔ save_embeddings round trips are lossless for both dtypes."""

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_text_round_trip_is_lossless(self, dtype, tmp_path):
        rng = np.random.default_rng(3)
        embeddings = {
            f"n{i}": rng.standard_normal(4).astype(dtype) for i in range(6)
        }
        store_path = store_from_embeddings(embeddings, tmp_path / "a.tnemb")
        with EmbeddingStore(store_path) as store:
            store.save_text(tmp_path / "e.txt")
        loaded = load_embeddings(tmp_path / "e.txt")
        assert all(v.dtype == dtype for v in loaded.values())
        assert all(
            np.array_equal(loaded[k], embeddings[k]) for k in embeddings
        )
        # ... and back to a byte-identical store
        again = store_from_embeddings(loaded, tmp_path / "b.tnemb")
        assert again.read_bytes() == store_path.read_bytes()

    def test_to_embeddings_preserves_dtype_and_order(self, tmp_path):
        matrix = np.arange(6, dtype=np.float32).reshape(3, 2)
        path = write_store(tmp_path / "e.tnemb", ["x", "y", "z"], matrix)
        with EmbeddingStore(path) as store:
            out = store.to_embeddings()
        assert list(out) == ["x", "y", "z"]
        assert all(v.dtype == np.float32 for v in out.values())


class TestWriteValidation:
    def test_rejects_bad_dtype(self, tmp_path):
        with pytest.raises(ValueError, match="float32/float64"):
            write_store(
                tmp_path / "e", ["a"], np.array([[1]], dtype=np.int64)
            )

    def test_rejects_empty_matrix(self, tmp_path):
        with pytest.raises(ValueError, match="empty"):
            write_store(tmp_path / "e", [], np.empty((0, 3)))

    def test_rejects_duplicate_ids(self, tmp_path):
        with pytest.raises(ValueError, match="duplicate"):
            write_store(tmp_path / "e", ["a", "a"], np.ones((2, 2)))

    def test_rejects_newline_id(self, tmp_path):
        with pytest.raises(ValueError, match="newline"):
            write_store(tmp_path / "e", ["a\nb"], np.ones((1, 2)))

    def test_rejects_count_mismatch(self, tmp_path):
        with pytest.raises(ValueError, match="mismatch"):
            write_store(tmp_path / "e", ["a"], np.ones((2, 2)))

    def test_no_tmp_left_behind(self, tmp_path):
        write_store(tmp_path / "e.tnemb", ["a"], np.ones((1, 2)))
        assert [p.name for p in tmp_path.iterdir()] == ["e.tnemb"]


def _valid_store(tmp_path, dtype=np.float32):
    rng = np.random.default_rng(11)
    matrix = rng.standard_normal((6, 4)).astype(dtype)
    ids = [f"node-{i}" for i in range(6)]
    return write_store(tmp_path / "e.tnemb", ids, matrix)


class TestCorruption:
    @settings(max_examples=40, deadline=None)
    @given(fraction=st.floats(min_value=0.0, max_value=0.999))
    def test_truncation_raises_at_open(self, fraction, tmp_path_factory):
        """Any proper prefix of a store is rejected when opened."""
        tmp_path = tmp_path_factory.mktemp("trunc")
        path = _valid_store(tmp_path)
        data = path.read_bytes()
        cut = int(len(data) * fraction)
        path.write_bytes(data[:cut])
        with pytest.raises(StoreFormatError):
            EmbeddingStore(path)

    @settings(max_examples=40, deadline=None)
    @given(offset=st.integers(min_value=0, max_value=10_000))
    def test_bitflip_raises_at_verify(self, offset, tmp_path_factory):
        """Any flipped payload byte trips one of the CRCs."""
        tmp_path = tmp_path_factory.mktemp("rot")
        path = _valid_store(tmp_path)
        data = bytearray(path.read_bytes())
        payload = len(data) - HEADER_BYTES
        pos = HEADER_BYTES + offset % payload
        data[pos] ^= 0x01
        path.write_bytes(bytes(data))
        with EmbeddingStore(path) as store:
            with pytest.raises(StoreCorruptionError, match="CRC mismatch"):
                store.verify()

    def test_matrix_and_ids_sections_named(self, tmp_path):
        path = _valid_store(tmp_path)
        data = bytearray(path.read_bytes())
        flipped = bytearray(data)
        flipped[HEADER_BYTES] ^= 0x01  # first matrix byte
        path.write_bytes(bytes(flipped))
        with EmbeddingStore(path) as store:
            with pytest.raises(StoreCorruptionError, match="vector matrix"):
                store.verify()
        flipped = bytearray(data)
        flipped[-1] ^= 0x01  # last id-table byte
        path.write_bytes(bytes(flipped))
        with EmbeddingStore(path) as store:
            with pytest.raises(StoreCorruptionError, match="id table"):
                store.verify()

    def test_clean_file_verifies(self, tmp_path):
        with EmbeddingStore(_valid_store(tmp_path)) as store:
            store.verify()


class TestFormatRejection:
    def test_v0_magic_actionable(self, tmp_path):
        path = _valid_store(tmp_path)
        data = bytearray(path.read_bytes())
        data[:8] = b"TNEMB0\x00\x00"
        path.write_bytes(bytes(data))
        with pytest.raises(StoreFormatError, match="version-0.*--out-store"):
            EmbeddingStore(path)

    def test_unknown_magic_actionable(self, tmp_path):
        path = tmp_path / "e.tnemb"
        path.write_bytes(b"GARBAGE!" + b"\x00" * 64)
        with pytest.raises(
            StoreFormatError, match="not an embedding store"
        ):
            EmbeddingStore(path)

    def test_future_version_rejected(self, tmp_path):
        path = _valid_store(tmp_path)
        data = bytearray(path.read_bytes())
        struct.pack_into("<I", data, 8, 99)
        path.write_bytes(bytes(data))
        with pytest.raises(StoreFormatError, match="version 99"):
            EmbeddingStore(path)

    def test_bad_itemsize_rejected(self, tmp_path):
        path = _valid_store(tmp_path)
        data = bytearray(path.read_bytes())
        struct.pack_into("<I", data, 12, 2)
        path.write_bytes(bytes(data))
        with pytest.raises(StoreFormatError, match="itemsize"):
            EmbeddingStore(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "e.tnemb"
        path.write_bytes(b"")
        with pytest.raises(StoreFormatError, match="empty"):
            EmbeddingStore(path)

    def test_trailing_garbage_rejected(self, tmp_path):
        path = _valid_store(tmp_path)
        path.write_bytes(path.read_bytes() + b"xx")
        with pytest.raises(StoreFormatError, match="promises"):
            EmbeddingStore(path)

    def test_magic_constant_shape(self):
        # the header layout is a stable on-disk contract
        assert MAGIC == b"TNEMB1\x00\x00"
        assert HEADER_BYTES == struct.calcsize("<8sIIIQQII")
        assert zlib.crc32(b"") == 0  # CRC convention the format relies on
