"""Smoke tests for the example scripts' building blocks.

Full example runs take minutes; these tests import each script and
exercise its graph-construction helpers so that API drift in the library
breaks the examples visibly in CI rather than silently.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def load_example(name: str):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


class TestExampleModules:
    @pytest.mark.parametrize(
        "name",
        [
            "quickstart",
            "academic_network",
            "applet_store",
            "link_prediction_blog",
            "ablation_study",
            "custom_dataset",
        ],
    )
    def test_imports_cleanly(self, name):
        module = load_example(name)
        assert callable(module.main)

    def test_quickstart_network_matches_figure_2a(self):
        module = load_example("quickstart")
        graph = module.build_network()
        assert graph.num_nodes == 9
        assert graph.num_edges == 11
        assert graph.edge_types == {"citation", "authorship", "affiliation"}

    def test_quickstart_cosine(self):
        import numpy as np

        module = load_example("quickstart")
        v = np.array([1.0, 0.0])
        assert module.cosine(v, v) == pytest.approx(1.0)
        assert module.cosine(v, -v) == pytest.approx(-1.0)

    def test_movie_network_schema(self):
        module = load_example("custom_dataset")
        graph = module.build_movie_network()
        assert graph.node_types == {"user", "movie", "genre"}
        assert graph.edge_types == {"rating", "genre-of"}
        # ratings carry weights 1..5
        weights = [e.weight for e in graph.edges_of_type("rating")]
        assert min(weights) >= 1.0
        assert max(weights) <= 5.0

    def test_movie_nearest_helper(self):
        import numpy as np

        module = load_example("custom_dataset")
        embeddings = {
            "a": np.array([1.0, 0.0]),
            "b": np.array([0.9, 0.1]),
            "c": np.array([0.0, 1.0]),
        }
        nearest = module.nearest(embeddings, "a", k=2)
        assert nearest[0][0] == "b"
