"""Cross-cutting property-based tests on randomly generated typed graphs.

These tie the substrates together: whatever typed multigraph hypothesis
constructs, view separation must partition it, walkers must respect it,
serialization must round-trip it, and TransN must train on it without
blowing up.
"""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import TransN, TransNConfig
from repro.engine.observability import (
    MetricsRegistry,
    RunReport,
    Tracer,
    load_report,
)
from repro.graph import (
    HeteroGraph,
    load_graph,
    save_graph,
    separate_views,
)
from repro.walks import BiasedCorrelatedWalker, UniformWalker

SMOKE_CONFIG = TransNConfig(
    dim=4,
    walk_length=6,
    walk_floor=1,
    walk_cap=2,
    num_iterations=1,
    cross_path_len=3,
    cross_paths_per_pair=4,
    num_encoders=1,
    batch_size=32,
)


@st.composite
def typed_graphs(draw):
    """Connected-ish random typed weighted multigraphs."""
    num_nodes = draw(st.integers(min_value=4, max_value=14))
    num_types = draw(st.integers(min_value=1, max_value=3))
    node_types = {
        f"n{i}": f"t{draw(st.integers(0, num_types - 1))}"
        for i in range(num_nodes)
    }
    edges = []
    # a spine so most nodes have edges
    for i in range(num_nodes - 1):
        etype = f"e{draw(st.integers(0, 1))}"
        weight = draw(st.floats(min_value=0.1, max_value=9.0, allow_nan=False))
        edges.append((f"n{i}", f"n{i + 1}", etype, weight))
    extra = draw(st.integers(min_value=0, max_value=12))
    for _ in range(extra):
        u = draw(st.integers(0, num_nodes - 1))
        v = draw(st.integers(0, num_nodes - 1))
        if u == v:
            continue
        etype = f"e{draw(st.integers(0, 2))}"
        weight = draw(st.floats(min_value=0.1, max_value=9.0, allow_nan=False))
        edges.append((f"n{u}", f"n{v}", etype, weight))
    return HeteroGraph.from_edges(edges, node_types)


class TestGraphProperties:
    @given(typed_graphs())
    @settings(max_examples=30, deadline=None)
    def test_serialization_round_trip(self, graph):
        import tempfile
        from pathlib import Path

        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "g.tsv"
            self._round_trip(graph, path)

    @staticmethod
    def _round_trip(graph, path):
        save_graph(graph, path)
        loaded = load_graph(path)
        assert loaded.num_nodes == graph.num_nodes
        assert loaded.num_edges == graph.num_edges
        for orig, new in zip(graph.edges, loaded.edges):
            assert (str(orig.u), str(orig.v)) == (new.u, new.v)
            assert orig.weight == new.weight

    @given(typed_graphs())
    @settings(max_examples=30, deadline=None)
    def test_degree_sum_is_twice_edges(self, graph):
        total = sum(graph.degree(n) for n in graph.nodes)
        assert total == 2 * graph.num_edges


class TestWalkerProperties:
    @given(typed_graphs(), st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_walks_stay_inside_their_view(self, graph, seed):
        rng = np.random.default_rng(seed)
        for view in separate_views(graph):
            walker = BiasedCorrelatedWalker(view, rng=rng)
            start = next(iter(view.graph.nodes))
            walk = walker.walk(start, 8)
            for node in walk:
                assert view.graph.has_node(node)
            for a, b in zip(walk, walk[1:]):
                assert view.graph.has_edge(a, b)

    @given(typed_graphs(), st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_uniform_walks_valid(self, graph, seed):
        rng = np.random.default_rng(seed)
        walker = UniformWalker(graph, rng=rng)
        start = next(iter(graph.nodes))
        walk = walker.walk(start, 8)
        for a, b in zip(walk, walk[1:]):
            assert graph.has_edge(a, b)

    @given(typed_graphs())
    @settings(max_examples=20, deadline=None)
    def test_step_distribution_normalized(self, graph):
        rng = np.random.default_rng(0)
        for view in separate_views(graph):
            walker = BiasedCorrelatedWalker(view, rng=rng)
            for node in list(view.graph.nodes)[:3]:
                dist = walker.step_distribution(node, previous_weight=1.0)
                if dist:
                    assert abs(sum(dist.values()) - 1.0) < 1e-9
                    assert all(p >= 0 for p in dist.values())


_FINITE = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1e100, max_value=1e100
)
_NAMES = st.text(
    alphabet="abc/_", min_size=1, max_size=8
)


@st.composite
def metric_streams(draw):
    """name -> list of finite observations, over a tiny name alphabet."""
    return draw(
        st.dictionaries(
            _NAMES, st.lists(_FINITE, min_size=1, max_size=20), max_size=5
        )
    )


@st.composite
def span_trees(draw):
    """A random tree shape: each node is a (name, children) pair."""

    def node(children):
        return st.tuples(st.sampled_from(["run", "epoch", "phase"]), children)

    return draw(
        st.recursive(
            node(st.just([])),
            lambda inner: node(st.lists(inner, max_size=3)),
            max_leaves=10,
        )
    )


class TestObservabilityProperties:
    @given(metric_streams())
    @settings(max_examples=40, deadline=None)
    def test_report_round_trip_is_lossless(self, streams):
        """Finite metric values survive write -> load bit-exactly."""
        import tempfile
        from pathlib import Path

        registry = MetricsRegistry()
        for name, values in streams.items():
            for value in values:
                registry.observe(name, value)
            registry.counter(name, len(values))
            registry.gauge(name, values[-1])
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "r.json"
            RunReport(registry, metadata={"model": "prop"}).write(path)
            document = load_report(path)
        assert document["metrics"] == registry.snapshot()
        for name, values in streams.items():
            entry = document["metrics"]["series"][name]
            assert entry["tail"] == values
            assert entry["count"] == len(values)
            assert entry["last"] == values[-1]

    @given(metric_streams(), st.integers(min_value=1, max_value=7))
    @settings(max_examples=40, deadline=None)
    def test_series_memory_is_bounded(self, streams, max_points):
        """Tails never exceed the cap; aggregates stay exact regardless."""
        registry = MetricsRegistry(max_series_points=max_points)
        for name, values in streams.items():
            for value in values:
                registry.observe(name, value)
        for name, values in streams.items():
            entry = registry.snapshot()["series"][name]
            assert len(entry["tail"]) <= max_points
            assert entry["tail"] == values[-max_points:]
            assert entry["tail_start"] == max(0, len(values) - max_points)
            assert entry["count"] == len(values)
            assert entry["min"] == min(values)
            assert entry["max"] == max(values)
            assert math.isclose(
                entry["total"], math.fsum(values), abs_tol=1e-9
            ) or entry["total"] == sum(values)

    @given(span_trees())
    @settings(max_examples=40, deadline=None)
    def test_span_trees_nest_correctly(self, shape):
        """The recorded tree mirrors the with-statement nesting exactly."""
        tracer = Tracer()

        def open_spans(node):
            name, children = node
            with tracer.span(name):
                for child in children:
                    open_spans(child)

        open_spans(shape)

        def check(entry, node):
            name, children = node
            assert entry["name"] == name
            assert entry["duration_s"] >= 0.0
            recorded = entry.get("children", [])
            assert len(recorded) == len(children)
            for sub_entry, sub_node in zip(recorded, children):
                check(sub_entry, sub_node)

        tree = tracer.to_dict()
        assert len(tree["spans"]) == 1
        check(tree["spans"][0], shape)


class TestTransNProperties:
    @given(typed_graphs(), st.integers(0, 100))
    @settings(max_examples=10, deadline=None)
    def test_trains_on_arbitrary_typed_graphs(self, graph, seed):
        """TransN must handle whatever view structure hypothesis built:
        any mix of homo/heter views, any overlap pattern."""
        config = TransNConfig(**{**SMOKE_CONFIG.__dict__, "seed": seed})
        model = TransN(graph, config)
        model.fit()
        embeddings = model.embeddings()
        assert set(embeddings) == set(graph.nodes)
        for vector in embeddings.values():
            assert vector.shape == (config.dim,)
            assert np.isfinite(vector).all()
