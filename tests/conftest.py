"""Shared fixtures for the test-suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import book_rating_view, tiny_academic, two_view_toy
from repro.graph import HeteroGraph


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def academic() -> HeteroGraph:
    """The Figure 2(a) fixture."""
    return tiny_academic()


@pytest.fixture
def book_view() -> HeteroGraph:
    """The Figure 4 fixture (weighted heter-view)."""
    return book_rating_view()


@pytest.fixture
def toy_pair():
    """The two-view toy with planted communities: (graph, labels)."""
    return two_view_toy()


@pytest.fixture
def triangle() -> HeteroGraph:
    """A minimal weighted homogeneous triangle."""
    g = HeteroGraph()
    for n in ("x", "y", "z"):
        g.add_node(n, "t")
    g.add_edge("x", "y", "e", weight=1.0)
    g.add_edge("y", "z", "e", weight=2.0)
    g.add_edge("z", "x", "e", weight=3.0)
    return g
