"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import _load_labels, build_parser, main
from repro.engine.observability import load_report
from repro.graph import load_embeddings, load_graph, save_graph
from repro.datasets import two_view_toy


@pytest.fixture
def toy_files(tmp_path):
    graph, labels = two_view_toy(num_per_side=12)
    graph_path = tmp_path / "toy.tsv"
    labels_path = tmp_path / "toy-labels.tsv"
    save_graph(graph, graph_path)
    labels_path.write_text(
        "".join(f"{node}\t{label}\n" for node, label in labels.items())
    )
    return graph_path, labels_path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_subcommands_exist(self):
        parser = build_parser()
        for argv in (
            ["stats", "g.tsv"],
            ["generate", "aminer", "--graph", "g.tsv"],
            ["train", "g.tsv", "--out", "e.txt"],
            ["classify", "g.tsv", "l.tsv"],
            ["linkpred", "g.tsv"],
        ):
            args = parser.parse_args(argv)
            assert callable(args.func)


class TestGenerate:
    def test_generate_and_stats(self, tmp_path, capsys):
        graph_path = tmp_path / "g.tsv"
        labels_path = tmp_path / "l.tsv"
        assert main([
            "generate", "aminer",
            "--graph", str(graph_path),
            "--labels", str(labels_path),
            "--seed", "1",
        ]) == 0
        assert graph_path.exists()
        loaded = load_graph(graph_path)
        assert loaded.edge_types == {"AA", "AP", "PP", "PV"}
        assert main(["stats", str(graph_path), "--labels", str(labels_path)]) == 0
        out = capsys.readouterr().out
        assert "#Nodes" in out

    def test_unknown_dataset(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["generate", "imdb", "--graph", str(tmp_path / "g.tsv")])


class TestTrainAndEval:
    def test_train_writes_embeddings(self, toy_files, tmp_path):
        graph_path, _ = toy_files
        out = tmp_path / "emb.txt"
        assert main([
            "train", str(graph_path),
            "--out", str(out),
            "--method", "transn",
            "--dim", "8",
            "--iterations", "1",
        ]) == 0
        embeddings = load_embeddings(out)
        graph = load_graph(graph_path)
        assert set(embeddings) == set(str(n) for n in graph.nodes)
        assert all(v.shape == (8,) for v in embeddings.values())

    def test_train_baseline(self, toy_files, tmp_path):
        graph_path, _ = toy_files
        out = tmp_path / "emb.txt"
        assert main([
            "train", str(graph_path),
            "--out", str(out),
            "--method", "line",
            "--dim", "8",
        ]) == 0
        assert load_embeddings(out)

    def test_unknown_method(self, toy_files, tmp_path):
        graph_path, _ = toy_files
        with pytest.raises(SystemExit, match="unknown method"):
            main([
                "train", str(graph_path),
                "--out", str(tmp_path / "e.txt"),
                "--method", "gnn9000",
            ])

    def test_classify(self, toy_files, capsys):
        graph_path, labels_path = toy_files
        assert main([
            "classify", str(graph_path), str(labels_path),
            "--method", "line",
            "--dim", "8",
            "--repeats", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "macro-F1" in out

    def test_linkpred(self, toy_files, capsys):
        graph_path, _ = toy_files
        assert main([
            "linkpred", str(graph_path),
            "--method", "line",
            "--dim", "8",
            "--removal", "0.3",
        ]) == 0
        out = capsys.readouterr().out
        assert "AUC" in out


class TestCheckpointSurface:
    """The fault-tolerance flags of the train subcommand, end to end."""

    def _train(self, graph_path, out, *extra):
        return main([
            "train", str(graph_path),
            "--out", str(out),
            "--method", "transn",
            "--dim", "8",
            *extra,
        ])

    def test_resume_reproduces_straight_run(self, toy_files, tmp_path):
        """2 iters + checkpoint, resume to 4 == straight 4-iter run."""
        graph_path, _ = toy_files
        ckpt_dir = tmp_path / "ckpts"
        straight = tmp_path / "straight.txt"
        partial = tmp_path / "partial.txt"
        resumed = tmp_path / "resumed.txt"
        assert self._train(graph_path, straight, "--iterations", "4") == 0
        assert self._train(
            graph_path, partial,
            "--iterations", "2",
            "--checkpoint-dir", str(ckpt_dir),
        ) == 0
        assert any(ckpt_dir.iterdir()), "snapshots must exist"
        assert self._train(
            graph_path, resumed,
            "--iterations", "4",
            "--checkpoint-dir", str(ckpt_dir),
            "--resume",
        ) == 0
        assert resumed.read_bytes() == straight.read_bytes()
        assert partial.read_bytes() != straight.read_bytes()

    def test_health_policy_round_trips(self, toy_files, tmp_path):
        graph_path, _ = toy_files
        out = tmp_path / "emb.txt"
        assert self._train(
            graph_path, out,
            "--iterations", "1",
            "--checkpoint-dir", str(tmp_path / "ck"),
            "--health-policy", "rollback",
        ) == 0
        assert load_embeddings(out)

    def test_resume_requires_checkpoint_dir(self, toy_files, tmp_path):
        graph_path, _ = toy_files
        with pytest.raises(SystemExit, match="--resume needs --checkpoint-dir"):
            self._train(graph_path, tmp_path / "e.txt", "--resume")

    def test_baselines_reject_checkpoint_dir(self, toy_files, tmp_path):
        graph_path, _ = toy_files
        with pytest.raises(SystemExit, match="only supported for"):
            main([
                "train", str(graph_path),
                "--out", str(tmp_path / "e.txt"),
                "--method", "line",
                "--checkpoint-dir", str(tmp_path / "ck"),
            ])

    def test_baselines_reject_rollback_policy(self, toy_files, tmp_path):
        graph_path, _ = toy_files
        with pytest.raises(SystemExit):
            main([
                "train", str(graph_path),
                "--out", str(tmp_path / "e.txt"),
                "--method", "line",
                "--dim", "8",
                "--health-policy", "rollback",
            ])


class TestReportSurface:
    """--report/--trace on the train subcommand."""

    def test_transn_report_written_and_valid(self, toy_files, tmp_path):
        graph_path, _ = toy_files
        report = tmp_path / "run.json"
        assert main([
            "train", str(graph_path),
            "--out", str(tmp_path / "e.txt"),
            "--method", "transn",
            "--dim", "8",
            "--iterations", "1",
            "--report", str(report),
        ]) == 0
        document = load_report(report)
        assert document["metadata"]["model"] == "transn"
        assert document["trace"]["spans"][0]["kind"] == "run"
        assert any(
            name.startswith("phase/") for name in document["metrics"]["series"]
        )

    def test_baseline_report_with_trace(self, toy_files, tmp_path):
        graph_path, _ = toy_files
        report = tmp_path / "run.json"
        assert main([
            "train", str(graph_path),
            "--out", str(tmp_path / "e.txt"),
            "--method", "deepwalk",
            "--dim", "8",
            "--report", str(report),
            "--trace",
        ]) == 0
        document = load_report(report)
        assert document["metadata"]["model"] == "deepwalk"
        assert document["trace"]["trace_memory"] is True
        assert document["trace"]["spans"][0]["memory_peak_bytes"] > 0

    def test_trace_requires_report(self, toy_files, tmp_path):
        graph_path, _ = toy_files
        with pytest.raises(SystemExit, match="--trace needs --report"):
            main([
                "train", str(graph_path),
                "--out", str(tmp_path / "e.txt"),
                "--trace",
            ])


class TestLabelsParsing:
    def test_malformed_labels(self, tmp_path):
        path = tmp_path / "l.tsv"
        path.write_text("just_a_node_without_label\n")
        with pytest.raises(SystemExit):
            _load_labels(path)

    def test_comments_ignored(self, tmp_path):
        path = tmp_path / "l.tsv"
        path.write_text("# comment\na\t1\n\nb\t2\n")
        assert _load_labels(path) == {"a": "1", "b": "2"}


class TestServingSurface:
    """train --out-store + query/serve over the binary store, end to end."""

    @pytest.fixture(scope="class")
    def trained_store(self, tmp_path_factory):
        """One appstore train run with both text and binary outputs."""
        tmp_path = tmp_path_factory.mktemp("serving")
        graph_path = tmp_path / "g.tsv"
        assert main([
            "generate", "app-daily", "--graph", str(graph_path),
        ]) == 0
        out = tmp_path / "emb.txt"
        store = tmp_path / "emb.tnemb"
        assert main([
            "train", str(graph_path),
            "--out", str(out),
            "--out-store", str(store),
            "--method", "transn",
            "--dim", "8",
            "--iterations", "1",
        ]) == 0
        return graph_path, out, store

    def test_store_matches_text_output(self, trained_store):
        from repro.serving import EmbeddingStore

        _, out, store_path = trained_store
        embeddings = load_embeddings(out)
        with EmbeddingStore(store_path) as store:
            assert store.count == len(embeddings)
            for node, vector in list(embeddings.items())[:10]:
                assert np.allclose(store.vector(node), vector)

    def test_identical_runs_write_identical_stores(
        self, trained_store, tmp_path
    ):
        graph_path, _, store_path = trained_store
        again = tmp_path / "again.tnemb"
        assert main([
            "train", str(graph_path),
            "--out", str(tmp_path / "again.txt"),
            "--out-store", str(again),
            "--method", "transn",
            "--dim", "8",
            "--iterations", "1",
        ]) == 0
        assert again.read_bytes() == store_path.read_bytes()

    def test_query_top_k_end_to_end(self, trained_store, tmp_path, capsys):
        _, out, store_path = trained_store
        embeddings = load_embeddings(out)
        node = next(iter(embeddings))
        assert main([
            "query", str(store_path),
            "--node", node,
            "--top-k", "3",
            "--index", "brute",
        ]) == 0
        lines = [
            line.split("\t")
            for line in capsys.readouterr().out.strip().splitlines()
        ]
        assert len(lines) == 3
        assert [row[0] for row in lines] == [node] * 3
        assert [row[1] for row in lines] == ["1", "2", "3"]
        assert node not in {row[2] for row in lines}  # self excluded
        scores = [float(row[3]) for row in lines]
        assert scores == sorted(scores, reverse=True)

    def test_query_pairs_scores_match_embeddings(
        self, trained_store, tmp_path, capsys
    ):
        _, out, store_path = trained_store
        embeddings = load_embeddings(out)
        nodes = list(embeddings)
        pairs_file = tmp_path / "pairs.tsv"
        pairs_file.write_text(
            f"{nodes[0]}\t{nodes[1]}\n# comment\n{nodes[2]}\t{nodes[3]}\n"
        )
        assert main([
            "query", str(store_path), "--pairs", str(pairs_file),
        ]) == 0
        rows = [
            line.split("\t")
            for line in capsys.readouterr().out.strip().splitlines()
        ]
        assert len(rows) == 2
        for u, v, score in rows:
            expected = float(np.dot(embeddings[u], embeddings[v]))
            assert float(score) == pytest.approx(expected, rel=1e-6)

    def test_query_sample_deterministic_with_report(
        self, trained_store, tmp_path
    ):
        store_path = trained_store[2]
        a, b = tmp_path / "a.tsv", tmp_path / "b.tsv"
        report = tmp_path / "serve.json"
        for out in (a, b):
            assert main([
                "query", str(store_path),
                "--sample", "6",
                "--top-k", "4",
                "--out", str(out),
                "--report", str(report),
            ]) == 0
        assert a.read_bytes() == b.read_bytes()
        document = load_report(report)
        assert document["metadata"]["command"] == "query"
        assert document["metrics"]["counters"]["serving/queries"] == 6.0
        assert "serving/latency_p99_ms" in document["metrics"]["gauges"]

    def test_serve_reads_stdin(self, trained_store, capsys, monkeypatch):
        import io

        _, out, store_path = trained_store
        node = next(iter(load_embeddings(out)))
        monkeypatch.setattr(
            "sys.stdin", io.StringIO(f"{node}\n\nno-such-node\n")
        )
        assert main([
            "serve", str(store_path), "--top-k", "2", "--index", "brute",
        ]) == 0
        captured = capsys.readouterr()
        rows = [l.split("\t") for l in captured.out.strip().splitlines()]
        assert len(rows) == 2 and rows[0][0] == node
        assert "served 1 queries (1 errors)" in captured.err

    def test_query_requires_a_store_argument(self):
        with pytest.raises(SystemExit):
            main(["query", "--top-k", "3"])

    def test_query_missing_store_file(self, tmp_path):
        with pytest.raises(SystemExit, match="does not exist"):
            main(["query", str(tmp_path / "ghost.tnemb"), "--sample", "2"])

    def test_query_rejects_text_embeddings(self, trained_store):
        _, out, _ = trained_store
        with pytest.raises(SystemExit, match="not an embedding store"):
            main(["query", str(out), "--sample", "2"])

    def test_query_needs_exactly_one_input(self, trained_store, tmp_path):
        store_path = str(trained_store[2])
        with pytest.raises(SystemExit, match="exactly one of"):
            main(["query", store_path])
        with pytest.raises(SystemExit, match="exactly one of"):
            main([
                "query", store_path,
                "--sample", "2",
                "--pairs", str(tmp_path / "p.tsv"),
            ])

    def test_query_rejects_nprobe_with_brute(self, trained_store):
        with pytest.raises(SystemExit, match="--nprobe only applies"):
            main([
                "query", str(trained_store[2]),
                "--sample", "2",
                "--index", "brute",
                "--nprobe", "4",
            ])

    def test_query_unknown_node_named(self, trained_store):
        with pytest.raises(SystemExit, match="'gh0st'"):
            main([
                "query", str(trained_store[2]),
                "--node", "gh0st",
                "--index", "brute",
            ])

    def test_query_malformed_pairs_named(self, trained_store, tmp_path):
        pairs = tmp_path / "p.tsv"
        pairs.write_text("a\tb\tc\n")
        with pytest.raises(SystemExit, match=r"p\.tsv:1"):
            main([
                "query", str(trained_store[2]), "--pairs", str(pairs),
            ])


class TestParallelSurface:
    """The --workers flag of the train subcommand, end to end."""

    def test_baselines_reject_workers(self, toy_files, tmp_path):
        graph_path, _ = toy_files
        with pytest.raises(SystemExit, match="only supported for"):
            main([
                "train", str(graph_path),
                "--out", str(tmp_path / "e.txt"),
                "--method", "line",
                "--workers", "2",
            ])

    def test_transn_trains_with_workers(self, toy_files, tmp_path):
        graph_path, _ = toy_files
        out = tmp_path / "emb.txt"
        assert main([
            "train", str(graph_path),
            "--out", str(out),
            "--method", "transn",
            "--dim", "8",
            "--iterations", "1",
            "--workers", "2",
        ]) == 0
        embeddings = load_embeddings(out)
        assert all(np.all(np.isfinite(v)) for v in embeddings.values())
