"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import _load_labels, build_parser, main
from repro.graph import load_embeddings, load_graph, save_graph
from repro.datasets import two_view_toy


@pytest.fixture
def toy_files(tmp_path):
    graph, labels = two_view_toy(num_per_side=12)
    graph_path = tmp_path / "toy.tsv"
    labels_path = tmp_path / "toy-labels.tsv"
    save_graph(graph, graph_path)
    labels_path.write_text(
        "".join(f"{node}\t{label}\n" for node, label in labels.items())
    )
    return graph_path, labels_path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_subcommands_exist(self):
        parser = build_parser()
        for argv in (
            ["stats", "g.tsv"],
            ["generate", "aminer", "--graph", "g.tsv"],
            ["train", "g.tsv", "--out", "e.txt"],
            ["classify", "g.tsv", "l.tsv"],
            ["linkpred", "g.tsv"],
        ):
            args = parser.parse_args(argv)
            assert callable(args.func)


class TestGenerate:
    def test_generate_and_stats(self, tmp_path, capsys):
        graph_path = tmp_path / "g.tsv"
        labels_path = tmp_path / "l.tsv"
        assert main([
            "generate", "aminer",
            "--graph", str(graph_path),
            "--labels", str(labels_path),
            "--seed", "1",
        ]) == 0
        assert graph_path.exists()
        loaded = load_graph(graph_path)
        assert loaded.edge_types == {"AA", "AP", "PP", "PV"}
        assert main(["stats", str(graph_path), "--labels", str(labels_path)]) == 0
        out = capsys.readouterr().out
        assert "#Nodes" in out

    def test_unknown_dataset(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["generate", "imdb", "--graph", str(tmp_path / "g.tsv")])


class TestTrainAndEval:
    def test_train_writes_embeddings(self, toy_files, tmp_path):
        graph_path, _ = toy_files
        out = tmp_path / "emb.txt"
        assert main([
            "train", str(graph_path),
            "--out", str(out),
            "--method", "transn",
            "--dim", "8",
            "--iterations", "1",
        ]) == 0
        embeddings = load_embeddings(out)
        graph = load_graph(graph_path)
        assert set(embeddings) == set(str(n) for n in graph.nodes)
        assert all(v.shape == (8,) for v in embeddings.values())

    def test_train_baseline(self, toy_files, tmp_path):
        graph_path, _ = toy_files
        out = tmp_path / "emb.txt"
        assert main([
            "train", str(graph_path),
            "--out", str(out),
            "--method", "line",
            "--dim", "8",
        ]) == 0
        assert load_embeddings(out)

    def test_unknown_method(self, toy_files, tmp_path):
        graph_path, _ = toy_files
        with pytest.raises(SystemExit, match="unknown method"):
            main([
                "train", str(graph_path),
                "--out", str(tmp_path / "e.txt"),
                "--method", "gnn9000",
            ])

    def test_classify(self, toy_files, capsys):
        graph_path, labels_path = toy_files
        assert main([
            "classify", str(graph_path), str(labels_path),
            "--method", "line",
            "--dim", "8",
            "--repeats", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "macro-F1" in out

    def test_linkpred(self, toy_files, capsys):
        graph_path, _ = toy_files
        assert main([
            "linkpred", str(graph_path),
            "--method", "line",
            "--dim", "8",
            "--removal", "0.3",
        ]) == 0
        out = capsys.readouterr().out
        assert "AUC" in out


class TestLabelsParsing:
    def test_malformed_labels(self, tmp_path):
        path = tmp_path / "l.tsv"
        path.write_text("just_a_node_without_label\n")
        with pytest.raises(SystemExit):
            _load_labels(path)

    def test_comments_ignored(self, tmp_path):
        path = tmp_path / "l.tsv"
        path.write_text("# comment\na\t1\n\nb\t2\n")
        assert _load_labels(path) == {"a": "1", "b": "2"}
