"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import _load_labels, build_parser, main
from repro.engine.observability import load_report
from repro.graph import load_embeddings, load_graph, save_graph
from repro.datasets import two_view_toy


@pytest.fixture
def toy_files(tmp_path):
    graph, labels = two_view_toy(num_per_side=12)
    graph_path = tmp_path / "toy.tsv"
    labels_path = tmp_path / "toy-labels.tsv"
    save_graph(graph, graph_path)
    labels_path.write_text(
        "".join(f"{node}\t{label}\n" for node, label in labels.items())
    )
    return graph_path, labels_path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_subcommands_exist(self):
        parser = build_parser()
        for argv in (
            ["stats", "g.tsv"],
            ["generate", "aminer", "--graph", "g.tsv"],
            ["train", "g.tsv", "--out", "e.txt"],
            ["classify", "g.tsv", "l.tsv"],
            ["linkpred", "g.tsv"],
        ):
            args = parser.parse_args(argv)
            assert callable(args.func)


class TestGenerate:
    def test_generate_and_stats(self, tmp_path, capsys):
        graph_path = tmp_path / "g.tsv"
        labels_path = tmp_path / "l.tsv"
        assert main([
            "generate", "aminer",
            "--graph", str(graph_path),
            "--labels", str(labels_path),
            "--seed", "1",
        ]) == 0
        assert graph_path.exists()
        loaded = load_graph(graph_path)
        assert loaded.edge_types == {"AA", "AP", "PP", "PV"}
        assert main(["stats", str(graph_path), "--labels", str(labels_path)]) == 0
        out = capsys.readouterr().out
        assert "#Nodes" in out

    def test_unknown_dataset(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["generate", "imdb", "--graph", str(tmp_path / "g.tsv")])


class TestTrainAndEval:
    def test_train_writes_embeddings(self, toy_files, tmp_path):
        graph_path, _ = toy_files
        out = tmp_path / "emb.txt"
        assert main([
            "train", str(graph_path),
            "--out", str(out),
            "--method", "transn",
            "--dim", "8",
            "--iterations", "1",
        ]) == 0
        embeddings = load_embeddings(out)
        graph = load_graph(graph_path)
        assert set(embeddings) == set(str(n) for n in graph.nodes)
        assert all(v.shape == (8,) for v in embeddings.values())

    def test_train_baseline(self, toy_files, tmp_path):
        graph_path, _ = toy_files
        out = tmp_path / "emb.txt"
        assert main([
            "train", str(graph_path),
            "--out", str(out),
            "--method", "line",
            "--dim", "8",
        ]) == 0
        assert load_embeddings(out)

    def test_unknown_method(self, toy_files, tmp_path):
        graph_path, _ = toy_files
        with pytest.raises(SystemExit, match="unknown method"):
            main([
                "train", str(graph_path),
                "--out", str(tmp_path / "e.txt"),
                "--method", "gnn9000",
            ])

    def test_classify(self, toy_files, capsys):
        graph_path, labels_path = toy_files
        assert main([
            "classify", str(graph_path), str(labels_path),
            "--method", "line",
            "--dim", "8",
            "--repeats", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "macro-F1" in out

    def test_linkpred(self, toy_files, capsys):
        graph_path, _ = toy_files
        assert main([
            "linkpred", str(graph_path),
            "--method", "line",
            "--dim", "8",
            "--removal", "0.3",
        ]) == 0
        out = capsys.readouterr().out
        assert "AUC" in out


class TestCheckpointSurface:
    """The fault-tolerance flags of the train subcommand, end to end."""

    def _train(self, graph_path, out, *extra):
        return main([
            "train", str(graph_path),
            "--out", str(out),
            "--method", "transn",
            "--dim", "8",
            *extra,
        ])

    def test_resume_reproduces_straight_run(self, toy_files, tmp_path):
        """2 iters + checkpoint, resume to 4 == straight 4-iter run."""
        graph_path, _ = toy_files
        ckpt_dir = tmp_path / "ckpts"
        straight = tmp_path / "straight.txt"
        partial = tmp_path / "partial.txt"
        resumed = tmp_path / "resumed.txt"
        assert self._train(graph_path, straight, "--iterations", "4") == 0
        assert self._train(
            graph_path, partial,
            "--iterations", "2",
            "--checkpoint-dir", str(ckpt_dir),
        ) == 0
        assert any(ckpt_dir.iterdir()), "snapshots must exist"
        assert self._train(
            graph_path, resumed,
            "--iterations", "4",
            "--checkpoint-dir", str(ckpt_dir),
            "--resume",
        ) == 0
        assert resumed.read_bytes() == straight.read_bytes()
        assert partial.read_bytes() != straight.read_bytes()

    def test_health_policy_round_trips(self, toy_files, tmp_path):
        graph_path, _ = toy_files
        out = tmp_path / "emb.txt"
        assert self._train(
            graph_path, out,
            "--iterations", "1",
            "--checkpoint-dir", str(tmp_path / "ck"),
            "--health-policy", "rollback",
        ) == 0
        assert load_embeddings(out)

    def test_resume_requires_checkpoint_dir(self, toy_files, tmp_path):
        graph_path, _ = toy_files
        with pytest.raises(SystemExit, match="--resume needs --checkpoint-dir"):
            self._train(graph_path, tmp_path / "e.txt", "--resume")

    def test_baselines_reject_checkpoint_dir(self, toy_files, tmp_path):
        graph_path, _ = toy_files
        with pytest.raises(SystemExit, match="only supported for"):
            main([
                "train", str(graph_path),
                "--out", str(tmp_path / "e.txt"),
                "--method", "line",
                "--checkpoint-dir", str(tmp_path / "ck"),
            ])

    def test_baselines_reject_rollback_policy(self, toy_files, tmp_path):
        graph_path, _ = toy_files
        with pytest.raises(SystemExit):
            main([
                "train", str(graph_path),
                "--out", str(tmp_path / "e.txt"),
                "--method", "line",
                "--dim", "8",
                "--health-policy", "rollback",
            ])


class TestReportSurface:
    """--report/--trace on the train subcommand."""

    def test_transn_report_written_and_valid(self, toy_files, tmp_path):
        graph_path, _ = toy_files
        report = tmp_path / "run.json"
        assert main([
            "train", str(graph_path),
            "--out", str(tmp_path / "e.txt"),
            "--method", "transn",
            "--dim", "8",
            "--iterations", "1",
            "--report", str(report),
        ]) == 0
        document = load_report(report)
        assert document["metadata"]["model"] == "transn"
        assert document["trace"]["spans"][0]["kind"] == "run"
        assert any(
            name.startswith("phase/") for name in document["metrics"]["series"]
        )

    def test_baseline_report_with_trace(self, toy_files, tmp_path):
        graph_path, _ = toy_files
        report = tmp_path / "run.json"
        assert main([
            "train", str(graph_path),
            "--out", str(tmp_path / "e.txt"),
            "--method", "deepwalk",
            "--dim", "8",
            "--report", str(report),
            "--trace",
        ]) == 0
        document = load_report(report)
        assert document["metadata"]["model"] == "deepwalk"
        assert document["trace"]["trace_memory"] is True
        assert document["trace"]["spans"][0]["memory_peak_bytes"] > 0

    def test_trace_requires_report(self, toy_files, tmp_path):
        graph_path, _ = toy_files
        with pytest.raises(SystemExit, match="--trace needs --report"):
            main([
                "train", str(graph_path),
                "--out", str(tmp_path / "e.txt"),
                "--trace",
            ])


class TestLabelsParsing:
    def test_malformed_labels(self, tmp_path):
        path = tmp_path / "l.tsv"
        path.write_text("just_a_node_without_label\n")
        with pytest.raises(SystemExit):
            _load_labels(path)

    def test_comments_ignored(self, tmp_path):
        path = tmp_path / "l.tsv"
        path.write_text("# comment\na\t1\n\nb\t2\n")
        assert _load_labels(path) == {"a": "1", "b": "2"}


class TestParallelSurface:
    """The --workers flag of the train subcommand, end to end."""

    def test_baselines_reject_workers(self, toy_files, tmp_path):
        graph_path, _ = toy_files
        with pytest.raises(SystemExit, match="only supported for"):
            main([
                "train", str(graph_path),
                "--out", str(tmp_path / "e.txt"),
                "--method", "line",
                "--workers", "2",
            ])

    def test_transn_trains_with_workers(self, toy_files, tmp_path):
        graph_path, _ = toy_files
        out = tmp_path / "emb.txt"
        assert main([
            "train", str(graph_path),
            "--out", str(out),
            "--method", "transn",
            "--dim", "8",
            "--iterations", "1",
            "--workers", "2",
        ]) == 0
        embeddings = load_embeddings(out)
        assert all(np.all(np.isfinite(v)) for v in embeddings.values())
