"""Tests for the SVG scatter renderer."""

import numpy as np
import pytest

from repro.viz import render_scatter_svg, save_scatter_svg


@pytest.fixture
def cloud(rng):
    points = rng.normal(size=(30, 2))
    labels = [f"cat{k % 3}" for k in range(30)]
    return points, labels


class TestRenderScatterSvg:
    def test_valid_svg_envelope(self, cloud):
        points, labels = cloud
        svg = render_scatter_svg(points, labels, title="demo")
        assert svg.startswith("<svg ")
        assert svg.endswith("</svg>")
        assert "demo" in svg

    def test_one_circle_per_point_plus_legend(self, cloud):
        points, labels = cloud
        svg = render_scatter_svg(points, labels)
        assert svg.count("<circle") == 30 + 3  # points + legend markers

    def test_categories_get_distinct_colors(self, cloud):
        points, labels = cloud
        svg = render_scatter_svg(points, labels)
        used = {
            part.split('"')[0]
            for part in svg.split('fill="')[1:]
            if part.startswith("#")
        }
        assert len(used) >= 3

    def test_names_become_titles(self, cloud):
        points, labels = cloud
        names = [f"node{k}" for k in range(30)]
        svg = render_scatter_svg(points, labels, names=names)
        assert "<title>node0 (cat0)</title>" in svg

    def test_xml_escaping(self, rng):
        points = rng.normal(size=(4, 2))
        labels = ["a<b"] * 4
        svg = render_scatter_svg(points, labels, title="x & y")
        assert "a&lt;b" in svg
        assert "x &amp; y" in svg
        assert "a<b" not in svg

    def test_degenerate_coordinates(self):
        """All points identical must not divide by zero."""
        points = np.ones((5, 2))
        svg = render_scatter_svg(points, ["c"] * 5)
        assert "NaN" not in svg and "nan" not in svg

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            render_scatter_svg(rng.normal(size=(4, 3)), ["a"] * 4)
        with pytest.raises(ValueError):
            render_scatter_svg(rng.normal(size=(4, 2)), ["a"] * 3)
        with pytest.raises(ValueError):
            render_scatter_svg(
                rng.normal(size=(4, 2)), ["a"] * 4, names=["n"] * 3
            )

    def test_save(self, cloud, tmp_path):
        points, labels = cloud
        path = tmp_path / "fig.svg"
        save_scatter_svg(path, points, labels)
        assert path.read_text().startswith("<svg ")


class TestFigure6Integration:
    def test_renders_case_study_projection(self, rng):
        """End to end: case-study output -> SVG figure."""
        from repro.eval import run_case_study

        embeddings = {}
        labels = {}
        for c in range(3):
            center = rng.normal(size=8) * 3
            for k in range(12):
                node = f"c{c}n{k}"
                embeddings[node] = center + rng.normal(0, 0.2, size=8)
                labels[node] = c
        result = run_case_study(embeddings, labels, per_category=10, seed=0)
        svg = render_scatter_svg(
            result.projection,
            result.labels,
            names=result.nodes,
            title="Figure 6 (reproduction)",
        )
        assert svg.count("<circle") >= len(result.nodes)
