"""Tests for the NN layers, including the paper's Equations 8-10."""

import math

import numpy as np
import pytest

from repro.autograd import Tensor, gradcheck
from repro.nn import (
    Encoder,
    FeedForwardLayer,
    Linear,
    Module,
    SelfAttentionLayer,
    Sequential,
)


class TestModule:
    def test_parameter_discovery_recursive(self, rng):
        class Outer(Module):
            def __init__(self):
                self.child = Linear(2, 3, rng=rng)
                self.direct = Tensor(np.ones(2), requires_grad=True)
                self.listed = [Linear(3, 1, rng=rng)]

        params = list(Outer().parameters())
        # child weight+bias, direct, listed weight+bias
        assert len(params) == 5

    def test_duplicate_parameters_yielded_once(self, rng):
        class Shared(Module):
            def __init__(self):
                self.a = Tensor(np.ones(2), requires_grad=True)
                self.b = self.a

        assert len(list(Shared().parameters())) == 1

    def test_num_parameters(self, rng):
        lin = Linear(3, 4, rng=rng)
        assert lin.num_parameters() == 3 * 4 + 4

    def test_zero_grad(self, rng):
        lin = Linear(2, 2, rng=rng)
        out = lin(Tensor(np.ones((1, 2)))).sum()
        out.backward()
        assert lin.weight.grad is not None
        lin.zero_grad()
        assert lin.weight.grad is None


class TestLinear:
    def test_shape(self, rng):
        lin = Linear(3, 5, rng=rng)
        out = lin(Tensor(rng.normal(size=(4, 3))))
        assert out.shape == (4, 5)

    def test_no_bias(self, rng):
        lin = Linear(3, 5, bias=False, rng=rng)
        assert lin.bias is None
        assert lin(Tensor(np.zeros((2, 3)))).data.sum() == 0.0

    def test_gradcheck(self, rng):
        lin = Linear(3, 2, rng=rng)
        x = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        gradcheck(lambda x: (lin(x) ** 2).sum(), [x])


class TestSelfAttentionLayer:
    """Equation (8): S(A) = softmax(A A^T / sqrt(d)) A."""

    def test_output_shape_preserved(self, rng):
        layer = SelfAttentionLayer(dim=4)
        a = Tensor(rng.normal(size=(5, 4)))
        assert layer(a).shape == (5, 4)

    def test_matches_manual_formula(self, rng):
        d = 3
        a = rng.normal(size=(4, d))
        scores = a @ a.T / math.sqrt(d)
        expd = np.exp(scores - scores.max(axis=1, keepdims=True))
        attn = expd / expd.sum(axis=1, keepdims=True)
        expected = attn @ a
        out = SelfAttentionLayer(d)(Tensor(a)).data
        assert np.allclose(out, expected, atol=1e-12)

    def test_identical_rows_fixed_point(self):
        """If every row equals v, attention rows average to v again."""
        v = np.array([1.0, -2.0, 0.5])
        a = Tensor(np.tile(v, (4, 1)))
        out = SelfAttentionLayer(3)(a).data
        assert np.allclose(out, np.tile(v, (4, 1)))

    def test_parameter_free(self):
        assert list(SelfAttentionLayer(4).parameters()) == []

    def test_dim_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            SelfAttentionLayer(4)(Tensor(rng.normal(size=(3, 5))))

    def test_invalid_dim_rejected(self):
        with pytest.raises(ValueError):
            SelfAttentionLayer(0)

    def test_gradcheck(self, rng):
        layer = SelfAttentionLayer(3)
        a = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        gradcheck(lambda a: (layer(a) ** 2).mean(), [a])


class TestFeedForwardLayer:
    """Equation (9): F(A) = relu(W A + b), W path-mixing."""

    def test_shape_preserved(self, rng):
        layer = FeedForwardLayer(4, rng=rng)
        out = layer(Tensor(rng.normal(size=(4, 7))))
        assert out.shape == (4, 7)

    def test_relu_clamps_negative(self, rng):
        layer = FeedForwardLayer(3, rng=rng)
        out = layer(Tensor(rng.normal(size=(3, 5))))
        assert (out.data >= 0).all()

    def test_linear_activation_allows_negative(self, rng):
        layer = FeedForwardLayer(3, rng=rng, activation="linear")
        out = layer(Tensor(-np.ones((3, 5)) * 5))
        assert (out.data < 0).any()

    def test_identity_init_near_identity(self, rng):
        layer = FeedForwardLayer(4, rng=rng)
        a = np.abs(rng.normal(size=(4, 3))) + 1.0
        out = layer(Tensor(a)).data
        assert np.allclose(out, a, atol=0.3)

    def test_wrong_path_len_rejected(self, rng):
        layer = FeedForwardLayer(4, rng=rng)
        with pytest.raises(ValueError):
            layer(Tensor(np.zeros((5, 3))))

    def test_unknown_activation_rejected(self, rng):
        with pytest.raises(ValueError):
            FeedForwardLayer(3, rng=rng, activation="gelu")

    def test_gradcheck_params(self, rng):
        layer = FeedForwardLayer(3, rng=rng, activation="linear")
        a = Tensor(rng.normal(size=(3, 2)))

        def loss(weight, bias):
            layer.weight, layer.bias = weight, bias
            return (layer(a) ** 2).mean()

        w = Tensor(layer.weight.data.copy(), requires_grad=True)
        b = Tensor(layer.bias.data.copy(), requires_grad=True)
        gradcheck(loss, [w, b])


class TestEncoderAndSequential:
    def test_encoder_shape(self, rng):
        enc = Encoder(path_len=5, dim=3, rng=rng)
        out = enc(Tensor(rng.normal(size=(5, 3))))
        assert out.shape == (5, 3)

    def test_encoder_gradcheck(self, rng):
        enc = Encoder(path_len=3, dim=2, rng=rng)
        a = Tensor(rng.normal(size=(3, 2)), requires_grad=True)
        gradcheck(lambda a: (enc(a) ** 2).mean(), [a])

    def test_sequential_applies_in_order(self, rng):
        seq = Sequential(
            FeedForwardLayer(3, rng=rng, activation="linear"),
            FeedForwardLayer(3, rng=rng, activation="linear"),
        )
        assert len(seq) == 2
        a = Tensor(rng.normal(size=(3, 2)))
        manual = seq[1](seq[0](a))
        assert np.allclose(seq(a).data, manual.data)
