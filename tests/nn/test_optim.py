"""Tests for the SGD and Adam optimizers."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn import SGD, Adam


def quadratic_param(start):
    return Tensor(np.asarray(start, dtype=float), requires_grad=True)


def step_quadratic(optimizer, param, steps):
    """Minimize ||x||^2; returns final norm."""
    for _ in range(steps):
        optimizer.zero_grad()
        (param * param).sum().backward()
        optimizer.step()
    return float(np.linalg.norm(param.data))


class TestValidation:
    def test_no_parameters_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_nonpositive_lr_rejected(self):
        p = quadratic_param([1.0])
        with pytest.raises(ValueError):
            SGD([p], lr=0.0)

    def test_bad_momentum_rejected(self):
        p = quadratic_param([1.0])
        with pytest.raises(ValueError):
            SGD([p], lr=0.1, momentum=1.0)

    def test_bad_betas_rejected(self):
        p = quadratic_param([1.0])
        with pytest.raises(ValueError):
            Adam([p], lr=0.1, betas=(1.0, 0.9))


class TestSGD:
    def test_single_step_value(self):
        p = quadratic_param([2.0])
        SGD([p], lr=0.1).zero_grad()
        opt = SGD([p], lr=0.1)
        (p * p).sum().backward()
        opt.step()
        # x <- x - lr * 2x = 2 - 0.1*4 = 1.6
        assert p.data[0] == pytest.approx(1.6)

    def test_converges_on_quadratic(self):
        p = quadratic_param([3.0, -4.0])
        assert step_quadratic(SGD([p], lr=0.1), p, 100) < 1e-6

    def test_momentum_accelerates(self):
        p1 = quadratic_param([3.0])
        p2 = quadratic_param([3.0])
        plain = step_quadratic(SGD([p1], lr=0.01), p1, 50)
        momentum = step_quadratic(SGD([p2], lr=0.01, momentum=0.9), p2, 50)
        assert momentum < plain

    def test_skips_parameters_without_grad(self):
        p = quadratic_param([1.0])
        opt = SGD([p], lr=0.1)
        opt.step()  # no backward happened
        assert p.data[0] == 1.0


class TestAdam:
    def test_converges_on_quadratic(self):
        p = quadratic_param([3.0, -4.0])
        assert step_quadratic(Adam([p], lr=0.1), p, 300) < 1e-4

    def test_first_step_is_lr_sized(self):
        """Adam's bias-corrected first step has magnitude ~lr."""
        p = quadratic_param([5.0])
        opt = Adam([p], lr=0.1)
        (p * p).sum().backward()
        opt.step()
        assert p.data[0] == pytest.approx(5.0 - 0.1, abs=1e-6)

    def test_handles_ill_conditioned(self):
        """Adam equalizes very different curvatures."""
        p = Tensor(np.array([1.0, 1.0]), requires_grad=True)
        scale = Tensor(np.array([100.0, 0.01]))
        opt = Adam([p], lr=0.05)
        for _ in range(500):
            opt.zero_grad()
            (p * p * scale).sum().backward()
            opt.step()
        assert np.abs(p.data).max() < 0.05

    def test_zero_grad_clears_all(self):
        p = quadratic_param([1.0])
        opt = Adam([p], lr=0.1)
        (p * p).sum().backward()
        opt.zero_grad()
        assert p.grad is None


class TestGradientNorm:
    def test_matches_manual_norm(self):
        from repro.nn.optim import gradient_norm

        grads = [np.array([3.0, 4.0]), None, np.array([[0.0]])]
        assert gradient_norm(grads) == pytest.approx(5.0)

    def test_empty_and_all_none(self):
        from repro.nn.optim import gradient_norm

        assert gradient_norm([]) == 0.0
        assert gradient_norm([None, None]) == 0.0

    def test_reduces_in_parameter_dtype(self):
        """A float32 gradient is measured in float32 — no silent float64
        copy of a potentially huge array just to take its norm."""
        from repro.nn.optim import gradient_norm

        grad = np.array([0.1, 0.2, 0.3], dtype=np.float32)
        in_dtype = float(np.sqrt(float(np.dot(grad, grad))))
        upcast = float(np.sqrt(np.dot(grad.astype(np.float64), grad.astype(np.float64))))
        assert gradient_norm([grad]) == in_dtype
        assert gradient_norm([grad]) != upcast
