"""Policy-layer tests: the pluggable strategy interface end to end.

Every policy's batched sampler is checked against its own exact
``slot_probs`` law with a chi-square goodness-of-fit bound — and because
the scalar :class:`ReferenceWalker` samples from that same ``slot_probs``,
batched/scalar equivalence holds *by construction*: there is exactly one
implementation of each transition formula to test.  The remaining tests
cover deprecation shims, the policy registry, corpus integration
(``count_scale``, start restriction), and the BHIN2vec-style
:class:`RelationBalancer` loop callback.
"""

from types import SimpleNamespace

import numpy as np
import pytest
from scipy import stats

from repro.core import TransN, TransNConfig
from repro.datasets import type_imbalanced_graph
from repro.engine import RelationBalancer
from repro.engine.observability import MetricsRegistry
from repro.graph import HeteroGraph, separate_views
from repro.walks import (
    POLICY_NAMES,
    BatchedBiasedCorrelatedWalker,
    BatchedUniformWalker,
    BiasedCorrelatedPolicy,
    HetNode2VecPolicy,
    LockstepWalker,
    MetapathPolicy,
    MetapathWalker,
    Node2VecPolicy,
    Node2VecWalker,
    ReferenceWalker,
    SpaceyMetapathPolicy,
    UniformPolicy,
    build_corpus,
    make_policy,
)

_TRIALS = 20_000


# ----------------------------------------------------------------------
# chi-square machinery
# ----------------------------------------------------------------------
def _node_law(policy, current, state=None, row=0):
    """Exact normalized next-*node* law from the policy's slot_probs."""
    csr = policy.csr
    if state is None:
        state = policy.init_state(np.array([current], dtype=np.int64))
    weights = np.asarray(policy.slot_probs(current, state, row), dtype=float)
    start, end = csr.indptr[current], csr.indptr[current + 1]
    neighbours = csr.indices[start:end]
    total = weights.sum()
    assert total > 0.0
    law: dict[int, float] = {}
    for slot, nbr in enumerate(neighbours):
        if weights[slot] > 0.0:
            law[int(nbr)] = law.get(int(nbr), 0.0) + weights[slot] / total
    return law


def _assert_chi_square(counts, law, trials):
    """Aggregate goodness-of-fit at the 99.9% quantile (seeded rng)."""
    assert set(counts) <= set(law)
    statistic = 0.0
    for node, p in law.items():
        expected = p * trials
        statistic += (counts.get(node, 0) - expected) ** 2 / expected
    bound = stats.chi2.isf(1e-3, df=max(len(law) - 1, 1))
    assert statistic < bound, f"chi2 {statistic:.1f} >= {bound:.1f}"


def _step_counts(walker, start, step, length, trials=_TRIALS):
    """Empirical node counts at walk position ``step`` from ``start``."""
    starts = np.full(trials, start, dtype=np.int64)
    matrix, lengths = walker.walk_batch(starts, length)
    took = matrix[lengths > step, step]
    values, counts = np.unique(took, return_counts=True)
    return dict(zip(values.tolist(), counts.tolist())), int((lengths > step).sum())


def _advanced_state(policy, start, slot):
    """State of walk row 0 after taking ``slot`` out of ``start``."""
    state = policy.init_state(np.array([start], dtype=np.int64))
    policy.update_state(
        state,
        np.array([0], dtype=np.int64),
        np.array([start], dtype=np.int64),
        np.array([slot], dtype=np.int64),
    )
    return state


# ----------------------------------------------------------------------
# fixtures
# ----------------------------------------------------------------------
@pytest.fixture
def bipartite():
    """Weighted two-type graph where every node has degree >= 2."""
    g = HeteroGraph()
    for a in ("a0", "a1", "a2"):
        g.add_node(a, "A")
    for b in ("b0", "b1"):
        g.add_node(b, "B")
    g.add_edge("a0", "b0", "e", weight=4.0)
    g.add_edge("a0", "b1", "e", weight=1.0)
    g.add_edge("a1", "b0", "e", weight=2.0)
    g.add_edge("a1", "b1", "e", weight=3.0)
    g.add_edge("a2", "b0", "e", weight=1.0)
    g.add_edge("a2", "b1", "e", weight=5.0)
    return g


@pytest.fixture
def forced_path():
    """u's single edge forces the first step, isolating the second law."""
    g = HeteroGraph()
    g.add_node("u", "A")
    g.add_node("m", "B")
    g.add_node("v1", "A")
    g.add_node("v2", "A")
    g.add_node("n", "B")
    g.add_edge("u", "m", "e", weight=2.0)
    g.add_edge("m", "v1", "e", weight=1.0)
    g.add_edge("m", "v2", "e", weight=5.0)
    g.add_edge("m", "n", "e", weight=3.0)
    g.add_edge("n", "v1", "e", weight=1.0)
    return g


def _policy_factories(metapath=("A", "B", "A")):
    return {
        "uniform": lambda: UniformPolicy(),
        "biased": lambda: BiasedCorrelatedPolicy(),
        "node2vec": lambda: Node2VecPolicy(p=0.5, q=2.0),
        "het-node2vec": lambda: HetNode2VecPolicy(p=0.5, q=2.0, type_switch=3.0),
        "metapath": lambda: MetapathPolicy(list(metapath)),
        "spacey": lambda: SpaceyMetapathPolicy(list(metapath)),
    }


# ----------------------------------------------------------------------
# chi-square equivalence: every policy, batched sampler vs exact law
# ----------------------------------------------------------------------
class TestChiSquareFirstStep:
    """First-step distribution of every policy on the weighted bipartite."""

    @pytest.mark.parametrize("name", sorted(_policy_factories()))
    def test_first_step_matches_slot_probs(self, name, bipartite, rng):
        factories = _policy_factories()
        walker = LockstepWalker(bipartite, factories[name](), rng=rng)
        reference = factories[name]().bind(bipartite)
        start = bipartite.index_of("a0")
        counts, took = _step_counts(walker, start, step=1, length=2)
        assert took == _TRIALS
        _assert_chi_square(counts, _node_law(reference, start), _TRIALS)


class TestChiSquareSecondStep:
    """Stateful second-step laws, conditioned on a forced first step."""

    @pytest.mark.parametrize(
        "name", ["biased", "node2vec", "het-node2vec", "spacey"]
    )
    def test_second_step_matches_slot_probs(self, name, forced_path, rng):
        view = separate_views(forced_path)[0]
        factories = _policy_factories()
        walker = LockstepWalker(view, factories[name](), rng=rng)
        reference = factories[name]().bind(view)
        graph = view.graph
        u, m = graph.index_of("u"), graph.index_of("m")
        counts, took = _step_counts(walker, u, step=2, length=3)
        assert took == _TRIALS  # every m-neighbour has onward edges
        state = _advanced_state(reference, u, slot=0)  # u -> m is slot 0
        _assert_chi_square(counts, _node_law(reference, m, state), _TRIALS)

    def test_biased_second_step_is_correlated_on_heter_view(self, forced_path):
        view = separate_views(forced_path)[0]
        assert view.is_heter
        policy = BiasedCorrelatedPolicy().bind(view)
        assert policy.correlated


class TestScalarReference:
    """The scalar engine samples any policy from the same slot_probs."""

    def test_reference_walks_follow_edges(self, bipartite, rng):
        walker = ReferenceWalker(bipartite, Node2VecPolicy(p=0.5, q=2.0), rng=rng)
        for _ in range(50):
            walk = walker.walk("a0", 6)
            assert len(walk) == 6
            for a, b in zip(walk[:-1], walk[1:]):
                assert bipartite.has_edge(a, b)

    def test_reference_first_step_chi_square(self, bipartite, rng):
        trials = 4000
        walker = ReferenceWalker(bipartite, BiasedCorrelatedPolicy(), rng=rng)
        counts: dict[int, int] = {}
        for _ in range(trials):
            nxt = bipartite.index_of(walker.walk("a0", 2)[1])
            counts[nxt] = counts.get(nxt, 0) + 1
        law = _node_law(
            BiasedCorrelatedPolicy().bind(bipartite), bipartite.index_of("a0")
        )
        _assert_chi_square(counts, law, trials)


# ----------------------------------------------------------------------
# bit-exact deprecation shims
# ----------------------------------------------------------------------
class TestDeprecatedShims:
    def test_old_walkers_warn(self, academic):
        for construct in (
            lambda: BatchedUniformWalker(academic),
            lambda: BatchedBiasedCorrelatedWalker(academic),
            lambda: Node2VecWalker(academic),
            lambda: MetapathWalker(academic, ["author", "paper", "author"]),
        ):
            with pytest.warns(DeprecationWarning):
                construct()

    def test_uniform_shim_bit_exact(self, academic):
        with pytest.warns(DeprecationWarning):
            old = BatchedUniformWalker(academic, rng=np.random.default_rng(7))
        new = LockstepWalker(
            academic, UniformPolicy(), rng=np.random.default_rng(7)
        )
        starts = np.arange(academic.num_nodes, dtype=np.int64)
        old_m, old_l = old.walk_batch(starts, 6)
        new_m, new_l = new.walk_batch(starts, 6)
        np.testing.assert_array_equal(old_m, new_m)
        np.testing.assert_array_equal(old_l, new_l)

    def test_biased_shim_bit_exact(self, book_view):
        view = separate_views(book_view)[0]
        with pytest.warns(DeprecationWarning):
            old = BatchedBiasedCorrelatedWalker(
                view, rng=np.random.default_rng(11)
            )
        new = LockstepWalker(
            view, BiasedCorrelatedPolicy(), rng=np.random.default_rng(11)
        )
        starts = np.arange(view.num_nodes, dtype=np.int64)
        old_m, _ = old.walk_batch(starts, 10)
        new_m, _ = new.walk_batch(starts, 10)
        np.testing.assert_array_equal(old_m, new_m)


# ----------------------------------------------------------------------
# registry + binding contract
# ----------------------------------------------------------------------
class TestRegistry:
    def test_policy_names(self):
        assert POLICY_NAMES == (
            "biased",
            "het-node2vec",
            "metapath",
            "node2vec",
            "relation-balanced",
            "spacey",
            "uniform",
        )

    def test_make_policy_unknown(self):
        with pytest.raises(ValueError, match="unknown walk policy"):
            make_policy("teleport")

    def test_make_policy_kwargs(self):
        policy = make_policy("node2vec", p=0.5, q=2.0)
        assert isinstance(policy, Node2VecPolicy)
        assert (policy.p, policy.q) == (0.5, 2.0)

    def test_relation_balanced_walks_like_biased(self):
        assert isinstance(make_policy("relation-balanced"), BiasedCorrelatedPolicy)

    def test_rebind_rejected(self, bipartite, academic):
        policy = UniformPolicy().bind(bipartite)
        policy.bind(bipartite)  # idempotent
        with pytest.raises(RuntimeError, match="already bound"):
            policy.bind(academic)

    def test_unbound_csr_raises(self):
        with pytest.raises(RuntimeError, match="not bound"):
            UniformPolicy().csr

    def test_node2vec_validates_pq(self):
        with pytest.raises(ValueError, match="must be positive"):
            Node2VecPolicy(p=0.0, q=1.0)


# ----------------------------------------------------------------------
# het-node2vec: the type_switch knob
# ----------------------------------------------------------------------
class TestHetNode2Vec:
    def _mixed_graph(self):
        g = HeteroGraph()
        g.add_node("c", "A")
        g.add_node("same", "A")
        g.add_node("other", "B")
        g.add_edge("c", "same", "e", weight=1.0)
        g.add_edge("c", "other", "e", weight=1.0)
        g.add_edge("same", "other", "e", weight=1.0)
        return g

    def test_switch_boosts_cross_type(self):
        g = self._mixed_graph()
        c = g.index_of("c")
        neutral = _node_law(HetNode2VecPolicy(type_switch=1.0).bind(g), c)
        boosted = _node_law(HetNode2VecPolicy(type_switch=4.0).bind(g), c)
        other = g.index_of("other")
        assert neutral[other] == pytest.approx(0.5)
        assert boosted[other] == pytest.approx(4.0 / 5.0)

    def test_neutral_switch_matches_node2vec(self):
        g = self._mixed_graph()
        c = g.index_of("c")
        het = _node_law(
            HetNode2VecPolicy(p=0.5, q=2.0, type_switch=1.0).bind(g), c
        )
        plain = _node_law(Node2VecPolicy(p=0.5, q=2.0).bind(g), c)
        assert het == pytest.approx(plain)

    def test_validates_type_switch(self):
        with pytest.raises(ValueError, match="type_switch"):
            HetNode2VecPolicy(type_switch=0.0)


# ----------------------------------------------------------------------
# metapath + spacey
# ----------------------------------------------------------------------
class TestMetapathPolicy:
    def test_walks_follow_type_sequence(self, academic, rng):
        policy = MetapathPolicy(["author", "paper", "author"]).bind(academic)
        walker = LockstepWalker(academic, policy, rng=rng)
        starts = policy.start_indices()
        assert starts is not None and starts.size == 5  # the five authors
        matrix, lengths = walker.walk_batch(np.repeat(starts, 20), 7)
        cycle = ["author", "paper"]
        for row, n in zip(matrix, lengths):
            for pos in range(int(n)):
                node = academic.node_at(int(row[pos]))
                assert academic.node_type(node) == cycle[pos % 2]

    def test_off_path_start_type_rejected(self, academic):
        policy = MetapathPolicy(["paper", "author", "paper"]).bind(academic)
        with pytest.raises(ValueError, match="never visits"):
            policy.init_state(
                np.array([academic.index_of("U1")], dtype=np.int64)
            )

    def test_on_path_start_enters_mid_cycle(self, academic, rng):
        """An author start on the paper-author cycle aligns to position 1
        (the cross-view trainer launches walks from arbitrary nodes)."""
        policy = MetapathPolicy(["paper", "author", "paper"]).bind(academic)
        walker = LockstepWalker(academic, policy, rng=rng)
        start = academic.index_of("A1")
        matrix, lengths = walker.walk_batch(
            np.full(8, start, dtype=np.int64), 4
        )
        assert (lengths == 4).all()
        types = [
            academic.node_type(academic.node_at(int(v)))
            for v in matrix[0]
        ]
        assert types == ["author", "paper", "author", "paper"]

    def test_derives_cycle_per_view(self, book_view):
        view = separate_views(book_view)[0]
        policy = MetapathPolicy().bind(view)
        assert policy.start_indices() is not None

    def test_unknown_type_rejected_at_bind(self, academic):
        with pytest.raises(ValueError, match="unknown node type"):
            MetapathPolicy(["venue", "paper", "venue"]).bind(academic)


class TestSpaceyPolicy:
    def test_occupancy_reinforces_visited_types(self, forced_path):
        """A walk that has dwelt on type A tilts toward A-typed candidates.

        With occupancy (A=3, B=1) and reinforcement 1, A candidates get
        factor 4 and B candidates factor 2 over their raw edge weights.
        m's neighbours: u(A, w=2), v1(A, 1), v2(A, 5), n(B, 3).
        """
        view = separate_views(forced_path)[0]
        graph = view.graph
        policy = SpaceyMetapathPolicy(reinforcement=1.0).bind(view)
        state = {"occupancy": np.array([[3.0, 1.0]])}  # types sorted: A, B
        law = _node_law(policy, graph.index_of("m"), state)
        expected_n = 3.0 * 2.0 / ((2.0 + 1.0 + 5.0) * 4.0 + 3.0 * 2.0)
        assert law[graph.index_of("n")] == pytest.approx(expected_n)
        assert expected_n < 3.0 / 11.0  # shrunk vs. the raw weight share

    def test_zero_reinforcement_matches_edge_weights(self, forced_path):
        view = separate_views(forced_path)[0]
        graph = view.graph
        policy = SpaceyMetapathPolicy(reinforcement=0.0).bind(view)
        u, m = graph.index_of("u"), graph.index_of("m")
        state = _advanced_state(policy, u, slot=0)
        law = _node_law(policy, m, state)
        # m's incident weights: u=2, v1=1, v2=5, n=3 -> total 11
        assert law[graph.index_of("v2")] == pytest.approx(5.0 / 11.0)

    def test_fallback_keeps_walks_alive(self, rng):
        """A node with no metapath-admissible neighbour still advances."""
        g = HeteroGraph()
        g.add_node("a", "A")
        g.add_node("m", "B")
        g.add_node("n", "B")
        g.add_edge("a", "m", "e")
        g.add_edge("m", "n", "e")
        walker = LockstepWalker(
            g, SpaceyMetapathPolicy(["A", "B", "A"]), rng=rng
        )
        starts = np.full(64, g.index_of("n"), dtype=np.int64)
        # n's only neighbour is B-typed; admissible successor of B is A
        matrix, lengths = walker.walk_batch(starts, 4)
        assert (lengths == 4).all()
        assert (matrix[:, 1] == g.index_of("m")).all()


# ----------------------------------------------------------------------
# corpus integration
# ----------------------------------------------------------------------
class TestCorpusIntegration:
    def test_bare_policy_accepted(self, academic):
        corpus = build_corpus(
            academic,
            UniformPolicy(),
            length=5,
            rng=np.random.default_rng(0),
        )
        assert corpus.matrix.shape[1] == 5

    def test_count_scale_scales_walks(self, academic):
        base = build_corpus(
            academic, UniformPolicy(), length=5, rng=np.random.default_rng(0)
        )
        doubled = build_corpus(
            academic,
            UniformPolicy(),
            length=5,
            rng=np.random.default_rng(0),
            count_scale=2.0,
        )
        assert doubled.matrix.shape[0] == 2 * base.matrix.shape[0]

    def test_count_scale_floor_is_one_walk(self, academic):
        tiny = build_corpus(
            academic,
            UniformPolicy(),
            length=5,
            rng=np.random.default_rng(0),
            count_scale=1e-6,
        )
        # every positive-degree node still contributes at least one walk
        assert tiny.matrix.shape[0] == academic.num_nodes

    def test_start_restriction_applied(self, academic):
        corpus = build_corpus(
            academic,
            MetapathPolicy(["paper", "author", "paper"]),
            length=5,
            rng=np.random.default_rng(0),
        )
        papers = {academic.index_of("P1"), academic.index_of("P2")}
        assert set(corpus.matrix[:, 0].tolist()) <= papers


# ----------------------------------------------------------------------
# relation balancing
# ----------------------------------------------------------------------
class _FakeTrainer:
    def __init__(self, edge_type):
        self.view = SimpleNamespace(edge_type=edge_type)
        self.walk_scale = 1.0


class TestRelationBalancer:
    def _loop(self, metrics):
        return SimpleNamespace(metrics=metrics)

    def test_scales_follow_relative_loss(self):
        metrics = MetricsRegistry()
        metrics.observe("single_view/AA/loss", 2.0)
        metrics.observe("single_view/AB/loss", 1.0)
        lagging, leading = _FakeTrainer("AA"), _FakeTrainer("AB")
        RelationBalancer([lagging, leading]).on_epoch_end(
            self._loop(metrics), 0, {}
        )
        assert lagging.walk_scale == pytest.approx(2.0 / 1.5)
        assert leading.walk_scale == pytest.approx(1.0 / 1.5)
        assert metrics.gauges["balance/AA/walk_scale"] == lagging.walk_scale

    def test_clipped_to_bounds(self):
        metrics = MetricsRegistry()
        metrics.observe("single_view/AA/loss", 9.0)
        metrics.observe("single_view/AB/loss", 1.0)
        lagging, leading = _FakeTrainer("AA"), _FakeTrainer("AB")
        # raw ratios are 1.8 and 0.2; both land outside the bounds
        RelationBalancer(
            [lagging, leading], min_scale=0.5, max_scale=1.5
        ).on_epoch_end(self._loop(metrics), 0, {})
        assert lagging.walk_scale == 1.5
        assert leading.walk_scale == 0.5

    def test_single_view_is_noop(self):
        metrics = MetricsRegistry()
        metrics.observe("single_view/AA/loss", 2.0)
        only = _FakeTrainer("AA")
        RelationBalancer([only]).on_epoch_end(self._loop(metrics), 0, {})
        assert only.walk_scale == 1.0

    def test_validates_arguments(self):
        with pytest.raises(ValueError, match="strength"):
            RelationBalancer([], strength=-1.0)
        with pytest.raises(ValueError, match="min_scale"):
            RelationBalancer([], min_scale=0.0)

    def test_end_to_end_transn_balancing(self):
        graph, _ = type_imbalanced_graph(num_items=16, seed=3)
        config = TransNConfig(
            dim=8,
            seed=0,
            num_iterations=2,
            walk_policy="relation-balanced",
        )
        model = TransN(graph, config)
        model.fit()
        scales = [t.walk_scale for t in model.single_trainers]
        assert any(s != 1.0 for s in scales)
        assert all(0.25 <= s <= 4.0 for s in scales)
