"""Tests for the uniform and biased-correlated walkers (Eqs. 4-7)."""

import numpy as np
import pytest

from repro.graph import HeteroGraph, separate_views
from repro.walks import BiasedCorrelatedWalker, UniformWalker


@pytest.fixture
def rating_view(book_view):
    """The Figure 4 book-rating view as a View object."""
    return separate_views(book_view)[0]


class TestUniformWalker:
    def test_walk_length(self, rating_view, rng):
        walker = UniformWalker(rating_view, rng=rng)
        walk = walker.walk("R1", 7)
        assert len(walk) == 7
        assert walk[0] == "R1"

    def test_walk_follows_edges(self, rating_view, rng):
        walker = UniformWalker(rating_view, rng=rng)
        graph = rating_view.graph
        walk = walker.walk("B2", 20)
        for a, b in zip(walk, walk[1:]):
            assert graph.has_edge(a, b)

    def test_isolated_node_stops(self, rng):
        g = HeteroGraph()
        g.add_node("lonely", "t")
        g.add_node("a", "t")
        g.add_node("b", "t")
        g.add_edge("a", "b", "e")
        walker = UniformWalker(g, rng=rng)
        assert walker.walk("lonely", 5) == ["lonely"]

    def test_ignores_weights(self, rng):
        """A uniform walker picks neighbours equally despite weights."""
        g = HeteroGraph()
        for n in ("c", "h", "l"):
            g.add_node(n, "t")
        g.add_edge("c", "h", "e", weight=1000.0)
        g.add_edge("c", "l", "e", weight=0.001)
        walker = UniformWalker(g, rng=rng)
        firsts = [walker.walk("c", 2)[1] for _ in range(2000)]
        share_heavy = sum(1 for f in firsts if f == "h") / len(firsts)
        assert 0.45 < share_heavy < 0.55


class TestBiasedWalkerPi1:
    """Equation (6): step probability proportional to edge weight."""

    def test_first_step_distribution(self, rating_view, rng):
        walker = BiasedCorrelatedWalker(rating_view, rng=rng)
        dist = walker.step_distribution("R1")
        # R1 has edges: B1 (4.0), B2 (2.0)
        assert dist["B1"] == pytest.approx(4.0 / 6.0)
        assert dist["B2"] == pytest.approx(2.0 / 6.0)

    def test_empirical_first_step(self, rating_view, rng):
        walker = BiasedCorrelatedWalker(rating_view, rng=rng)
        firsts = [walker.walk("R1", 2)[1] for _ in range(4000)]
        share_b1 = sum(1 for f in firsts if f == "B1") / len(firsts)
        assert abs(share_b1 - 4.0 / 6.0) < 0.03

    def test_walk_validity(self, rating_view, rng):
        walker = BiasedCorrelatedWalker(rating_view, rng=rng)
        graph = rating_view.graph
        walk = walker.walk("R2", 15)
        assert len(walk) == 15
        for a, b in zip(walk, walk[1:]):
            assert graph.has_edge(a, b)


class TestCorrelatedWalkerPi2:
    """Equation (7): prefer a next weight close to the previous weight."""

    def test_figure_4_example(self, rating_view, rng):
        """Arriving at B2 with weight 2 (from R1), the walker prefers R3
        (weight 1, similar) over R2 (weight 5, dissimilar) relative to
        the weight-only distribution."""
        walker = BiasedCorrelatedWalker(rating_view, rng=rng)
        pi1_only = walker.step_distribution("B2")
        with_pi2 = walker.step_distribution("B2", previous_weight=2.0)
        # pi1 prefers R2 (5 > 1); pi2 shifts mass toward R3
        assert with_pi2["R3"] > pi1_only["R3"]
        assert with_pi2["R2"] < pi1_only["R2"]
        # R3's relative advantage over R2 grows
        assert (with_pi2["R3"] / with_pi2["R2"]) > (
            pi1_only["R3"] / pi1_only["R2"]
        )

    def test_pi2_formula_exact(self, rating_view):
        """Hand-computed Equation 4 'otherwise' branch at B2, prev w=2.
        B2's incident weights: R1=2, R2=5, R3=1; Delta = 4."""
        walker = BiasedCorrelatedWalker(rating_view, rng=np.random.default_rng(0))
        dist = walker.step_distribution("B2", previous_weight=2.0)
        w = {"R1": 2.0, "R2": 5.0, "R3": 1.0}
        total_w = sum(w.values())
        delta = 4.0
        raw = {
            n: (w[n] / total_w) * max(1.0 - (w[n] - 2.0) / delta, 1e-9)
            for n in w
        }
        z = sum(raw.values())
        for n in w:
            assert dist[n] == pytest.approx(raw[n] / z, rel=1e-9)

    def test_delta_zero_falls_back_to_pi1(self, rng):
        """Equal incident weights (Delta=0) -> pure Equation 6."""
        g = HeteroGraph()
        for n in ("a", "b"):
            g.add_node(n, "t1")
        for n in ("x", "y"):
            g.add_node(n, "t2")
        g.add_edge("x", "a", "e", weight=2.0)
        g.add_edge("x", "b", "e", weight=2.0)
        g.add_edge("y", "a", "e", weight=2.0)
        view = separate_views(g)[0]
        walker = BiasedCorrelatedWalker(view, rng=rng)
        dist = walker.step_distribution("x", previous_weight=7.0)
        assert dist["a"] == pytest.approx(0.5)
        assert dist["b"] == pytest.approx(0.5)

    def test_correlated_only_on_heter_views(self, triangle, rng):
        """On a homo-view the previous weight is ignored (Equation 4)."""
        view = separate_views(triangle)[0]
        assert view.is_homo
        walker = BiasedCorrelatedWalker(view, rng=rng)
        assert not walker.correlated
        plain = walker.step_distribution("y")
        with_prev = walker.step_distribution("y", previous_weight=1.0)
        assert plain == with_prev

    def test_correlation_override(self, triangle, rng):
        walker = BiasedCorrelatedWalker(
            separate_views(triangle)[0], rng=rng, correlated=True
        )
        assert walker.correlated

    def test_distribution_sums_to_one(self, rating_view, rng):
        walker = BiasedCorrelatedWalker(rating_view, rng=rng)
        for prev in (None, 1.0, 3.0, 5.0):
            dist = walker.step_distribution("B2", previous_weight=prev)
            assert sum(dist.values()) == pytest.approx(1.0)

    def test_empirical_matches_exact(self, rating_view):
        """Monte-Carlo check of the correlated second step from R1."""
        rng = np.random.default_rng(7)
        walker = BiasedCorrelatedWalker(rating_view, rng=rng)
        # force the first step to B2 by conditioning on observed walks
        counts = {}
        trials = 0
        for _ in range(20000):
            walk = walker.walk("R1", 3)
            if len(walk) >= 3 and walk[1] == "B2":
                counts[walk[2]] = counts.get(walk[2], 0) + 1
                trials += 1
        expected = walker.step_distribution("B2", previous_weight=2.0)
        for node, count in counts.items():
            assert abs(count / trials - expected[node]) < 0.03
