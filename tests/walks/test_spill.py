"""Corpus spill file: roundtrip, atomicity, format & corruption checks."""

import struct

import numpy as np
import pytest

from repro.walks.spill import (
    _HEADER,
    LEGACY_MAGIC,
    MAGIC,
    VERSION,
    SpillCorruptionError,
    SpillFormatError,
    SpillReader,
    SpillWriter,
)


def _blocks(dtype=np.int64):
    rng = np.random.default_rng(0)
    out = []
    for walks in (5, 3, 7):
        matrix = rng.integers(0, 50, size=(walks, 8)).astype(dtype)
        lengths = rng.integers(2, 9, size=walks).astype(np.int64)
        out.append((matrix, lengths))
    return out


class TestRoundTrip:
    @pytest.mark.parametrize("dtype", [np.int32, np.int64])
    def test_blocks_replay_identically(self, tmp_path, dtype):
        path = tmp_path / "corpus.spill"
        writer = SpillWriter(path, length=8, dtype=dtype)
        blocks = _blocks(dtype)
        for matrix, lengths in blocks:
            writer.append(matrix, lengths)
        writer.finalize()
        with SpillReader(path) as reader:
            assert reader.dtype == np.dtype(dtype)
            assert reader.length == 8
            assert reader.num_blocks == len(blocks)
            replayed = list(reader.blocks())
        assert len(replayed) == len(blocks)
        for (m_in, l_in), (m_out, l_out) in zip(blocks, replayed):
            assert np.array_equal(m_in, m_out)
            assert np.array_equal(l_in, l_out)
            assert m_out.dtype == np.dtype(dtype)

    def test_multiple_replay_passes(self, tmp_path):
        path = tmp_path / "corpus.spill"
        writer = SpillWriter(path, length=8, dtype=np.int64)
        for matrix, lengths in _blocks():
            writer.append(matrix, lengths)
        writer.finalize()
        with SpillReader(path) as reader:
            first = [m.copy() for m, _ in reader.blocks()]
            second = [m.copy() for m, _ in reader.blocks()]
        for a, b in zip(first, second):
            assert np.array_equal(a, b)

    def test_corpora_wrapper(self, tmp_path):
        path = tmp_path / "corpus.spill"
        writer = SpillWriter(path, length=8, dtype=np.int64)
        blocks = _blocks()
        for matrix, lengths in blocks:
            writer.append(matrix, lengths)
        writer.finalize()
        with SpillReader(path) as reader:
            corpora = list(reader.corpora())
        assert [c.matrix.shape[0] for c in corpora] == [5, 3, 7]
        assert all(c.length == 8 for c in corpora)


class TestAtomicity:
    def test_no_file_until_finalize(self, tmp_path):
        path = tmp_path / "corpus.spill"
        writer = SpillWriter(path, length=8, dtype=np.int64)
        matrix, lengths = _blocks()[0]
        writer.append(matrix, lengths)
        assert not path.exists()  # still in <path>.tmp
        writer.finalize()
        assert path.exists()
        assert not path.with_name(path.name + ".tmp").exists()

    def test_abort_drops_temp(self, tmp_path):
        path = tmp_path / "corpus.spill"
        writer = SpillWriter(path, length=8, dtype=np.int64)
        matrix, lengths = _blocks()[0]
        writer.append(matrix, lengths)
        writer.abort()
        assert not path.exists()
        assert not path.with_name(path.name + ".tmp").exists()

    def test_append_after_finalize_rejected(self, tmp_path):
        path = tmp_path / "corpus.spill"
        writer = SpillWriter(path, length=8, dtype=np.int64)
        matrix, lengths = _blocks()[0]
        writer.append(matrix, lengths)
        writer.finalize()
        with pytest.raises(ValueError, match="closed"):
            writer.append(matrix, lengths)


class TestFormatValidation:
    def test_rejects_bad_magic(self, tmp_path):
        path = tmp_path / "bogus.spill"
        path.write_bytes(b"NOTSPILL" + b"\x00" * 24)
        with pytest.raises(SpillFormatError, match="not a corpus spill"):
            SpillReader(path)

    def test_rejects_empty_file(self, tmp_path):
        path = tmp_path / "empty.spill"
        path.write_bytes(b"")
        with pytest.raises(SpillFormatError, match="empty"):
            SpillReader(path)

    def test_rejects_truncated_block(self, tmp_path):
        path = tmp_path / "torn.spill"
        header = _HEADER.pack(MAGIC, VERSION, 8, 8, 1)
        # block header promises 5 walks x 8 but supplies no data
        path.write_bytes(header + struct.Struct("<QQI").pack(5, 8, 0))
        with SpillReader(path) as reader:
            with pytest.raises(SpillFormatError, match="truncated"):
                list(reader.blocks())

    def test_rejects_truncated_block_header(self, tmp_path):
        path = tmp_path / "torn-header.spill"
        header = _HEADER.pack(MAGIC, VERSION, 8, 8, 1)
        path.write_bytes(header + b"\x01\x02")  # not even a block header
        with SpillReader(path) as reader:
            with pytest.raises(SpillFormatError, match="truncated block header"):
                list(reader.blocks())

    def test_rejects_version_1_file(self, tmp_path):
        path = tmp_path / "legacy.spill"
        path.write_bytes(_HEADER.pack(LEGACY_MAGIC, 1, 8, 8, 0))
        with pytest.raises(SpillFormatError, match="re-record"):
            SpillReader(path)

    def test_rejects_float_dtype(self, tmp_path):
        with pytest.raises(ValueError, match="int32/int64"):
            SpillWriter(tmp_path / "f.spill", length=8, dtype=np.float64)


class TestCorruptionDetection:
    """Every payload byte of every block is covered by its CRC32."""

    def _write(self, path):
        writer = SpillWriter(path, length=8, dtype=np.int64)
        blocks = _blocks()
        for matrix, lengths in blocks:
            writer.append(matrix, lengths)
        writer.finalize()
        return blocks

    def test_flipped_payload_byte_raises(self, tmp_path):
        path = tmp_path / "rot.spill"
        self._write(path)
        data = bytearray(path.read_bytes())
        offset = _HEADER.size + struct.Struct("<QQI").size + 11
        data[offset] ^= 0x01  # one-bit rot inside block 0's matrix
        path.write_bytes(bytes(data))
        with SpillReader(path) as reader:
            with pytest.raises(SpillCorruptionError, match="block 0 CRC"):
                list(reader.blocks())

    def test_flipped_lengths_byte_raises(self, tmp_path):
        path = tmp_path / "rot-lengths.spill"
        blocks = self._write(path)
        data = bytearray(path.read_bytes())
        matrix, _ = blocks[0]
        offset = (
            _HEADER.size + struct.Struct("<QQI").size + matrix.nbytes + 3
        )
        data[offset] ^= 0x80  # rot inside block 0's lengths array
        path.write_bytes(bytes(data))
        with SpillReader(path) as reader:
            with pytest.raises(SpillCorruptionError, match="block 0 CRC"):
                list(reader.blocks())

    def test_verify_scans_all_blocks(self, tmp_path):
        path = tmp_path / "clean.spill"
        blocks = self._write(path)
        with SpillReader(path) as reader:
            assert reader.verify() == len(blocks)

    def test_verify_rejects_corruption_upfront(self, tmp_path):
        path = tmp_path / "rot-late.spill"
        blocks = self._write(path)
        data = bytearray(path.read_bytes())
        data[-2] ^= 0x01  # rot in the LAST block's lengths
        path.write_bytes(bytes(data))
        with SpillReader(path) as reader:
            with pytest.raises(
                SpillCorruptionError, match=f"block {len(blocks) - 1} CRC"
            ):
                reader.verify()
