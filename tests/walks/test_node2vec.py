"""Tests for the Node2Vec p/q walker."""

import numpy as np
import pytest

from repro.graph import HeteroGraph
from repro.walks import Node2VecWalker


@pytest.fixture
def path_graph():
    """A path a-b-c plus a triangle edge a-c for distance-1 checks."""
    g = HeteroGraph()
    for n in ("a", "b", "c", "d"):
        g.add_node(n, "t")
    g.add_edge("a", "b", "e")
    g.add_edge("b", "c", "e")
    g.add_edge("c", "d", "e")
    return g


class TestValidation:
    def test_positive_p_q(self, path_graph):
        with pytest.raises(ValueError):
            Node2VecWalker(path_graph, p=0.0)
        with pytest.raises(ValueError):
            Node2VecWalker(path_graph, q=-1.0)


class TestWalks:
    def test_walk_validity(self, path_graph, rng):
        walker = Node2VecWalker(path_graph, rng=rng)
        walk = walker.walk("a", 10)
        for u, v in zip(walk, walk[1:]):
            assert path_graph.has_edge(u, v)

    def test_length_one(self, path_graph, rng):
        assert Node2VecWalker(path_graph, rng=rng).walk("a", 1) == ["a"]

    def test_isolated_start(self, rng):
        g = HeteroGraph()
        g.add_node("iso", "t")
        g.add_node("a", "t")
        g.add_node("b", "t")
        g.add_edge("a", "b", "e")
        walker = Node2VecWalker(g, rng=rng)
        assert walker.walk("iso", 5) == ["iso"]

    def test_low_p_returns_often(self, path_graph):
        """p << 1 makes the walk bounce back to the previous node."""
        rng = np.random.default_rng(3)
        walker = Node2VecWalker(path_graph, p=0.01, q=1.0, rng=rng)
        returns = 0
        trials = 3000
        for _ in range(trials):
            walk = walker.walk("a", 3)
            if len(walk) == 3 and walk[2] == walk[0]:
                returns += 1
        assert returns / trials > 0.8

    def test_high_p_explores(self, path_graph):
        """p >> 1 discourages immediate returns."""
        rng = np.random.default_rng(3)
        walker = Node2VecWalker(path_graph, p=100.0, q=1.0, rng=rng)
        returns = 0
        trials = 3000
        for _ in range(trials):
            walk = walker.walk("a", 3)
            # from b, candidates are a (return, w/p) and c (explore, w/q)
            if len(walk) == 3 and walk[2] == walk[0]:
                returns += 1
        assert returns / trials < 0.1
