"""Tests for the metapath-constrained walker."""

import pytest

from repro.walks import MetapathWalker


class TestValidation:
    def test_too_short(self, academic, rng):
        with pytest.raises(ValueError):
            MetapathWalker(academic, ["author"], rng=rng)

    def test_not_cyclic(self, academic, rng):
        with pytest.raises(ValueError, match="cyclic"):
            MetapathWalker(academic, ["author", "paper"], rng=rng)

    def test_unknown_type(self, academic, rng):
        with pytest.raises(ValueError, match="unknown node types"):
            MetapathWalker(academic, ["alien", "paper", "alien"], rng=rng)

    def test_off_path_start_type(self, academic, rng):
        walker = MetapathWalker(
            academic, ["author", "paper", "author"], rng=rng
        )
        with pytest.raises(ValueError, match="never visits"):
            walker.walk("U1", 5)

    def test_on_path_start_enters_mid_cycle(self, academic, rng):
        """A paper start on the author-paper cycle aligns to the paper
        position instead of erroring (cross-view walks start anywhere)."""
        walker = MetapathWalker(
            academic, ["author", "paper", "author"], rng=rng
        )
        walk = walker.walk("P1", 4)
        types = [academic.node_type(node) for node in walk]
        assert types == ["paper", "author", "paper", "author"]


class TestWalks:
    def test_type_sequence_follows_pattern(self, academic, rng):
        walker = MetapathWalker(
            academic, ["author", "paper", "author"], rng=rng
        )
        walk = walker.walk("A1", 9)
        expected_types = ["author", "paper"] * 5
        for node, expected in zip(walk, expected_types):
            assert academic.node_type(node) == expected

    def test_longer_pattern(self, academic, rng):
        walker = MetapathWalker(
            academic,
            ["author", "paper", "paper", "author", "author"],
            rng=rng,
        )
        walk = walker.walk("A1", 8)
        pattern = ["author", "paper", "paper", "author"]
        for k, node in enumerate(walk):
            assert academic.node_type(node) == pattern[k % 4]

    def test_stops_when_no_typed_neighbor(self, academic, rng):
        # university nodes have no paper neighbours
        walker = MetapathWalker(
            academic, ["university", "paper", "university"], rng=rng
        )
        walk = walker.walk("U1", 6)
        assert walk == ["U1"]

    def test_start_nodes(self, academic, rng):
        walker = MetapathWalker(
            academic, ["paper", "author", "paper"], rng=rng
        )
        assert sorted(walker.start_nodes()) == ["P1", "P2"]

    def test_edges_exist(self, academic, rng):
        walker = MetapathWalker(
            academic, ["author", "paper", "author"], rng=rng
        )
        walk = walker.walk("A2", 7)
        for u, v in zip(walk, walk[1:]):
            assert academic.has_edge(u, v)
