"""Tests for index-space corpus building, filtering and chunking."""

import numpy as np
import pytest

from repro.graph import HeteroGraph, separate_views
from repro.walks import (
    BatchedBiasedCorrelatedWalker,
    BatchedUniformWalker,
    UniformWalker,
    build_corpus,
)
from repro.walks.corpus import (
    WalkCorpus,
    chunk_paths,
    extract_index_pairs,
    filter_to_nodes,
)


def _id_corpus(paths, length, graph=None):
    return WalkCorpus.from_paths(paths, length, graph)


class TestWalkCorpus:
    def test_from_paths_padding_and_lengths(self):
        corpus = _id_corpus([[1, 2, 3], [4, 5]], 4)
        assert corpus.matrix.shape == (2, 4)
        np.testing.assert_array_equal(corpus.lengths, [3, 2])
        np.testing.assert_array_equal(corpus.matrix[0], [1, 2, 3, -1])
        np.testing.assert_array_equal(corpus.matrix[1], [4, 5, -1, -1])

    def test_iteration_trims_padding(self):
        corpus = _id_corpus([[1, 2, 3], [4, 5]], 4)
        rows = [walk.tolist() for walk in corpus]
        assert rows == [[1, 2, 3], [4, 5]]

    def test_paths_roundtrip_through_graph(self, triangle):
        corpus = WalkCorpus.from_paths([["x", "y"], ["z", "x", "y"]], 3, triangle)
        assert corpus.paths() == [["x", "y"], ["z", "x", "y"]]

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="2-D"):
            WalkCorpus(np.zeros(3, dtype=np.int64), np.zeros(3), 3)
        with pytest.raises(ValueError, match="lengths"):
            WalkCorpus(np.zeros((2, 3), dtype=np.int64), np.zeros(3), 3)

    def test_node_frequencies(self):
        corpus = _id_corpus([[0, 1, 0], [1, 2]], 3)
        assert corpus.node_frequencies() == {0: 2, 1: 2, 2: 1}

    def test_node_frequencies_with_graph(self, triangle):
        corpus = WalkCorpus.from_paths([["x", "y", "x"], ["y", "z"]], 3, triangle)
        assert corpus.node_frequencies() == {"x": 2, "y": 2, "z": 1}

    def test_frequency_counts_ignore_padding(self):
        corpus = _id_corpus([[0, 1], [1]], 4)
        np.testing.assert_array_equal(
            corpus.frequency_counts(3), [1.0, 2.0, 0.0]
        )


class TestBuildCorpus:
    def test_respects_policy(self, academic, rng):
        view = separate_views(academic)[1]  # authorship
        walker = BatchedUniformWalker(view, rng=rng)
        corpus = build_corpus(view, walker, length=5, floor=2, cap=4, rng=rng)
        # every view node has degree in [1, 5]; counts in [2, 4]
        assert 2 * view.num_nodes <= len(corpus) <= 4 * view.num_nodes
        assert corpus.length == 5

    def test_override_count(self, academic, rng):
        view = separate_views(academic)[1]
        walker = BatchedUniformWalker(view, rng=rng)
        corpus = build_corpus(
            view, walker, length=4, walks_per_node_override=3, rng=rng
        )
        assert len(corpus) == 3 * view.num_nodes

    def test_scalar_walker_fallback(self, academic, rng):
        """Scalar walkers (no walk_batch) still feed the same corpus form."""
        view = separate_views(academic)[1]
        walker = UniformWalker(view, rng=rng)
        corpus = build_corpus(
            view, walker, length=4, walks_per_node_override=2, rng=rng
        )
        assert len(corpus) == 2 * view.num_nodes
        assert corpus.matrix.shape == (len(corpus), 4)
        assert (corpus.lengths == 4).all()

    def test_isolated_nodes_skipped(self, rng):
        g = HeteroGraph.from_edges(
            [("a", "b", "e", 1.0)], {"a": "t", "b": "t", "iso": "t"}
        )
        walker = BatchedUniformWalker(g, rng=rng)
        corpus = build_corpus(g, walker, length=3, walks_per_node_override=2, rng=rng)
        iso = g.index_of("iso")
        assert not (corpus.matrix == iso).any()

    def test_walks_follow_edges(self, academic, rng):
        view = separate_views(academic)[1]
        walker = BatchedBiasedCorrelatedWalker(view, rng=rng)
        corpus = build_corpus(view, walker, length=6, floor=2, cap=2, rng=rng)
        graph = view.graph
        for walk in corpus.paths():
            for a, b in zip(walk, walk[1:]):
                assert graph.has_edge(a, b)

    def test_length_validation(self, academic, rng):
        view = separate_views(academic)[0]
        walker = BatchedUniformWalker(view, rng=rng)
        with pytest.raises(ValueError):
            build_corpus(view, walker, length=1, rng=rng)


class TestExtractIndexPairs:
    def test_window_one(self):
        corpus = _id_corpus([[0, 1, 2]], 3)
        centers, contexts = extract_index_pairs(corpus, 1)
        got = sorted(zip(centers.tolist(), contexts.tolist()))
        assert got == [(0, 1), (1, 0), (1, 2), (2, 1)]

    def test_matches_scalar_scan(self):
        from repro.skipgram import extract_pairs

        paths = [[0, 1, 2, 3, 1], [4, 2, 0]]
        corpus = _id_corpus(paths, 5)
        for window in (1, 2, 3):
            centers, contexts = extract_index_pairs(corpus, window)
            expected = []
            for path in paths:
                expected.extend(extract_pairs(path, window))
            assert sorted(zip(centers.tolist(), contexts.tolist())) == sorted(
                expected
            )

    def test_padding_never_paired(self):
        corpus = _id_corpus([[0, 1], [2]], 4)
        centers, contexts = extract_index_pairs(corpus, 3)
        assert (centers >= 0).all() and (contexts >= 0).all()
        assert sorted(zip(centers.tolist(), contexts.tolist())) == [
            (0, 1),
            (1, 0),
        ]

    def test_empty_corpus(self):
        centers, contexts = extract_index_pairs(_id_corpus([], 0), 2)
        assert centers.size == 0 and contexts.size == 0

    def test_window_validation(self):
        with pytest.raises(ValueError):
            extract_index_pairs(_id_corpus([[0, 1]], 2), 0)


class TestFilterToNodes:
    def test_removes_non_kept(self):
        g = HeteroGraph.from_edges(
            [("a", "x", "e", 1.0), ("x", "b", "e", 1.0), ("b", "y", "e", 1.0),
             ("y", "c", "e", 1.0)],
            {n: "t" for n in "axbyc"},
        )
        corpus = WalkCorpus.from_paths([["a", "x", "b", "y", "c"]], 5, g)
        out = filter_to_nodes(corpus, {"a", "b", "c"})
        assert out.paths() == [["a", "b", "c"]]
        np.testing.assert_array_equal(out.matrix[0, 3:], [-1, -1])

    def test_drops_short_paths(self):
        corpus = _id_corpus([[0, 1], [1, 2, 3]], 3)
        out = filter_to_nodes(corpus, {0}, min_length=2)
        assert len(out) == 0
        assert out.matrix.shape == (0, 3)

    def test_min_length_kept(self):
        corpus = _id_corpus([[0, 1, 2]], 3)
        out = filter_to_nodes(corpus, {0, 1}, min_length=2)
        assert [w.tolist() for w in out] == [[0, 1]]

    def test_keep_set_outside_corpus(self):
        corpus = _id_corpus([[0, 1]], 2)
        out = filter_to_nodes(corpus, {7}, min_length=1)
        assert len(out) == 0

    def test_empty_corpus(self):
        out = filter_to_nodes(_id_corpus([], 3), {1, 2})
        assert len(out) == 0


class TestChunkPaths:
    def test_exact_chunks(self):
        corpus = _id_corpus([[1, 2, 3, 4, 5, 6]], 6)
        chunks = chunk_paths(corpus, 3)
        assert chunks.tolist() == [[1, 2, 3], [4, 5, 6]]

    def test_remainder_dropped(self):
        corpus = _id_corpus([[1, 2, 3, 4, 5]], 5)
        chunks = chunk_paths(corpus, 3)
        assert chunks.tolist() == [[1, 2, 3]]

    def test_padding_not_chunked(self):
        """A walk shorter than the matrix width never leaks -1 slots."""
        corpus = _id_corpus([[1, 2, 3, 4], [5, 6]], 6)
        chunks = chunk_paths(corpus, 2)
        assert (chunks >= 0).all()
        assert chunks.tolist() == [[1, 2], [3, 4], [5, 6]]

    def test_too_short_path_yields_nothing(self):
        corpus = _id_corpus([[1, 2]], 2)
        assert chunk_paths(corpus, 3).shape == (0, 3)

    def test_invalid_chunk_length(self):
        with pytest.raises(ValueError):
            chunk_paths(_id_corpus([[1, 2]], 2), 1)

    def test_all_chunks_uniform_length(self, academic, rng):
        view = separate_views(academic)[1]
        walker = BatchedBiasedCorrelatedWalker(view, rng=rng)
        corpus = build_corpus(view, walker, length=9, floor=2, cap=2, rng=rng)
        chunks = chunk_paths(corpus, 4)
        assert chunks.shape[1] == 4
        assert (chunks >= 0).all()
