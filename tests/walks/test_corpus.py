"""Tests for corpus building, filtering and chunking."""

import numpy as np
import pytest

from repro.graph import separate_views
from repro.walks import BiasedCorrelatedWalker, UniformWalker, build_corpus
from repro.walks.corpus import WalkCorpus, chunk_paths, filter_to_nodes


class TestBuildCorpus:
    def test_respects_policy(self, academic, rng):
        view = separate_views(academic)[1]  # authorship
        walker = UniformWalker(view, rng=rng)
        corpus = build_corpus(view, walker, length=5, floor=2, cap=4, rng=rng)
        # every view node has degree in [1, 5]; counts in [2, 4]
        assert 2 * view.num_nodes <= len(corpus) <= 4 * view.num_nodes
        assert corpus.length == 5

    def test_override_count(self, academic, rng):
        view = separate_views(academic)[1]
        walker = UniformWalker(view, rng=rng)
        corpus = build_corpus(
            view, walker, length=4, walks_per_node_override=3, rng=rng
        )
        assert len(corpus) == 3 * view.num_nodes

    def test_isolated_nodes_skipped(self, rng):
        from repro.graph import HeteroGraph

        g = HeteroGraph.from_edges(
            [("a", "b", "e", 1.0)], {"a": "t", "b": "t", "iso": "t"}
        )
        walker = UniformWalker(g, rng=rng)
        corpus = build_corpus(g, walker, length=3, walks_per_node_override=2, rng=rng)
        for walk in corpus:
            assert "iso" not in walk

    def test_length_validation(self, academic, rng):
        view = separate_views(academic)[0]
        walker = UniformWalker(view, rng=rng)
        with pytest.raises(ValueError):
            build_corpus(view, walker, length=1, rng=rng)

    def test_node_frequencies(self):
        corpus = WalkCorpus([["a", "b", "a"], ["b", "c"]], 3)
        assert corpus.node_frequencies() == {"a": 2, "b": 2, "c": 1}


class TestFilterToNodes:
    def test_removes_non_kept(self):
        corpus = WalkCorpus([["a", "x", "b", "y", "c"]], 5)
        out = filter_to_nodes(corpus, {"a", "b", "c"})
        assert out.walks == [["a", "b", "c"]]

    def test_drops_short_paths(self):
        corpus = WalkCorpus([["a", "x"], ["x", "y", "z"]], 3)
        out = filter_to_nodes(corpus, {"a"}, min_length=2)
        assert out.walks == []

    def test_min_length_kept(self):
        corpus = WalkCorpus([["a", "b", "x"]], 3)
        out = filter_to_nodes(corpus, {"a", "b"}, min_length=2)
        assert out.walks == [["a", "b"]]


class TestChunkPaths:
    def test_exact_chunks(self):
        corpus = WalkCorpus([[1, 2, 3, 4, 5, 6]], 6)
        chunks = chunk_paths(corpus, 3)
        assert chunks == [[1, 2, 3], [4, 5, 6]]

    def test_remainder_dropped(self):
        corpus = WalkCorpus([[1, 2, 3, 4, 5]], 5)
        chunks = chunk_paths(corpus, 3)
        assert chunks == [[1, 2, 3]]

    def test_too_short_path_yields_nothing(self):
        corpus = WalkCorpus([[1, 2]], 2)
        assert chunk_paths(corpus, 3) == []

    def test_invalid_chunk_length(self):
        with pytest.raises(ValueError):
            chunk_paths(WalkCorpus([[1, 2]], 2), 1)

    def test_all_chunks_uniform_length(self, academic, rng):
        view = separate_views(academic)[1]
        walker = BiasedCorrelatedWalker(view, rng=rng)
        corpus = build_corpus(view, walker, length=9, floor=2, cap=2, rng=rng)
        for chunk in chunk_paths(corpus, 4):
            assert len(chunk) == 4
