"""Statistical-equivalence tests: lockstep engines vs. scalar walkers.

The batched walkers must sample the *same* Equation 6-7 distributions as
the scalar reference walkers; every test here compares a large batched
sample against the exact ``step_distribution()`` of the scalar
:class:`BiasedCorrelatedWalker` (or the uniform law) on graphs that
isolate one branch of Equation 4: pure pi_1, the correlated pi_1 * pi_2
branch, the Delta = 0 fallback, and stuck walks.
"""

import numpy as np
import pytest
from scipy import stats

from repro.graph import HeteroGraph, separate_views
from repro.walks import (
    BatchedBiasedCorrelatedWalker,
    BatchedUniformWalker,
    BiasedCorrelatedWalker,
)

_TRIALS = 20_000
_TOL = 0.02


def _first_step_shares(walker, graph, start, trials=_TRIALS):
    """Empirical distribution of the second node over a big batch."""
    starts = np.full(trials, graph.index_of(start), dtype=np.int64)
    matrix, lengths = walker.walk_batch(starts, 2)
    assert (lengths == 2).all()
    values, counts = np.unique(matrix[:, 1], return_counts=True)
    return {
        graph.node_at(int(v)): c / trials for v, c in zip(values, counts)
    }


@pytest.fixture
def rating_view(book_view):
    """The Figure 4 book-rating view (weighted heter-view)."""
    return separate_views(book_view)[0]


class TestBatchedUniform:
    def test_ignores_weights(self, rng):
        g = HeteroGraph()
        for n in ("c", "h", "l"):
            g.add_node(n, "t")
        g.add_edge("c", "h", "e", weight=1000.0)
        g.add_edge("c", "l", "e", weight=0.001)
        walker = BatchedUniformWalker(g, rng=rng)
        shares = _first_step_shares(walker, g, "c")
        assert shares["h"] == pytest.approx(0.5, abs=_TOL)

    def test_walks_follow_edges(self, rating_view, rng):
        walker = BatchedUniformWalker(rating_view, rng=rng)
        graph = rating_view.graph
        starts = np.arange(graph.num_nodes, dtype=np.int64)
        matrix, lengths = walker.walk_batch(starts, 8)
        assert (lengths == 8).all()  # views have no isolated nodes
        for row, n in zip(matrix, lengths):
            for a, b in zip(row[: n - 1], row[1:n]):
                assert graph.has_edge(graph.node_at(int(a)), graph.node_at(int(b)))

    def test_stuck_walk_ends_early(self, rng):
        g = HeteroGraph()
        g.add_node("lonely", "t")
        g.add_node("a", "t")
        g.add_node("b", "t")
        g.add_edge("a", "b", "e")
        walker = BatchedUniformWalker(g, rng=rng)
        starts = np.array(
            [g.index_of("lonely"), g.index_of("a")], dtype=np.int64
        )
        matrix, lengths = walker.walk_batch(starts, 5)
        np.testing.assert_array_equal(lengths, [1, 5])
        np.testing.assert_array_equal(matrix[0, 1:], [-1, -1, -1, -1])
        assert (matrix[1] >= 0).all()


class TestBatchedBiasedPi1:
    """First steps (and homo-views) are pure Equation 6."""

    def test_first_step_matches_scalar_distribution(self, rating_view, rng):
        scalar = BiasedCorrelatedWalker(rating_view, rng=rng)
        batched = BatchedBiasedCorrelatedWalker(rating_view, rng=rng)
        expected = scalar.step_distribution("R1")
        shares = _first_step_shares(batched, rating_view.graph, "R1")
        for node, p in expected.items():
            assert shares.get(node, 0.0) == pytest.approx(p, abs=_TOL)

    def test_homo_view_every_step_is_pi1(self, triangle, rng):
        view = separate_views(triangle)[0]
        assert view.is_homo
        scalar = BiasedCorrelatedWalker(view, rng=rng)
        batched = BatchedBiasedCorrelatedWalker(view, rng=rng)
        assert not batched.correlated
        graph = view.graph
        # condition on arriving at "y": second-step law must still be pi_1
        starts = np.full(_TRIALS, graph.index_of("x"), dtype=np.int64)
        matrix, _ = batched.walk_batch(starts, 3)
        via_y = matrix[matrix[:, 1] == graph.index_of("y")]
        values, counts = np.unique(via_y[:, 2], return_counts=True)
        shares = {
            graph.node_at(int(v)): c / via_y.shape[0]
            for v, c in zip(values, counts)
        }
        expected = scalar.step_distribution("y")
        for node, p in expected.items():
            assert shares.get(node, 0.0) == pytest.approx(p, abs=_TOL)


class TestBatchedCorrelatedPi2:
    """The pi_1 * pi_2 branch against the scalar exact distribution."""

    def _forced_first_step_graph(self):
        """u's only edge (weight 2) forces prev_weight = 2 at node m."""
        g = HeteroGraph()
        g.add_node("u", "A")
        g.add_node("m", "B")
        g.add_node("v1", "A")
        g.add_node("v2", "A")
        g.add_edge("u", "m", "e", weight=2.0)
        g.add_edge("m", "v1", "e", weight=1.0)
        g.add_edge("m", "v2", "e", weight=5.0)
        return separate_views(g)[0]

    def test_second_step_matches_scalar_distribution(self, rng):
        view = self._forced_first_step_graph()
        assert view.is_heter
        scalar = BiasedCorrelatedWalker(view, rng=rng)
        batched = BatchedBiasedCorrelatedWalker(view, rng=rng)
        assert batched.correlated
        graph = view.graph
        starts = np.full(_TRIALS, graph.index_of("u"), dtype=np.int64)
        matrix, _ = batched.walk_batch(starts, 3)
        assert (matrix[:, 1] == graph.index_of("m")).all()
        values, counts = np.unique(matrix[:, 2], return_counts=True)
        shares = {
            graph.node_at(int(v)): c / _TRIALS
            for v, c in zip(values, counts)
        }
        expected = scalar.step_distribution("m", previous_weight=2.0)
        assert set(shares) <= set(expected)
        for node, p in expected.items():
            assert shares.get(node, 0.0) == pytest.approx(p, abs=_TOL)

    def test_delta_zero_falls_back_to_pi1(self, rng):
        """Equal incident weights (Delta = 0) -> pure Equation 6."""
        g = HeteroGraph()
        g.add_node("u", "A")
        g.add_node("x", "B")
        for n in ("a", "b"):
            g.add_node(n, "A")
        g.add_edge("u", "x", "e", weight=2.0)
        g.add_edge("x", "a", "e", weight=2.0)
        g.add_edge("x", "b", "e", weight=2.0)
        view = separate_views(g)[0]
        batched = BatchedBiasedCorrelatedWalker(view, rng=rng)
        graph = view.graph
        starts = np.full(_TRIALS, graph.index_of("u"), dtype=np.int64)
        matrix, _ = batched.walk_batch(starts, 3)
        assert (matrix[:, 1] == graph.index_of("x")).all()
        share_a = (matrix[:, 2] == graph.index_of("a")).mean()
        expected = BiasedCorrelatedWalker(view, rng=rng).step_distribution(
            "x", previous_weight=2.0
        )
        assert expected["a"] == pytest.approx(1.0 / 3.0)
        assert share_a == pytest.approx(expected["a"], abs=_TOL)

    def test_correlation_override(self, triangle, rng):
        walker = BatchedBiasedCorrelatedWalker(
            separate_views(triangle)[0], rng=rng, correlated=True
        )
        assert walker.correlated

    def test_mixed_branches_long_walk_valid(self, rating_view, rng):
        """Long correlated walks stay on edges and keep full length."""
        batched = BatchedBiasedCorrelatedWalker(rating_view, rng=rng)
        graph = rating_view.graph
        starts = np.tile(np.arange(graph.num_nodes, dtype=np.int64), 50)
        matrix, lengths = batched.walk_batch(starts, 12)
        assert (lengths == 12).all()
        for row in matrix[:40]:
            for a, b in zip(row[:-1], row[1:]):
                assert graph.has_edge(graph.node_at(int(a)), graph.node_at(int(b)))

    def test_second_step_chi_square_bound(self, rng):
        """Goodness-of-fit bound on the Eq. 7 correlated-step branch.

        The per-node tolerance checks above can miss a systematic bias
        spread across the support; the chi-square statistic aggregates
        the whole distribution, so a subtly wrong pi_2 normalization or
        Delta sign fails here even when every marginal stays within
        ``_TOL``.  The rng fixture is seeded, so the draw — and the
        statistic — is deterministic; the 99.9% quantile guards against
        regressions, not sampling noise.
        """
        view = self._forced_first_step_graph()
        scalar = BiasedCorrelatedWalker(view, rng=rng)
        batched = BatchedBiasedCorrelatedWalker(view, rng=rng)
        graph = view.graph
        starts = np.full(_TRIALS, graph.index_of("u"), dtype=np.int64)
        matrix, _ = batched.walk_batch(starts, 3)
        expected = scalar.step_distribution("m", previous_weight=2.0)
        observed = np.array(
            [
                (matrix[:, 2] == graph.index_of(node)).sum()
                for node in expected
            ],
            dtype=float,
        )
        assert observed.sum() == _TRIALS  # the support is exactly {v1, v2}
        predicted = np.array(list(expected.values())) * _TRIALS
        statistic = ((observed - predicted) ** 2 / predicted).sum()
        bound = stats.chi2.isf(1e-3, df=len(expected) - 1)
        assert statistic < bound

    def test_first_step_chi_square_bound(self, rating_view, rng):
        """Same bound on the pure pi_1 branch over the Figure 4 view."""
        scalar = BiasedCorrelatedWalker(rating_view, rng=rng)
        batched = BatchedBiasedCorrelatedWalker(rating_view, rng=rng)
        graph = rating_view.graph
        starts = np.full(_TRIALS, graph.index_of("R1"), dtype=np.int64)
        matrix, _ = batched.walk_batch(starts, 2)
        expected = scalar.step_distribution("R1")
        observed = np.array(
            [
                (matrix[:, 1] == graph.index_of(node)).sum()
                for node in expected
            ],
            dtype=float,
        )
        assert observed.sum() == _TRIALS
        predicted = np.array(list(expected.values())) * _TRIALS
        statistic = ((observed - predicted) ** 2 / predicted).sum()
        assert statistic < stats.chi2.isf(1e-3, df=len(expected) - 1)

    def test_stuck_walk_keeps_prefix(self, rng):
        g = HeteroGraph()
        g.add_node("iso", "t")
        walker = BatchedBiasedCorrelatedWalker(g, rng=rng)
        matrix, lengths = walker.walk_batch(
            np.array([g.index_of("iso")], dtype=np.int64), 4
        )
        np.testing.assert_array_equal(lengths, [1])
        np.testing.assert_array_equal(matrix[0], [0, -1, -1, -1])
