"""Streaming corpus generation: block laws, determinism, dtypes."""

import numpy as np
import pytest

from repro.datasets.fixtures import two_view_toy
from repro.graph.csr import csr_adjacency
from repro.graph.views import separate_views
from repro.walks import LockstepWalker, build_corpus, stream_corpus
from repro.walks.corpus import corpus_index_dtype, walk_start_nodes
from repro.walks.policies import make_policy


def _view():
    graph, _ = two_view_toy()
    return separate_views(graph)[0]


def _walker(view, seed):
    rng = np.random.default_rng(seed)
    return LockstepWalker(view, make_policy("biased"), rng=rng), rng


class TestSingleBlockEquivalence:
    def test_one_block_is_bitwise_build_corpus(self):
        view = _view()
        walker_a, rng_a = _walker(view, 7)
        dense = build_corpus(
            view, walker_a, length=8, floor=2, cap=3, rng=rng_a
        )
        walker_b, rng_b = _walker(view, 7)
        blocks = list(
            stream_corpus(view, walker_b, length=8, floor=2, cap=3, rng=rng_b)
        )
        assert len(blocks) == 1
        assert np.array_equal(blocks[0].matrix, dense.matrix)
        assert np.array_equal(blocks[0].lengths, dense.lengths)

    def test_rng_state_matches_after_draw(self):
        # downstream draws (negative sampling) must see the same stream
        view = _view()
        walker_a, rng_a = _walker(view, 3)
        build_corpus(view, walker_a, length=8, floor=2, cap=3, rng=rng_a)
        walker_b, rng_b = _walker(view, 3)
        list(stream_corpus(view, walker_b, length=8, floor=2, cap=3, rng=rng_b))
        assert rng_a.integers(1 << 30) == rng_b.integers(1 << 30)


class TestMultiBlock:
    def test_deterministic_for_fixed_seed_and_block_size(self):
        view = _view()
        walker_a, rng_a = _walker(view, 11)
        first = [
            (c.matrix.copy(), c.lengths.copy())
            for c in stream_corpus(
                view, walker_a, length=8, floor=2, cap=3, rng=rng_a,
                block_walks=4,
            )
        ]
        walker_b, rng_b = _walker(view, 11)
        second = [
            (c.matrix.copy(), c.lengths.copy())
            for c in stream_corpus(
                view, walker_b, length=8, floor=2, cap=3, rng=rng_b,
                block_walks=4,
            )
        ]
        assert len(first) == len(second) > 1
        for (m1, l1), (m2, l2) in zip(first, second):
            assert np.array_equal(m1, m2)
            assert np.array_equal(l1, l2)

    def test_blocks_bounded_and_starts_preserved(self):
        view = _view()
        walker, rng = _walker(view, 5)
        expected_starts = walk_start_nodes(
            csr_adjacency(view.graph).degrees,
            policy=walker.policy,
            floor=2,
            cap=3,
        )
        blocks = list(
            stream_corpus(
                view, walker, length=8, floor=2, cap=3, rng=rng, block_walks=4
            )
        )
        for block in blocks:
            assert block.matrix.shape[0] <= 4
        # every start node walks exactly as often as the dense count law
        streamed_starts = np.concatenate([b.matrix[:, 0] for b in blocks])
        assert np.array_equal(
            np.sort(streamed_starts), np.sort(expected_starts)
        )

    def test_block_walks_must_be_positive(self):
        view = _view()
        walker, rng = _walker(view, 0)
        with pytest.raises(ValueError, match="block_walks"):
            next(
                stream_corpus(
                    view, walker, length=8, floor=2, cap=3, rng=rng,
                    block_walks=0,
                )
            )


class TestIndexDtype:
    def test_corpus_index_dtype_thresholds(self):
        assert corpus_index_dtype(10) == np.dtype(np.int32)
        assert corpus_index_dtype(2**31 - 1) == np.dtype(np.int32)
        assert corpus_index_dtype(2**31) == np.dtype(np.int64)

    def test_int32_blocks(self):
        view = _view()
        walker, rng = _walker(view, 9)
        blocks = list(
            stream_corpus(
                view, walker, length=8, floor=2, cap=3, rng=rng,
                block_walks=4, index_dtype=np.dtype(np.int32),
            )
        )
        for block in blocks:
            assert block.matrix.dtype == np.int32

    def test_int32_values_match_int64(self):
        view = _view()
        walker_a, rng_a = _walker(view, 13)
        wide = [
            c.matrix.copy()
            for c in stream_corpus(
                view, walker_a, length=8, floor=2, cap=3, rng=rng_a,
                block_walks=4,
            )
        ]
        walker_b, rng_b = _walker(view, 13)
        narrow = [
            c.matrix.copy()
            for c in stream_corpus(
                view, walker_b, length=8, floor=2, cap=3, rng=rng_b,
                block_walks=4, index_dtype=np.dtype(np.int32),
            )
        ]
        for m64, m32 in zip(wide, narrow):
            assert np.array_equal(m64, m32.astype(np.int64))
