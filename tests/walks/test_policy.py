"""Tests for the walk-count policy max(min(degree, cap), floor)."""

import pytest

from repro.graph import HeteroGraph
from repro.walks import walks_per_node


@pytest.fixture
def star():
    g = HeteroGraph()
    g.add_node("hub", "t")
    for k in range(40):
        g.add_node(f"leaf{k}", "t")
        g.add_edge("hub", f"leaf{k}", "e")
    return g


class TestWalksPerNode:
    def test_hub_capped(self, star):
        assert walks_per_node(star, "hub", floor=10, cap=32) == 32

    def test_leaf_floored(self, star):
        assert walks_per_node(star, "leaf0", floor=10, cap=32) == 10

    def test_mid_degree_passthrough(self, star):
        # degree 40 hub with wide bounds
        assert walks_per_node(star, "hub", floor=1, cap=100) == 40

    def test_paper_defaults(self, star):
        assert walks_per_node(star, "hub") == 32
        assert walks_per_node(star, "leaf3") == 10

    def test_invalid_floor(self, star):
        with pytest.raises(ValueError):
            walks_per_node(star, "hub", floor=0)

    def test_cap_below_floor(self, star):
        with pytest.raises(ValueError):
            walks_per_node(star, "hub", floor=10, cap=5)
