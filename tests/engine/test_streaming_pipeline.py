"""StreamingCorpusPipeline: dense equivalence, budget law, noise freeze."""

import numpy as np
import pytest

from repro.datasets.fixtures import two_view_toy
from repro.engine.pipeline import (
    CorpusPipeline,
    StreamingCorpusPipeline,
    block_walks_for_budget,
    pairs_per_walk,
)
from repro.graph.views import separate_views
from repro.walks import LockstepWalker, build_corpus, stream_corpus
from repro.walks.policies import make_policy


def _view():
    graph, _ = two_view_toy()
    return separate_views(graph)[0]


def _dense(view, seed, **kw):
    rng = np.random.default_rng(seed)
    walker = LockstepWalker(view, make_policy("biased"), rng=rng)
    return CorpusPipeline(
        sample_corpus=lambda: build_corpus(
            view, walker, length=8, floor=2, cap=3, rng=rng
        ),
        num_nodes=view.num_nodes,
        window=1,
        num_negatives=3,
        batch_size=16,
        rng=rng,
        **kw,
    )


def _streaming(view, seed, block_walks=None, **kw):
    rng = np.random.default_rng(seed)
    walker = LockstepWalker(view, make_policy("biased"), rng=rng)
    return StreamingCorpusPipeline(
        sample_blocks=lambda: stream_corpus(
            view, walker, length=8, floor=2, cap=3, rng=rng,
            block_walks=block_walks,
        ),
        num_nodes=view.num_nodes,
        window=1,
        num_negatives=3,
        batch_size=16,
        rng=rng,
        **kw,
    )


def _batches(pipeline):
    return [
        (b.centers.copy(), b.contexts.copy(), b.negatives.copy())
        for b in pipeline.epoch()
    ]


class TestDenseEquivalence:
    def test_single_block_batches_bit_identical_across_epochs(self):
        view = _view()
        dense = _dense(view, 7)
        streaming = _streaming(view, 7)
        for _ in range(3):
            for (c1, x1, n1), (c2, x2, n2) in zip(
                _batches(dense), _batches(streaming), strict=True
            ):
                assert np.array_equal(c1, c2)
                assert np.array_equal(x1, x2)
                assert np.array_equal(n1, n2)

    def test_multi_block_stream_deterministic(self):
        view = _view()
        first = _batches(_streaming(view, 11, block_walks=4))
        second = _batches(_streaming(view, 11, block_walks=4))
        for (c1, x1, n1), (c2, x2, n2) in zip(first, second, strict=True):
            assert np.array_equal(c1, c2)
            assert np.array_equal(x1, x2)
            assert np.array_equal(n1, n2)


class TestBudget:
    def test_peak_block_bytes_within_budget(self):
        view = _view()
        budget = 64 * 1024
        walks = block_walks_for_budget(
            budget, length=8, window=1, num_negatives=3, batch_size=16
        )
        pipeline = _streaming(
            view, 3, block_walks=walks, budget_bytes=budget
        )
        assert sum(1 for _ in pipeline.epoch()) > 0
        assert 0 < pipeline.peak_block_bytes <= budget

    def test_over_budget_block_raises(self):
        view = _view()
        # blocks deliberately oversized for a tiny budget
        pipeline = _streaming(view, 3, budget_bytes=1024)
        with pytest.raises(MemoryError, match="budget"):
            list(pipeline.epoch())

    def test_budget_too_small_for_one_walk(self):
        with pytest.raises(ValueError, match="cannot hold one walk"):
            block_walks_for_budget(
                64, length=20, window=2, num_negatives=5, batch_size=1
            )

    def test_budget_scales_with_itemsize(self):
        wide = block_walks_for_budget(
            1 << 20, length=20, window=2, num_negatives=5, batch_size=128,
            itemsize=8,
        )
        narrow = block_walks_for_budget(
            1 << 20, length=20, window=2, num_negatives=5, batch_size=128,
            itemsize=4,
        )
        assert narrow > wide

    def test_pairs_per_walk_matches_extraction_bound(self):
        # window truncated by walk length
        assert pairs_per_walk(8, 1) == 2 * 7
        assert pairs_per_walk(8, 2) == 2 * (7 + 6)
        assert pairs_per_walk(2, 5) == 2 * 1


class TestNoiseSchedule:
    def test_noise_frozen_after_first_epoch(self):
        view = _view()
        pipeline = _streaming(view, 5, block_walks=4)
        list(pipeline.epoch())
        frozen_counts = pipeline._counts.copy()
        assert frozen_counts.sum() > 0
        list(pipeline.epoch())
        assert np.array_equal(pipeline._counts, frozen_counts)

    def test_state_roundtrip_restores_table(self):
        view = _view()
        pipeline = _streaming(view, 5, block_walks=4)
        list(pipeline.epoch())
        state = pipeline.state_dict()
        restored = _streaming(view, 5, block_walks=4)
        restored.load_state_dict(state)
        assert restored._frozen
        rng = np.random.default_rng(0)
        a = pipeline._table().sample(rng, size=64)
        rng = np.random.default_rng(0)
        b = restored._table().sample(rng, size=64)
        assert np.array_equal(a, b)

    def test_accepts_dense_pipeline_state(self):
        # resuming a dense checkpoint into streaming mode must work
        view = _view()
        dense = _dense(view, 7)
        list(dense.epoch())
        streaming = _streaming(view, 7)
        streaming.load_state_dict(dense.state_dict())
        assert streaming._frozen
