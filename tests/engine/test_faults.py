"""Chaos tests: the fault-injection harness and the hardening it proves.

Two layers under test.  The :class:`FaultInjector` itself must be
deterministic bookkeeping — exact invocation counts, seeded per-point
RNGs, scoped activation.  And the runtime it attacks must *survive* every
armed fault with bit-identical output: a SIGKILLed pool worker, a hung
shard tripping the watchdog, an in-worker exception, a full disk under
the checkpointer, and (end-to-end) a chaos model fit that must match the
fault-free fit array-for-array.
"""

import errno
import os

import numpy as np
import pytest

from repro.core import TransN, TransNConfig
from repro.datasets import two_view_toy
from repro.engine import (
    CallablePhase,
    Checkpointer,
    CheckpointManager,
    TrainingLoop,
)
from repro.engine import faults
from repro.engine.faults import FaultInjected, FaultInjector, scoped
from repro.engine.observability import MetricsRegistry
from repro.engine.parallel import ParallelRuntime, single_view_seed
from repro.graph import separate_views
from repro.walks import BiasedCorrelatedPolicy

_CONFIG = dict(
    dim=8,
    walk_length=8,
    walk_floor=2,
    walk_cap=3,
    num_iterations=2,
    cross_path_len=3,
    cross_paths_per_pair=8,
    num_encoders=1,
    batch_size=64,
    seed=7,
)


@pytest.fixture(scope="module")
def toy_view():
    graph, _ = two_view_toy()
    return separate_views(graph)[0]


@pytest.fixture(scope="module")
def expected_corpus(toy_view):
    """The fault-free corpus every chaos build must reproduce exactly."""
    seed = single_view_seed(7, 0, 3)
    with ParallelRuntime(2) as healthy:
        return healthy.build_corpus(
            toy_view, BiasedCorrelatedPolicy(), length=8, seed_seq=seed
        )


def _chaos_build(toy_view, runtime):
    seed = single_view_seed(7, 0, 3)
    return runtime.build_corpus(
        toy_view, BiasedCorrelatedPolicy(), length=8, seed_seq=seed
    )


# ----------------------------------------------------------------------
# the injector itself
# ----------------------------------------------------------------------
class TestInjector:
    def test_fires_exact_count(self):
        injector = FaultInjector().arm("worker.exception", times=2)
        assert injector.should_fire("worker.exception")
        assert injector.should_fire("worker.exception")
        assert not injector.should_fire("worker.exception")
        assert injector.fired["worker.exception"] == 2
        assert injector.armed_points() == []

    def test_skip_lets_early_invocations_through(self):
        injector = FaultInjector().arm("spill.bitflip", skip=2)
        assert [injector.should_fire("spill.bitflip") for _ in range(4)] == [
            False, False, True, False,
        ]

    def test_unarmed_point_never_fires(self):
        injector = FaultInjector()
        assert not injector.should_fire("worker.crash")
        assert injector.fired == {}

    def test_unknown_point_rejected(self):
        injector = FaultInjector()
        with pytest.raises(ValueError, match="unknown fault point"):
            injector.arm("worker.bogus")
        with pytest.raises(ValueError, match="unknown fault point"):
            injector.should_fire("worker.bogus")

    def test_arm_validates_counts(self):
        with pytest.raises(ValueError, match="times"):
            FaultInjector().arm("worker.crash", times=0)
        with pytest.raises(ValueError, match="skip"):
            FaultInjector().arm("worker.crash", skip=-1)

    def test_from_spec(self):
        injector = FaultInjector.from_spec("worker.crash, spill.bitflip:2")
        assert injector.armed_points() == ["spill.bitflip", "worker.crash"]
        assert injector.should_fire("spill.bitflip")
        assert injector.should_fire("spill.bitflip")
        assert not injector.should_fire("spill.bitflip")

    def test_from_spec_bad_entry(self):
        with pytest.raises(ValueError, match="point\\[:times\\]"):
            FaultInjector.from_spec("worker.crash:lots")
        with pytest.raises(ValueError, match="unknown fault point"):
            FaultInjector.from_spec("worker.sulk")

    def test_from_spec_empty(self):
        with pytest.raises(ValueError, match="arms no fault points"):
            FaultInjector.from_spec(" , ")

    def test_fire_os_error(self):
        injector = FaultInjector().arm("spill.write_enospc")
        with pytest.raises(OSError) as excinfo:
            injector.fire_os_error("spill.write_enospc")
        assert excinfo.value.errno == errno.ENOSPC
        injector.fire_os_error("spill.write_enospc")  # exhausted: no-op

    def test_rng_is_seeded_and_per_point(self):
        a = FaultInjector(seed=11).rng("spill.bitflip").integers(1 << 30)
        b = FaultInjector(seed=11).rng("spill.bitflip").integers(1 << 30)
        c = FaultInjector(seed=11).rng("worker.crash").integers(1 << 30)
        d = FaultInjector(seed=12).rng("spill.bitflip").integers(1 << 30)
        assert a == b
        assert a != c
        assert a != d

    def test_scoped_restores_previous(self):
        assert faults.get_active() is None
        outer = FaultInjector()
        with scoped(outer):
            assert faults.get_active() is outer
            with scoped(FaultInjector()):
                assert faults.get_active() is not outer
            assert faults.get_active() is outer
        assert faults.get_active() is None

    def test_metrics_binding(self):
        metrics = MetricsRegistry()
        injector = FaultInjector().arm("worker.exception")
        injector.bind_metrics(metrics)
        assert injector.should_fire("worker.exception")
        assert metrics.counters["faults/injected/worker.exception"] == 1.0
        kinds = [event["kind"] for event in metrics.events]
        assert "faults/armed" in kinds
        assert "faults/injected" in kinds


# ----------------------------------------------------------------------
# pool chaos: every worker fault must leave the corpus bit-identical
# ----------------------------------------------------------------------
class TestWorkerFaults:
    def test_sigkilled_worker_bit_identical(self, toy_view, expected_corpus):
        metrics = MetricsRegistry()
        injector = FaultInjector(seed=7).arm("worker.crash")
        injector.bind_metrics(metrics)
        with scoped(injector):
            with ParallelRuntime(
                2, metrics=metrics, relaunch_backoff=0.0
            ) as rt:
                corpus = _chaos_build(toy_view, rt)
                assert injector.fired["worker.crash"] == 1
                assert rt.pool_failures == 1  # SIGKILL broke the pool
                assert not rt.pool_broken  # budget left: not demoted
        np.testing.assert_array_equal(corpus.matrix, expected_corpus.matrix)
        np.testing.assert_array_equal(corpus.lengths, expected_corpus.lengths)
        assert metrics.counters["faults/injected/worker.crash"] == 1.0
        kinds = [event["kind"] for event in metrics.events]
        assert "parallel/pool_lost" in kinds

    def test_worker_exception_retries_that_shard(
        self, toy_view, expected_corpus
    ):
        metrics = MetricsRegistry()
        injector = FaultInjector(seed=7).arm("worker.exception")
        with scoped(injector):
            with ParallelRuntime(2, metrics=metrics) as rt:
                corpus = _chaos_build(toy_view, rt)
                # the pool survives: only the poisoned shard replays
                assert rt.pool_failures == 0
                assert rt._pool is not None
        np.testing.assert_array_equal(corpus.matrix, expected_corpus.matrix)
        np.testing.assert_array_equal(corpus.lengths, expected_corpus.lengths)
        assert metrics.counters["parallel/shard_retry"] == 1.0

    def test_hung_worker_trips_watchdog(self, toy_view, expected_corpus):
        metrics = MetricsRegistry()
        injector = FaultInjector(seed=7, hang_seconds=120.0).arm("worker.hang")
        with scoped(injector):
            with ParallelRuntime(
                2,
                metrics=metrics,
                shard_timeout=0.5,
                relaunch_backoff=0.0,
            ) as rt:
                corpus = _chaos_build(toy_view, rt)
                assert rt.pool_failures == 1  # hung pool was killed
        np.testing.assert_array_equal(corpus.matrix, expected_corpus.matrix)
        np.testing.assert_array_equal(corpus.lengths, expected_corpus.lengths)
        assert metrics.counters["parallel/shard_timeout"] == 1.0

    def test_exhausted_relaunch_budget_demotes(self, toy_view, expected_corpus):
        metrics = MetricsRegistry()
        injector = FaultInjector(seed=7).arm("worker.crash")
        with scoped(injector):
            with ParallelRuntime(
                2,
                metrics=metrics,
                max_pool_relaunches=1,
                relaunch_backoff=0.0,
            ) as rt:
                first = _chaos_build(toy_view, rt)  # loss 1: budget left
                assert not rt.pool_broken
                injector.arm("worker.crash")  # crash the relaunched pool too
                second = _chaos_build(toy_view, rt)  # loss 2: demoted
                assert rt.pool_broken
                third = _chaos_build(toy_view, rt)  # in-process, quiet
        for corpus in (first, second, third):
            np.testing.assert_array_equal(
                corpus.matrix, expected_corpus.matrix
            )
        assert metrics.counters["parallel/fallback"] == 1.0


# ----------------------------------------------------------------------
# checkpoint write errors degrade, never kill the run
# ----------------------------------------------------------------------
class _Provider:
    def state_dict(self):
        return {"value": 1.0}

    def load_state_dict(self, state):
        pass


class TestCheckpointWriteError:
    def test_failed_save_warns_and_training_continues(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        metrics = MetricsRegistry()
        saver = Checkpointer(manager, _Provider(), every=1)
        phase = CallablePhase("train", lambda loop, epoch: {"loss": 1.0})
        loop = TrainingLoop([phase], callbacks=[saver], metrics=metrics)
        injector = FaultInjector().arm("checkpoint.write_error")
        with scoped(injector):
            with pytest.warns(RuntimeWarning, match="checkpoint save"):
                loop.run(2)
        # epoch 1's snapshot was lost; epoch 2's landed on the retry
        assert manager.steps() == [2]
        assert saver.write_errors == 1
        assert metrics.counters["checkpoint/write_errors"] == 1.0
        kinds = [event["kind"] for event in metrics.events]
        assert "checkpoint/write_errors" in kinds

    def test_real_oserror_also_degrades(self, tmp_path, monkeypatch):
        manager = CheckpointManager(tmp_path)
        saver = Checkpointer(manager, _Provider(), every=1)
        phase = CallablePhase("train", lambda loop, epoch: {"loss": 1.0})
        loop = TrainingLoop([phase], callbacks=[saver])

        def broken_save(state, step):
            raise OSError(errno.ENOSPC, "no space left on device")

        monkeypatch.setattr(manager, "save", broken_save)
        with pytest.warns(RuntimeWarning, match="training continues"):
            loop.run(2)
        assert loop.epochs_completed == 2
        assert saver.write_errors == 3  # epochs 1, 2 and the end-of-run save


# ----------------------------------------------------------------------
# end to end: a chaos fit must equal the fault-free fit bit for bit
# ----------------------------------------------------------------------
def _fit(spill_dir=None, **overrides):
    graph, _ = two_view_toy()
    config = dict(_CONFIG, workers=1, **overrides)
    if spill_dir is not None:
        config.update(stream_corpus=True, spill_dir=str(spill_dir))
    model = TransN(graph, TransNConfig(**config))
    model.fit()
    emb = model.embeddings()
    if model._parallel is not None:
        model._parallel.shutdown()
    return emb


class TestModelChaos:
    def test_chaos_fit_matches_clean_fit(self, tmp_path):
        clean = _fit(spill_dir=tmp_path / "clean")
        injector = (
            FaultInjector(seed=7)
            .arm("worker.crash")
            .arm("spill.bitflip")
        )
        with scoped(injector):
            chaotic = _fit(spill_dir=tmp_path / "chaos")
        assert injector.fired["worker.crash"] == 1
        assert injector.fired["spill.bitflip"] == 1
        assert set(clean) == set(chaotic)
        for node in clean:
            np.testing.assert_array_equal(clean[node], chaotic[node])

    def test_enospc_while_recording_matches_clean_fit(self, tmp_path):
        clean = _fit(spill_dir=tmp_path / "clean")
        injector = FaultInjector(seed=7).arm("spill.write_enospc")
        with scoped(injector):
            chaotic = _fit(spill_dir=tmp_path / "chaos")
        assert injector.fired["spill.write_enospc"] == 1
        for node in clean:
            np.testing.assert_array_equal(clean[node], chaotic[node])

    def test_on_spill_error_raise_propagates(self, tmp_path):
        injector = FaultInjector(seed=7).arm("spill.write_enospc")
        with scoped(injector):
            with pytest.raises(OSError):
                _fit(spill_dir=tmp_path / "chaos", on_spill_error="raise")

    def test_worker_exception_fit_matches_clean_fit(self):
        clean = _fit()
        injector = FaultInjector(seed=7).arm("worker.exception")
        with scoped(injector):
            chaotic = _fit()
        assert injector.fired["worker.exception"] == 1
        for node in clean:
            np.testing.assert_array_equal(clean[node], chaotic[node])
