"""Tests for the engine's streaming batch pipelines."""

import numpy as np
import pytest

from repro.engine import CorpusPipeline, EdgeSamplingPipeline, SkipGramBatch
from repro.walks.corpus import WalkCorpus


def _fixed_corpus_pipeline(rng, *, batch_size=8, num_negatives=3, window=2):
    walks = [[(i + j) % 5 for j in range(6)] for i in range(4)]
    return CorpusPipeline(
        sample_corpus=lambda: WalkCorpus.from_paths(
            [list(w) for w in walks], 6
        ),
        num_nodes=5,
        window=window,
        num_negatives=num_negatives,
        batch_size=batch_size,
        rng=rng,
    )


class TestCorpusPipeline:
    def test_batch_shapes(self, rng):
        pipeline = _fixed_corpus_pipeline(rng)
        batches = list(pipeline.epoch())
        assert batches
        for batch in batches:
            assert isinstance(batch, SkipGramBatch)
            assert batch.centers.shape == batch.contexts.shape
            assert batch.negatives.shape == (len(batch), 3)
            assert batch.centers.dtype == np.int64

    def test_all_pairs_covered_once(self, rng):
        pipeline = _fixed_corpus_pipeline(rng, batch_size=7)
        corpus = pipeline.sample_corpus()
        centers, contexts = pipeline.pairs(corpus)
        batches = list(pipeline.epoch())
        streamed_centers = np.concatenate([b.centers for b in batches])
        streamed_contexts = np.concatenate([b.contexts for b in batches])
        np.testing.assert_array_equal(streamed_centers, centers)
        np.testing.assert_array_equal(streamed_contexts, contexts)
        # last batch carries the remainder, every other one is full
        assert all(len(b) == 7 for b in batches[:-1])
        assert 1 <= len(batches[-1]) <= 7

    def test_pair_multiset_matches_window_scan(self, rng):
        """The vectorized extraction equals the per-walk window scan."""
        from repro.skipgram import extract_pairs

        pipeline = _fixed_corpus_pipeline(rng, window=2)
        corpus = pipeline.sample_corpus()
        centers, contexts = pipeline.pairs(corpus)
        expected = []
        for walk in corpus.paths() if corpus.graph else corpus:
            expected.extend(extract_pairs(list(walk), 2))
        got = sorted(zip(centers.tolist(), contexts.tolist()))
        assert got == sorted((int(a), int(b)) for a, b in expected)

    def test_indices_in_range(self, rng):
        pipeline = _fixed_corpus_pipeline(rng)
        for batch in pipeline.epoch():
            for arr in (batch.centers, batch.contexts, batch.negatives):
                assert arr.min() >= 0
                assert arr.max() < 5

    def test_noise_table_cached_across_epochs(self, rng):
        pipeline = _fixed_corpus_pipeline(rng)
        corpus = pipeline.sample_corpus()
        first = pipeline.noise(corpus)
        assert pipeline.noise(corpus) is first
        list(pipeline.epoch())
        assert pipeline._noise is first

    def test_noise_counts_are_corpus_frequencies(self, rng):
        pipeline = _fixed_corpus_pipeline(rng)
        corpus = pipeline.sample_corpus()
        counts = corpus.frequency_counts(5)
        expected = np.zeros(5)
        for walk in corpus:
            for node in walk:
                expected[int(node)] += 1
        np.testing.assert_array_equal(counts, expected)

    def test_same_seed_streams_identical_batches(self):
        runs = []
        for _ in range(2):
            pipeline = _fixed_corpus_pipeline(np.random.default_rng(99))
            runs.append(list(pipeline.epoch()))
        assert len(runs[0]) == len(runs[1])
        for a, b in zip(runs[0], runs[1]):
            np.testing.assert_array_equal(a.negatives, b.negatives)

    def test_empty_corpus_yields_nothing(self, rng):
        pipeline = CorpusPipeline(
            sample_corpus=lambda: WalkCorpus.from_paths([], 0),
            num_nodes=3,
            window=2,
            rng=rng,
        )
        assert list(pipeline.epoch()) == []

    def test_validation(self, rng):
        kwargs = dict(
            sample_corpus=lambda: WalkCorpus.from_paths([], 0),
            num_nodes=3,
        )
        with pytest.raises(ValueError):
            CorpusPipeline(window=0, **kwargs)
        with pytest.raises(ValueError):
            CorpusPipeline(window=2, num_negatives=0, **kwargs)
        with pytest.raises(ValueError):
            CorpusPipeline(window=2, batch_size=0, **kwargs)


class TestEdgeSamplingPipeline:
    def test_total_samples_and_shapes(self, triangle, rng):
        pipeline = EdgeSamplingPipeline(
            triangle, num_samples=100, num_negatives=2, batch_size=32, rng=rng
        )
        batches = list(pipeline.epoch())
        assert sum(len(b) for b in batches) == 100
        assert all(b.negatives.shape == (len(b), 2) for b in batches)
        # 100 = 32 + 32 + 32 + 4
        assert [len(b) for b in batches] == [32, 32, 32, 4]

    def test_pairs_are_graph_edges(self, triangle, rng):
        pipeline = EdgeSamplingPipeline(triangle, num_samples=64, rng=rng)
        edge_set = {
            frozenset((triangle.index_of(e.u), triangle.index_of(e.v)))
            for e in triangle.edges
        }
        for batch in pipeline.epoch():
            for c, x in zip(batch.centers, batch.contexts):
                assert frozenset((int(c), int(x))) in edge_set

    def test_rejects_empty_graph(self, rng):
        from repro.graph import HeteroGraph

        empty = HeteroGraph()
        empty.add_node("a", "t")
        with pytest.raises(ValueError, match="at least one edge"):
            EdgeSamplingPipeline(empty, num_samples=10, rng=rng)
