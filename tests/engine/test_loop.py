"""Tests for the engine's TrainingLoop and callback system."""

import numpy as np
import pytest

from repro.engine import (
    Callback,
    CallablePhase,
    EarlyStopping,
    LinearLRDecay,
    LossHistory,
    PhaseTimer,
    ProgressReporter,
    SkipGramPhase,
    TrainingLoop,
)


class RecordingCallback(Callback):
    """Logs every hook invocation as a tagged tuple."""

    def __init__(self):
        self.events = []

    def on_train_begin(self, loop):
        self.events.append("train_begin")

    def on_epoch_begin(self, loop, epoch):
        self.events.append(f"epoch_begin:{epoch}")

    def on_phase_begin(self, loop, epoch, phase):
        self.events.append(f"phase_begin:{epoch}:{phase.name}")

    def on_batch_end(self, loop, epoch, phase, batch_index, loss):
        self.events.append(f"batch_end:{epoch}:{phase.name}:{batch_index}")

    def on_phase_end(self, loop, epoch, phase, losses):
        self.events.append(f"phase_end:{epoch}:{phase.name}")

    def on_epoch_end(self, loop, epoch, logs):
        self.events.append(f"epoch_end:{epoch}")

    def on_train_end(self, loop):
        self.events.append("train_end")


class TestCallbackOrder:
    def test_full_invocation_order(self):
        recorder = RecordingCallback()
        phases = [
            CallablePhase("alpha", lambda loop, epoch: 1.0),
            CallablePhase("beta", lambda loop, epoch: {"x": 2.0}),
        ]
        TrainingLoop(phases, callbacks=[recorder]).run(2)
        assert recorder.events == [
            "train_begin",
            "epoch_begin:0",
            "phase_begin:0:alpha",
            "phase_end:0:alpha",
            "phase_begin:0:beta",
            "phase_end:0:beta",
            "epoch_end:0",
            "epoch_begin:1",
            "phase_begin:1:alpha",
            "phase_end:1:alpha",
            "phase_begin:1:beta",
            "phase_end:1:beta",
            "epoch_end:1",
            "train_end",
        ]

    def test_batch_hooks_fire_between_phase_bounds(self):
        recorder = RecordingCallback()

        def fake_sgns(loop, epoch):
            phase = loop.phases[0]
            for b in range(3):
                loop.notify_batch(epoch, phase, b, 0.5)
            return 0.5

        TrainingLoop(
            [CallablePhase("sgns", fake_sgns)], callbacks=[recorder]
        ).run(1)
        assert recorder.events == [
            "train_begin",
            "epoch_begin:0",
            "phase_begin:0:sgns",
            "batch_end:0:sgns:0",
            "batch_end:0:sgns:1",
            "batch_end:0:sgns:2",
            "phase_end:0:sgns",
            "epoch_end:0",
            "train_end",
        ]

    def test_internal_history_and_timer_fire_before_user_callbacks(self):
        seen = {}

        class Peek(Callback):
            def on_phase_end(self, loop, epoch, phase, losses):
                # the internal LossHistory already recorded this phase
                seen["recorded"] = len(loop.callbacks[0].history[phase.name])

        TrainingLoop(
            [CallablePhase("p", lambda loop, epoch: 1.0)], callbacks=[Peek()]
        ).run(1)
        assert seen["recorded"] == 1


class TestLoopBasics:
    def test_needs_phases(self):
        with pytest.raises(ValueError):
            TrainingLoop([])

    def test_phase_names_must_be_unique(self):
        with pytest.raises(ValueError, match="unique"):
            TrainingLoop(
                [
                    CallablePhase("p", lambda l, e: 0.0),
                    CallablePhase("p", lambda l, e: 0.0),
                ]
            )

    def test_result_history_and_epochs(self):
        losses = iter([3.0, 2.0, 1.0])
        loop = TrainingLoop(
            [CallablePhase("p", lambda l, e: next(losses))]
        )
        result = loop.run(3)
        assert result.epochs_run == 3
        assert not result.stopped_early
        assert result.series("p") == [3.0, 2.0, 1.0]
        assert result.history["p"] == [
            {"loss": 3.0},
            {"loss": 2.0},
            {"loss": 1.0},
        ]

    def test_timings_cover_every_phase(self):
        result = TrainingLoop(
            [
                CallablePhase("a", lambda l, e: 0.0),
                CallablePhase("b", lambda l, e: None),
            ]
        ).run(2)
        assert set(result.timings) == {"a", "b"}
        assert all(v >= 0 for v in result.timings.values())
        assert len(result.epoch_timings["a"]) == 2

    def test_none_and_dict_returns(self):
        result = TrainingLoop(
            [
                CallablePhase("empty", lambda l, e: None),
                CallablePhase("named", lambda l, e: {"t": 1.0, "r": 2.0}),
            ]
        ).run(1)
        assert result.history["empty"] == [{}]
        assert result.history["named"] == [{"t": 1.0, "r": 2.0}]


class TestEarlyStopping:
    def test_stops_after_patience_without_improvement(self):
        losses = iter([5.0, 4.0, 4.0, 4.0, 4.0, 4.0, 4.0, 4.0])
        stopper = EarlyStopping(phase="p", patience=2)
        result = TrainingLoop(
            [CallablePhase("p", lambda l, e: next(losses))],
            callbacks=[stopper],
        ).run(8)
        # epochs 0,1 improve; 2 and 3 are stale -> stop after epoch 3
        assert result.stopped_early
        assert result.epochs_run == 4
        assert stopper.stopped_epoch == 3

    def test_runs_to_completion_when_improving(self):
        losses = iter([5.0, 4.0, 3.0, 2.0, 1.0])
        result = TrainingLoop(
            [CallablePhase("p", lambda l, e: next(losses))],
            callbacks=[EarlyStopping(phase="p", patience=2)],
        ).run(5)
        assert not result.stopped_early
        assert result.epochs_run == 5

    def test_min_delta_counts_tiny_improvements_as_stale(self):
        losses = iter([5.0, 4.999, 4.998, 4.997])
        result = TrainingLoop(
            [CallablePhase("p", lambda l, e: next(losses))],
            callbacks=[EarlyStopping(phase="p", patience=2, min_delta=0.1)],
        ).run(4)
        assert result.stopped_early
        assert result.epochs_run == 3

    def test_missing_phase_losses_are_ignored(self):
        result = TrainingLoop(
            [CallablePhase("p", lambda l, e: None)],
            callbacks=[EarlyStopping(phase="p", patience=1)],
        ).run(4)
        assert not result.stopped_early
        assert result.epochs_run == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            EarlyStopping(phase="p", patience=0)
        with pytest.raises(ValueError):
            EarlyStopping(phase="p", min_delta=-1.0)


class TestLRDecay:
    def test_linear_schedule_reaches_end_lr(self):
        seen = []

        class FakeSkipGram(CallablePhase):
            def __init__(self):
                super().__init__("sgns", lambda l, e: seen.append(self.lr))
                self.lr = 0.0

        phase = FakeSkipGram()
        TrainingLoop(
            [phase],
            callbacks=[
                LinearLRDecay(["sgns"], start_lr=0.1, end_lr=0.01, num_epochs=4)
            ],
        ).run(4)
        assert seen[0] == pytest.approx(0.1)
        assert seen[-1] == pytest.approx(0.01)
        assert seen == sorted(seen, reverse=True)

    def test_only_named_phases_touched(self):
        class LrPhase(CallablePhase):
            def __init__(self, name):
                super().__init__(name, lambda l, e: 0.0)
                self.lr = 1.0

        scheduled, untouched = LrPhase("a"), LrPhase("b")
        TrainingLoop(
            [scheduled, untouched],
            callbacks=[
                LinearLRDecay(["a"], start_lr=0.5, end_lr=0.5, num_epochs=2)
            ],
        ).run(2)
        assert scheduled.lr == pytest.approx(0.5)
        assert untouched.lr == 1.0


class TestLossHistoryCallback:
    def test_series_skips_epochs_without_the_loss(self):
        history = LossHistory()
        values = iter([{"loss": 1.0}, {}, {"loss": 0.5}])
        TrainingLoop(
            [CallablePhase("p", lambda l, e: next(values))],
            callbacks=[history],
        ).run(3)
        assert history.series("p") == [1.0, 0.5]
        assert len(history.history["p"]) == 3


class TestProgressReporter:
    def test_prints_one_line_per_epoch(self):
        lines = []
        TrainingLoop(
            [CallablePhase("p", lambda l, e: 1.5)],
            callbacks=[ProgressReporter(print_fn=lines.append)],
        ).run(2)
        assert len(lines) == 2
        assert "[epoch 1/2]" in lines[0]
        assert "loss=1.5000" in lines[0]


class TestSkipGramPhaseIntegration:
    def test_phase_trains_through_pipeline(self, rng):
        from repro.engine import CorpusPipeline
        from repro.skipgram import SkipGramTrainer
        from repro.walks.corpus import WalkCorpus

        num_nodes = 6
        walks = [[i % num_nodes for i in range(j, j + 4)] for j in range(12)]

        pipeline = CorpusPipeline(
            sample_corpus=lambda: WalkCorpus.from_paths(walks, 4),
            num_nodes=num_nodes,
            window=1,
            num_negatives=2,
            batch_size=8,
            rng=rng,
        )
        matrix = rng.normal(0, 0.1, size=(num_nodes, 4))
        before = matrix.copy()
        trainer = SkipGramTrainer(matrix, rng=rng)
        phase = SkipGramPhase("sgns", pipeline, trainer, lr=0.05)
        result = TrainingLoop([phase]).run(3)
        assert len(result.series("sgns")) == 3
        assert not np.allclose(matrix, before)
