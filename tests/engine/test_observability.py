"""Tests for the observability layer: metrics, tracing, run reports.

Covers the registry's aggregate/bounding semantics, the Null no-ops that
make the layer zero-cost when disabled, span-tree nesting (with and
without ``tracemalloc`` peaks), the versioned report document and its
validation errors, the :class:`TrainingLoop` integration, and the full
``TransN.fit(report=...)`` acceptance path on the app-store fixture.
"""

import json
import math

import numpy as np
import pytest

from repro.core import TransN, TransNConfig
from repro.datasets import make_app_daily
from repro.engine import CallablePhase, TrainingLoop
from repro.engine.observability import (
    NULL_REGISTRY,
    NULL_TRACER,
    REPORT_FORMAT,
    REPORT_VERSION,
    MetricsRegistry,
    NullRegistry,
    NullTracer,
    RunReport,
    Tracer,
    load_report,
)


class TestMetricsRegistry:
    def test_counters_accumulate(self):
        registry = MetricsRegistry()
        registry.counter("batches")
        registry.counter("batches", 4)
        registry.counter("other", 2.5)
        assert registry.counters == {"batches": 5.0, "other": 2.5}

    def test_gauges_keep_last_value(self):
        registry = MetricsRegistry()
        registry.gauge("bytes", 100)
        registry.gauge("bytes", 42)
        assert registry.gauges == {"bytes": 42.0}

    def test_series_aggregates_are_exact(self):
        registry = MetricsRegistry()
        values = [3.0, -1.0, 2.0, 2.0]
        for v in values:
            registry.observe("loss", v)
        entry = registry.snapshot()["series"]["loss"]
        assert entry["count"] == 4
        assert entry["total"] == pytest.approx(sum(values))
        assert entry["min"] == -1.0
        assert entry["max"] == 3.0
        assert entry["last"] == 2.0
        assert entry["mean"] == pytest.approx(sum(values) / 4)
        assert entry["tail"] == values
        assert entry["tail_start"] == 0

    def test_series_tail_is_bounded_but_aggregates_cover_all(self):
        registry = MetricsRegistry(max_series_points=3)
        for v in range(10):
            registry.observe("loss", float(v))
        entry = registry.snapshot()["series"]["loss"]
        assert entry["tail"] == [7.0, 8.0, 9.0]
        assert entry["tail_start"] == 7
        assert entry["count"] == 10
        assert entry["total"] == pytest.approx(45.0)
        assert entry["min"] == 0.0 and entry["max"] == 9.0

    def test_series_lookup_helpers(self):
        registry = MetricsRegistry()
        registry.observe("b", 1.0)
        registry.observe("a", 2.0)
        assert registry.series_names() == ["a", "b"]
        assert registry.series_values("b") == [1.0]
        assert registry.series_values("missing") == []

    def test_timer_aggregates(self):
        ticks = iter([0.0, 1.0, 10.0, 13.0])
        registry = MetricsRegistry()
        for _ in range(2):
            with registry.timer("phase", clock=lambda: next(ticks)):
                pass
        entry = registry.snapshot()["timers"]["phase"]
        assert entry["count"] == 2
        assert entry["total_s"] == pytest.approx(4.0)
        assert entry["min_s"] == pytest.approx(1.0)
        assert entry["max_s"] == pytest.approx(3.0)
        assert entry["mean_s"] == pytest.approx(2.0)

    def test_events_bounded_with_drop_count(self):
        registry = MetricsRegistry(max_events=2)
        registry.event("a", "first", epoch=0)
        registry.event("b")
        registry.event("c")
        registry.event("d")
        snapshot = registry.snapshot()
        assert [e["kind"] for e in snapshot["events"]] == ["a", "b"]
        assert snapshot["events"][0]["data"] == {"epoch": 0}
        assert [e["seq"] for e in snapshot["events"]] == [0, 1]
        assert snapshot["dropped_events"] == 2

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="max_series_points"):
            MetricsRegistry(max_series_points=0)
        with pytest.raises(ValueError, match="max_events"):
            MetricsRegistry(max_events=0)

    def test_snapshot_is_json_serializable(self):
        registry = MetricsRegistry()
        registry.counter("c")
        registry.gauge("g", 1)
        registry.observe("s", 2.0)
        with registry.timer("t"):
            pass
        registry.event("e", "msg", detail="x")
        json.dumps(registry.snapshot())  # must not raise


class TestNullObjects:
    def test_null_registry_records_nothing(self):
        registry = NullRegistry()
        assert registry.enabled is False
        registry.counter("c", 5)
        registry.gauge("g", 1)
        registry.observe("s", 2.0)
        registry.event("e")
        with registry.timer("t"):
            pass
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {}
        assert snapshot["series"] == {}
        assert snapshot["timers"] == {}
        assert snapshot["events"] == []

    def test_null_singletons_disabled(self):
        assert NULL_REGISTRY.enabled is False
        assert NULL_TRACER.enabled is False

    def test_null_tracer_yields_none(self):
        tracer = NullTracer()
        with tracer.span("run", kind="run") as span:
            assert span is None
        assert tracer.to_dict()["spans"] == []
        tracer.close()  # no-op, must not raise


class TestTracer:
    def test_span_tree_nests(self):
        ticks = iter(np.arange(0.0, 100.0, 1.0))
        tracer = Tracer(clock=lambda: float(next(ticks)))
        with tracer.span("run", kind="run"):
            with tracer.span("epoch", kind="epoch", epoch=0):
                with tracer.span("single_view", kind="phase"):
                    pass
            with tracer.span("epoch", kind="epoch", epoch=1):
                pass
        tree = tracer.to_dict()
        assert len(tree["spans"]) == 1
        run = tree["spans"][0]
        assert run["name"] == "run" and run["kind"] == "run"
        epochs = run["children"]
        assert [e["attributes"]["epoch"] for e in epochs] == [0, 1]
        assert epochs[0]["children"][0]["name"] == "single_view"
        # the injected clock advances one tick per call
        assert run["duration_s"] > epochs[0]["duration_s"] > 0

    def test_max_spans_cap(self):
        tracer = Tracer(max_spans=2)
        for _ in range(4):
            with tracer.span("s") as span:
                pass
        assert span is None
        assert len(tracer.roots) == 2
        assert tracer.to_dict()["dropped_spans"] == 2

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="max_spans"):
            Tracer(max_spans=0)

    def test_memory_peaks_cover_children(self):
        tracer = Tracer(trace_memory=True)
        try:
            with tracer.span("parent") as parent:
                with tracer.span("child") as child:
                    block = np.zeros(200_000)  # ~1.6 MB inside the child
                del block
        finally:
            tracer.close()
        assert child.memory_peak_bytes >= 1_000_000
        assert parent.memory_peak_bytes >= child.memory_peak_bytes

    def test_close_stops_tracemalloc_only_if_started(self):
        import tracemalloc

        assert not tracemalloc.is_tracing()
        tracer = Tracer(trace_memory=True)
        assert tracemalloc.is_tracing()
        tracer.close()
        assert not tracemalloc.is_tracing()
        tracer.close()  # idempotent


class TestRunReport:
    def test_write_and_load_round_trip(self, tmp_path):
        registry = MetricsRegistry()
        registry.observe("loss", 0.5)
        registry.counter("batches", 3)
        tracer = Tracer()
        with tracer.span("run", kind="run"):
            pass
        path = tmp_path / "report.json"
        RunReport(registry, tracer, metadata={"model": "test"}).write(path)
        document = load_report(path)
        assert document["format"] == REPORT_FORMAT
        assert document["version"] == REPORT_VERSION
        assert document["metadata"] == {"model": "test"}
        assert document["metrics"]["counters"]["batches"] == 3.0
        assert document["metrics"]["series"]["loss"]["last"] == 0.5
        assert document["trace"]["spans"][0]["name"] == "run"

    def test_report_without_tracer_has_null_trace(self, tmp_path):
        path = tmp_path / "r.json"
        RunReport(MetricsRegistry()).write(path)
        assert load_report(path)["trace"] is None

    def test_load_rejects_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_report(path)

    def test_load_rejects_foreign_documents(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"benchmark": "walk_engine"}))
        with pytest.raises(ValueError, match="format marker"):
            load_report(path)

    def test_load_rejects_future_versions(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text(
            json.dumps({"format": REPORT_FORMAT, "version": REPORT_VERSION + 1})
        )
        with pytest.raises(ValueError, match="unsupported report version"):
            load_report(path)


class TestLoopIntegration:
    def _phases(self):
        return [
            CallablePhase("alpha", lambda loop, epoch: {"loss": 1.0 / (epoch + 1)}),
            CallablePhase("beta", lambda loop, epoch: 0.5),
        ]

    def test_loop_records_phase_series_and_spans(self):
        registry = MetricsRegistry()
        tracer = Tracer()
        loop = TrainingLoop(self._phases(), metrics=registry, tracer=tracer)
        loop.run(3)
        assert registry.series_values("phase/alpha/loss") == [1.0, 0.5, pytest.approx(1 / 3)]
        assert registry.series_values("phase/beta/loss") == [0.5] * 3
        assert len(registry.series_values("phase/alpha/seconds")) == 3
        assert registry.gauges["loop/epochs_completed"] == 3.0
        run = tracer.to_dict()["spans"][0]
        assert run["kind"] == "run"
        assert [c["kind"] for c in run["children"]] == ["epoch"] * 3
        assert [p["name"] for p in run["children"][0]["children"]] == [
            "alpha",
            "beta",
        ]

    def test_loop_without_observability_unchanged(self):
        loop = TrainingLoop(self._phases())
        run = loop.run(2)
        assert loop.metrics is NULL_REGISTRY
        assert loop.tracer is NULL_TRACER
        assert run.epochs_run == 2

    def test_rollback_counted_and_span_flagged(self):
        registry = MetricsRegistry()
        tracer = Tracer()
        rolled = []

        def flaky(loop, epoch):
            if epoch == 1 and not rolled:
                rolled.append(epoch)
                loop.request_retry()
            return 0.0

        loop = TrainingLoop(
            [CallablePhase("alpha", flaky)], metrics=registry, tracer=tracer
        )
        loop.run(3)
        assert registry.counters["loop/rollbacks"] == 1.0
        kinds = [e["kind"] for e in registry.events]
        assert "epoch_rollback" in kinds
        epochs = tracer.to_dict()["spans"][0]["children"]
        flags = [e.get("attributes", {}).get("rolled_back") for e in epochs]
        assert flags.count(True) == 1


class TestTransNReport:
    """The acceptance path: fit(report=...) on the app-store fixture."""

    @pytest.fixture(scope="class")
    def report_document(self, tmp_path_factory):
        graph, _ = make_app_daily(
            seed=13, num_applets=40, num_users=20, num_keywords=15
        )
        config = TransNConfig(dim=8, num_iterations=2, seed=0)
        path = tmp_path_factory.mktemp("obs") / "run.json"
        model = TransN(graph, config)
        model.fit(report=path)
        return model, load_report(path)

    def test_document_is_versioned_and_described(self, report_document):
        model, document = report_document
        assert document["format"] == REPORT_FORMAT
        assert document["version"] == REPORT_VERSION
        meta = document["metadata"]
        assert meta["model"] == "transn"
        assert meta["config"]["num_iterations"] == 2
        assert meta["graph"]["num_views"] == len(model.views)
        assert meta["epochs_run"] == 2

    def test_per_epoch_spans_present(self, report_document):
        _, document = report_document
        run = document["trace"]["spans"][0]
        assert run["kind"] == "run"
        epochs = [c for c in run["children"] if c["kind"] == "epoch"]
        assert len(epochs) == 2
        for epoch in epochs:
            phase_names = {p["name"] for p in epoch["children"]}
            assert "single_view" in phase_names
            assert "cross_view" in phase_names

    def test_per_view_single_view_losses(self, report_document):
        model, document = report_document
        series = document["metrics"]["series"]
        for trainer in model.single_trainers:
            name = f"single_view/{trainer.view.edge_type}/loss"
            assert series[name]["count"] == 2
            assert math.isfinite(series[name]["mean"])

    def test_per_direction_cross_view_losses(self, report_document):
        model, document = report_document
        series = document["metrics"]["series"]
        assert model.cross_trainers, "fixture must produce view pairs"
        for trainer in model.cross_trainers:
            pair = trainer.pair
            ti = pair.view_i.edge_type
            tj = pair.view_j.edge_type
            for direction in (f"{ti}->{tj}", f"{tj}->{ti}"):
                base = f"cross_view/{ti}+{tj}/{direction}"
                assert series[f"{base}/translation"]["count"] >= 1
                assert series[f"{base}/reconstruction"]["count"] >= 1

    def test_negative_sampling_and_grad_norm_stats(self, report_document):
        model, document = report_document
        metrics = document["metrics"]
        trainer = model.single_trainers[0]
        prefix = f"single_view/{trainer.view.edge_type}"
        assert metrics["counters"][f"{prefix}/negatives/drawn"] > 0
        unique = metrics["series"][f"{prefix}/negatives/unique_frac"]
        assert 0.0 < unique["mean"] <= 1.0
        assert metrics["series"][f"{prefix}/grad_norm/input"]["min"] >= 0.0

    def test_observability_does_not_change_training(self):
        graph, _ = make_app_daily(
            seed=13, num_applets=30, num_users=15, num_keywords=10
        )
        config = TransNConfig(dim=8, num_iterations=2, seed=3)
        plain = TransN(graph, config)
        plain.fit()
        observed = TransN(graph, config)
        observed.fit(metrics=MetricsRegistry(), tracer=Tracer())
        for node, vector in plain.embeddings().items():
            np.testing.assert_array_equal(vector, observed.embeddings()[node])
