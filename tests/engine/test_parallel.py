"""Parallel-runtime tests: shared-memory CSR, determinism, fallback,
wave scheduling, prefetch, and the cheap-pickle contract.

The central claims under test:

* a worker's view of the graph (attached over shared memory) is
  byte-equal to the owner's;
* ``workers=N`` is deterministic for fixed ``N`` — repeated builds and
  full model fits reproduce bit-identically — and the pool and the
  in-process crash fallback produce the same corpus;
* the parallel sampler draws from the same walk law as the serial
  engine (chi-square goodness of fit against the policy's exact
  ``slot_probs``);
* policies and adjacencies cross the process boundary as small
  rebuild-from-spec pickles, never dragging the graph along.
"""

import os
import pickle

import numpy as np
import pytest

from repro.datasets import two_view_toy
from repro.core import TransN, TransNConfig
from repro.engine.observability import MetricsRegistry
from repro.engine.parallel import (
    _ATTACHED,
    ParallelRuntime,
    PrefetchingSampler,
    SharedCSR,
    attach_shared_csr,
    conflict_waves,
    pair_rng,
    single_view_seed,
)
from repro.graph import separate_views
from repro.graph.csr import CSRAdjacency, csr_adjacency
from repro.walks import (
    BiasedCorrelatedPolicy,
    MetapathPolicy,
    Node2VecPolicy,
    UniformPolicy,
    build_corpus,
)
from tests.walks.test_policies import _assert_chi_square, _node_law

_CONFIG = dict(
    dim=8,
    walk_length=8,
    walk_floor=2,
    walk_cap=3,
    num_iterations=2,
    cross_path_len=3,
    cross_paths_per_pair=8,
    num_encoders=1,
    batch_size=64,
    seed=7,
)


@pytest.fixture(scope="module")
def toy_graph():
    graph, _ = two_view_toy()
    return graph


@pytest.fixture(scope="module")
def toy_view(toy_graph):
    return separate_views(toy_graph)[0]


@pytest.fixture(scope="module")
def runtime():
    """One two-worker runtime shared by the read-only corpus tests."""
    with ParallelRuntime(2) as rt:
        yield rt


def _fit(workers=0, **overrides):
    graph, _ = two_view_toy()
    model = TransN(graph, TransNConfig(**{**_CONFIG, **overrides}, workers=workers))
    model.fit()
    emb = model.embeddings()
    if model._parallel is not None:
        model._parallel.shutdown()
    return emb


# ----------------------------------------------------------------------
# seed streams & wave coloring
# ----------------------------------------------------------------------
class TestSeedStreams:
    def test_single_view_seed_keys_every_axis(self):
        base = single_view_seed(7, 0, 0).generate_state(4)
        for other in [(8, 0, 0), (7, 1, 0), (7, 0, 1)]:
            assert not np.array_equal(
                base, single_view_seed(*other).generate_state(4)
            )

    def test_pair_rng_streams_disjoint(self):
        draws = {
            key: pair_rng(7, *key).integers(1 << 30, size=4).tolist()
            for key in [(0, 0), (0, 1), (1, 0)]
        }
        assert len({tuple(v) for v in draws.values()}) == 3

    def test_phase_tags_separate_view_and_pair_streams(self):
        a = np.random.default_rng(single_view_seed(7, 3, 5)).integers(
            1 << 30, size=4
        )
        b = pair_rng(7, 3, 5).integers(1 << 30, size=4)
        assert not np.array_equal(a, b)


class TestConflictWaves:
    def test_greedy_first_fit(self):
        keys = [("a", "b"), ("b", "c"), ("c", "d"), ("a", "c")]
        assert conflict_waves(keys) == [[0, 2], [1], [3]]

    def test_waves_are_view_disjoint(self):
        keys = [("a", "b"), ("a", "c"), ("b", "c"), ("d", "e"), ("c", "d")]
        waves = conflict_waves(keys)
        assert sorted(i for wave in waves for i in wave) == list(range(5))
        for wave in waves:
            views = [v for i in wave for v in keys[i]]
            assert len(views) == len(set(views))

    def test_empty(self):
        assert conflict_waves([]) == []


# ----------------------------------------------------------------------
# shared-memory publication / attachment
# ----------------------------------------------------------------------
class TestSharedCSR:
    def test_attach_equivalence(self, toy_view):
        """An attached adjacency is byte-equal to the published one."""
        csr = csr_adjacency(toy_view.graph)
        shared = SharedCSR(
            csr, columns=frozenset({"alias", "node_types"}), is_heter=False
        )
        try:
            # unregister=False: this process owns the registrations
            attached = attach_shared_csr(shared.spec, unregister=False)
            for name in CSRAdjacency.CORE_FIELDS:
                np.testing.assert_array_equal(
                    getattr(attached, name), getattr(csr, name)
                )
            for mine, theirs in zip(
                attached.alias_tables(), csr.alias_tables()
            ):
                np.testing.assert_array_equal(mine, theirs)
            np.testing.assert_array_equal(
                attached.node_type_codes, csr.node_type_codes
            )
            assert attached.detached
            assert not attached.indices.flags.writeable
        finally:
            _ATTACHED.pop(shared.spec.token, None)
            shared.close()

    def test_attach_is_cached_per_token(self, toy_view):
        csr = csr_adjacency(toy_view.graph)
        shared = SharedCSR(csr)
        try:
            first = attach_shared_csr(shared.spec, unregister=False)
            assert attach_shared_csr(shared.spec, unregister=False) is first
        finally:
            _ATTACHED.pop(shared.spec.token, None)
            shared.close()

    def test_unknown_column_rejected(self, toy_view):
        with pytest.raises(ValueError, match="unknown CSR columns"):
            SharedCSR(csr_adjacency(toy_view.graph), columns=frozenset({"bogus"}))

    def test_close_is_idempotent(self, toy_view):
        shared = SharedCSR(csr_adjacency(toy_view.graph))
        assert shared.nbytes > 0
        shared.close()
        shared.close()
        assert shared.nbytes == 0

    def test_spec_pickles_small(self, toy_view):
        shared = SharedCSR(csr_adjacency(toy_view.graph), columns=frozenset({"alias"}))
        try:
            payload = pickle.dumps(shared.spec)
            assert len(payload) < 2048
            clone = pickle.loads(payload)
            assert clone == shared.spec
        finally:
            shared.close()


# ----------------------------------------------------------------------
# cheap pickling of adjacencies and policies
# ----------------------------------------------------------------------
class TestCheapPickles:
    def test_policy_pickles_are_spec_sized(self, toy_graph):
        policies = [
            UniformPolicy(),
            BiasedCorrelatedPolicy(),
            Node2VecPolicy(p=0.5, q=2.0),
            MetapathPolicy(metapath=["item", "tag", "item"]),
        ]
        for policy in policies:
            # the parallel layer pickles *bound* policies — binding must
            # not drag the graph into the payload
            bound = policy.bind(toy_graph)
            payload = pickle.dumps(bound)
            # a rebuild-from-spec pickle, not a captured graph
            assert len(payload) < 1024, type(policy).__name__
            clone = pickle.loads(payload)
            assert type(clone) is type(policy)
            assert clone.spec() == policy.spec()

    def test_csr_pickle_excludes_graph_and_alias(self, toy_graph):
        csr = csr_adjacency(toy_graph)
        csr.alias_tables()  # built — and deliberately not serialized
        clone = pickle.loads(pickle.dumps(csr))
        assert clone.detached
        assert clone._alias is None
        np.testing.assert_array_equal(clone.indices, csr.indices)
        np.testing.assert_array_equal(clone.weights, csr.weights)

    def test_csr_pickle_is_array_sized(self, toy_graph):
        csr = csr_adjacency(toy_graph)
        payload = pickle.dumps(csr)
        core = sum(
            getattr(csr, name).nbytes for name in CSRAdjacency.CORE_FIELDS
        )
        # flat arrays plus bounded per-field overhead — no node dicts
        assert len(payload) < core + 4096


# ----------------------------------------------------------------------
# parallel corpus builds
# ----------------------------------------------------------------------
class TestBuildCorpus:
    def test_fixed_worker_count_is_deterministic(self, runtime, toy_view):
        seed = single_view_seed(7, 0, 0)
        first = runtime.build_corpus(
            toy_view, BiasedCorrelatedPolicy(), length=8, seed_seq=seed
        )
        second = runtime.build_corpus(
            toy_view, BiasedCorrelatedPolicy(), length=8, seed_seq=seed
        )
        np.testing.assert_array_equal(first.matrix, second.matrix)
        np.testing.assert_array_equal(first.lengths, second.lengths)

    def test_different_draws_differ(self, runtime, toy_view):
        first = runtime.build_corpus(
            toy_view,
            BiasedCorrelatedPolicy(),
            length=8,
            seed_seq=single_view_seed(7, 0, 0),
        )
        second = runtime.build_corpus(
            toy_view,
            BiasedCorrelatedPolicy(),
            length=8,
            seed_seq=single_view_seed(7, 0, 1),
        )
        assert not np.array_equal(first.matrix, second.matrix)

    def test_short_length_rejected(self, runtime, toy_view):
        with pytest.raises(ValueError, match="walk length"):
            runtime.build_corpus(
                toy_view,
                UniformPolicy(),
                length=1,
                seed_seq=single_view_seed(7, 0, 0),
            )

    def test_matches_serial_walk_law(self, runtime, toy_view):
        """Workers sample the exact policy law (chi-square bound)."""
        policy = BiasedCorrelatedPolicy()
        corpus = runtime.build_corpus(
            toy_view,
            policy,
            length=2,
            walks_per_node_override=4000,
            seed_seq=single_view_seed(11, 0, 0),
        )
        bound = policy.bind(toy_view)
        start = int(corpus.matrix[0, 0])
        rows = corpus.matrix[
            (corpus.matrix[:, 0] == start) & (corpus.lengths > 1)
        ]
        values, counts = np.unique(rows[:, 1], return_counts=True)
        _assert_chi_square(
            dict(zip(values.tolist(), counts.tolist())),
            _node_law(bound, start),
            int(counts.sum()),
        )

    def test_corpus_start_law_matches_serial(self, runtime, toy_view):
        """Same degree-based start multiset as the serial builder."""
        parallel = runtime.build_corpus(
            toy_view,
            UniformPolicy(),
            length=4,
            floor=2,
            cap=3,
            seed_seq=single_view_seed(7, 0, 0),
        )
        from repro.walks import LockstepWalker

        walker = LockstepWalker(
            toy_view, UniformPolicy(), rng=np.random.default_rng(0)
        )
        serial = build_corpus(
            toy_view,
            walker,
            length=4,
            floor=2,
            cap=3,
            rng=np.random.default_rng(0),
        )
        np.testing.assert_array_equal(
            np.sort(parallel.matrix[:, 0]), np.sort(serial.matrix[:, 0])
        )


class TestFallback:
    def test_broken_pool_replays_bit_identically(self, toy_view):
        seed = single_view_seed(7, 0, 3)
        with ParallelRuntime(2) as healthy:
            expected = healthy.build_corpus(
                toy_view, BiasedCorrelatedPolicy(), length=8, seed_seq=seed
            )
        metrics = MetricsRegistry()
        # a zero relaunch budget makes the first pool loss demote on
        # the spot — the pre-relaunch sticky-fallback behavior
        with ParallelRuntime(
            2, metrics=metrics, max_pool_relaunches=0
        ) as rt:
            # kill the workers for real; the next submit must break
            with pytest.raises(Exception):
                rt._pool.submit(os._exit, 1).result()
            corpus = rt.build_corpus(
                toy_view, BiasedCorrelatedPolicy(), length=8, seed_seq=seed
            )
            assert rt.pool_broken
            np.testing.assert_array_equal(corpus.matrix, expected.matrix)
            np.testing.assert_array_equal(corpus.lengths, expected.lengths)
            # demotion is sticky and quiet: later builds skip the pool
            again = rt.build_corpus(
                toy_view, BiasedCorrelatedPolicy(), length=8, seed_seq=seed
            )
            np.testing.assert_array_equal(again.matrix, expected.matrix)
        assert metrics.counters["parallel/fallback"] == 1.0
        kinds = [event["kind"] for event in metrics.events]
        assert "parallel/fallback" in kinds
        assert "parallel/pool_lost" in kinds

    def test_pool_relaunch_within_budget(self, toy_view):
        seed = single_view_seed(7, 0, 3)
        with ParallelRuntime(2) as healthy:
            expected = healthy.build_corpus(
                toy_view, BiasedCorrelatedPolicy(), length=8, seed_seq=seed
            )
        metrics = MetricsRegistry()
        with ParallelRuntime(
            2, metrics=metrics, relaunch_backoff=0.0
        ) as rt:
            with pytest.raises(Exception):
                rt._pool.submit(os._exit, 1).result()
            corpus = rt.build_corpus(  # loss detected; replays in-process
                toy_view, BiasedCorrelatedPolicy(), length=8, seed_seq=seed
            )
            np.testing.assert_array_equal(corpus.matrix, expected.matrix)
            assert not rt.pool_broken  # budget (default 2) not spent
            assert rt.pool_failures == 1
            again = rt.build_corpus(  # relaunches and uses the new pool
                toy_view, BiasedCorrelatedPolicy(), length=8, seed_seq=seed
            )
            np.testing.assert_array_equal(again.matrix, expected.matrix)
            assert rt._pool is not None
        assert metrics.counters["parallel/pool_relaunch"] == 1.0

    def test_shutdown_is_idempotent_after_pool_loss(self, toy_view):
        rt = ParallelRuntime(2, max_pool_relaunches=0)
        seed = single_view_seed(7, 0, 3)
        with pytest.raises(Exception):
            rt._pool.submit(os._exit, 1).result()
        rt.build_corpus(
            toy_view, BiasedCorrelatedPolicy(), length=8, seed_seq=seed
        )
        assert rt.pool_broken
        rt.shutdown()
        assert rt._shared == {}
        rt.shutdown()  # second call is a no-op
        rt.close()  # alias too


# ----------------------------------------------------------------------
# prefetch
# ----------------------------------------------------------------------
class TestPrefetchingSampler:
    def test_hits_misses_and_reset(self, toy_view):
        metrics = MetricsRegistry()
        with ParallelRuntime(1, metrics=metrics) as rt:
            built = []

            def make_task(index):
                def build():
                    built.append(index)
                    return rt.build_corpus(
                        toy_view,
                        UniformPolicy(),
                        length=4,
                        seed_seq=single_view_seed(7, 0, index),
                    )

                return build

            sampler = PrefetchingSampler(rt, make_task)
            first = sampler.corpus(0)  # no pending build: a miss-free sync
            assert sampler.next_index == 1
            second = sampler.corpus(1)  # consumes the prefetched build
            assert metrics.counters["parallel/prefetch/hits"] == 1.0
            jumped = sampler.corpus(5)  # stale pending: discard + rebuild
            assert metrics.counters["parallel/prefetch/misses"] == 1.0
            sampler.reset()
            assert sampler.next_index is None
            assert 0 in built and 1 in built and 5 in built
            for corpus in (first, second, jumped):
                assert corpus.matrix.shape[1] == 4

    def test_prefetched_equals_on_demand(self, toy_view):
        with ParallelRuntime(1) as rt:
            seed = single_view_seed(3, 0, 0)
            direct = rt.build_corpus(
                toy_view, UniformPolicy(), length=4, seed_seq=seed
            )
            sampler = PrefetchingSampler(
                rt,
                lambda index: lambda: rt.build_corpus(
                    toy_view,
                    UniformPolicy(),
                    length=4,
                    seed_seq=single_view_seed(3, 0, index),
                ),
            )
            sampler.corpus(0)  # schedules draw 1 in the background
            sampler.reset()
            np.testing.assert_array_equal(
                sampler.corpus(0).matrix, direct.matrix
            )


# ----------------------------------------------------------------------
# model-level integration
# ----------------------------------------------------------------------
class TestParallelModel:
    def test_workers2_fit_is_deterministic(self):
        first, second = _fit(workers=2), _fit(workers=2)
        assert set(first) == set(second)
        for node in first:
            np.testing.assert_array_equal(first[node], second[node])

    def test_prefetch_does_not_change_results(self):
        on = _fit(workers=2)  # prefetch defaults on for this config
        off = _fit(workers=2, prefetch=False)
        for node in on:
            np.testing.assert_array_equal(on[node], off[node])

    def test_workers0_is_the_serial_path(self):
        graph, _ = two_view_toy()
        model = TransN(graph, TransNConfig(**_CONFIG, workers=0))
        assert model._parallel is None  # goldens in test_determinism.py

    def test_embeddings_finite(self):
        emb = _fit(workers=2)
        for vec in emb.values():
            assert np.all(np.isfinite(vec))
