"""Tests for the crash-safe checkpoint layer (repro.engine.checkpoint)."""

import os
import pickle

import numpy as np
import pytest

from repro.engine import (
    CallablePhase,
    Checkpointer,
    CheckpointError,
    CheckpointManager,
    TrainingLoop,
    dump_state,
    load_state,
    non_finite_entries,
)
from repro.engine.checkpoint import _HEADER, FORMAT_VERSION, MAGIC


def _sample_state():
    return {
        "step": 3,
        "matrix": np.arange(6, dtype=np.float64).reshape(2, 3),
        "nested": {"lr": 0.05, "history": [1.0, 0.5]},
    }


class _Provider:
    """Minimal TrainingState for Checkpointer tests."""

    def __init__(self):
        self.value = 0.0
        self.loads = 0

    def state_dict(self):
        return {"value": self.value}

    def load_state_dict(self, state):
        self.value = state["value"]
        self.loads += 1


class TestDumpLoad:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "state.ckpt"
        dump_state(_sample_state(), path)
        loaded = load_state(path)
        np.testing.assert_array_equal(
            loaded["matrix"], _sample_state()["matrix"]
        )
        assert loaded["nested"] == _sample_state()["nested"]

    def test_no_tmp_file_left_behind(self, tmp_path):
        path = tmp_path / "state.ckpt"
        dump_state(_sample_state(), path)
        assert [p.name for p in tmp_path.iterdir()] == ["state.ckpt"]

    def test_failed_write_preserves_old_file(self, tmp_path, monkeypatch):
        path = tmp_path / "state.ckpt"
        dump_state({"epoch": 1}, path)

        def broken_replace(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(os, "replace", broken_replace)
        with pytest.raises(OSError):
            dump_state({"epoch": 2}, path)
        monkeypatch.undo()
        # the old checkpoint is intact and no temp file lingers
        assert load_state(path)["epoch"] == 1
        assert [p.name for p in tmp_path.iterdir()] == ["state.ckpt"]

    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="does not exist"):
            load_state(tmp_path / "nope.ckpt")

    def test_truncated_file(self, tmp_path):
        path = tmp_path / "state.ckpt"
        dump_state(_sample_state(), path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(CheckpointError, match="truncated"):
            load_state(path)

    def test_truncated_header(self, tmp_path):
        path = tmp_path / "state.ckpt"
        path.write_bytes(b"REPRO")
        with pytest.raises(CheckpointError, match="truncated"):
            load_state(path)

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "state.ckpt"
        dump_state(_sample_state(), path)
        data = bytearray(path.read_bytes())
        data[:8] = b"NOTACKPT"
        path.write_bytes(bytes(data))
        with pytest.raises(CheckpointError, match="not a checkpoint"):
            load_state(path)

    def test_corrupted_payload(self, tmp_path):
        path = tmp_path / "state.ckpt"
        dump_state(_sample_state(), path)
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(CheckpointError, match="checksum mismatch"):
            load_state(path)

    def test_future_version(self, tmp_path):
        path = tmp_path / "state.ckpt"
        payload = pickle.dumps({"x": 1})
        import hashlib

        header = _HEADER.pack(
            MAGIC,
            FORMAT_VERSION + 1,
            len(payload),
            hashlib.sha256(payload).digest(),
        )
        path.write_bytes(header + payload)
        with pytest.raises(CheckpointError, match="future format version"):
            load_state(path)


class TestCheckpointManager:
    def test_save_and_load(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save({"epoch": 1}, step=1)
        checkpoint = manager.load(1)
        assert checkpoint.step == 1
        assert checkpoint.state["epoch"] == 1

    def test_rotation_keeps_newest(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep=3)
        for step in range(1, 6):
            manager.save({"epoch": step}, step=step)
        assert manager.steps() == [3, 4, 5]

    def test_load_latest(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        assert manager.load_latest() is None
        manager.save({"epoch": 1}, step=1)
        manager.save({"epoch": 2}, step=2)
        assert manager.load_latest().state["epoch"] == 2

    def test_load_latest_falls_back_past_damage(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save({"epoch": 1}, step=1)
        manager.save({"epoch": 2}, step=2)
        newest = tmp_path / "ckpt-00000002.ckpt"
        newest.write_bytes(newest.read_bytes()[:20])
        with pytest.warns(UserWarning, match="skipping"):
            checkpoint = manager.load_latest()
        assert checkpoint.step == 1
        assert checkpoint.state["epoch"] == 1

    def test_load_latest_all_damaged(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save({"epoch": 1}, step=1)
        path = tmp_path / "ckpt-00000001.ckpt"
        path.write_bytes(b"garbage")
        with pytest.raises(CheckpointError, match="no readable checkpoint"):
            with pytest.warns(UserWarning):
                manager.load_latest()

    def test_bad_keep(self, tmp_path):
        with pytest.raises(ValueError, match="keep"):
            CheckpointManager(tmp_path, keep=0)


class TestNonFiniteEntries:
    def test_clean_state(self):
        assert non_finite_entries(_sample_state()) == []

    def test_flags_nan_with_path(self):
        state = {"a": {"b": np.array([1.0, np.nan])}}
        assert non_finite_entries(state) == ["a/b"]

    def test_flags_inf(self):
        state = {"w": np.array([np.inf])}
        assert non_finite_entries(state) == ["w"]


class TestCheckpointerCallback:
    def _run(self, tmp_path, epochs, every):
        manager = CheckpointManager(tmp_path, keep=10)
        provider = _Provider()
        phase = CallablePhase("train", lambda loop, epoch: {"loss": 1.0})
        loop = TrainingLoop(
            [phase],
            callbacks=[Checkpointer(manager, provider, every=every)],
        )
        loop.run(epochs)
        return manager

    def test_cadence(self, tmp_path):
        manager = self._run(tmp_path, epochs=5, every=2)
        # every-2 snapshots plus the train-end save of epoch 5
        assert manager.steps() == [2, 4, 5]

    def test_no_duplicate_final_save(self, tmp_path):
        manager = self._run(tmp_path, epochs=4, every=2)
        assert manager.steps() == [2, 4]

    def test_saved_loop_state_stamps_epoch(self, tmp_path):
        manager = self._run(tmp_path, epochs=3, every=1)
        checkpoint = manager.load(2)
        assert checkpoint.state["loop"]["epochs_completed"] == 2
        assert len(checkpoint.state["loop"]["history"]["train"]) == 2
