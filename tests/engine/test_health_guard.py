"""Tests for the NumericalHealthGuard callback."""

import numpy as np
import pytest

from repro.engine import (
    NumericalHealthError,
    NumericalHealthGuard,
    Phase,
    TrainingLoop,
)


class _ScriptedPhase(Phase):
    """Returns scripted losses: one value per *call* (not per epoch), so
    rollback retries consume the next entry of the script."""

    def __init__(self, script, name="train"):
        super().__init__(name)
        self.script = list(script)
        self.calls = 0
        self.lr = 0.1

    def run(self, loop, epoch):
        value = self.script[min(self.calls, len(self.script) - 1)]
        self.calls += 1
        return {"loss": float(value)}


class _Provider:
    """TrainingState stub recording snapshot/restore traffic."""

    def __init__(self):
        self.value = 0.0
        self.saved = []
        self.restored = []

    def state_dict(self):
        self.saved.append(self.value)
        return {"value": self.value}

    def load_state_dict(self, state):
        self.value = state["value"]
        self.restored.append(state["value"])


class TestConstruction:
    def test_unknown_policy(self):
        with pytest.raises(ValueError, match="unknown health policy"):
            NumericalHealthGuard(policy="explode")

    def test_rollback_needs_provider(self):
        with pytest.raises(ValueError, match="state_provider"):
            NumericalHealthGuard(policy="rollback")

    def test_bad_factor(self):
        with pytest.raises(ValueError, match="explosion_factor"):
            NumericalHealthGuard(explosion_factor=1.0)


class TestRaisePolicy:
    def test_nan_loss_raises(self):
        phase = _ScriptedPhase([1.0, float("nan")])
        guard = NumericalHealthGuard(policy="raise")
        loop = TrainingLoop([phase], callbacks=[guard])
        with pytest.raises(NumericalHealthError, match="non-finite"):
            loop.run(5)
        assert guard.incidents[0][0] == 1  # failed at epoch index 1

    def test_explosion_raises(self):
        phase = _ScriptedPhase([1.0, 1.1, 0.9, 1.0, 50.0])
        guard = NumericalHealthGuard(policy="raise", explosion_factor=10.0)
        loop = TrainingLoop([phase], callbacks=[guard])
        with pytest.raises(NumericalHealthError, match="exploded"):
            loop.run(5)

    def test_healthy_run_is_untouched(self):
        phase = _ScriptedPhase([1.0, 0.9, 0.8, 0.7, 0.6])
        guard = NumericalHealthGuard(policy="raise")
        loop = TrainingLoop([phase], callbacks=[guard])
        result = loop.run(5)
        assert result.epochs_run == 5
        assert guard.incidents == []

    def test_warmup_noise_does_not_trip_explosion(self):
        # fewer than three healthy values: no explosion check yet
        phase = _ScriptedPhase([0.001, 10.0, 9.0, 8.0])
        guard = NumericalHealthGuard(policy="raise")
        loop = TrainingLoop([phase], callbacks=[guard])
        assert loop.run(4).epochs_run == 4

    def test_parameter_scan_catches_silent_nan(self):
        class BadProvider:
            def state_dict(self):
                return {"weights": np.array([1.0, np.nan])}

            def load_state_dict(self, state):
                pass

        phase = _ScriptedPhase([1.0, 1.0])
        guard = NumericalHealthGuard(
            policy="raise", state_provider=BadProvider()
        )
        loop = TrainingLoop([phase], callbacks=[guard])
        with pytest.raises(NumericalHealthError, match="parameter state"):
            loop.run(2)


class TestSkipPolicy:
    def test_skip_records_and_continues(self):
        phase = _ScriptedPhase([1.0, float("inf"), 0.9, 0.8])
        messages = []
        guard = NumericalHealthGuard(policy="skip", print_fn=messages.append)
        loop = TrainingLoop([phase], callbacks=[guard])
        result = loop.run(4)
        assert result.epochs_run == 4
        assert [action for _, action, _ in guard.incidents] == ["skip"]
        assert any("skipping" in m for m in messages)


class TestRollbackPolicy:
    def test_rollback_restores_and_halves_lr(self):
        phase = _ScriptedPhase([1.0, float("nan"), 0.9, 0.8])
        provider = _Provider()
        guard = NumericalHealthGuard(
            policy="rollback",
            state_provider=provider,
            check_parameters=False,
            print_fn=lambda _: None,
        )
        loop = TrainingLoop([phase], callbacks=[guard])
        result = loop.run(3)
        # epoch 1 failed once and was re-run: 4 calls for 3 epochs
        assert phase.calls == 4
        assert result.epochs_run == 3
        # the state of epoch 1's beginning was restored exactly once
        assert provider.restored == [0.0]
        assert phase.lr == pytest.approx(0.05)
        # the discarded epoch left no trace in the loss history
        assert [e["loss"] for e in result.history["train"]] == [1.0, 0.9, 0.8]

    def test_consecutive_failures_halve_again(self):
        phase = _ScriptedPhase([1.0, float("nan"), float("nan"), 0.9, 0.8])
        provider = _Provider()
        guard = NumericalHealthGuard(
            policy="rollback",
            state_provider=provider,
            check_parameters=False,
            print_fn=lambda _: None,
        )
        loop = TrainingLoop([phase], callbacks=[guard])
        loop.run(3)
        # halved on each of the two consecutive retries of epoch 1
        assert phase.lr == pytest.approx(0.025)
        assert len(provider.restored) == 2

    def test_retry_budget_exhausted(self):
        phase = _ScriptedPhase([1.0, float("nan")])  # NaN forever after
        provider = _Provider()
        guard = NumericalHealthGuard(
            policy="rollback",
            state_provider=provider,
            max_retries=3,
            check_parameters=False,
            print_fn=lambda _: None,
        )
        loop = TrainingLoop([phase], callbacks=[guard])
        with pytest.raises(NumericalHealthError, match="retry budget"):
            loop.run(5)
        assert len(provider.restored) == 3

    def test_budget_resets_after_healthy_epoch(self):
        # two isolated failures separated by healthy epochs: each retries
        # fine even with max_retries=1
        script = [1.0, float("nan"), 0.9, float("nan"), 0.8, 0.7]
        phase = _ScriptedPhase(script)
        provider = _Provider()
        guard = NumericalHealthGuard(
            policy="rollback",
            state_provider=provider,
            max_retries=1,
            check_parameters=False,
            print_fn=lambda _: None,
        )
        loop = TrainingLoop([phase], callbacks=[guard])
        result = loop.run(4)
        assert result.epochs_run == 4
        assert len(provider.restored) == 2
