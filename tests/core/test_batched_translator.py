"""Batched-vs-per-chunk equivalence of the cross-view translator stack.

The batched cross-view trainer feeds a ``(num_chunks, path_len, d)``
tensor through one autograd graph where the per-chunk reference path
builds one 2-D graph per chunk.  At identical parameters the two must
agree exactly:

* forward: the batched output's k-th slice equals the 2-D forward of
  chunk k;
* backward: the batched loss is the mean over chunks of per-chunk losses,
  so batched parameter/input gradients equal the mean of the per-chunk
  gradients — asserted to 1e-8 (the acceptance tolerance).
"""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.core.cross_view import similarity_loss
from repro.core.translator import make_translator
from repro.nn import Encoder, FeedForwardLayer, SelfAttentionLayer

NUM_CHUNKS, PATH_LEN, DIM = 5, 4, 6


@pytest.fixture(params=["full", "simple"])
def translator(request, rng):
    return make_translator(
        PATH_LEN, DIM, num_encoders=2, simple=request.param == "simple", rng=rng
    )


def _per_chunk_grads(module, batch, loss_of):
    """Mean per-chunk parameter and input gradients of ``loss_of``."""
    params = list(module.parameters())
    param_grads = [np.zeros_like(p.data) for p in params]
    input_grads = np.zeros_like(batch)
    num_chunks = batch.shape[0]
    for k in range(num_chunks):
        module.zero_grad()
        a = Tensor(batch[k], requires_grad=True)
        loss_of(module(a), a, k).backward()
        for grad, param in zip(param_grads, params):
            if param.grad is not None:
                grad += param.grad / num_chunks
        input_grads[k] = a.grad / num_chunks
    module.zero_grad()
    return param_grads, input_grads


class TestLayerBatching:
    def test_attention_batched_matches_slices(self, rng):
        layer = SelfAttentionLayer(DIM)
        batch = rng.normal(size=(NUM_CHUNKS, PATH_LEN, DIM))
        out = layer(Tensor(batch)).data
        for k in range(NUM_CHUNKS):
            np.testing.assert_allclose(
                out[k], layer(Tensor(batch[k])).data, atol=1e-12
            )

    def test_feed_forward_batched_matches_slices(self, rng):
        layer = FeedForwardLayer(PATH_LEN, rng=rng)
        batch = rng.normal(size=(NUM_CHUNKS, PATH_LEN, DIM))
        out = layer(Tensor(batch)).data
        for k in range(NUM_CHUNKS):
            np.testing.assert_allclose(
                out[k], layer(Tensor(batch[k])).data, atol=1e-12
            )

    def test_encoder_batched_matches_slices(self, rng):
        enc = Encoder(PATH_LEN, DIM, rng=rng)
        batch = rng.normal(size=(NUM_CHUNKS, PATH_LEN, DIM))
        out = enc(Tensor(batch)).data
        for k in range(NUM_CHUNKS):
            np.testing.assert_allclose(
                out[k], enc(Tensor(batch[k])).data, atol=1e-12
            )

    def test_wrong_path_len_rejected_batched(self, rng):
        layer = FeedForwardLayer(PATH_LEN, rng=rng)
        with pytest.raises(ValueError):
            layer(Tensor(np.zeros((3, PATH_LEN + 1, DIM))))


class TestTranslatorForward:
    def test_batched_matches_per_chunk(self, translator, rng):
        batch = rng.normal(size=(NUM_CHUNKS, PATH_LEN, DIM))
        out = translator(Tensor(batch)).data
        assert out.shape == (NUM_CHUNKS, PATH_LEN, DIM)
        for k in range(NUM_CHUNKS):
            np.testing.assert_allclose(
                out[k], translator(Tensor(batch[k])).data, atol=1e-12
            )

    def test_2d_still_accepted(self, translator, rng):
        out = translator(Tensor(rng.normal(size=(PATH_LEN, DIM))))
        assert out.shape == (PATH_LEN, DIM)

    def test_bad_shapes_rejected(self, translator, rng):
        for shape in [
            (PATH_LEN + 1, DIM),
            (PATH_LEN, DIM + 1),
            (2, PATH_LEN + 1, DIM),
            (2, 2, PATH_LEN, DIM),
        ]:
            with pytest.raises(ValueError):
                translator(Tensor(np.zeros(shape)))


class TestTranslatorGradients:
    """Batched gradients == mean of per-chunk gradients, to 1e-8."""

    def test_translation_loss_gradients(self, translator, rng):
        batch = rng.normal(size=(NUM_CHUNKS, PATH_LEN, DIM))
        targets = rng.normal(size=(NUM_CHUNKS, PATH_LEN, DIM))

        translator.zero_grad()
        a = Tensor(batch, requires_grad=True)
        similarity_loss(translator(a), Tensor(targets)).backward()
        batched_param_grads = [p.grad.copy() for p in translator.parameters()]
        batched_input_grad = a.grad.copy()

        param_grads, input_grads = _per_chunk_grads(
            translator,
            batch,
            lambda out, a_k, k: similarity_loss(out, Tensor(targets[k])),
        )
        for got, expected in zip(batched_param_grads, param_grads):
            np.testing.assert_allclose(got, expected, atol=1e-8)
        np.testing.assert_allclose(batched_input_grad, input_grads, atol=1e-8)

    def test_reconstruction_loss_gradients(self, rng):
        """The dual path T_ji(T_ij(A)) vs A, per Eqs. 13-14."""
        fwd = make_translator(PATH_LEN, DIM, 1, simple=False, rng=rng)
        bwd = make_translator(PATH_LEN, DIM, 1, simple=False, rng=rng)
        batch = rng.normal(size=(NUM_CHUNKS, PATH_LEN, DIM))

        class Dual:
            def parameters(self):
                yield from fwd.parameters()
                yield from bwd.parameters()

            def zero_grad(self):
                fwd.zero_grad()
                bwd.zero_grad()

            def __call__(self, a):
                return bwd(fwd(a))

        dual = Dual()
        dual.zero_grad()
        a = Tensor(batch, requires_grad=True)
        similarity_loss(dual(a), a).backward()
        batched_param_grads = [p.grad.copy() for p in dual.parameters()]
        batched_input_grad = a.grad.copy()

        param_grads, input_grads = _per_chunk_grads(
            dual, batch, lambda out, a_k, k: similarity_loss(out, a_k)
        )
        for got, expected in zip(batched_param_grads, param_grads):
            np.testing.assert_allclose(got, expected, atol=1e-8)
        np.testing.assert_allclose(batched_input_grad, input_grads, atol=1e-8)

    def test_unnormalized_loss_gradients(self, translator, rng):
        batch = rng.normal(size=(NUM_CHUNKS, PATH_LEN, DIM))
        targets = rng.normal(size=(NUM_CHUNKS, PATH_LEN, DIM))

        translator.zero_grad()
        a = Tensor(batch, requires_grad=True)
        similarity_loss(translator(a), Tensor(targets), normalize=False).backward()
        batched_param_grads = [p.grad.copy() for p in translator.parameters()]

        param_grads, _ = _per_chunk_grads(
            translator,
            batch,
            lambda out, a_k, k: similarity_loss(
                out, Tensor(targets[k]), normalize=False
            ),
        )
        for got, expected in zip(batched_param_grads, param_grads):
            np.testing.assert_allclose(got, expected, atol=1e-8)


class TestBatchedLossValue:
    def test_batched_loss_is_mean_of_chunk_losses(self, translator, rng):
        batch = rng.normal(size=(NUM_CHUNKS, PATH_LEN, DIM))
        targets = rng.normal(size=(NUM_CHUNKS, PATH_LEN, DIM))
        batched = similarity_loss(
            translator(Tensor(batch)), Tensor(targets)
        ).item()
        per_chunk = np.mean(
            [
                similarity_loss(
                    translator(Tensor(batch[k])), Tensor(targets[k])
                ).item()
                for k in range(NUM_CHUNKS)
            ]
        )
        assert batched == pytest.approx(per_chunk, abs=1e-12)
