"""Tests for the single-view algorithm (Section III-A)."""

import numpy as np
import pytest

from repro.core.single_view import SingleViewTrainer
from repro.graph import separate_views
from repro.walks import (
    BiasedCorrelatedPolicy,
    LockstepWalker,
    Node2VecPolicy,
    UniformPolicy,
)


@pytest.fixture
def heter_view(toy_pair):
    graph, _ = toy_pair
    return next(v for v in separate_views(graph) if v.is_heter)


@pytest.fixture
def homo_view(toy_pair):
    graph, _ = toy_pair
    return next(v for v in separate_views(graph) if v.is_homo)


def make_trainer(view, rng, **kwargs):
    emb = rng.normal(0, 0.1, size=(view.num_nodes, 8))
    defaults = dict(walk_length=8, walk_floor=2, walk_cap=4, batch_size=64)
    defaults.update(kwargs)
    return SingleViewTrainer(view, emb, rng=rng, **defaults), emb


class TestConstruction:
    def test_embedding_shape_checked(self, heter_view, rng):
        with pytest.raises(ValueError):
            SingleViewTrainer(
                heter_view, np.zeros((heter_view.num_nodes + 1, 8)), rng=rng
            )

    def test_window_follows_definition_6(self, heter_view, homo_view, rng):
        heter_trainer, _ = make_trainer(heter_view, rng)
        homo_trainer, _ = make_trainer(homo_view, rng)
        assert heter_trainer.window == 2
        assert homo_trainer.window == 1

    def test_walker_selection(self, heter_view, rng):
        default_trainer, _ = make_trainer(heter_view, rng)
        simple_trainer, _ = make_trainer(heter_view, rng, simple_walk=True)
        assert isinstance(default_trainer.walker, LockstepWalker)
        assert isinstance(default_trainer.policy, BiasedCorrelatedPolicy)
        assert isinstance(simple_trainer.policy, UniformPolicy)

    def test_explicit_policy_wins(self, heter_view, rng):
        trainer, _ = make_trainer(
            heter_view, rng, policy=Node2VecPolicy(p=0.5, q=2.0)
        )
        assert isinstance(trainer.policy, Node2VecPolicy)
        assert trainer.walker.policy is trainer.policy


class TestTraining:
    def test_corpus_respects_policy(self, heter_view, rng):
        trainer, _ = make_trainer(heter_view, rng)
        corpus = trainer.sample_corpus()
        n = heter_view.num_nodes
        assert 2 * n <= len(corpus) <= 4 * n

    def test_epoch_updates_embeddings(self, heter_view, rng):
        trainer, emb = make_trainer(heter_view, rng)
        before = emb.copy()
        loss = trainer.train_epoch(lr=0.1)
        assert loss > 0
        assert not np.allclose(emb, before)

    def test_loss_decreases_over_epochs(self, heter_view, rng):
        trainer, _ = make_trainer(heter_view, rng)
        losses = [trainer.train_epoch(lr=0.1) for _ in range(10)]
        assert losses[-1] < losses[0]

    def test_evaluate_loss_no_update(self, heter_view, rng):
        trainer, emb = make_trainer(heter_view, rng)
        before = emb.copy()
        loss = trainer.evaluate_loss()
        assert loss > 0
        assert np.allclose(emb, before)

    def test_embeddings_remain_finite(self, heter_view, rng):
        trainer, emb = make_trainer(heter_view, rng)
        for _ in range(15):
            trainer.train_epoch(lr=0.1)
        assert np.isfinite(emb).all()
        assert np.abs(emb).max() < 100
