"""Seed-determinism guarantees for the full TransN pipeline.

Two kinds of check:

* two runs with the same seed must produce *bit-identical* embeddings
  (every RNG draw — walks, negative sampling, cross-view paths, parameter
  init — flows from the single seeded generator);
* golden values pin the current draw order, so accidental reorderings of
  RNG consumption (e.g. a pipeline drawing negatives before pairs) fail
  loudly instead of silently changing every downstream number.

The goldens were produced by this exact configuration on ``two_view_toy``;
regenerate them deliberately if the sampling order is changed on purpose.

Re-pinned when the lockstep walk engine landed: batched walkers draw the
same Equation 6-7 distributions but consume the generator in vectorized
blocks (one draw per step across all walks) instead of per-walk scalars,
so every RNG realization downstream of walk sampling shifted.  The
distributional equivalence evidence lives in
``tests/walks/test_batched.py``.

Re-pinned again when the batched cross-view trainer landed: the default
path now applies one translator Adam step and one aggregated RowAdam
update per direction per epoch (instead of one per chunk), so the
optimization trajectory — not the RNG stream, which is untouched —
shifted.  The batched-vs-per-chunk gradient equivalence evidence lives in
``tests/core/test_batched_translator.py``.
"""

import numpy as np
import pytest

from repro.core import TransN, TransNConfig
from repro.datasets import two_view_toy

_CONFIG = dict(
    dim=8,
    walk_length=8,
    walk_floor=2,
    walk_cap=3,
    num_iterations=2,
    cross_path_len=3,
    cross_paths_per_pair=8,
    num_encoders=1,
    batch_size=64,
    seed=7,
)

# first four coordinates of four nodes, rounded to 8 decimals
_GOLDEN = {
    "i0": [0.15807624, 0.17659602, -0.01945747, 0.08173329],
    "i1": [0.12357295, 0.16661692, 0.109355, 0.13834433],
    "i2": [0.17424686, 0.21436906, 0.00634649, -0.02574431],
    "i3": [-0.02790398, 0.18280054, 0.14896285, 0.20434622],
}
_GOLDEN_TOTAL_SUM = 0.05858886065169871


def _run() -> dict:
    graph, _ = two_view_toy()
    model = TransN(graph, TransNConfig(**_CONFIG))
    model.fit()
    return model.embeddings()


class TestSeedDeterminism:
    def test_same_seed_is_bit_identical(self):
        first, second = _run(), _run()
        assert set(first) == set(second)
        for node in first:
            np.testing.assert_array_equal(first[node], second[node])

    def test_different_seed_differs(self):
        graph, _ = two_view_toy()
        other = TransN(graph, TransNConfig(**{**_CONFIG, "seed": 8}))
        other.fit()
        baseline = _run()
        assert any(
            not np.array_equal(baseline[n], other.embeddings()[n])
            for n in baseline
        )

    def test_golden_values(self):
        emb = _run()
        assert len(emb) == 12
        for node, expected in _GOLDEN.items():
            np.testing.assert_allclose(
                emb[node][:4], expected, rtol=0, atol=1e-7
            )
        total = sum(float(np.sum(vec)) for vec in emb.values())
        assert total == pytest.approx(_GOLDEN_TOTAL_SUM, abs=1e-7)
