"""Crash/resume and health-guard integration tests for TransN.

The contract under test: a run that is interrupted (killed) and resumed
from its checkpoints is *bit-identical* to a run that was never
interrupted — same loss trajectory, same final embeddings — because the
checkpoint captures every piece of mutable state (embeddings, optimizer
moments, translator parameters, phase learning rates, loss history, and
the shared RNG stream).
"""

import numpy as np
import pytest

from repro.core import TransN, TransNConfig
from repro.core.cross_view import CrossViewLosses
from repro.datasets import two_view_toy
from repro.engine import Callback, NumericalHealthError

from tests.core.test_determinism import _CONFIG, _GOLDEN


@pytest.fixture()
def graph():
    graph, _ = two_view_toy()
    return graph


def _config(**overrides):
    return TransNConfig(**{**_CONFIG, **overrides})


class _KillAfter(Callback):
    """Simulates a crash: raises after ``epochs`` completed epochs.

    Attached after the engine's Checkpointer (user callbacks fire last),
    so the kill lands exactly like a SIGKILL between a completed snapshot
    and the next epoch.
    """

    def __init__(self, epochs):
        self.epochs = epochs

    def on_epoch_end(self, loop, epoch, logs):
        if epoch + 1 >= self.epochs:
            raise KeyboardInterrupt("simulated crash")


class TestResumeEquivalence:
    def test_killed_and_resumed_run_is_bit_identical(self, graph, tmp_path):
        uninterrupted = TransN(graph, _config())
        uninterrupted.fit(num_iterations=2)

        killed = TransN(graph, _config())
        with pytest.raises(KeyboardInterrupt):
            killed.fit(
                num_iterations=2,
                checkpoint=tmp_path,
                callbacks=[_KillAfter(1)],
            )

        resumed = TransN(graph, _config())
        resumed.fit(num_iterations=2, checkpoint=tmp_path, resume=True)

        # bit-exact equality — not approximate
        assert np.array_equal(
            uninterrupted.embedding_matrix(), resumed.embedding_matrix()
        )
        assert resumed.history.single_view == uninterrupted.history.single_view
        assert resumed.history.translation == uninterrupted.history.translation
        assert (
            resumed.history.reconstruction
            == uninterrupted.history.reconstruction
        )
        assert resumed.last_run.epochs_run == 2

    def test_resumed_run_matches_goldens(self, graph, tmp_path):
        """The resumed run hits the determinism goldens, proving the
        checkpoint layer does not perturb the paper trajectory."""
        model = TransN(graph, _config())
        with pytest.raises(KeyboardInterrupt):
            model.fit(
                num_iterations=2,
                checkpoint=tmp_path,
                callbacks=[_KillAfter(1)],
            )
        resumed = TransN(graph, _config())
        resumed.fit(num_iterations=2, checkpoint=tmp_path, resume=True)
        for node, expected in _GOLDEN.items():
            np.testing.assert_allclose(
                resumed.embedding(node)[:4], expected, atol=1e-8
            )

    def test_clean_stop_then_resume(self, graph, tmp_path):
        """Stopping after K iterations and resuming to K' equals a
        straight K'-iteration run (nothing in an epoch depends on the
        requested total)."""
        straight = TransN(graph, _config())
        straight.fit(num_iterations=4)

        first = TransN(graph, _config())
        first.fit(num_iterations=2, checkpoint=tmp_path)
        resumed = TransN(graph, _config())
        resumed.fit(num_iterations=4, checkpoint=tmp_path, resume=True)

        assert np.array_equal(
            straight.embedding_matrix(), resumed.embedding_matrix()
        )
        assert resumed.history.single_view == straight.history.single_view

    def test_resume_with_empty_directory_starts_fresh(self, graph, tmp_path):
        fresh = TransN(graph, _config())
        fresh.fit(num_iterations=2)
        resumed = TransN(graph, _config())
        resumed.fit(num_iterations=2, checkpoint=tmp_path, resume=True)
        assert np.array_equal(
            fresh.embedding_matrix(), resumed.embedding_matrix()
        )

    def test_resume_needs_checkpoint_location(self, graph):
        model = TransN(graph, _config())
        with pytest.raises(ValueError, match="checkpoint directory"):
            model.fit(resume=True)

    def test_resume_rejects_fewer_iterations_than_covered(
        self, graph, tmp_path
    ):
        model = TransN(graph, _config())
        model.fit(num_iterations=2, checkpoint=tmp_path)
        resumed = TransN(graph, _config())
        with pytest.raises(ValueError, match="already covers"):
            resumed.fit(num_iterations=1, checkpoint=tmp_path, resume=True)

    def test_config_mismatch_is_rejected(self, graph, tmp_path):
        model = TransN(graph, _config())
        model.fit(num_iterations=1, checkpoint=tmp_path)
        other = TransN(graph, _config(dim=4))
        with pytest.raises(ValueError, match="dim"):
            other.fit(num_iterations=2, checkpoint=tmp_path, resume=True)

    def test_run_control_fields_may_differ(self, graph, tmp_path):
        """num_iterations / checkpoint_every / health_policy are run
        control, not trajectory hyper-parameters: resuming with different
        values is allowed."""
        model = TransN(graph, _config())
        model.fit(num_iterations=1, checkpoint=tmp_path)
        resumed = TransN(
            graph, _config(checkpoint_every=2, health_policy="raise")
        )
        resumed.fit(num_iterations=2, checkpoint=tmp_path, resume=True)
        assert resumed.last_run.epochs_run == 2


def _poison_single_view(model, bad_call):
    """Make the first view's train_epoch report NaN on its Nth call."""
    trainer = model.single_trainers[0]
    original = trainer.train_epoch
    counter = {"calls": 0}

    def wrapped(lr):
        counter["calls"] += 1
        value = original(lr=lr)
        return float("nan") if counter["calls"] == bad_call else value

    trainer.train_epoch = wrapped
    return counter


class TestHealthPolicies:
    def test_raise_policy_fails_fast(self, graph):
        model = TransN(graph, _config(health_policy="raise"))
        _poison_single_view(model, bad_call=2)
        with pytest.raises(NumericalHealthError, match="non-finite"):
            model.fit(num_iterations=3)

    def test_skip_policy_completes(self, graph, capsys):
        model = TransN(graph, _config(health_policy="skip"))
        _poison_single_view(model, bad_call=2)
        model.fit(num_iterations=3)
        assert model.last_run.epochs_run == 3
        assert "skipping" in capsys.readouterr().out

    @pytest.mark.parametrize("batched", [True, False])
    def test_rollback_restores_and_halves_single_view_lr(
        self, graph, batched, capsys
    ):
        config = _config(
            health_policy="rollback", batched_cross_view=batched
        )
        model = TransN(graph, config)
        counter = _poison_single_view(model, bad_call=2)
        model.fit(num_iterations=3)
        # the poisoned epoch was retried: one extra call
        assert counter["calls"] == 4
        assert model.last_run.epochs_run == 3
        # the offending phase's lr was halved, the cross phase untouched
        assert model._phases[0].lr == config.lr_single / 2
        assert model._phases[1].lr == config.lr_cross
        # the recorded history carries no trace of the discarded epoch
        assert len(model.history.single_view) == 3
        assert all(np.isfinite(model.history.single_view))
        assert "rolled back" in capsys.readouterr().out

    def test_rollback_restores_and_halves_cross_view_lr(self, graph, capsys):
        config = _config(health_policy="rollback")
        model = TransN(graph, config)
        trainer = model.cross_trainers[0]
        original = trainer.train_epoch
        counter = {"calls": 0}

        def wrapped():
            counter["calls"] += 1
            losses = original()
            if counter["calls"] == 2:
                return CrossViewLosses(
                    translation=float("nan"),
                    reconstruction=losses.reconstruction,
                    num_paths=losses.num_paths,
                )
            return losses

        trainer.train_epoch = wrapped
        model.fit(num_iterations=3)
        assert model.last_run.epochs_run == 3
        assert model._phases[1].lr == config.lr_cross / 2
        # halving propagates to the trainer's coupled optimizer rates
        assert trainer._translator_optim.lr == pytest.approx(
            config.lr_cross / 2
        )
        assert trainer._row_adam_i.lr == pytest.approx(
            config.lr_cross_embeddings / 2
        )
        assert model._phases[0].lr == config.lr_single
        assert "rolled back" in capsys.readouterr().out
