"""Model-level streaming: dense equivalence, spill replay, float32 mode."""

import numpy as np
import pytest

from repro.core import TransN, TransNConfig
from repro.datasets import make_appstore, two_view_toy
from repro.datasets.appstore import AppStoreConfig

_CONFIG = dict(
    dim=8,
    walk_length=8,
    walk_floor=2,
    walk_cap=3,
    num_iterations=2,
    cross_path_len=3,
    cross_paths_per_pair=8,
    num_encoders=1,
    batch_size=64,
    seed=7,
)


def _fit(**overrides):
    graph, _ = two_view_toy()
    model = TransN(graph, TransNConfig(**{**_CONFIG, **overrides}))
    model.fit()
    return model


class TestStreamingEquivalence:
    def test_streaming_bit_identical_to_dense(self):
        # toy corpora fit in one block, so the streamed RNG stream is the
        # dense one and every embedding must match bit for bit
        dense = _fit()
        streaming = _fit(stream_corpus=True)
        for edge_type in dense.view_embeddings:
            np.testing.assert_array_equal(
                dense.view_embeddings[edge_type],
                streaming.view_embeddings[edge_type],
            )

    def test_streaming_with_budget_is_deterministic(self):
        first = _fit(stream_corpus=True, corpus_budget_mb=1.0)
        second = _fit(stream_corpus=True, corpus_budget_mb=1.0)
        for edge_type in first.view_embeddings:
            np.testing.assert_array_equal(
                first.view_embeddings[edge_type],
                second.view_embeddings[edge_type],
            )


class TestSpill:
    def test_fresh_spill_matches_no_spill(self, tmp_path):
        # the recording epoch trains on the same blocks it tees to disk,
        # so a single-iteration spill run equals plain streaming bit for
        # bit (later iterations replay instead of regenerating, which
        # consumes no walk RNG and legitimately diverges)
        plain = _fit(stream_corpus=True, num_iterations=1)
        spilled = _fit(
            stream_corpus=True, num_iterations=1, spill_dir=str(tmp_path)
        )
        for edge_type in plain.view_embeddings:
            np.testing.assert_array_equal(
                plain.view_embeddings[edge_type],
                spilled.view_embeddings[edge_type],
            )
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            "view0.spill",
            "view1.spill",
        ]

    def test_replay_runs_are_deterministic(self, tmp_path):
        _fit(stream_corpus=True, spill_dir=str(tmp_path))  # records
        spill_bytes = {
            p.name: p.read_bytes() for p in tmp_path.iterdir()
        }
        first = _fit(stream_corpus=True, spill_dir=str(tmp_path))
        second = _fit(stream_corpus=True, spill_dir=str(tmp_path))
        for edge_type in first.view_embeddings:
            np.testing.assert_array_equal(
                first.view_embeddings[edge_type],
                second.view_embeddings[edge_type],
            )
        # replaying never rewrites the spill files
        assert spill_bytes == {
            p.name: p.read_bytes() for p in tmp_path.iterdir()
        }

    def _corrupt_all(self, tmp_path):
        for path in tmp_path.iterdir():
            data = bytearray(path.read_bytes())
            data[-1] ^= 0x01  # rot in the last block's lengths payload
            path.write_bytes(bytes(data))

    def test_corrupt_spill_degrades_to_regeneration(self, tmp_path):
        _fit(stream_corpus=True, spill_dir=str(tmp_path))  # records
        self._corrupt_all(tmp_path)
        # every view's replay is rejected by CRC before training sees a
        # walk, so the run falls back to drawing fresh corpora — which
        # consumes the same RNG stream as spill-less streaming
        plain = _fit(stream_corpus=True)
        degraded = _fit(stream_corpus=True, spill_dir=str(tmp_path))
        for edge_type in plain.view_embeddings:
            np.testing.assert_array_equal(
                plain.view_embeddings[edge_type],
                degraded.view_embeddings[edge_type],
            )

    def test_corrupt_spill_raises_when_asked(self, tmp_path):
        from repro.walks import SpillCorruptionError

        _fit(stream_corpus=True, spill_dir=str(tmp_path))
        self._corrupt_all(tmp_path)
        with pytest.raises(SpillCorruptionError, match="CRC mismatch"):
            _fit(
                stream_corpus=True,
                spill_dir=str(tmp_path),
                on_spill_error="raise",
            )


class TestFloat32:
    def test_embeddings_carry_requested_dtype(self):
        model = _fit(dtype="float32", num_iterations=1)
        for matrix in model.view_embeddings.values():
            assert matrix.dtype == np.float32
        for node, vector in model.embeddings().items():
            assert vector.dtype == np.float32

    def test_float32_converges_on_appstore(self):
        # float32 must track the float64 loss trajectory on a real
        # fixture; 2% relative tolerance on the final single-view loss
        # is far tighter than run-to-run seed variance
        cfg = AppStoreConfig(
            num_applets=60, num_users=25, num_keywords=20, seed=8
        )
        graph, _ = make_appstore(cfg)
        losses = {}
        for dtype in ("float64", "float32"):
            model = TransN(
                graph,
                TransNConfig(
                    **{
                        **_CONFIG,
                        "num_iterations": 3,
                        "dtype": dtype,
                        "stream_corpus": dtype == "float32",
                    }
                ),
            )
            model.fit()
            series = model.history.single_view
            assert all(np.isfinite(series))
            assert series[-1] < series[0]  # training makes progress
            losses[dtype] = series[-1]
        rel = abs(losses["float32"] - losses["float64"]) / losses["float64"]
        assert rel < 0.02


class TestConfigValidation:
    def test_budget_requires_streaming(self):
        with pytest.raises(ValueError, match="stream_corpus"):
            TransNConfig(**{**_CONFIG, "corpus_budget_mb": 64.0})

    def test_spill_requires_streaming(self):
        with pytest.raises(ValueError, match="stream_corpus"):
            TransNConfig(**{**_CONFIG, "spill_dir": "/tmp/x"})

    def test_bad_dtype_rejected(self):
        with pytest.raises(ValueError, match="dtype"):
            TransNConfig(**{**_CONFIG, "dtype": "float16"})

    def test_streaming_conflicts_with_prefetch(self):
        with pytest.raises(ValueError, match="prefetch"):
            TransNConfig(
                **{**_CONFIG, "stream_corpus": True, "prefetch": True}
            )

    def test_spill_conflicts_with_relation_balancing(self):
        with pytest.raises(ValueError, match="relation-balanced"):
            TransNConfig(
                **{
                    **_CONFIG,
                    "stream_corpus": True,
                    "spill_dir": "/tmp/x",
                    "walk_policy": "relation-balanced",
                }
            )

    def test_budget_bytes_property(self):
        cfg = TransNConfig(
            **{**_CONFIG, "stream_corpus": True, "corpus_budget_mb": 2.0}
        )
        assert cfg.corpus_budget_bytes == 2 * 1024 * 1024
        assert TransNConfig(**_CONFIG).corpus_budget_bytes is None

    def test_resolved_dtype(self):
        assert TransNConfig(**_CONFIG).resolved_dtype == np.float64
        cfg = TransNConfig(**{**_CONFIG, "dtype": "float32"})
        assert cfg.resolved_dtype == np.float32
