"""Tests for TransNConfig and its ablation presets."""

import pytest

from repro.core import TransNConfig


class TestValidation:
    def test_defaults_valid(self):
        TransNConfig()

    def test_bad_dim(self):
        with pytest.raises(ValueError):
            TransNConfig(dim=0)

    def test_bad_walk_length(self):
        with pytest.raises(ValueError):
            TransNConfig(walk_length=1)

    def test_bad_cross_path_len(self):
        with pytest.raises(ValueError):
            TransNConfig(cross_path_len=1)

    def test_bad_num_encoders(self):
        with pytest.raises(ValueError):
            TransNConfig(num_encoders=0)

    def test_both_tasks_disabled_rejected(self):
        with pytest.raises(ValueError):
            TransNConfig(
                use_translation_tasks=False,
                use_reconstruction_tasks=False,
            )

    def test_both_tasks_disabled_ok_without_cross_view(self):
        TransNConfig(
            use_cross_view=False,
            use_translation_tasks=False,
            use_reconstruction_tasks=False,
        )


class TestAblationPresets:
    def test_without_cross_view(self):
        cfg = TransNConfig().without_cross_view()
        assert not cfg.use_cross_view

    def test_with_simple_walk(self):
        assert TransNConfig().with_simple_walk().simple_walk

    def test_with_simple_translator(self):
        assert TransNConfig().with_simple_translator().simple_translator

    def test_without_translation_tasks(self):
        cfg = TransNConfig().without_translation_tasks()
        assert not cfg.use_translation_tasks
        assert cfg.use_reconstruction_tasks

    def test_without_reconstruction_tasks(self):
        cfg = TransNConfig().without_reconstruction_tasks()
        assert cfg.use_translation_tasks
        assert not cfg.use_reconstruction_tasks

    def test_presets_do_not_mutate_base(self):
        base = TransNConfig()
        base.with_simple_walk()
        assert not base.simple_walk

    def test_paper_scale(self):
        cfg = TransNConfig.paper_scale()
        assert cfg.dim == 128
        assert cfg.walk_length == 80
        assert cfg.walk_floor == 10
        assert cfg.walk_cap == 32
        assert cfg.num_encoders == 6


class TestConstructionValidation:
    """Every trajectory-defining field is validated at construction and
    the error names the offending field."""

    @pytest.mark.parametrize(
        "field_name,value",
        [
            ("dim", 0),
            ("walk_length", 1),
            ("walk_floor", 0),
            ("num_iterations", 0),
            ("lr_single", 0.0),
            ("lr_cross", -0.01),
            ("lr_cross_embeddings", 0.0),
            ("num_negatives", 0),
            ("num_encoders", 0),
            ("cross_path_len", 1),
            ("cross_paths_per_pair", 0),
            ("batch_size", 0),
            ("checkpoint_every", 0),
        ],
    )
    def test_bad_field_named_in_error(self, field_name, value):
        with pytest.raises(ValueError, match=field_name):
            TransNConfig(**{field_name: value})

    def test_walk_cap_below_floor(self):
        with pytest.raises(ValueError, match="walk_cap"):
            TransNConfig(walk_floor=5, walk_cap=3)

    def test_bad_health_policy(self):
        with pytest.raises(ValueError, match="health_policy"):
            TransNConfig(health_policy="explode")

    def test_valid_health_policies(self):
        for policy in (None, "raise", "rollback", "skip"):
            assert TransNConfig(health_policy=policy).health_policy == policy


class TestWalkPolicyKnobs:
    def test_default_is_papers_walk(self):
        config = TransNConfig()
        assert config.walk_policy == "biased"
        assert config.resolved_walk_policy == "biased"

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="walk_policy"):
            TransNConfig(walk_policy="teleport")

    def test_all_registry_names_accepted(self):
        from repro.walks import POLICY_NAMES

        for name in POLICY_NAMES:
            if name == "uniform":
                continue  # exercised via simple_walk below
            assert TransNConfig(walk_policy=name).walk_policy == name

    def test_simple_walk_resolves_to_uniform(self):
        assert TransNConfig(simple_walk=True).resolved_walk_policy == "uniform"

    def test_simple_walk_conflict_rejected(self):
        with pytest.raises(ValueError, match="simple_walk"):
            TransNConfig(simple_walk=True, walk_policy="node2vec")

    def test_simple_walk_uniform_compatible(self):
        config = TransNConfig(simple_walk=True, walk_policy="uniform")
        assert config.resolved_walk_policy == "uniform"

    @pytest.mark.parametrize(
        ("field_name", "value"),
        [
            ("walk_p", 0.0),
            ("walk_q", -1.0),
            ("type_switch", 0.0),
            ("balance_strength", -0.5),
        ],
    )
    def test_bad_knob_named_in_error(self, field_name, value):
        with pytest.raises(ValueError, match=field_name):
            TransNConfig(**{field_name: value})


class TestParallelKnobs:
    def test_defaults_are_serial(self):
        config = TransNConfig()
        assert config.workers == 0
        assert config.prefetch is None

    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            TransNConfig(workers=-1)

    def test_prefetch_needs_workers(self):
        with pytest.raises(ValueError, match="prefetch"):
            TransNConfig(prefetch=True, workers=0)

    def test_prefetch_with_workers_ok(self):
        assert TransNConfig(prefetch=True, workers=1).prefetch is True

    def test_prefetch_off_is_always_valid(self):
        assert TransNConfig(prefetch=False, workers=0).prefetch is False
