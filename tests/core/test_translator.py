"""Tests for the translator stacks (Equation 10)."""

import numpy as np
import pytest

from repro.autograd import Tensor, gradcheck
from repro.core import SimpleTranslator, Translator, make_translator


class TestTranslator:
    def test_shape_preserved(self, rng):
        t = Translator(path_len=5, dim=4, num_encoders=2, rng=rng)
        out = t(Tensor(rng.normal(size=(5, 4))))
        assert out.shape == (5, 4)

    def test_layer_count_is_2h(self, rng):
        for h in (1, 2, 4):
            t = Translator(path_len=3, dim=2, num_encoders=h, rng=rng)
            assert t.num_layers == 2 * h

    def test_needs_at_least_one_encoder(self, rng):
        with pytest.raises(ValueError):
            Translator(path_len=3, dim=2, num_encoders=0, rng=rng)

    def test_shape_validation(self, rng):
        t = Translator(path_len=4, dim=3, num_encoders=1, rng=rng)
        with pytest.raises(ValueError):
            t(Tensor(rng.normal(size=(3, 3))))

    def test_output_can_be_negative(self, rng):
        """The final encoder is linear: outputs are not orthant-trapped.

        With a single encoder (attention then near-identity linear
        feed-forward) an all-negative input maps to a mostly-negative
        output; a relu output layer would force it non-negative.
        """
        t = Translator(path_len=4, dim=3, num_encoders=1, rng=rng)
        out = t(Tensor(-np.abs(rng.normal(size=(4, 3))) - 1.0))
        assert (out.data < 0).any()

    def test_hidden_encoders_relu_final_linear(self, rng):
        t = Translator(path_len=4, dim=3, num_encoders=3, rng=rng)
        activations = [e.feed_forward.activation for e in t.encoders]
        assert activations == ["relu", "relu", "linear"]

    def test_near_identity_at_init(self, rng):
        """Identity-initialized feed-forwards make a fresh translator
        close to the identity map on positive inputs."""
        t = Translator(path_len=4, dim=3, num_encoders=1, rng=rng)
        a = np.abs(rng.normal(size=(4, 3))) + 1.0
        # attention averages rows; with 1 encoder the output is close to
        # the attention output, not the raw input — check boundedness
        out = t(Tensor(a)).data
        assert np.isfinite(out).all()
        assert np.abs(out).max() < 10 * np.abs(a).max()

    def test_parameters_trainable(self, rng):
        t = Translator(path_len=3, dim=2, num_encoders=2, rng=rng)
        params = list(t.parameters())
        # 2 encoders x (weight + bias)
        assert len(params) == 4
        assert all(p.requires_grad for p in params)

    def test_gradcheck_through_stack(self, rng):
        t = Translator(path_len=3, dim=2, num_encoders=2, rng=rng)
        a = Tensor(rng.normal(size=(3, 2)), requires_grad=True)
        gradcheck(lambda a: (t(a) ** 2).mean(), [a])


class TestSimpleTranslator:
    def test_shape(self, rng):
        t = SimpleTranslator(path_len=4, dim=3, rng=rng)
        assert t(Tensor(rng.normal(size=(4, 3)))).shape == (4, 3)

    def test_two_parameters(self, rng):
        t = SimpleTranslator(path_len=4, dim=3, rng=rng)
        assert len(list(t.parameters())) == 2

    def test_shape_validation(self, rng):
        t = SimpleTranslator(path_len=4, dim=3, rng=rng)
        with pytest.raises(ValueError):
            t(Tensor(rng.normal(size=(4, 2))))


class TestFactory:
    def test_simple_flag(self, rng):
        assert isinstance(
            make_translator(3, 2, 2, simple=True, rng=rng), SimpleTranslator
        )
        assert isinstance(
            make_translator(3, 2, 2, simple=False, rng=rng), Translator
        )
