"""Tests for the TransN model (Algorithm 1)."""

import numpy as np
import pytest

from repro.core import TransN, TransNConfig
from repro.graph import HeteroGraph

FAST = TransNConfig(
    dim=8,
    walk_length=8,
    walk_floor=2,
    walk_cap=3,
    num_iterations=2,
    cross_path_len=3,
    cross_paths_per_pair=8,
    num_encoders=1,
    batch_size=64,
)


class TestConstruction:
    def test_empty_graph_rejected(self):
        g = HeteroGraph()
        g.add_node("a", "t")
        with pytest.raises(ValueError):
            TransN(g, FAST)

    def test_views_and_pairs_built(self, toy_pair):
        graph, _ = toy_pair
        model = TransN(graph, FAST)
        assert len(model.views) == 2
        assert len(model.view_pairs) == 1
        assert len(model.single_trainers) == 2
        assert len(model.cross_trainers) == 1

    def test_no_cross_view_skips_pairs(self, toy_pair):
        graph, _ = toy_pair
        cfg = TransNConfig(
            **{**FAST.__dict__, "use_cross_view": False}
        )
        model = TransN(graph, cfg)
        assert model.view_pairs == []
        assert model.cross_trainers == []

    def test_shared_initialization_across_views(self, toy_pair):
        """A node's view-specific embeddings start identical (alignment)."""
        graph, _ = toy_pair
        model = TransN(graph, FAST)
        common = set.intersection(
            *(set(v.graph.nodes) for v in model.views)
        )
        assert common  # the toy has common nodes
        for node in common:
            rows = [
                model.view_embeddings[v.edge_type][v.graph.index_of(node)]
                for v in model.views
                if v.graph.has_node(node)
            ]
            for row in rows[1:]:
                assert np.array_equal(rows[0], row)

    def test_embedding_matrices_shared_with_trainers(self, toy_pair):
        graph, _ = toy_pair
        model = TransN(graph, FAST)
        for trainer, view in zip(model.single_trainers, model.views):
            assert (
                trainer.trainer.embeddings
                is model.view_embeddings[view.edge_type]
            )


class TestFit:
    def test_history_recorded(self, toy_pair):
        graph, _ = toy_pair
        model = TransN(graph, FAST)
        history = model.fit()
        assert history.num_iterations == 2
        assert len(history.translation) == 2
        assert all(np.isfinite(history.single_view))

    def test_fit_continues_training(self, toy_pair):
        graph, _ = toy_pair
        model = TransN(graph, FAST)
        model.fit(1)
        model.fit(1)
        assert model.history.num_iterations == 2

    def test_deterministic_given_seed(self, toy_pair):
        graph, _ = toy_pair
        emb1 = TransN(graph, FAST).fit_transform()
        emb2 = TransN(graph, FAST).fit_transform()
        for node in emb1:
            assert np.allclose(emb1[node], emb2[node])

    def test_seeds_differ(self, toy_pair):
        graph, _ = toy_pair
        cfg2 = TransNConfig(**{**FAST.__dict__, "seed": 9})
        emb1 = TransN(graph, FAST).fit_transform()
        emb2 = TransN(graph, cfg2).fit_transform()
        assert any(
            not np.allclose(emb1[n], emb2[n]) for n in emb1
        )


class TestEmbeddings:
    def test_every_node_embedded(self, toy_pair):
        graph, _ = toy_pair
        model = TransN(graph, FAST)
        model.fit()
        embeddings = model.embeddings()
        assert set(embeddings) == set(graph.nodes)
        for vec in embeddings.values():
            assert vec.shape == (FAST.dim,)

    def test_unknown_node_rejected(self, toy_pair):
        graph, _ = toy_pair
        model = TransN(graph, FAST)
        with pytest.raises(KeyError):
            model.embedding("nope")

    def test_final_is_average_of_view_specific(self, toy_pair):
        graph, _ = toy_pair
        model = TransN(graph, FAST)
        model.fit()
        node = next(iter(graph.nodes))
        present = [
            v.edge_type for v in model.views if v.graph.has_node(node)
        ]
        expected = np.mean(
            [model.view_specific_embedding(node, t) for t in present], axis=0
        )
        assert np.allclose(model.embedding(node), expected)

    def test_isolated_node_zero_vector(self):
        g = HeteroGraph()
        g.add_edge("a", "b", "e", u_type="t", v_type="t")
        g.add_node("iso", "t")
        model = TransN(g, FAST)
        model.fit(1)
        assert np.allclose(model.embedding("iso"), 0.0)

    def test_view_specific_unknown_view_node(self, toy_pair):
        graph, _ = toy_pair
        model = TransN(graph, FAST)
        # tags do not appear in the AA homo-view
        with pytest.raises(KeyError):
            model.view_specific_embedding("t0", "AA")

    def test_embedding_matrix_order(self, toy_pair):
        graph, _ = toy_pair
        model = TransN(graph, FAST)
        model.fit(1)
        nodes = list(graph.nodes)[:4]
        matrix = model.embedding_matrix(nodes)
        for k, node in enumerate(nodes):
            assert np.allclose(matrix[k], model.embedding(node))


class TestViewWeighting:
    def test_invalid_weighting_rejected(self):
        import pytest as _pytest

        with _pytest.raises(ValueError, match="view_weighting"):
            TransNConfig(view_weighting="attention")

    def test_degree_weighting_changes_embedding(self, toy_pair):
        graph, _ = toy_pair
        uniform_cfg = TransNConfig(**{**FAST.__dict__, "seed": 4})
        degree_cfg = TransNConfig(
            **{**FAST.__dict__, "seed": 4, "view_weighting": "degree"}
        )
        uniform = TransN(graph, uniform_cfg)
        uniform.fit()
        degree = TransN(graph, degree_cfg)
        degree.fit()
        # training is seed-identical; only the combination differs
        changed = False
        for node in graph.nodes:
            if not np.allclose(uniform.embedding(node), degree.embedding(node)):
                changed = True
        assert changed

    def test_degree_weighting_is_weighted_average(self, toy_pair):
        graph, _ = toy_pair
        cfg = TransNConfig(**{**FAST.__dict__, "view_weighting": "degree"})
        model = TransN(graph, cfg)
        model.fit()
        node = next(iter(graph.nodes))
        vectors, weights = [], []
        for view in model.views:
            if view.graph.has_node(node):
                vectors.append(
                    model.view_specific_embedding(node, view.edge_type)
                )
                weights.append(view.graph.degree(node))
        expected = np.average(vectors, axis=0, weights=weights)
        assert np.allclose(model.embedding(node), expected)
