"""Tests for the cross-view algorithm (Section III-B)."""

import numpy as np
import pytest

from repro.autograd import Tensor, gradcheck
from repro.core import RowAdam, similarity_loss
from repro.core.cross_view import CrossViewTrainer
from repro.graph import build_view_pairs, separate_views


class TestSimilarityLoss:
    def test_identical_normalized_is_zero(self, rng):
        a = Tensor(rng.normal(size=(4, 3)))
        assert similarity_loss(a, a).item() == pytest.approx(0.0, abs=1e-9)

    def test_opposite_is_two(self, rng):
        a = Tensor(rng.normal(size=(4, 3)))
        b = Tensor(-a.data)
        assert similarity_loss(a, b).item() == pytest.approx(2.0, abs=1e-9)

    def test_orthogonal_is_one(self):
        a = Tensor(np.array([[1.0, 0.0]]))
        b = Tensor(np.array([[0.0, 1.0]]))
        assert similarity_loss(a, b).item() == pytest.approx(1.0)

    def test_scale_invariance_when_normalized(self, rng):
        a = Tensor(rng.normal(size=(3, 4)))
        b = Tensor(rng.normal(size=(3, 4)))
        l1 = similarity_loss(a, b).item()
        l2 = similarity_loss(Tensor(a.data * 7.0), b).item()
        assert l1 == pytest.approx(l2)

    def test_unnormalized_literal_inner_product(self):
        a = Tensor(np.array([[1.0, 2.0]]))
        b = Tensor(np.array([[3.0, 4.0]]))
        loss = similarity_loss(a, b, normalize=False)
        assert loss.item() == pytest.approx(-(1 * 3 + 2 * 4))

    def test_shape_mismatch(self, rng):
        with pytest.raises(ValueError):
            similarity_loss(
                Tensor(rng.normal(size=(2, 3))), Tensor(rng.normal(size=(3, 2)))
            )

    def test_gradcheck(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        gradcheck(lambda a, b: similarity_loss(a, b), [a, b])


class TestRowAdam:
    def test_updates_only_given_rows(self, rng):
        matrix = rng.normal(size=(5, 3))
        snapshot = matrix.copy()
        adam = RowAdam(matrix, lr=0.1)
        adam.update(np.array([1, 3]), np.ones((2, 3)))
        assert not np.allclose(matrix[1], snapshot[1])
        assert np.allclose(matrix[0], snapshot[0])
        assert np.allclose(matrix[4], snapshot[4])

    def test_duplicate_rows_aggregated(self, rng):
        matrix = np.zeros((2, 2))
        adam = RowAdam(matrix, lr=0.1)
        adam.update(np.array([0, 0]), np.ones((2, 2)))
        # one Adam step with aggregated gradient, magnitude ~lr
        assert np.allclose(matrix[0], -0.1, atol=1e-6)

    def test_descends_quadratic(self, rng):
        matrix = rng.normal(size=(3, 2)) * 5
        adam = RowAdam(matrix, lr=0.1)
        rows = np.array([0, 1, 2])
        for _ in range(500):
            adam.update(rows, 2 * matrix[rows])
        assert np.abs(matrix).max() < 0.05

    def test_first_step_lr_sized(self):
        matrix = np.array([[1.0]])
        adam = RowAdam(matrix, lr=0.05)
        adam.update(np.array([0]), np.array([[10.0]]))
        assert matrix[0, 0] == pytest.approx(1.0 - 0.05, abs=1e-6)


@pytest.fixture
def toy_cross_trainer(toy_pair, rng):
    graph, _ = toy_pair
    views = separate_views(graph)
    pair = build_view_pairs(views)[0]
    emb_i = rng.normal(0, 0.1, size=(pair.view_i.num_nodes, 8))
    emb_j = rng.normal(0, 0.1, size=(pair.view_j.num_nodes, 8))
    trainer = CrossViewTrainer(
        pair,
        emb_i,
        emb_j,
        rng=rng,
        dim=8,
        cross_path_len=4,
        num_encoders=1,
        walk_length=10,
        paths_per_epoch=10,
    )
    return trainer, emb_i, emb_j


class TestCrossViewTrainer:
    def test_requires_a_task(self, toy_pair, rng):
        graph, _ = toy_pair
        views = separate_views(graph)
        pair = build_view_pairs(views)[0]
        with pytest.raises(ValueError):
            CrossViewTrainer(
                pair,
                np.zeros((pair.view_i.num_nodes, 4)),
                np.zeros((pair.view_j.num_nodes, 4)),
                rng=rng,
                dim=4,
                use_translation_tasks=False,
                use_reconstruction_tasks=False,
            )

    def test_epoch_reports_losses(self, toy_cross_trainer):
        trainer, _, _ = toy_cross_trainer
        losses = trainer.train_epoch()
        assert losses.num_paths > 0
        assert np.isfinite(losses.translation)
        assert np.isfinite(losses.reconstruction)
        assert losses.total == pytest.approx(
            losses.translation + losses.reconstruction
        )

    def test_epoch_updates_embeddings(self, toy_cross_trainer):
        trainer, emb_i, emb_j = toy_cross_trainer
        before_i, before_j = emb_i.copy(), emb_j.copy()
        trainer.train_epoch()
        assert not np.allclose(emb_i, before_i)
        assert not np.allclose(emb_j, before_j)

    def test_only_common_node_rows_touched(self, toy_cross_trainer):
        """Theta_cross: only embeddings of shared nodes are updated."""
        trainer, emb_i, emb_j = toy_cross_trainer
        pair = trainer.pair
        common = pair.common_nodes
        before_i = emb_i.copy()
        trainer.train_epoch()
        for node in pair.view_i.nodes:
            row = pair.view_i.graph.index_of(node)
            if node not in common:
                assert np.allclose(emb_i[row], before_i[row]), node

    def test_losses_decrease_over_epochs(self, toy_cross_trainer):
        trainer, _, _ = toy_cross_trainer
        first = trainer.train_epoch().total
        for _ in range(8):
            last = trainer.train_epoch().total
        assert last < first

    def test_translation_only_mode(self, toy_pair, rng):
        graph, _ = toy_pair
        views = separate_views(graph)
        pair = build_view_pairs(views)[0]
        trainer = CrossViewTrainer(
            pair,
            rng.normal(0, 0.1, size=(pair.view_i.num_nodes, 4)),
            rng.normal(0, 0.1, size=(pair.view_j.num_nodes, 4)),
            rng=rng,
            dim=4,
            cross_path_len=3,
            paths_per_epoch=6,
            use_reconstruction_tasks=False,
        )
        losses = trainer.train_epoch()
        assert losses.reconstruction == 0.0
        assert losses.translation != 0.0

    def test_batched_is_default(self, toy_cross_trainer):
        trainer, _, _ = toy_cross_trainer
        assert trainer.batched is True

    def test_scalar_reference_mode_trains(self, toy_pair, rng):
        """batched=False keeps the per-chunk Algorithm 1 reading alive."""
        graph, _ = toy_pair
        views = separate_views(graph)
        pair = build_view_pairs(views)[0]
        emb_i = rng.normal(0, 0.1, size=(pair.view_i.num_nodes, 8))
        emb_j = rng.normal(0, 0.1, size=(pair.view_j.num_nodes, 8))
        trainer = CrossViewTrainer(
            pair,
            emb_i,
            emb_j,
            rng=rng,
            dim=8,
            cross_path_len=4,
            num_encoders=1,
            walk_length=10,
            paths_per_epoch=10,
            batched=False,
        )
        before_i = emb_i.copy()
        losses = trainer.train_epoch()
        assert losses.num_paths > 0
        assert np.isfinite(losses.total)
        assert not np.allclose(emb_i, before_i)

    def test_scalar_mode_touches_only_common_rows(self, toy_pair, rng):
        graph, _ = toy_pair
        views = separate_views(graph)
        pair = build_view_pairs(views)[0]
        emb_i = rng.normal(0, 0.1, size=(pair.view_i.num_nodes, 8))
        emb_j = rng.normal(0, 0.1, size=(pair.view_j.num_nodes, 8))
        trainer = CrossViewTrainer(
            pair, emb_i, emb_j, rng=rng, dim=8, cross_path_len=3,
            paths_per_epoch=8, batched=False,
        )
        before_i = emb_i.copy()
        trainer.train_epoch()
        for node in pair.view_i.nodes:
            row = pair.view_i.graph.index_of(node)
            if node not in pair.common_nodes:
                assert np.allclose(emb_i[row], before_i[row]), node

    def test_reconstruction_only_mode(self, toy_pair, rng):
        graph, _ = toy_pair
        views = separate_views(graph)
        pair = build_view_pairs(views)[0]
        trainer = CrossViewTrainer(
            pair,
            rng.normal(0, 0.1, size=(pair.view_i.num_nodes, 4)),
            rng.normal(0, 0.1, size=(pair.view_j.num_nodes, 4)),
            rng=rng,
            dim=4,
            cross_path_len=3,
            paths_per_epoch=6,
            use_translation_tasks=False,
        )
        losses = trainer.train_epoch()
        assert losses.translation == 0.0
        assert losses.reconstruction != 0.0
