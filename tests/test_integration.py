"""End-to-end integration tests.

These exercise the full pipeline — dataset generator -> TransN training ->
evaluation — on small instances, asserting the robust qualitative claims
of the paper (trained beats random; cross-view helps; correlated walks
help on taste-weighted graphs) rather than exact scores.
"""

import numpy as np
import pytest

from repro.baselines import RandomEmbedding
from repro.core import TransN, TransNConfig
from repro.datasets import make_appstore, two_view_toy
from repro.datasets.appstore import AppStoreConfig
from repro.eval import (
    TransNMethod,
    run_case_study,
    run_link_prediction,
    run_node_classification,
)

TOY_CONFIG = TransNConfig(
    dim=16,
    walk_length=10,
    walk_floor=3,
    walk_cap=6,
    num_iterations=8,
    lr_single=0.1,
    batch_size=64,
    cross_path_len=4,
    cross_paths_per_pair=20,
    num_encoders=1,
    seed=1,
)


def community_gap(embeddings, labels):
    import itertools

    same, diff = [], []
    for a, b in itertools.combinations(list(labels), 2):
        va, vb = embeddings[a], embeddings[b]
        denom = np.linalg.norm(va) * np.linalg.norm(vb)
        if denom < 1e-12:
            continue
        cos = float(va @ vb / denom)
        (same if labels[a] == labels[b] else diff).append(cos)
    return np.mean(same) - np.mean(diff)


class TestTransNOnToy:
    def test_recovers_planted_communities(self):
        graph, labels = two_view_toy(num_per_side=10)
        model = TransN(graph, TOY_CONFIG)
        embeddings = model.fit_transform()
        gap = community_gap(embeddings, labels)
        random_gap = community_gap(
            RandomEmbedding(dim=16, seed=0).fit(graph), labels
        )
        assert gap > random_gap + 0.2

    def test_loss_decreases(self):
        graph, _ = two_view_toy(num_per_side=10)
        model = TransN(graph, TOY_CONFIG)
        history = model.fit()
        assert history.single_view[-1] < history.single_view[0]


class TestCrossViewContribution:
    """Table V's strongest claim: no-cross-view is the worst variant."""

    @pytest.mark.slow
    def test_cross_view_beats_no_cross_on_appstore(self):
        # At this tiny scale the margin is realization-sensitive: these
        # seeds give cross-view a comfortable cushion (checked across
        # several model seeds), so the claim — not a lucky draw — is what
        # the assertion exercises.  Re-tuned when the batched cross-view
        # trainer (one Adam step per direction per epoch) landed.
        cfg = AppStoreConfig(
            num_applets=120, num_users=50, num_keywords=40, seed=8
        )
        graph, labels = make_appstore(cfg)
        base = TransNConfig(
            dim=16, num_iterations=8, walk_length=12, seed=1,
            cross_paths_per_pair=40,
        )
        full = TransNMethod(base).fit(graph)
        degenerate = TransNMethod(base.without_cross_view()).fit(graph)
        full_score = run_node_classification(full, labels, repeats=5, seed=0)
        degen_score = run_node_classification(
            degenerate, labels, repeats=5, seed=0
        )
        assert full_score.macro_f1 > degen_score.macro_f1


class TestCorrelatedWalkContribution:
    """The Figure 4 mechanism: on taste-weighted graphs the biased
    correlated walks beat simple walks."""

    @pytest.mark.slow
    def test_weighted_walks_beat_simple_on_appstore(self):
        cfg = AppStoreConfig(
            num_applets=150, num_users=60, num_keywords=45, seed=5
        )
        graph, labels = make_appstore(cfg)
        base = TransNConfig(dim=16, num_iterations=5, walk_length=12, seed=2)
        full = TransNMethod(base).fit(graph)
        simple = TransNMethod(base.with_simple_walk()).fit(graph)
        full_score = run_node_classification(full, labels, repeats=5, seed=0)
        simple_score = run_node_classification(
            simple, labels, repeats=5, seed=0
        )
        assert full_score.macro_f1 > simple_score.macro_f1


class TestPipelines:
    def test_link_prediction_end_to_end(self):
        graph, _ = two_view_toy(num_per_side=10)
        result = run_link_prediction(
            lambda: TransNMethod(TOY_CONFIG), graph, removal_fraction=0.3
        )
        assert 0.0 <= result.auc <= 1.0
        assert result.num_positive == result.num_negative

    def test_case_study_end_to_end(self):
        cfg = AppStoreConfig(
            num_applets=100, num_users=40, num_keywords=30, seed=7
        )
        graph, labels = make_appstore(cfg)
        embeddings = TransNMethod(
            TransNConfig(dim=16, num_iterations=3, seed=0)
        ).fit(graph)
        result = run_case_study(embeddings, labels, per_category=6, seed=0)
        assert result.projection.shape[1] == 2
        assert np.isfinite(result.silhouette_embedding)
