"""Tests for the node-clustering extension task."""

import numpy as np
import pytest

from repro.eval import run_clustering


def clustered_embeddings(rng, classes=3, per=20, dim=8, spread=0.2):
    embeddings, labels = {}, {}
    for c in range(classes):
        center = rng.normal(size=dim) * 4
        for k in range(per):
            node = f"c{c}n{k}"
            embeddings[node] = center + rng.normal(0, spread, size=dim)
            labels[node] = c
    return embeddings, labels


class TestRunClustering:
    def test_clustered_embeddings_high_nmi(self, rng):
        embeddings, labels = clustered_embeddings(rng)
        result = run_clustering(embeddings, labels, seed=0)
        assert result.nmi > 0.9
        assert result.num_clusters == 3
        assert result.num_nodes == 60

    def test_random_embeddings_low_nmi(self, rng):
        _, labels = clustered_embeddings(rng)
        noise = {n: rng.normal(size=8) for n in labels}
        result = run_clustering(noise, labels, seed=0)
        assert result.nmi < 0.4

    def test_too_few_nodes(self, rng):
        embeddings = {f"n{k}": rng.normal(size=4) for k in range(5)}
        labels = {f"n{k}": k % 2 for k in range(5)}
        with pytest.raises(ValueError):
            run_clustering(embeddings, labels)

    def test_single_class_rejected(self, rng):
        embeddings = {f"n{k}": rng.normal(size=4) for k in range(20)}
        labels = {f"n{k}": 0 for k in range(20)}
        with pytest.raises(ValueError):
            run_clustering(embeddings, labels)

    def test_unembedded_labels_skipped(self, rng):
        embeddings, labels = clustered_embeddings(rng)
        labels["ghost"] = 0
        result = run_clustering(embeddings, labels, seed=0)
        assert result.num_nodes == 60
