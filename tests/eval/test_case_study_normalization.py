"""Tests for the case-study embedding normalization."""

import numpy as np

from repro.eval import run_case_study


def norm_dominated_embeddings(rng, classes=3, per=15, dim=8):
    """Directions encode the class; norms are huge class-independent noise.

    Euclidean geometry is dominated by the norms; angular geometry is
    perfectly separated.
    """
    directions = np.eye(dim)[:classes]
    embeddings, labels = {}, {}
    for c in range(classes):
        for k in range(per):
            node = f"c{c}n{k}"
            direction = directions[c] + rng.normal(0, 0.05, size=dim)
            scale = float(rng.uniform(0.1, 50.0))
            embeddings[node] = direction * scale
            labels[node] = c
    return embeddings, labels


class TestNormalization:
    def test_normalization_recovers_angular_structure(self, rng):
        embeddings, labels = norm_dominated_embeddings(rng)
        normalized = run_case_study(
            embeddings, labels, per_category=10, seed=0, normalize=True
        )
        raw = run_case_study(
            embeddings, labels, per_category=10, seed=0, normalize=False
        )
        assert normalized.silhouette_embedding > raw.silhouette_embedding
        assert normalized.silhouette_embedding > 0.5

    def test_normalize_default_on(self, rng):
        embeddings, labels = norm_dominated_embeddings(rng)
        default = run_case_study(embeddings, labels, per_category=10, seed=0)
        explicit = run_case_study(
            embeddings, labels, per_category=10, seed=0, normalize=True
        )
        assert default.silhouette_embedding == explicit.silhouette_embedding
