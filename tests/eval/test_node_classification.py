"""Tests for the node-classification pipeline (Section IV-B1)."""

import numpy as np
import pytest

from repro.eval import run_node_classification


def labeled_embeddings(rng, n_per_class=30, classes=3, dim=8, noise=0.1):
    """Perfectly class-clustered embeddings."""
    embeddings, labels = {}, {}
    for c in range(classes):
        center = rng.normal(size=dim) * 3
        for k in range(n_per_class):
            node = f"c{c}n{k}"
            embeddings[node] = center + rng.normal(0, noise, size=dim)
            labels[node] = c
    return embeddings, labels


class TestRunNodeClassification:
    def test_separable_data_high_f1(self, rng):
        embeddings, labels = labeled_embeddings(rng)
        result = run_node_classification(embeddings, labels, repeats=3)
        assert result.macro_f1 > 0.95
        assert result.micro_f1 > 0.95
        assert result.repeats == 3

    def test_random_labels_low_f1(self, rng):
        embeddings, labels = labeled_embeddings(rng)
        shuffled = list(labels.values())
        rng.shuffle(shuffled)
        labels = dict(zip(labels.keys(), shuffled))
        result = run_node_classification(embeddings, labels, repeats=3)
        assert result.macro_f1 < 0.65

    def test_too_few_nodes_rejected(self, rng):
        embeddings = {f"n{k}": rng.normal(size=4) for k in range(5)}
        labels = {f"n{k}": k % 2 for k in range(5)}
        with pytest.raises(ValueError):
            run_node_classification(embeddings, labels)

    def test_unembedded_labels_skipped(self, rng):
        embeddings, labels = labeled_embeddings(rng)
        labels["ghost"] = 0  # no embedding
        result = run_node_classification(embeddings, labels, repeats=2)
        assert result.micro_f1 > 0.9

    def test_seeded_reproducibility(self, rng):
        embeddings, labels = labeled_embeddings(rng, noise=1.5)
        a = run_node_classification(embeddings, labels, repeats=3, seed=5)
        b = run_node_classification(embeddings, labels, repeats=3, seed=5)
        assert a.macro_f1 == b.macro_f1

    def test_std_reported(self, rng):
        embeddings, labels = labeled_embeddings(rng, noise=2.0)
        result = run_node_classification(embeddings, labels, repeats=5)
        assert result.macro_std >= 0.0
        assert result.micro_std >= 0.0

    def test_as_row(self, rng):
        embeddings, labels = labeled_embeddings(rng)
        row = run_node_classification(embeddings, labels, repeats=2).as_row()
        assert set(row) == {"Macro-F1", "Micro-F1"}
