"""Tests for the method registry and the TransN adapter."""

import numpy as np
import pytest

from repro.core import TransNConfig
from repro.eval import (
    TransNMethod,
    ablation_methods,
    baseline_methods,
    method_registry,
)

FAST = TransNConfig(
    dim=8,
    walk_length=8,
    walk_floor=2,
    walk_cap=3,
    num_iterations=1,
    cross_path_len=3,
    cross_paths_per_pair=6,
    num_encoders=1,
)


class TestRegistry:
    def test_eight_methods_per_dataset(self):
        for dataset in ("aminer", "blog", "app-daily", "app-weekly"):
            registry = method_registry(dataset)
            assert len(registry) == 8
            assert list(registry)[-1] == "TransN"

    def test_unknown_dataset_rejected(self):
        with pytest.raises(ValueError):
            baseline_methods("imdb")

    def test_factories_produce_fresh_instances(self):
        registry = method_registry("aminer")
        assert registry["LINE"]() is not registry["LINE"]()

    def test_ablation_rows_match_table_5(self):
        methods = ablation_methods(base_config=FAST)
        assert list(methods) == [
            "TransN-Without-Cross-View",
            "TransN-With-Simple-Walk",
            "TransN-With-Simple-Translator",
            "TransN-Without-Translation-Tasks",
            "TransN-Without-Reconstruction-Tasks",
            "TransN",
        ]

    def test_ablation_configs_degenerate_correctly(self):
        methods = {
            name: factory() for name, factory in ablation_methods(
                base_config=FAST
            ).items()
        }
        assert not methods["TransN-Without-Cross-View"].config.use_cross_view
        assert methods["TransN-With-Simple-Walk"].config.simple_walk
        assert methods["TransN-With-Simple-Translator"].config.simple_translator
        assert not methods[
            "TransN-Without-Translation-Tasks"
        ].config.use_translation_tasks
        assert not methods[
            "TransN-Without-Reconstruction-Tasks"
        ].config.use_reconstruction_tasks
        assert methods["TransN"].config == FAST


class TestTransNMethod:
    def test_fit_contract(self, toy_pair):
        graph, _ = toy_pair
        emb = TransNMethod(FAST).fit(graph)
        assert set(emb) == set(graph.nodes)
        assert all(v.shape == (8,) for v in emb.values())

    def test_name_override(self):
        method = TransNMethod(FAST, name="TransN-Variant")
        assert method.name == "TransN-Variant"

    def test_deterministic(self, toy_pair):
        graph, _ = toy_pair
        e1 = TransNMethod(FAST).fit(graph)
        e2 = TransNMethod(FAST).fit(graph)
        for node in e1:
            assert np.allclose(e1[node], e2[node])
