"""Tests for the noise-robustness extension."""

import numpy as np
import pytest

from repro.baselines import RandomEmbedding
from repro.datasets import make_appstore
from repro.datasets.appstore import AppStoreConfig
from repro.eval.robustness import inject_noise_edges, run_noise_sweep
from repro.graph import HeteroGraph


@pytest.fixture(scope="module")
def small_app():
    cfg = AppStoreConfig(num_applets=80, num_users=30, num_keywords=25, seed=3)
    return make_appstore(cfg)


class TestInjectNoiseEdges:
    def test_adds_expected_count(self, small_app):
        graph, _ = small_app
        baseline = len(graph.edges_of_type("AU"))
        noisy = inject_noise_edges(graph, "AU", fraction=0.5, seed=0)
        added = len(noisy.edges_of_type("AU")) - baseline
        assert added == round(0.5 * baseline)

    def test_original_untouched(self, small_app):
        graph, _ = small_app
        before = graph.num_edges
        inject_noise_edges(graph, "AU", fraction=1.0, seed=0)
        assert graph.num_edges == before

    def test_respects_end_node_types(self, small_app):
        graph, _ = small_app
        noisy = inject_noise_edges(graph, "AU", fraction=0.5, seed=0)
        for edge in noisy.edges_of_type("AU"):
            types = {noisy.node_type(edge.u), noisy.node_type(edge.v)}
            assert types == {"applet", "user"}

    def test_weights_in_existing_range(self, small_app):
        graph, _ = small_app
        weights = [e.weight for e in graph.edges_of_type("AU")]
        noisy = inject_noise_edges(graph, "AU", fraction=0.5, seed=0)
        for edge in noisy.edges_of_type("AU"):
            assert min(weights) <= edge.weight <= max(weights)

    def test_homo_edge_type(self):
        g = HeteroGraph()
        for k in range(6):
            g.add_node(f"n{k}", "t")
        for k in range(5):
            g.add_edge(f"n{k}", f"n{k+1}", "e")
        noisy = inject_noise_edges(g, "e", fraction=1.0, seed=0)
        assert noisy.num_edges == 10

    def test_unknown_edge_type(self, small_app):
        graph, _ = small_app
        with pytest.raises(ValueError):
            inject_noise_edges(graph, "ZZ", fraction=0.5)

    def test_negative_fraction(self, small_app):
        graph, _ = small_app
        with pytest.raises(ValueError):
            inject_noise_edges(graph, "AU", fraction=-0.1)


class TestRunNoiseSweep:
    def test_sweep_shape(self, small_app):
        graph, labels = small_app
        points = run_noise_sweep(
            lambda: RandomEmbedding(dim=8, seed=0),
            graph,
            labels,
            "AU",
            fractions=[0.0, 0.5],
            repeats=2,
        )
        assert [p.noise_fraction for p in points] == [0.0, 0.5]
        assert points[1].num_edges > points[0].num_edges
        for p in points:
            assert 0.0 <= p.macro_f1 <= 1.0
