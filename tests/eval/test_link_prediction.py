"""Tests for the link-prediction pipeline (Section IV-B2)."""

import numpy as np
import pytest

from repro.baselines.base import EmbeddingMethod
from repro.eval import run_link_prediction
from repro.eval.link_prediction import make_split
from repro.graph import HeteroGraph


@pytest.fixture
def clustered_graph():
    """Two dense clusters: removed intra-cluster edges are predictable."""
    g = HeteroGraph()
    for c in range(2):
        members = [f"c{c}n{k}" for k in range(8)]
        for m in members:
            g.add_node(m, "t")
        for i in range(8):
            for j in range(i + 1, 8):
                g.add_edge(members[i], members[j], "e")
    g.add_edge("c0n0", "c1n0", "e")
    return g


class OracleMethod(EmbeddingMethod):
    """Embeds by (known) cluster — the best possible link predictor."""

    name = "Oracle"

    def fit(self, graph):
        out = {}
        for node in graph.nodes:
            cluster = int(str(node)[1])
            vec = np.zeros(2)
            vec[cluster] = 1.0
            out[node] = vec
        return out


class NoiseMethod(EmbeddingMethod):
    """Random embeddings — an uninformed predictor."""

    name = "Noise"

    def fit(self, graph):
        rng = np.random.default_rng(0)
        return {n: rng.normal(size=4) for n in graph.nodes}


class TestMakeSplit:
    def test_removal_fraction(self, clustered_graph):
        split = make_split(clustered_graph, 0.4, seed=0)
        total = clustered_graph.num_edges
        assert len(split.positive_pairs) == round(0.4 * total)
        assert split.train_graph.num_edges == total - len(split.positive_pairs)

    def test_negatives_balanced_and_nonadjacent(self, clustered_graph):
        split = make_split(clustered_graph, 0.4, seed=0)
        assert len(split.negative_pairs) == len(split.positive_pairs)
        for u, v in split.negative_pairs:
            assert not clustered_graph.has_edge(u, v)
            assert u != v

    def test_train_graph_keeps_all_nodes(self, clustered_graph):
        split = make_split(clustered_graph, 0.4, seed=0)
        assert split.train_graph.num_nodes == clustered_graph.num_nodes

    def test_seeded(self, clustered_graph):
        a = make_split(clustered_graph, 0.4, seed=3)
        b = make_split(clustered_graph, 0.4, seed=3)
        assert a.positive_pairs == b.positive_pairs
        assert a.negative_pairs == b.negative_pairs

    def test_bad_fraction(self, clustered_graph):
        with pytest.raises(ValueError):
            make_split(clustered_graph, 1.5)


class TestRunLinkPrediction:
    def test_oracle_gets_high_auc(self, clustered_graph):
        result = run_link_prediction(OracleMethod, clustered_graph, seed=0)
        assert result.auc > 0.9

    def test_oracle_beats_noise(self, clustered_graph):
        split = make_split(clustered_graph, 0.4, seed=0)
        oracle = run_link_prediction(OracleMethod, clustered_graph, split=split)
        noise = run_link_prediction(NoiseMethod, clustered_graph, split=split)
        assert oracle.auc > noise.auc + 0.2

    def test_counts_reported(self, clustered_graph):
        result = run_link_prediction(OracleMethod, clustered_graph, seed=0)
        assert result.num_positive == result.num_negative > 0

    def test_shared_split_isolates_method_effect(self, clustered_graph):
        split = make_split(clustered_graph, 0.4, seed=1)
        a = run_link_prediction(OracleMethod, clustered_graph, split=split)
        b = run_link_prediction(OracleMethod, clustered_graph, split=split)
        assert a.auc == b.auc
