"""Tests for the Figure 6 case-study pipeline."""

import numpy as np
import pytest

from repro.eval import run_case_study
from repro.eval.case_study import select_case_nodes


def category_embeddings(rng, categories=4, per_category=12, dim=16, spread=0.2):
    embeddings, labels = {}, {}
    for c in range(categories):
        center = rng.normal(size=dim) * 4
        for k in range(per_category):
            node = f"cat{c}_{k}"
            embeddings[node] = center + rng.normal(0, spread, size=dim)
            labels[node] = c
    return embeddings, labels


class TestSelectCaseNodes:
    def test_per_category_count(self, rng):
        _, labels = category_embeddings(rng)
        nodes = select_case_nodes(labels, per_category=5, seed=0)
        assert len(nodes) == 4 * 5
        counts = {}
        for n in nodes:
            counts[labels[n]] = counts.get(labels[n], 0) + 1
        assert all(v == 5 for v in counts.values())

    def test_small_category_fully_taken(self):
        labels = {"a": 0, "b": 0, "c": 1}
        nodes = select_case_nodes(labels, per_category=10, seed=0)
        assert sorted(nodes) == ["a", "b", "c"]

    def test_seeded(self, rng):
        _, labels = category_embeddings(rng)
        assert select_case_nodes(labels, 5, seed=2) == select_case_nodes(
            labels, 5, seed=2
        )


class TestRunCaseStudy:
    def test_projection_shape(self, rng):
        embeddings, labels = category_embeddings(rng)
        result = run_case_study(embeddings, labels, per_category=8, seed=0)
        assert result.projection.shape == (len(result.nodes), 2)
        assert len(result.labels) == len(result.nodes)

    def test_separated_categories_high_silhouette(self, rng):
        embeddings, labels = category_embeddings(rng, spread=0.1)
        result = run_case_study(embeddings, labels, per_category=8, seed=0)
        assert result.silhouette_embedding > 0.7
        assert result.silhouette_projection > 0.5

    def test_shuffled_labels_low_silhouette(self, rng):
        embeddings, labels = category_embeddings(rng, spread=0.1)
        values = list(labels.values())
        rng.shuffle(values)
        shuffled = dict(zip(labels.keys(), values))
        good = run_case_study(embeddings, labels, per_category=8, seed=0)
        bad = run_case_study(embeddings, shuffled, per_category=8, seed=0)
        assert good.silhouette_embedding > bad.silhouette_embedding

    def test_too_few_nodes_rejected(self, rng):
        embeddings = {f"n{k}": rng.normal(size=4) for k in range(4)}
        labels = {f"n{k}": k % 2 for k in range(4)}
        with pytest.raises(ValueError):
            run_case_study(embeddings, labels)
