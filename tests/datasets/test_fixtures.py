"""Tests for the deterministic fixture graphs."""

import pytest

from repro.datasets import book_rating_view, tiny_academic, two_view_toy
from repro.graph import separate_views


class TestTinyAcademic:
    def test_matches_figure_2a(self):
        g = tiny_academic()
        assert g.num_nodes == 9
        assert g.num_edges == 11
        assert g.node_types == {"author", "paper", "university"}
        assert g.edge_types == {"citation", "authorship", "affiliation"}

    def test_a1_a3_contradiction(self):
        """A1 and A3 share a university but never co-author (Fig. 2c)."""
        g = tiny_academic()
        assert g.has_edge("A1", "U1")
        assert g.has_edge("A3", "U1")
        assert not g.has_edge("A1", "A3")


class TestBookRatingView:
    def test_matches_figure_4(self):
        g = book_rating_view()
        assert g.num_nodes == 6
        assert g.num_edges == 6
        assert g.edge_weight("R1", "B2") == 2.0
        assert g.edge_weight("R2", "B2") == 5.0
        assert g.edge_weight("R3", "B2") == 1.0

    def test_is_single_heter_view(self):
        views = separate_views(book_rating_view())
        assert len(views) == 1
        assert views[0].is_heter


class TestTwoViewToy:
    def test_structure(self):
        g, labels = two_view_toy()
        assert g.edge_types == {"AA", "AB"}
        assert set(labels.values()) == {0, 1}
        views = separate_views(g)
        kinds = {v.edge_type: v.is_heter for v in views}
        assert kinds == {"AA": False, "AB": True}

    def test_community_balance(self):
        _, labels = two_view_toy(num_per_side=12)
        counts = [list(labels.values()).count(c) for c in (0, 1)]
        assert counts == [6, 6]

    def test_validation(self):
        with pytest.raises(ValueError):
            two_view_toy(num_per_side=3)
        with pytest.raises(ValueError):
            two_view_toy(num_per_side=5)
