"""Tests for the deterministic fixture graphs."""

from collections import Counter

import numpy as np
import pytest

from repro.datasets import (
    book_rating_view,
    degree_skewed_graph,
    tiny_academic,
    two_view_toy,
    type_imbalanced_graph,
)
from repro.graph import separate_views
from repro.graph.csr import csr_adjacency


class TestTinyAcademic:
    def test_matches_figure_2a(self):
        g = tiny_academic()
        assert g.num_nodes == 9
        assert g.num_edges == 11
        assert g.node_types == {"author", "paper", "university"}
        assert g.edge_types == {"citation", "authorship", "affiliation"}

    def test_a1_a3_contradiction(self):
        """A1 and A3 share a university but never co-author (Fig. 2c)."""
        g = tiny_academic()
        assert g.has_edge("A1", "U1")
        assert g.has_edge("A3", "U1")
        assert not g.has_edge("A1", "A3")


class TestBookRatingView:
    def test_matches_figure_4(self):
        g = book_rating_view()
        assert g.num_nodes == 6
        assert g.num_edges == 6
        assert g.edge_weight("R1", "B2") == 2.0
        assert g.edge_weight("R2", "B2") == 5.0
        assert g.edge_weight("R3", "B2") == 1.0

    def test_is_single_heter_view(self):
        views = separate_views(book_rating_view())
        assert len(views) == 1
        assert views[0].is_heter


class TestTwoViewToy:
    def test_structure(self):
        g, labels = two_view_toy()
        assert g.edge_types == {"AA", "AB"}
        assert set(labels.values()) == {0, 1}
        views = separate_views(g)
        kinds = {v.edge_type: v.is_heter for v in views}
        assert kinds == {"AA": False, "AB": True}

    def test_community_balance(self):
        _, labels = two_view_toy(num_per_side=12)
        counts = [list(labels.values()).count(c) for c in (0, 1)]
        assert counts == [6, 6]

    def test_validation(self):
        with pytest.raises(ValueError):
            two_view_toy(num_per_side=3)
        with pytest.raises(ValueError):
            two_view_toy(num_per_side=5)


class TestDegreeSkewedGraph:
    def test_shape_and_labels(self):
        graph, labels = degree_skewed_graph(num_items=24, seed=0)
        assert graph.edge_types == {"II", "IT"}
        assert set(labels.values()) == {0, 1}
        assert len(labels) == 24

    def test_exponent_controls_skew(self):
        def top_share(exponent):
            graph, _ = degree_skewed_graph(num_items=40, exponent=exponent, seed=1)
            degrees = np.sort(csr_adjacency(graph).degrees)[::-1]
            return degrees[:5].sum() / degrees.sum()

        assert top_share(3.5) > top_share(1.5)

    def test_deterministic_per_seed(self):
        a, _ = degree_skewed_graph(seed=4)
        b, _ = degree_skewed_graph(seed=4)
        assert [(e.u, e.v, e.edge_type) for e in a.edges] == [
            (e.u, e.v, e.edge_type) for e in b.edges
        ]

    def test_no_isolated_items(self):
        graph, _ = degree_skewed_graph(seed=2)
        assert (csr_adjacency(graph).degrees > 0).all()

    def test_validation(self):
        with pytest.raises(ValueError, match="num_items"):
            degree_skewed_graph(num_items=7)
        with pytest.raises(ValueError, match="exponent"):
            degree_skewed_graph(exponent=1.0)


class TestTypeImbalancedGraph:
    def test_shares_control_edge_split(self):
        graph, _ = type_imbalanced_graph(shares=(0.8, 0.15, 0.05), seed=1)
        counts = Counter(e.edge_type for e in graph.edges)
        assert counts["II"] > counts["IT"] > counts["IC"]

    def test_three_views_all_nonempty(self):
        graph, labels = type_imbalanced_graph(seed=0)
        assert graph.edge_types == {"II", "IT", "IC"}
        assert set(labels.values()) == {0, 1}
        views = separate_views(graph)
        assert len(views) == 3
        assert all(view.num_nodes >= 2 for view in views)

    def test_balanced_shares_near_equal(self):
        graph, _ = type_imbalanced_graph(shares=(1, 1, 1), seed=1)
        counts = Counter(e.edge_type for e in graph.edges)
        assert counts["II"] == counts["IT"]

    def test_validation(self):
        with pytest.raises(ValueError, match="num_items"):
            type_imbalanced_graph(num_items=6)
        with pytest.raises(ValueError, match="shares"):
            type_imbalanced_graph(shares=(1.0, 0.0, -1.0))
