"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.datasets import (
    AMinerConfig,
    AppStoreConfig,
    BlogConfig,
    make_aminer,
    make_app_daily,
    make_app_weekly,
    make_appstore,
    make_blog,
)
from repro.graph import separate_views


class TestAMiner:
    def test_schema_matches_table_2(self):
        graph, labels = make_aminer()
        assert graph.node_types == {"author", "paper", "venue"}
        assert graph.edge_types == {"AA", "AP", "PP", "PV"}
        # labels cover exactly the papers
        assert set(labels) == set(graph.nodes_of_type("paper"))

    def test_unit_weights(self):
        graph, _ = make_aminer()
        assert all(e.weight == 1.0 for e in graph.edges)

    def test_deterministic_given_seed(self):
        g1, l1 = make_aminer(AMinerConfig(seed=42))
        g2, l2 = make_aminer(AMinerConfig(seed=42))
        assert g1.num_edges == g2.num_edges
        assert l1 == l2
        assert [e.endpoints() for e in g1.edges] == [
            e.endpoints() for e in g2.edges
        ]

    def test_seeds_differ(self):
        g1, _ = make_aminer(AMinerConfig(seed=1))
        g2, _ = make_aminer(AMinerConfig(seed=2))
        assert [e.endpoints() for e in g1.edges] != [
            e.endpoints() for e in g2.edges
        ]

    def test_scalable(self):
        cfg = AMinerConfig(num_authors=60, num_papers=70, num_venues=8)
        graph, labels = make_aminer(cfg)
        assert len(graph.nodes_of_type("author")) == 60
        assert len(labels) == 70

    def test_validation(self):
        with pytest.raises(ValueError):
            make_aminer(AMinerConfig(num_topics=1))
        with pytest.raises(ValueError):
            make_aminer(AMinerConfig(num_venues=2, num_topics=4))

    def test_pv_heter_view_exists(self):
        graph, _ = make_aminer()
        views = {v.edge_type: v for v in separate_views(graph)}
        assert views["PV"].is_heter
        assert views["AA"].is_homo
        assert views["PP"].is_homo

    def test_labels_are_topics(self):
        _, labels = make_aminer(AMinerConfig(num_topics=3))
        assert set(labels.values()) <= {0, 1, 2}


class TestBlog:
    def test_schema_matches_table_2(self):
        graph, labels = make_blog()
        assert graph.node_types == {"user", "keyword"}
        assert graph.edge_types == {"UU", "UK", "KK"}
        assert set(labels) == set(graph.nodes_of_type("user"))

    def test_unit_weights(self):
        graph, _ = make_blog()
        assert all(e.weight == 1.0 for e in graph.edges)

    def test_denser_than_appstore(self):
        """The paper: BLOG is far denser than the App-* networks."""
        from repro.graph import compute_statistics

        blog, _ = make_blog()
        app, _ = make_app_daily()
        blog_density = compute_statistics(blog, "b").density
        app_density = compute_statistics(app, "a").density
        assert blog_density > 3 * app_density

    def test_deterministic(self):
        g1, _ = make_blog(BlogConfig(seed=5))
        g2, _ = make_blog(BlogConfig(seed=5))
        assert [e.endpoints() for e in g1.edges] == [
            e.endpoints() for e in g2.edges
        ]

    def test_validation(self):
        with pytest.raises(ValueError):
            make_blog(BlogConfig(num_interests=1))
        with pytest.raises(ValueError):
            make_blog(BlogConfig(num_keywords=4, num_interests=8))


class TestAppStore:
    def test_schema_matches_table_2(self):
        graph, labels = make_app_daily()
        assert graph.node_types == {"applet", "user", "keyword"}
        assert graph.edge_types == {"AU", "AK"}
        # only a fraction of applets is labelled (paper: 5,375 of ~150k)
        applets = graph.nodes_of_type("applet")
        assert 0 < len(labels) < len(applets)
        assert set(labels) <= set(applets)

    def test_weights_are_taste_levels(self):
        cfg = AppStoreConfig(taste_levels=5, weight_jitter=0.15)
        graph, _ = make_appstore(cfg)
        weights = np.array([e.weight for e in graph.edges])
        assert (weights > 0).all()
        assert weights.max() <= 5 + 1.0  # level cap plus jitter
        assert weights.std() > 0.5  # genuinely weighted

    def test_weekly_larger_than_daily(self):
        daily, _ = make_app_daily()
        weekly, _ = make_app_weekly()
        assert weekly.num_nodes > daily.num_nodes
        assert weekly.num_edges > daily.num_edges

    def test_labeled_nodes_have_edges(self):
        graph, labels = make_app_daily()
        assert all(graph.degree(n) > 0 for n in labels)

    def test_both_views_heter(self):
        graph, _ = make_app_daily()
        assert all(v.is_heter for v in separate_views(graph))

    def test_validation(self):
        with pytest.raises(ValueError):
            make_appstore(AppStoreConfig(num_categories=1))
        with pytest.raises(ValueError):
            make_appstore(AppStoreConfig(labeled_fraction=0.0))
        with pytest.raises(ValueError):
            make_appstore(AppStoreConfig(taste_levels=1))

    def test_overrides_forwarded(self):
        graph, _ = make_app_daily(num_applets=50, num_users=20, num_keywords=15)
        assert len(graph.nodes_of_type("applet")) == 50

    def test_view_correlation_zero_decouples_ak(self):
        """With zero correlation the AK view ignores categories."""
        graph, labels = make_appstore(AppStoreConfig(view_correlation=0.0))
        assert graph.num_edges > 0
