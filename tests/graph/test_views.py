"""Tests for view separation, view-pairs and paired-subviews (Defs 2-5)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    HeteroGraph,
    build_view_pairs,
    paired_subviews,
    separate_views,
)


class TestSeparateViews:
    def test_one_view_per_edge_type(self, academic):
        views = separate_views(academic)
        assert [v.edge_type for v in views] == [
            "affiliation",
            "authorship",
            "citation",
        ]

    def test_edge_partition_property(self, academic):
        """Equation (1): edge sets are disjoint and cover E."""
        views = separate_views(academic)
        total = sum(v.num_edges for v in views)
        assert total == academic.num_edges
        for view in views:
            types = {e.edge_type for e in view.graph.edges}
            assert types == {view.edge_type}

    def test_no_isolated_nodes_in_any_view(self, academic):
        """The Figure 2(c) guarantee of edge-type separation."""
        for view in separate_views(academic):
            for node in view.graph.nodes:
                assert view.graph.degree(node) >= 1

    def test_homo_and_heter_classification(self, academic):
        views = {v.edge_type: v for v in separate_views(academic)}
        assert views["citation"].is_homo
        assert not views["citation"].is_heter
        assert views["authorship"].is_heter
        assert views["affiliation"].is_heter

    def test_node_types_inherited(self, academic):
        views = {v.edge_type: v for v in separate_views(academic)}
        assert views["authorship"].graph.node_types == {"author", "paper"}

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            separate_views(HeteroGraph())


class TestViewPairs:
    def test_pairs_share_nodes(self, academic):
        views = separate_views(academic)
        pairs = build_view_pairs(views)
        keys = {p.key for p in pairs}
        # affiliation & authorship share authors; authorship & citation
        # share papers; affiliation & citation share nothing
        assert keys == {
            ("affiliation", "authorship"),
            ("authorship", "citation"),
        }

    def test_common_nodes_correct(self, academic):
        views = separate_views(academic)
        pairs = {p.key: p for p in build_view_pairs(views)}
        assert pairs[("affiliation", "authorship")].common_nodes == {
            "A1",
            "A2",
            "A3",
            "A4",
            "A5",
        }
        assert pairs[("authorship", "citation")].common_nodes == {"P1", "P2"}

    def test_no_pair_without_overlap(self):
        g = HeteroGraph()
        g.add_edge("a", "b", "e1", u_type="t1", v_type="t1")
        g.add_edge("c", "d", "e2", u_type="t2", v_type="t2")
        views = separate_views(g)
        assert build_view_pairs(views) == []


class TestPairedSubviews:
    def test_subview_nodes_are_common_plus_neighbors(self, academic):
        views = separate_views(academic)
        pairs = {p.key: p for p in build_view_pairs(views)}
        sub_auth, sub_cit = paired_subviews(pairs[("authorship", "citation")])
        # common nodes {P1, P2}; in authorship view their neighbours are
        # all five authors; in citation view, each other
        assert sub_auth.nodes == {"P1", "P2", "A1", "A2", "A3", "A4", "A5"}
        assert sub_cit.nodes == {"P1", "P2"}

    def test_subview_keeps_edge_type(self, academic):
        views = separate_views(academic)
        pair = build_view_pairs(views)[0]
        sub_i, sub_j = paired_subviews(pair)
        assert sub_i.edge_type == pair.view_i.edge_type
        assert sub_j.edge_type == pair.view_j.edge_type

    def test_subview_is_subgraph(self, academic):
        views = separate_views(academic)
        for pair in build_view_pairs(views):
            for sub, parent in zip(
                paired_subviews(pair), (pair.view_i, pair.view_j)
            ):
                assert sub.nodes <= parent.nodes
                assert sub.num_edges <= parent.num_edges


@st.composite
def random_hetero_graphs(draw):
    """Small random typed multigraphs for property testing."""
    num_nodes = draw(st.integers(min_value=2, max_value=12))
    num_types = draw(st.integers(min_value=1, max_value=3))
    node_types = {
        f"n{i}": f"t{draw(st.integers(0, num_types - 1))}"
        for i in range(num_nodes)
    }
    num_edges = draw(st.integers(min_value=1, max_value=20))
    edges = []
    for _ in range(num_edges):
        u = draw(st.integers(0, num_nodes - 1))
        v = draw(st.integers(0, num_nodes - 1))
        if u == v:
            continue
        etype = f"e{draw(st.integers(0, 2))}"
        weight = draw(
            st.floats(min_value=0.1, max_value=10, allow_nan=False)
        )
        edges.append((f"n{u}", f"n{v}", etype, weight))
    if not edges:
        edges.append(("n0", "n1", "e0", 1.0))
    return HeteroGraph.from_edges(edges, node_types)


class TestViewProperties:
    @given(random_hetero_graphs())
    @settings(max_examples=40, deadline=None)
    def test_equation_1_on_random_graphs(self, graph):
        """Views partition the edge multiset for arbitrary typed graphs."""
        views = separate_views(graph)
        assert sum(v.num_edges for v in views) == graph.num_edges
        seen_types = set()
        for view in views:
            assert view.edge_type not in seen_types
            seen_types.add(view.edge_type)
            for node in view.graph.nodes:
                assert view.graph.degree(node) >= 1

    @given(random_hetero_graphs())
    @settings(max_examples=40, deadline=None)
    def test_view_pairs_symmetric_overlap(self, graph):
        views = separate_views(graph)
        for pair in build_view_pairs(views):
            assert pair.common_nodes
            assert pair.common_nodes == (
                pair.view_i.nodes & pair.view_j.nodes
            )
