"""Tests for Table II-style statistics."""

import pytest

from repro.graph import compute_statistics


class TestStatistics:
    def test_counts(self, academic):
        stats = compute_statistics(academic, "fixture")
        assert stats.num_nodes == 9
        assert stats.num_edges == 11
        assert stats.nodes_per_type == {
            "author": 5,
            "paper": 2,
            "university": 2,
        }
        assert stats.edges_per_type == {
            "citation": 1,
            "authorship": 5,
            "affiliation": 5,
        }

    def test_density_and_degree(self, triangle):
        stats = compute_statistics(triangle, "tri")
        assert stats.density == pytest.approx(1.0)
        assert stats.average_degree == pytest.approx(2.0)

    def test_labels_counted(self, academic):
        labels = {"P1": 0, "P2": 1, "ghost": 2}
        stats = compute_statistics(academic, "fixture", labels)
        assert stats.num_labeled == 2  # ghost is not in the graph
        assert stats.labeled_type == "paper"

    def test_no_labels(self, academic):
        stats = compute_statistics(academic, "fixture")
        assert stats.num_labeled == 0
        assert stats.labeled_type is None

    def test_as_row_shape(self, academic):
        row = compute_statistics(academic, "fixture", {"P1": 0}).as_row()
        assert row["Dataset"] == "fixture"
        assert row["#Nodes"] == "9"
        assert "author(5)" in row["Node Types (#Nodes)"]
        assert row["#Labeled Nodes"] == "paper(1)"
