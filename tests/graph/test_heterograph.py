"""Unit tests for the HeteroGraph substrate."""

import pytest

from repro.graph import HeteroGraph
from repro.graph.heterograph import Edge


class TestConstruction:
    def test_empty_graph(self):
        g = HeteroGraph()
        assert g.num_nodes == 0
        assert g.num_edges == 0
        assert g.node_types == frozenset()
        assert g.edge_types == frozenset()

    def test_add_node(self):
        g = HeteroGraph()
        g.add_node("a", "author")
        assert g.has_node("a")
        assert g.node_type("a") == "author"
        assert "a" in g
        assert len(g) == 1

    def test_add_node_idempotent(self):
        g = HeteroGraph()
        g.add_node("a", "author")
        g.add_node("a", "author")
        assert g.num_nodes == 1

    def test_retyping_node_rejected(self):
        g = HeteroGraph()
        g.add_node("a", "author")
        with pytest.raises(ValueError, match="cannot retype"):
            g.add_node("a", "paper")

    def test_add_edge_with_inline_types(self):
        g = HeteroGraph()
        g.add_edge("a", "p", "AP", weight=2.0, u_type="author", v_type="paper")
        assert g.num_nodes == 2
        assert g.num_edges == 1
        assert g.edge_weight("a", "p") == 2.0

    def test_add_edge_unknown_node_rejected(self):
        g = HeteroGraph()
        g.add_node("a", "author")
        with pytest.raises(ValueError, match="unknown node"):
            g.add_edge("a", "missing", "AP")

    def test_self_loop_rejected(self):
        g = HeteroGraph()
        g.add_node("a", "t")
        with pytest.raises(ValueError, match="self loop"):
            g.add_edge("a", "a", "e")

    def test_nonpositive_weight_rejected(self):
        g = HeteroGraph()
        g.add_node("a", "t")
        g.add_node("b", "t")
        for bad in (0.0, -1.0):
            with pytest.raises(ValueError, match="positive"):
                g.add_edge("a", "b", "e", weight=bad)

    def test_from_edges(self):
        g = HeteroGraph.from_edges(
            [("a", "b", "e", 1.0), ("b", "c", "f", 2.0)],
            {"a": "t1", "b": "t1", "c": "t2", "isolated": "t2"},
        )
        assert g.num_nodes == 4
        assert g.num_edges == 2
        assert g.degree("isolated") == 0


class TestQueries:
    def test_degree_and_weighted_degree(self, triangle):
        assert triangle.degree("x") == 2
        assert triangle.weighted_degree("x") == pytest.approx(4.0)

    def test_neighbors(self, triangle):
        assert sorted(triangle.neighbors("x")) == ["y", "z"]

    def test_incident_triples(self, triangle):
        incident = dict(
            (nbr, (w, t)) for nbr, w, t in triangle.incident("y")
        )
        assert incident["x"] == (1.0, "e")
        assert incident["z"] == (2.0, "e")

    def test_index_round_trip(self, academic):
        for node in academic.nodes:
            assert academic.node_at(academic.index_of(node)) == node

    def test_index_of_unknown_raises(self, academic):
        with pytest.raises(KeyError):
            academic.index_of("nope")

    def test_node_type_unknown_raises(self, academic):
        with pytest.raises(KeyError):
            academic.node_type("nope")

    def test_has_edge(self, academic):
        assert academic.has_edge("A1", "P1")
        assert academic.has_edge("P1", "A1")
        assert not academic.has_edge("A1", "A3")

    def test_edge_weight_missing_raises(self, triangle):
        triangle.add_node("w", "t")
        with pytest.raises(KeyError):
            triangle.edge_weight("x", "w")

    def test_parallel_edges_sum_weight(self):
        g = HeteroGraph()
        g.add_node("a", "t")
        g.add_node("b", "t")
        g.add_edge("a", "b", "e", weight=1.0)
        g.add_edge("a", "b", "f", weight=2.5)
        assert g.edge_weight("a", "b") == pytest.approx(3.5)
        assert g.degree("a") == 2

    def test_types_collected(self, academic):
        assert academic.node_types == {"author", "paper", "university"}
        assert academic.edge_types == {"citation", "authorship", "affiliation"}

    def test_repr_mentions_counts(self, academic):
        text = repr(academic)
        assert "nodes=9" in text
        assert "edges=11" in text


class TestEdge:
    def test_other_endpoint(self):
        e = Edge("a", "b", "t", 1.0)
        assert e.other("a") == "b"
        assert e.other("b") == "a"

    def test_other_rejects_non_endpoint(self):
        e = Edge("a", "b", "t", 1.0)
        with pytest.raises(ValueError):
            e.other("c")

    def test_endpoints(self):
        assert Edge("a", "b", "t", 1.0).endpoints() == ("a", "b")


class TestDerivedGraphs:
    def test_subgraph_of_edges(self, academic):
        citation = academic.edges_of_type("citation")
        sub = academic.subgraph_of_edges(citation)
        assert sub.num_nodes == 2
        assert sub.num_edges == 1
        assert sub.node_types == {"paper"}

    def test_subgraph_of_nodes(self, academic):
        sub = academic.subgraph_of_nodes(["A1", "P1", "P2"])
        assert sub.num_nodes == 3
        # edges kept: A1-P1 (authorship), P1-P2 (citation)
        assert sub.num_edges == 2

    def test_without_edges_keeps_all_nodes(self, academic):
        removed = academic.edges_of_type("citation")
        reduced = academic.without_edges(removed)
        assert reduced.num_nodes == academic.num_nodes
        assert reduced.num_edges == academic.num_edges - 1
        assert not reduced.has_edge("P1", "P2")

    def test_to_networkx(self, academic):
        nxg = academic.to_networkx()
        assert nxg.number_of_nodes() == academic.num_nodes
        assert nxg.number_of_edges() == academic.num_edges
        assert nxg.nodes["A1"]["node_type"] == "author"
