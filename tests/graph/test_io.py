"""Tests for graph and embedding serialization."""

import numpy as np
import pytest

from repro.graph import (
    load_embeddings,
    load_graph,
    save_embeddings,
    save_graph,
)


class TestGraphRoundTrip:
    def test_round_trip(self, academic, tmp_path):
        path = tmp_path / "g.tsv"
        save_graph(academic, path)
        loaded = load_graph(path)
        assert loaded.num_nodes == academic.num_nodes
        assert loaded.num_edges == academic.num_edges
        for node in academic.nodes:
            assert loaded.node_type(node) == academic.node_type(node)
        for orig, new in zip(academic.edges, loaded.edges):
            assert orig.endpoints() == new.endpoints()
            assert orig.edge_type == new.edge_type
            assert orig.weight == new.weight

    def test_weights_preserved_exactly(self, book_view, tmp_path):
        path = tmp_path / "g.tsv"
        save_graph(book_view, path)
        loaded = load_graph(path)
        assert loaded.edge_weight("R2", "B2") == 5.0

    def test_isolated_nodes_survive(self, tmp_path):
        from repro.graph import HeteroGraph

        g = HeteroGraph()
        g.add_node("iso", "t")
        g.add_edge("a", "b", "e", u_type="t", v_type="t")
        path = tmp_path / "g.tsv"
        save_graph(g, path)
        loaded = load_graph(path)
        assert loaded.has_node("iso")
        assert loaded.degree("iso") == 0

    def test_comments_and_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "g.tsv"
        path.write_text(
            "# header\n\nnode\ta\tt\nnode\tb\tt\nedge\ta\tb\te\t2.0\n"
        )
        loaded = load_graph(path)
        assert loaded.num_edges == 1

    def test_malformed_node_record(self, tmp_path):
        path = tmp_path / "g.tsv"
        path.write_text("node\tonly_one_field\n")
        with pytest.raises(ValueError, match="3 fields"):
            load_graph(path)

    def test_malformed_edge_record(self, tmp_path):
        path = tmp_path / "g.tsv"
        path.write_text("node\ta\tt\nnode\tb\tt\nedge\ta\tb\te\n")
        with pytest.raises(ValueError, match="5 fields"):
            load_graph(path)

    def test_unknown_record_kind(self, tmp_path):
        path = tmp_path / "g.tsv"
        path.write_text("vertex\ta\tt\n")
        with pytest.raises(ValueError, match="unknown record kind"):
            load_graph(path)


class TestEmbeddingRoundTrip:
    def test_round_trip(self, rng, tmp_path):
        embeddings = {f"n{k}": rng.normal(size=6) for k in range(5)}
        path = tmp_path / "emb.txt"
        save_embeddings(embeddings, path)
        loaded = load_embeddings(path)
        assert set(loaded) == set(embeddings)
        for node in embeddings:
            assert np.allclose(loaded[node], embeddings[node], atol=1e-6)

    def test_header_format(self, rng, tmp_path):
        embeddings = {"a": rng.normal(size=3)}
        path = tmp_path / "emb.txt"
        save_embeddings(embeddings, path)
        assert path.read_text().splitlines()[0] == "1 3"

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_embeddings({}, tmp_path / "emb.txt")

    def test_inconsistent_dim_rejected(self, rng, tmp_path):
        embeddings = {"a": rng.normal(size=3), "b": rng.normal(size=4)}
        with pytest.raises(ValueError, match="inconsistent"):
            save_embeddings(embeddings, tmp_path / "emb.txt")

    def test_truncated_file_rejected(self, tmp_path):
        path = tmp_path / "emb.txt"
        path.write_text("2 3\na 1 2 3\n")
        with pytest.raises(ValueError, match="promises 2"):
            load_embeddings(path)

    def test_wrong_field_count_rejected(self, tmp_path):
        path = tmp_path / "emb.txt"
        path.write_text("1 3\na 1 2\n")
        with pytest.raises(ValueError, match="expected 4 fields"):
            load_embeddings(path)


class TestDtypePreservation:
    """The text path must not silently coerce dtypes (regression: the
    serving store round trips through text, so float32 embeddings have
    to come back as float32, bit for bit)."""

    def test_float32_round_trip_is_bit_exact(self, rng, tmp_path):
        embeddings = {
            f"n{k}": rng.normal(size=5).astype(np.float32) for k in range(4)
        }
        path = tmp_path / "emb.txt"
        save_embeddings(embeddings, path)
        loaded = load_embeddings(path)
        for node, vector in embeddings.items():
            assert loaded[node].dtype == np.float32
            assert loaded[node].tobytes() == vector.tobytes()

    def test_float64_round_trip_is_bit_exact(self, rng, tmp_path):
        embeddings = {f"n{k}": rng.normal(size=5) for k in range(4)}
        path = tmp_path / "emb.txt"
        save_embeddings(embeddings, path)
        loaded = load_embeddings(path)
        for node, vector in embeddings.items():
            assert loaded[node].dtype == np.float64
            assert loaded[node].tobytes() == vector.tobytes()

    def test_float32_header_carries_marker(self, rng, tmp_path):
        path = tmp_path / "emb.txt"
        save_embeddings({"a": rng.normal(size=3).astype(np.float32)}, path)
        assert path.read_text().splitlines()[0] == "1 3 float32"

    def test_float64_header_unchanged(self, rng, tmp_path):
        # the two-field header stays word2vec-compatible for float64
        path = tmp_path / "emb.txt"
        save_embeddings({"a": rng.normal(size=3)}, path)
        assert path.read_text().splitlines()[0] == "1 3"

    def test_unknown_dtype_token_rejected(self, tmp_path):
        path = tmp_path / "emb.txt"
        path.write_text("1 3 float16\na 1 2 3\n")
        with pytest.raises(ValueError, match="float16"):
            load_embeddings(path)

    def test_non_float_input_promoted_to_float64(self, tmp_path):
        path = tmp_path / "emb.txt"
        save_embeddings({"a": [1, 2, 3]}, path)
        loaded = load_embeddings(path)
        assert loaded["a"].dtype == np.float64


class TestMalformedRows:
    def test_bad_edge_weight_names_file_and_line(self, tmp_path):
        path = tmp_path / "g.tsv"
        path.write_text(
            "node\ta\tauthor\nnode\tb\tauthor\n"
            "edge\ta\tb\tcoauthor\tnot-a-number\n"
        )
        with pytest.raises(ValueError, match=r"g\.tsv:3:.*not a number"):
            load_graph(path)

    def test_bad_embedding_header_names_line(self, tmp_path):
        path = tmp_path / "emb.txt"
        path.write_text("x 3\na 1 2 3\n")
        with pytest.raises(ValueError, match=r"emb\.txt:1:.*integers"):
            load_embeddings(path)

    def test_bad_embedding_value_names_line(self, tmp_path):
        path = tmp_path / "emb.txt"
        path.write_text("2 3\na 1 2 3\nb 1 oops 3\n")
        with pytest.raises(ValueError, match=r"emb\.txt:3:.*non-numeric"):
            load_embeddings(path)


class TestAtomicWrites:
    def test_failed_graph_save_keeps_old_file(
        self, academic, tmp_path, monkeypatch
    ):
        import os

        path = tmp_path / "g.tsv"
        save_graph(academic, path)
        before = path.read_text()

        def broken_replace(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(os, "replace", broken_replace)
        with pytest.raises(OSError):
            save_graph(academic, path)
        monkeypatch.undo()
        assert path.read_text() == before
        assert [p.name for p in tmp_path.iterdir()] == ["g.tsv"]

    def test_failed_embedding_save_keeps_old_file(
        self, rng, tmp_path, monkeypatch
    ):
        import os

        path = tmp_path / "emb.txt"
        save_embeddings({"a": rng.normal(size=3)}, path)
        before = path.read_text()
        monkeypatch.setattr(
            os, "replace", lambda s, d: (_ for _ in ()).throw(OSError("full"))
        )
        with pytest.raises(OSError):
            save_embeddings({"b": rng.normal(size=3)}, path)
        monkeypatch.undo()
        assert path.read_text() == before
        assert [p.name for p in tmp_path.iterdir()] == ["emb.txt"]

    def test_no_tmp_left_on_success(self, academic, tmp_path):
        save_graph(academic, tmp_path / "g.tsv")
        assert [p.name for p in tmp_path.iterdir()] == ["g.tsv"]
