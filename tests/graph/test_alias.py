"""Tests for the alias sampler."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import AliasSampler


class TestValidation:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            AliasSampler([])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            AliasSampler([1.0, -0.5])

    def test_all_zero_rejected(self):
        with pytest.raises(ValueError):
            AliasSampler([0.0, 0.0])

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            AliasSampler([1.0, float("nan")])

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            AliasSampler([[1.0, 2.0]])


class TestSampling:
    def test_single_outcome(self, rng):
        sampler = AliasSampler([3.0])
        assert sampler.sample(rng) == 0
        assert (sampler.sample(rng, size=10) == 0).all()

    def test_scalar_vs_array_api(self, rng):
        sampler = AliasSampler([1.0, 1.0])
        assert isinstance(sampler.sample(rng), int)
        out = sampler.sample(rng, size=5)
        assert out.shape == (5,)

    def test_zero_weight_never_sampled(self, rng):
        sampler = AliasSampler([0.0, 1.0, 0.0, 2.0])
        draws = sampler.sample(rng, size=5000)
        assert set(np.unique(draws)) <= {1, 3}

    def test_empirical_distribution(self, rng):
        weights = [1.0, 2.0, 3.0, 4.0]
        sampler = AliasSampler(weights)
        draws = sampler.sample(rng, size=200_000)
        counts = np.bincount(draws, minlength=4) / draws.size
        expected = np.array(weights) / sum(weights)
        assert np.allclose(counts, expected, atol=0.01)

    @given(
        st.lists(
            st.floats(min_value=0.01, max_value=100.0, allow_nan=False),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_table_reconstructs_distribution(self, weights):
        """The alias table encodes exactly the normalized weights."""
        sampler = AliasSampler(weights)
        expected = np.asarray(weights) / np.sum(weights)
        assert np.allclose(sampler.probabilities(), expected, atol=1e-9)

    def test_num_outcomes(self):
        assert AliasSampler([1, 2, 3]).num_outcomes == 3
