"""Tests for the flat CSR adjacency layout and its per-graph cache."""

import numpy as np
import pytest

from repro.graph import HeteroGraph, csr_adjacency, separate_views
from repro.walks import BiasedCorrelatedWalker, UniformWalker


class TestLayout:
    def test_segments_match_incident_lists(self, academic):
        csr = csr_adjacency(academic)
        for i, node in enumerate(academic.nodes):
            incident = academic.incident(node)
            assert csr.degrees[i] == len(incident)
            nbrs = [academic.index_of(n) for n, _, _ in incident]
            assert csr.neighbors(i).tolist() == nbrs
            np.testing.assert_allclose(
                csr.segment_weights(i), [w for _, w, _ in incident]
            )

    def test_per_node_reductions(self, book_view):
        csr = csr_adjacency(book_view)
        for i, node in enumerate(book_view.nodes):
            weights = [w for _, w, _ in book_view.incident(node)]
            assert csr.weight_sums[i] == pytest.approx(sum(weights))
            spread = max(weights) - min(weights) if weights else 0.0
            assert csr.delta[i] == pytest.approx(spread)

    def test_isolated_node_zero_row(self):
        g = HeteroGraph()
        g.add_node("iso", "t")
        g.add_node("a", "t")
        g.add_node("b", "t")
        g.add_edge("a", "b", "e", weight=3.0)
        csr = csr_adjacency(g)
        i = g.index_of("iso")
        assert csr.degrees[i] == 0
        assert csr.neighbors(i).size == 0
        assert csr.weight_sums[i] == 0.0
        assert csr.delta[i] == 0.0

    def test_alias_tables_reproduce_pi1(self, book_view, rng):
        csr = csr_adjacency(book_view)
        prob, local = csr.alias_tables()
        i = book_view.index_of("B2")
        lo, hi = csr.indptr[i], csr.indptr[i + 1]
        draws = rng.integers(0, hi - lo, size=40_000)
        coins = rng.random(40_000)
        slots = np.where(coins < prob[lo + draws], draws, local[lo + draws])
        weights = csr.segment_weights(i)
        for j, w in enumerate(weights):
            share = (slots == j).mean()
            assert share == pytest.approx(w / weights.sum(), abs=0.02)


class TestCacheSharing:
    def test_cached_per_graph(self, academic):
        assert csr_adjacency(academic) is csr_adjacency(academic)

    def test_walkers_share_one_build(self, book_view, rng):
        view = separate_views(book_view)[0]
        a = UniformWalker(view, rng=rng)
        b = BiasedCorrelatedWalker(view, rng=rng)
        assert a._csr is b._csr
        assert a._csr is csr_adjacency(view.graph)

    def test_cache_invalidated_by_growth(self):
        g = HeteroGraph()
        g.add_node("a", "t")
        g.add_node("b", "t")
        g.add_edge("a", "b", "e")
        first = csr_adjacency(g)
        g.add_edge("a", "b", "e2", weight=2.0)
        second = csr_adjacency(g)
        assert second is not first
        assert second.degrees[g.index_of("a")] == 2

    def test_uniform_walker_never_builds_alias(self, rng):
        g = HeteroGraph()
        g.add_node("a", "t")
        g.add_node("b", "t")
        g.add_edge("a", "b", "e", weight=5.0)
        walker = UniformWalker(g, rng=rng)
        walker.walk("a", 4)
        assert not csr_adjacency(g).alias_built

    def test_biased_engine_builds_alias_lazily(self, rng):
        """The batched pi_1 draw builds the tables on first use only.

        (The scalar reference walker samples from exact ``slot_probs``
        and never needs the alias tables at all.)
        """
        from repro.walks import BiasedCorrelatedPolicy, LockstepWalker

        g = HeteroGraph()
        g.add_node("a", "t")
        g.add_node("b", "t")
        g.add_edge("a", "b", "e", weight=5.0)
        walker = LockstepWalker(g, BiasedCorrelatedPolicy(), rng=rng)
        assert not csr_adjacency(g).alias_built
        walker.walk_batch(np.array([g.index_of("a")], dtype=np.int64), 3)
        assert csr_adjacency(g).alias_built
