"""Tests for all baseline embedding methods.

Each baseline must: (1) return an embedding of the right dimension for
every node, (2) be deterministic given a seed, (3) beat random embeddings
at separating the planted communities of the two-view toy graph.
"""

import numpy as np
import pytest

from repro.baselines import (
    LINE,
    MVE,
    RGCN,
    DeepWalk,
    HIN2Vec,
    Metapath2Vec,
    Node2Vec,
    RandomEmbedding,
    SimplE,
)

FAST_KW = dict(dim=8, seed=0)


def fast_methods():
    """One cheaply-configured instance per baseline."""
    return {
        "LINE": LINE(num_samples=40_000, lr=0.2, **FAST_KW),
        "DeepWalk": DeepWalk(
            walk_length=10, walks_per_node=4, epochs=12, lr=0.15, **FAST_KW
        ),
        "Node2Vec": Node2Vec(
            walk_length=10, walks_per_node=4, epochs=12, lr=0.15, **FAST_KW
        ),
        "Metapath2Vec": Metapath2Vec(
            ["item", "tag", "item"],
            walk_length=10,
            walks_per_node=4,
            epochs=12,
            lr=0.15,
            **FAST_KW,
        ),
        "HIN2VEC": HIN2Vec(
            walk_length=10, walks_per_node=3, epochs=8, lr=0.15, **FAST_KW
        ),
        "MVE": MVE(
            walk_length=10, walks_per_node=4, epochs=12, lr=0.15, **FAST_KW
        ),
        "R-GCN": RGCN(epochs=15, **FAST_KW),
        "SimplE": SimplE(epochs=15, **FAST_KW),
    }


@pytest.fixture(scope="module")
def toy():
    from repro.datasets import two_view_toy

    return two_view_toy(num_per_side=8)


def community_separation(embeddings, labels):
    """Mean same-community cosine minus mean cross-community cosine."""
    import itertools

    nodes = list(labels)
    same, diff = [], []
    for a, b in itertools.combinations(nodes, 2):
        va, vb = embeddings[a], embeddings[b]
        denom = np.linalg.norm(va) * np.linalg.norm(vb)
        if denom < 1e-12:
            continue
        cos = float(va @ vb / denom)
        (same if labels[a] == labels[b] else diff).append(cos)
    return np.mean(same) - np.mean(diff)


class TestCommonContract:
    @pytest.mark.parametrize("name", list(fast_methods()))
    def test_embeds_every_node(self, toy, name):
        graph, _ = toy
        emb = fast_methods()[name].fit(graph)
        assert set(emb) == set(graph.nodes)
        for vec in emb.values():
            assert vec.shape == (8,)
            assert np.isfinite(vec).all()

    @pytest.mark.parametrize("name", list(fast_methods()))
    def test_deterministic(self, toy, name):
        graph, _ = toy
        e1 = fast_methods()[name].fit(graph)
        e2 = fast_methods()[name].fit(graph)
        for node in e1:
            assert np.allclose(e1[node], e2[node]), name

    def test_invalid_dim_rejected(self):
        with pytest.raises(ValueError):
            DeepWalk(dim=0)

    def test_simple_odd_dim_rejected(self):
        with pytest.raises(ValueError):
            SimplE(dim=7)


class TestQuality:
    """Every trained method must separate communities better than chance."""

    @pytest.mark.parametrize(
        "name", ["LINE", "DeepWalk", "Node2Vec", "MVE", "HIN2VEC"]
    )
    def test_beats_random_on_toy(self, toy, name):
        graph, labels = toy
        method = fast_methods()[name]
        trained = community_separation(method.fit(graph), labels)
        random = community_separation(
            RandomEmbedding(**FAST_KW).fit(graph), labels
        )
        assert trained > random + 0.05, (name, trained, random)


class TestRandomEmbedding:
    def test_shapes(self, toy):
        graph, _ = toy
        emb = RandomEmbedding(dim=4, seed=1).fit(graph)
        assert all(v.shape == (4,) for v in emb.values())


class TestMetapath2Vec:
    def test_off_path_types_get_zero(self, academic):
        method = Metapath2Vec(
            ["author", "paper", "author"],
            dim=8,
            walk_length=6,
            walks_per_node=2,
            epochs=1,
        )
        emb = method.fit(academic)
        for node in academic.nodes_of_type("university"):
            assert np.allclose(emb[node], 0.0)

    def test_missing_start_type_rejected(self, academic):
        method = Metapath2Vec(["author", "paper", "author"], dim=4)
        from repro.graph import HeteroGraph

        g = HeteroGraph()
        g.add_edge("p1", "p2", "PP", u_type="paper", v_type="paper")
        with pytest.raises(ValueError):
            method.fit(g)


class TestHIN2Vec:
    def test_relation_vocabulary_built(self, toy):
        graph, _ = toy
        method = HIN2Vec(dim=8, walk_length=6, walks_per_node=2, epochs=1, max_hops=2)
        method.fit(graph)
        assert len(method.relation_vocabulary) > 0
        for relation in method.relation_vocabulary:
            assert 1 <= len(relation) <= 2
            assert all(t in ("AA", "AB") for t in relation)

    def test_max_hops_validation(self):
        with pytest.raises(ValueError):
            HIN2Vec(max_hops=0)


class TestRGCN:
    def test_adjacency_normalized(self, academic):
        a = RGCN._normalized_adjacency(academic, "authorship")
        sums = a.sum(axis=1)
        nonzero = sums > 0
        assert np.allclose(sums[nonzero], 1.0)

    def test_ignores_weights(self, toy):
        """R-GCN consumes unit weights: scaling all weights is a no-op."""
        graph, _ = toy
        from repro.graph import HeteroGraph

        scaled = HeteroGraph()
        for node in graph.nodes:
            scaled.add_node(node, graph.node_type(node))
        for e in graph.edges:
            scaled.add_edge(e.u, e.v, e.edge_type, e.weight * 10)
        e1 = RGCN(epochs=5, **FAST_KW).fit(graph)
        e2 = RGCN(epochs=5, **FAST_KW).fit(scaled)
        for node in e1:
            assert np.allclose(e1[node], e2[node])


class TestLINE:
    def test_needs_edges(self):
        from repro.graph import HeteroGraph

        g = HeteroGraph()
        g.add_node("a", "t")
        with pytest.raises(ValueError):
            LINE(**FAST_KW).fit(g)
