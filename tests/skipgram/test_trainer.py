"""Tests for the SGNS trainer."""

import numpy as np
import pytest

from repro.nn.optim import RowSGD
from repro.skipgram import SkipGramTrainer
from repro.skipgram.trainer import _sigmoid


class TestSigmoid:
    def test_midpoint(self):
        assert _sigmoid(np.array([0.0]))[0] == pytest.approx(0.5)

    def test_extremes_stable(self):
        out = _sigmoid(np.array([-1000.0, 1000.0]))
        assert np.isfinite(out).all()
        assert out[0] == pytest.approx(0.0)
        assert out[1] == pytest.approx(1.0)

    def test_matches_naive_in_safe_range(self, rng):
        x = rng.normal(size=100)
        assert np.allclose(_sigmoid(x), 1.0 / (1.0 + np.exp(-x)))


class TestMeanUpdate:
    def test_unique_rows_plain_sgd(self):
        m = np.zeros((3, 2))
        RowSGD(m, lr=1.0).update(np.array([0, 2]), np.ones((2, 2)), lr=0.5)
        assert np.allclose(m[0], -0.5)
        assert np.allclose(m[1], 0.0)
        assert np.allclose(m[2], -0.5)

    def test_duplicates_averaged_not_summed(self):
        m = np.zeros((2, 2))
        grads = np.array([[1.0, 1.0], [3.0, 3.0]])
        RowSGD(m, lr=1.0).update(np.array([0, 0]), grads)
        assert np.allclose(m[0], -2.0)  # mean of 1 and 3


class TestTrainer:
    def test_rejects_1d_embeddings(self):
        with pytest.raises(ValueError):
            SkipGramTrainer(np.zeros(5))

    def test_context_initialized_to_zeros(self, rng):
        trainer = SkipGramTrainer(rng.normal(size=(4, 3)))
        assert (trainer.context == 0).all()

    def test_shape_validation(self, rng):
        trainer = SkipGramTrainer(rng.normal(size=(5, 3)))
        with pytest.raises(ValueError):
            trainer.train_batch(
                np.array([0]), np.array([1, 2]), np.zeros((1, 2), int), 0.1
            )
        with pytest.raises(ValueError):
            trainer.train_batch(
                np.array([0]), np.array([1]), np.zeros(3, int), 0.1
            )

    def test_loss_decreases(self, rng):
        emb = rng.normal(0, 0.1, size=(10, 8))
        trainer = SkipGramTrainer(emb, rng=rng)
        centers = np.array([0, 1, 2, 3])
        contexts = np.array([1, 2, 3, 4])
        negatives = rng.integers(5, 10, size=(4, 5))
        before = trainer.loss_batch(centers, contexts, negatives)
        for _ in range(100):
            trainer.train_batch(centers, contexts, negatives, lr=0.1)
        after = trainer.loss_batch(centers, contexts, negatives)
        assert after < before

    def test_stable_with_duplicates(self, rng):
        """The failure mode the mean-update fixes: heavy duplication."""
        emb = rng.normal(0, 0.1, size=(6, 4))
        trainer = SkipGramTrainer(emb, rng=rng)
        centers = np.repeat([0, 1], 100)
        contexts = np.repeat([1, 0], 100)
        negatives = rng.integers(2, 6, size=(200, 5))
        for _ in range(50):
            trainer.train_batch(centers, contexts, negatives, lr=0.1)
        assert np.linalg.norm(emb) < 100.0
        assert np.isfinite(emb).all()

    def test_positive_pairs_become_similar(self, rng):
        emb = rng.normal(0, 0.1, size=(12, 8))
        trainer = SkipGramTrainer(emb, rng=rng)
        centers = np.array([0, 0, 0])
        contexts = np.array([1, 1, 1])
        negatives = rng.integers(2, 12, size=(3, 4))
        for _ in range(200):
            trainer.train_batch(centers, contexts, negatives, lr=0.1)
        pos = emb[0] @ trainer.context[1]
        negs = emb[0] @ trainer.context[negatives[0]].T
        assert pos > negs.max()

    def test_untouched_rows_unchanged(self, rng):
        emb = rng.normal(0, 0.1, size=(10, 4))
        snapshot = emb[9].copy()
        trainer = SkipGramTrainer(emb, rng=rng)
        trainer.train_batch(
            np.array([0]), np.array([1]), np.array([[2, 3]]), lr=0.5
        )
        assert np.array_equal(emb[9], snapshot)

    def test_updates_in_place(self, rng):
        emb = rng.normal(0, 0.1, size=(5, 4))
        view = emb  # same object
        trainer = SkipGramTrainer(emb, rng=rng)
        trainer.train_batch(
            np.array([0]), np.array([1]), np.array([[2, 3]]), lr=0.5
        )
        assert trainer.embeddings is view
