"""Tests for Definition-6 context extraction."""

import pytest

from repro.graph import separate_views
from repro.skipgram import extract_pairs, window_for_view


class TestWindowForView:
    def test_homo_view_window_1(self, academic):
        views = {v.edge_type: v for v in separate_views(academic)}
        assert window_for_view(views["citation"]) == 1

    def test_heter_view_window_2(self, academic):
        views = {v.edge_type: v for v in separate_views(academic)}
        assert window_for_view(views["authorship"]) == 2


class TestExtractPairs:
    def test_window_1(self):
        pairs = extract_pairs(["a", "b", "c"], window=1)
        assert pairs == [
            ("a", "b"),
            ("b", "a"),
            ("b", "c"),
            ("c", "b"),
        ]

    def test_window_2_includes_indirect(self):
        """Definition 6 heter-view case: n_{k±2} are context nodes."""
        pairs = set(extract_pairs(["a", "b", "c", "d"], window=2))
        assert ("a", "c") in pairs  # indirect neighbour
        assert ("c", "a") in pairs
        assert ("a", "d") not in pairs  # 3 hops — out of window

    def test_boundary_handling(self):
        pairs = extract_pairs(["a", "b"], window=2)
        assert set(pairs) == {("a", "b"), ("b", "a")}

    def test_singleton_path(self):
        assert extract_pairs(["a"], window=1) == []

    def test_empty_path(self):
        assert extract_pairs([], window=2) == []

    def test_pair_count_formula(self):
        """On a path of length r with window w, the number of ordered
        pairs is sum_k |window(k)|."""
        path = list(range(10))
        for window in (1, 2, 3):
            pairs = extract_pairs(path, window)
            expected = sum(
                min(len(path) - 1, k + window)
                - max(0, k - window)
                for k in range(len(path))
            )
            assert len(pairs) == expected

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            extract_pairs(["a", "b"], window=0)

    def test_symmetry(self):
        """(x, y) is a pair iff (y, x) is."""
        pairs = set(extract_pairs(list("abcdef"), window=2))
        for x, y in pairs:
            assert (y, x) in pairs
