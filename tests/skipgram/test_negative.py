"""Tests for the unigram^0.75 noise distribution."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.skipgram import NoiseDistribution


class TestValidation:
    def test_empty_counts_rejected(self):
        with pytest.raises(ValueError):
            NoiseDistribution({}, num_nodes=3)

    def test_zero_nodes_rejected(self):
        with pytest.raises(ValueError):
            NoiseDistribution({0: 1}, num_nodes=0)

    def test_out_of_range_index_rejected(self):
        with pytest.raises(ValueError):
            NoiseDistribution({5: 1}, num_nodes=3)

    def test_wrong_array_shape_rejected(self):
        with pytest.raises(ValueError):
            NoiseDistribution(np.ones(4), num_nodes=3)


class TestDistribution:
    def test_power_smoothing(self):
        """count^0.75 compresses the ratio between frequent and rare."""
        noise = NoiseDistribution({0: 16, 1: 1}, num_nodes=2)
        probs = noise.probabilities()
        # raw ratio 16; smoothed ratio 16^0.75 = 8
        assert probs[0] / probs[1] == pytest.approx(8.0, rel=1e-6)

    def test_power_1_is_unigram(self):
        noise = NoiseDistribution({0: 3, 1: 1}, num_nodes=2, power=1.0)
        probs = noise.probabilities()
        assert probs[0] == pytest.approx(0.75)

    def test_unseen_nodes_never_drawn(self, rng):
        noise = NoiseDistribution({0: 5, 2: 5}, num_nodes=4)
        draws = noise.sample(rng, size=5000)
        assert set(np.unique(draws)) <= {0, 2}

    def test_accepts_count_array(self, rng):
        noise = NoiseDistribution(np.array([1.0, 0.0, 3.0]), num_nodes=3)
        draws = noise.sample(rng, size=2000)
        assert 1 not in set(np.unique(draws))

    def test_sample_shape(self, rng):
        noise = NoiseDistribution({0: 1, 1: 1}, num_nodes=2)
        assert noise.sample(rng, size=17).shape == (17,)

    @given(st.dictionaries(st.integers(0, 9), st.integers(1, 50), min_size=1))
    @settings(max_examples=30, deadline=None)
    def test_probabilities_sum_to_one(self, counts):
        noise = NoiseDistribution(counts, num_nodes=10)
        assert noise.probabilities().sum() == pytest.approx(1.0)
