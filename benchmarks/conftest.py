"""Shared infrastructure for the paper-reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper:

=====================  ============================================
module                 paper artifact
=====================  ============================================
bench_table2_*         Table II  (dataset statistics)
bench_table3_*         Table III (node classification)
bench_table4_*         Table IV  (link prediction AUC)
bench_table5_*         Table V   (ablation study)
bench_fig6_*           Figure 6  (t-SNE case study)
bench_complexity_*     Theorem 1 (training-time scaling)
bench_design_*         DESIGN.md §2 substitution ablations
=====================  ============================================

Run with::

    pytest benchmarks/ --benchmark-only

Each table is computed once inside the ``benchmark`` call (so the
reported time is the cost of regenerating that artifact), printed to
stdout, and written to ``benchmarks/results/<name>.txt``.

Set ``REPRO_BENCH_FAST=1`` to shrink the datasets and TransN training for
a quick smoke run (the printed tables then carry a "FAST MODE" banner and
should not be compared against the paper).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.core import TransNConfig
from repro.datasets import (
    make_aminer,
    make_app_daily,
    make_app_weekly,
    make_blog,
)
from repro.datasets.aminer import AMinerConfig
from repro.datasets.appstore import AppStoreConfig
from repro.datasets.blog import BlogConfig

RESULTS_DIR = Path(__file__).parent / "results"

FAST_MODE = os.environ.get("REPRO_BENCH_FAST", "") not in ("", "0")


def bench_transn_config(dim: int = 32, seed: int = 0) -> TransNConfig:
    """The TransN configuration used by every benchmark."""
    if FAST_MODE:
        return TransNConfig(
            dim=dim, seed=seed, num_iterations=2, cross_paths_per_pair=20
        )
    return TransNConfig(dim=dim, seed=seed)


def load_datasets() -> dict[str, tuple]:
    """The four evaluation networks at benchmark scale."""
    if FAST_MODE:
        return {
            "aminer": make_aminer(
                AMinerConfig(num_authors=80, num_papers=90, num_venues=8)
            ),
            "blog": make_blog(
                BlogConfig(num_users=100, num_keywords=40, num_interests=4)
            ),
            "app-daily": make_app_daily(
                num_applets=120, num_users=50, num_keywords=40
            ),
            "app-weekly": make_app_weekly(
                num_applets=140, num_users=90, num_keywords=45
            ),
        }
    return {
        "aminer": make_aminer(),
        "blog": make_blog(),
        "app-daily": make_app_daily(),
        "app-weekly": make_app_weekly(),
    }


@pytest.fixture(scope="session")
def datasets():
    return load_datasets()


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def format_table(rows: list[dict], title: str) -> str:
    """Render a list of uniform dicts as an aligned text table."""
    if not rows:
        return f"{title}\n(no rows)\n"
    columns = list(rows[0])
    widths = {
        c: max(len(str(c)), *(len(str(r[c])) for r in rows)) for c in columns
    }
    lines = [title]
    if FAST_MODE:
        lines.append("!! FAST MODE — scaled-down smoke run, not comparable !!")
    header = "  ".join(str(c).ljust(widths[c]) for c in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append(
            "  ".join(str(row[c]).ljust(widths[c]) for c in columns)
        )
    return "\n".join(lines) + "\n"


def emit(results_dir: Path, name: str, text: str) -> None:
    """Print a table and persist it under benchmarks/results/."""
    print("\n" + text)
    (results_dir / f"{name}.txt").write_text(text)
