"""Theorem 1: training-time complexity of Algorithm 1.

The theorem bounds one iteration by

    O( delta*T*rho*(z + z')  +  d*T*rho*(z*log(mu) + z'*H*rho) )

Three measurements, each isolating one variable of the bound:

1. **T** (paths per view-pair): wall-clock of one full cross-view epoch
   while sweeping ``paths_per_epoch`` — expected linear (slope <= ~1).
2. **H** (encoders per translator): wall-clock of a translator
   forward+backward on a fixed path — expected linear.
3. **rho** (translator path length): wall-clock of a translator
   forward+backward on one path of length rho — the attention matmuls are
   rho^2*d, so the per-path cost must grow super-linearly once rho
   dominates the fixed per-layer overhead.

Log-log regression slopes are printed and asserted with generous bands
(wall-clock on small inputs is noisy).

Run as a script, this module instead measures the *memory* side of the
complexity story: peak bytes of the corpus -> skip-gram data path, dense
(``build_corpus`` + ``CorpusPipeline``) against streaming
(``stream_corpus`` + ``StreamingCorpusPipeline`` under a hard budget),
on synthetic views up to a million-plus edges.  Results land in
``BENCH_scaling.json`` at the repository root.

Run::

    PYTHONPATH=src python benchmarks/bench_complexity_scaling.py          # full
    PYTHONPATH=src python benchmarks/bench_complexity_scaling.py --fast   # CI smoke

Fast mode shrinks the graphs to smoke-test sizes; its timings are not
meaningful and its output should never be checked in.
"""

import argparse
import json
import sys
import time
import tracemalloc
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
for entry in (str(REPO_ROOT / "src"), str(REPO_ROOT / "benchmarks")):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from repro.autograd import Tensor  # noqa: E402
from repro.core.cross_view import CrossViewTrainer, similarity_loss  # noqa: E402
from repro.core.translator import Translator  # noqa: E402
from repro.datasets import make_app_daily  # noqa: E402
from repro.engine.pipeline import (  # noqa: E402
    CorpusPipeline,
    StreamingCorpusPipeline,
    block_walks_for_budget,
)
from repro.graph import HeteroGraph, build_view_pairs, separate_views  # noqa: E402
from repro.walks import LockstepWalker, build_corpus, stream_corpus  # noqa: E402
from repro.walks.corpus import corpus_index_dtype  # noqa: E402
from repro.walks.policies import make_policy  # noqa: E402

from conftest import FAST_MODE, emit, format_table  # noqa: E402


def _slope(xs, ys) -> float:
    return float(np.polyfit(np.log(xs), np.log(ys), 1)[0])


def _time_cross_epoch(graph, paths_per_epoch: int) -> float:
    """One cross-view epoch over the first view-pair."""
    rng = np.random.default_rng(0)
    views = separate_views(graph)
    pair = build_view_pairs(views)[0]
    emb_i = rng.normal(0, 0.1, size=(pair.view_i.num_nodes, 16))
    emb_j = rng.normal(0, 0.1, size=(pair.view_j.num_nodes, 16))
    trainer = CrossViewTrainer(
        pair, emb_i, emb_j, rng=rng, dim=16,
        cross_path_len=6, num_encoders=2, walk_length=12,
        paths_per_epoch=paths_per_epoch,
    )
    start = time.perf_counter()
    trainer.train_epoch()
    return time.perf_counter() - start


def _time_translator(path_len: int, num_encoders: int, repeats: int = 30) -> float:
    """Forward + backward of one translator on one path."""
    rng = np.random.default_rng(0)
    translator = Translator(path_len, 16, num_encoders, rng=rng)
    a = Tensor(rng.normal(size=(path_len, 16)), requires_grad=True)
    target = Tensor(rng.normal(size=(path_len, 16)))
    start = time.perf_counter()
    for _ in range(repeats):
        a.zero_grad()
        for param in translator.parameters():
            param.zero_grad()
        loss = similarity_loss(translator(a), target)
        loss.backward()
    return (time.perf_counter() - start) / repeats


def _compute(graph):
    rows = []
    t_values = [20, 40, 80, 160]
    t_times = [_time_cross_epoch(graph, t) for t in t_values]
    for t, elapsed in zip(t_values, t_times):
        rows.append({"Variable": "T (paths/pair, epoch time)", "Value": t,
                     "Seconds": f"{elapsed:.3f}"})
    h_values = [1, 2, 4, 8, 16]
    h_times = [_time_translator(8, h) for h in h_values]
    for h, elapsed in zip(h_values, h_times):
        rows.append({"Variable": "H (encoders, per-path time)", "Value": h,
                     "Seconds": f"{elapsed:.5f}"})
    rho_values = [8, 32, 128, 512]
    rho_times = [_time_translator(r, 2) for r in rho_values]
    for r, elapsed in zip(rho_values, rho_times):
        rows.append({"Variable": "rho (path len, per-path time)", "Value": r,
                     "Seconds": f"{elapsed:.5f}"})
    slopes = {
        "T": _slope(t_values, t_times),
        "H": _slope(h_values, h_times),
        # fit the rho exponent on the large-rho tail where the quadratic
        # attention term dominates fixed per-layer overhead
        "rho": _slope(rho_values[-2:], rho_times[-2:]),
    }
    for var, slope in slopes.items():
        rows.append({"Variable": f"log-log slope({var})", "Value": "-",
                     "Seconds": f"{slope:.2f}"})
    return rows, slopes


def test_theorem1_complexity_scaling(benchmark, results_dir):
    graph, _ = make_app_daily(
        num_applets=120, num_users=50, num_keywords=40
    )
    rows, slopes = benchmark.pedantic(
        _compute, args=(graph,), rounds=1, iterations=1
    )
    emit(
        results_dir,
        "theorem1_complexity",
        format_table(rows, "Theorem 1 — wall-clock scaling of Algorithm 1"),
    )
    if FAST_MODE:
        return  # scaled-down smoke run: shapes not comparable
    # epoch cost is linear in T (never super-linear)
    assert 0.5 < slopes["T"] < 1.4, slopes
    # per-path translator cost is linear in H
    assert 0.6 < slopes["H"] < 1.4, slopes
    # per-path cost grows super-linearly in rho (the rho^2 d attention)
    assert slopes["rho"] > 1.2, slopes


# ---------------------------------------------------------------------------
# standalone mode: peak memory of the corpus data path, dense vs streaming
# ---------------------------------------------------------------------------

FULL_MEMORY_SIZES = [(20_000, 120_000), (60_000, 420_000), (160_000, 1_200_000)]
FAST_MEMORY_SIZES = [(400, 1_600)]

WALK_LENGTH = 12
WINDOW = 2
BATCH_SIZE = 8192
NUM_NEGATIVES = 5


def synthetic_heter_view(num_nodes: int, num_edges: int, seed: int):
    """A random weighted bipartite heter-view (weights 1..5, Figure-4 style)."""
    rng = np.random.default_rng(seed)
    half = num_nodes // 2
    graph = HeteroGraph()
    for i in range(half):
        graph.add_node(f"u{i}", "user")
    for i in range(num_nodes - half):
        graph.add_node(f"b{i}", "item")
    us = rng.integers(0, half, size=num_edges)
    vs = rng.integers(0, num_nodes - half, size=num_edges)
    weights = rng.integers(1, 6, size=num_edges).astype(float)
    for u, v, w in zip(us, vs, weights):
        graph.add_edge(f"u{u}", f"b{v}", "rating", weight=float(w))
    return separate_views(graph)[0]


def _drain(pipeline) -> int:
    batches = 0
    for _ in pipeline.epoch():
        batches += 1
    return batches


def measure_dense(view, seed: int) -> dict:
    """Peak traced bytes of one dense epoch: full corpus, then batches."""
    rng = np.random.default_rng(seed)
    walker = LockstepWalker(view, make_policy("biased"), rng=rng)
    walker.walk_batch(np.zeros(1, dtype=np.int64), 2)  # warm alias tables
    tracemalloc.start()
    start = time.perf_counter()
    pipeline = CorpusPipeline(
        sample_corpus=lambda: build_corpus(
            view, walker, length=WALK_LENGTH, rng=rng
        ),
        num_nodes=view.num_nodes,
        window=WINDOW,
        num_negatives=NUM_NEGATIVES,
        batch_size=BATCH_SIZE,
        rng=rng,
    )
    batches = _drain(pipeline)
    elapsed = time.perf_counter() - start
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return {"peak_bytes": peak, "seconds": elapsed, "batches": batches}


def measure_streaming(view, seed: int, budget_bytes: int) -> dict:
    """Peak traced bytes of one streaming epoch under a hard budget."""
    rng = np.random.default_rng(seed)
    walker = LockstepWalker(view, make_policy("biased"), rng=rng)
    walker.walk_batch(np.zeros(1, dtype=np.int64), 2)  # warm alias tables
    index_dtype = corpus_index_dtype(view.num_nodes)
    block_walks = block_walks_for_budget(
        budget_bytes,
        length=WALK_LENGTH,
        window=WINDOW,
        num_negatives=NUM_NEGATIVES,
        batch_size=BATCH_SIZE,
        itemsize=index_dtype.itemsize,
    )
    tracemalloc.start()
    start = time.perf_counter()
    pipeline = StreamingCorpusPipeline(
        sample_blocks=lambda: stream_corpus(
            view,
            walker,
            length=WALK_LENGTH,
            rng=rng,
            block_walks=block_walks,
            index_dtype=index_dtype,
        ),
        num_nodes=view.num_nodes,
        window=WINDOW,
        num_negatives=NUM_NEGATIVES,
        batch_size=BATCH_SIZE,
        rng=rng,
        budget_bytes=budget_bytes,
    )
    batches = _drain(pipeline)  # raises MemoryError if a block overflows
    elapsed = time.perf_counter() - start
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return {
        "peak_bytes": peak,
        "seconds": elapsed,
        "batches": batches,
        "block_walks": block_walks,
        "peak_block_bytes": pipeline.peak_block_bytes,
        "under_budget": pipeline.peak_block_bytes <= budget_bytes,
        "index_dtype": str(index_dtype),
    }


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(
        description="peak memory of the corpus data path, dense vs streaming"
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="smoke-test sizes for CI; timings not meaningful",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=REPO_ROOT / "BENCH_scaling.json",
        help="output JSON path (default: BENCH_scaling.json at the repo root)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--budget-mb",
        type=float,
        default=None,
        help="streaming corpus budget in MiB (default: 64 full, 2 fast)",
    )
    args = parser.parse_args(argv)

    sizes = FAST_MEMORY_SIZES if args.fast else FULL_MEMORY_SIZES
    budget_mb = args.budget_mb if args.budget_mb else (2.0 if args.fast else 64.0)
    budget_bytes = int(budget_mb * 1024 * 1024)

    results = []
    for num_nodes, num_edges in sizes:
        print(
            f"benchmarking {num_nodes} nodes / {num_edges} edges ...",
            flush=True,
        )
        view = synthetic_heter_view(num_nodes, num_edges, args.seed)
        dense = measure_dense(view, args.seed)
        streaming = measure_streaming(view, args.seed, budget_bytes)
        ratio = dense["peak_bytes"] / streaming["peak_bytes"]
        print(
            f"  dense     peak {dense['peak_bytes'] / 2**20:9.1f} MiB"
            f"  {dense['seconds']:7.1f}s  {dense['batches']} batches"
        )
        print(
            f"  streaming peak {streaming['peak_bytes'] / 2**20:9.1f} MiB"
            f"  {streaming['seconds']:7.1f}s  {streaming['batches']} batches"
            f"  ({streaming['block_walks']} walks/block,"
            f" block peak {streaming['peak_block_bytes'] / 2**20:.1f} MiB,"
            f" under budget: {streaming['under_budget']})"
        )
        print(f"  peak-memory reduction {ratio:5.1f}x")
        results.append(
            {
                "nodes": view.num_nodes,
                "edges": view.num_edges,
                "dense": dense,
                "streaming": streaming,
                "peak_reduction": ratio,
            }
        )

    largest = results[-1]
    payload = {
        "benchmark": "scaling",
        "fast_mode": args.fast,
        "walk_length": WALK_LENGTH,
        "window": WINDOW,
        "batch_size": BATCH_SIZE,
        "num_negatives": NUM_NEGATIVES,
        "budget_mb": budget_mb,
        "memory_vs_edges": {
            "edges": [r["edges"] for r in results],
            "dense_peak_bytes": [r["dense"]["peak_bytes"] for r in results],
            "streaming_peak_bytes": [
                r["streaming"]["peak_bytes"] for r in results
            ],
        },
        "time_vs_edges": {
            "edges": [r["edges"] for r in results],
            "dense_seconds": [r["dense"]["seconds"] for r in results],
            "streaming_seconds": [r["streaming"]["seconds"] for r in results],
        },
        "results": results,
        "largest_graph": {
            "nodes": largest["nodes"],
            "edges": largest["edges"],
            "peak_reduction": largest["peak_reduction"],
            "streaming_under_budget": largest["streaming"]["under_budget"],
        },
    }
    args.out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
