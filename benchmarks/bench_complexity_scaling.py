"""Theorem 1: training-time complexity of Algorithm 1.

The theorem bounds one iteration by

    O( delta*T*rho*(z + z')  +  d*T*rho*(z*log(mu) + z'*H*rho) )

Three measurements, each isolating one variable of the bound:

1. **T** (paths per view-pair): wall-clock of one full cross-view epoch
   while sweeping ``paths_per_epoch`` — expected linear (slope <= ~1).
2. **H** (encoders per translator): wall-clock of a translator
   forward+backward on a fixed path — expected linear.
3. **rho** (translator path length): wall-clock of a translator
   forward+backward on one path of length rho — the attention matmuls are
   rho^2*d, so the per-path cost must grow super-linearly once rho
   dominates the fixed per-layer overhead.

Log-log regression slopes are printed and asserted with generous bands
(wall-clock on small inputs is noisy).
"""

import time

import numpy as np

from repro.autograd import Tensor
from repro.core.cross_view import CrossViewTrainer, similarity_loss
from repro.core.translator import Translator
from repro.datasets import make_app_daily
from repro.graph import build_view_pairs, separate_views

from conftest import FAST_MODE, emit, format_table


def _slope(xs, ys) -> float:
    return float(np.polyfit(np.log(xs), np.log(ys), 1)[0])


def _time_cross_epoch(graph, paths_per_epoch: int) -> float:
    """One cross-view epoch over the first view-pair."""
    rng = np.random.default_rng(0)
    views = separate_views(graph)
    pair = build_view_pairs(views)[0]
    emb_i = rng.normal(0, 0.1, size=(pair.view_i.num_nodes, 16))
    emb_j = rng.normal(0, 0.1, size=(pair.view_j.num_nodes, 16))
    trainer = CrossViewTrainer(
        pair, emb_i, emb_j, rng=rng, dim=16,
        cross_path_len=6, num_encoders=2, walk_length=12,
        paths_per_epoch=paths_per_epoch,
    )
    start = time.perf_counter()
    trainer.train_epoch()
    return time.perf_counter() - start


def _time_translator(path_len: int, num_encoders: int, repeats: int = 30) -> float:
    """Forward + backward of one translator on one path."""
    rng = np.random.default_rng(0)
    translator = Translator(path_len, 16, num_encoders, rng=rng)
    a = Tensor(rng.normal(size=(path_len, 16)), requires_grad=True)
    target = Tensor(rng.normal(size=(path_len, 16)))
    start = time.perf_counter()
    for _ in range(repeats):
        a.zero_grad()
        for param in translator.parameters():
            param.zero_grad()
        loss = similarity_loss(translator(a), target)
        loss.backward()
    return (time.perf_counter() - start) / repeats


def _compute(graph):
    rows = []
    t_values = [20, 40, 80, 160]
    t_times = [_time_cross_epoch(graph, t) for t in t_values]
    for t, elapsed in zip(t_values, t_times):
        rows.append({"Variable": "T (paths/pair, epoch time)", "Value": t,
                     "Seconds": f"{elapsed:.3f}"})
    h_values = [1, 2, 4, 8, 16]
    h_times = [_time_translator(8, h) for h in h_values]
    for h, elapsed in zip(h_values, h_times):
        rows.append({"Variable": "H (encoders, per-path time)", "Value": h,
                     "Seconds": f"{elapsed:.5f}"})
    rho_values = [8, 32, 128, 512]
    rho_times = [_time_translator(r, 2) for r in rho_values]
    for r, elapsed in zip(rho_values, rho_times):
        rows.append({"Variable": "rho (path len, per-path time)", "Value": r,
                     "Seconds": f"{elapsed:.5f}"})
    slopes = {
        "T": _slope(t_values, t_times),
        "H": _slope(h_values, h_times),
        # fit the rho exponent on the large-rho tail where the quadratic
        # attention term dominates fixed per-layer overhead
        "rho": _slope(rho_values[-2:], rho_times[-2:]),
    }
    for var, slope in slopes.items():
        rows.append({"Variable": f"log-log slope({var})", "Value": "-",
                     "Seconds": f"{slope:.2f}"})
    return rows, slopes


def test_theorem1_complexity_scaling(benchmark, results_dir):
    graph, _ = make_app_daily(
        num_applets=120, num_users=50, num_keywords=40
    )
    rows, slopes = benchmark.pedantic(
        _compute, args=(graph,), rounds=1, iterations=1
    )
    emit(
        results_dir,
        "theorem1_complexity",
        format_table(rows, "Theorem 1 — wall-clock scaling of Algorithm 1"),
    )
    if FAST_MODE:
        return  # scaled-down smoke run: shapes not comparable
    # epoch cost is linear in T (never super-linear)
    assert 0.5 < slopes["T"] < 1.4, slopes
    # per-path translator cost is linear in H
    assert 0.6 < slopes["H"] < 1.4, slopes
    # per-path cost grows super-linearly in rho (the rho^2 d attention)
    assert slopes["rho"] > 1.2, slopes
