"""Table II: statistics of the heterogeneous network datasets.

Paper values (for reference; our generators are scaled-down synthetics):

    AMiner      4,774 nodes   17,795 edges    4 edge types
    BLOG       63,166 nodes 1,983,003 edges   3 edge types
    App-Daily 192,416 nodes   666,145 edges   2 edge types
    App-Weekly 418,374 nodes 3,843,931 edges  2 edge types

The *relational shape* is asserted: same node/edge-type schemas, BLOG by
far the densest, App-* the sparsest, App-Weekly larger than App-Daily.
"""

from repro.graph import compute_statistics

from conftest import emit, format_table


def _compute_rows(datasets):
    rows = []
    stats = {}
    for name, (graph, labels) in datasets.items():
        stat = compute_statistics(graph, name, labels)
        stats[name] = stat
        row = stat.as_row()
        row["Density"] = f"{stat.density:.4f}"
        rows.append(row)
    return rows, stats


def test_table2_dataset_statistics(benchmark, datasets, results_dir):
    rows, stats = benchmark.pedantic(
        _compute_rows, args=(datasets,), rounds=1, iterations=1
    )
    emit(
        results_dir,
        "table2_datasets",
        format_table(rows, "Table II — dataset statistics (synthetic scale)"),
    )
    # schema assertions mirroring the paper's Table II
    aminer = datasets["aminer"][0]
    assert aminer.edge_types == {"AA", "AP", "PP", "PV"}
    assert datasets["blog"][0].edge_types == {"UU", "UK", "KK"}
    assert datasets["app-daily"][0].edge_types == {"AU", "AK"}
    # BLOG densest; App-* sparsest; weekly bigger than daily
    assert stats["blog"].density > stats["aminer"].density
    assert stats["blog"].density > 3 * stats["app-daily"].density
    assert stats["app-weekly"].num_edges > stats["app-daily"].num_edges
