"""Table IV: link prediction, ROC-AUC, 4 datasets x 8 methods.

Protocol (Section IV-B2): remove 40% of the edges; sample the same number
of non-adjacent pairs as negatives; retrain each method on the reduced
network; score pairs by embedding inner product; report AUC.

Paper AUC for reference — shape to reproduce, not absolute values:

             AMiner  BLOG    App-Daily App-Weekly
    LINE     0.7221  0.5819  0.7421    0.7520
    Node2Vec 0.7434  0.5732  0.7339    0.7707
    M2V      0.8323  0.6059  0.8227    0.8552
    HIN2VEC  0.8016  0.6123  0.8311    0.7880
    MVE      0.7967  0.5820  0.7491    0.7822
    R-GCN    0.8605  0.6389  0.7933    0.7867
    SimplE   0.8425  0.6121  0.8205    0.8246
    TransN   0.8835  0.7551  0.8467    0.8668

Expected shape here: TransN in the leading group on every network.  Our
synthetic generators put most of the removable edge mass into structural
noise (that is what keeps classification unsaturated), which compresses
all AUCs toward 0.5 and shrinks the between-method margins relative to
the paper; EXPERIMENTS.md discusses this honestly.
"""

from repro.eval import method_registry, run_link_prediction
from repro.eval.link_prediction import make_split

from conftest import FAST_MODE, bench_transn_config, emit, format_table


def _compute_table(datasets):
    rows = []
    scores = {}
    for ds_name, (graph, _labels) in datasets.items():
        split = make_split(graph, removal_fraction=0.4, seed=0)
        registry = method_registry(
            ds_name, dim=32, seed=0, transn_config=bench_transn_config()
        )
        for method_name, factory in registry.items():
            result = run_link_prediction(factory, graph, split=split)
            scores[(ds_name, method_name)] = result.auc
            rows.append(
                {
                    "Dataset": ds_name,
                    "Method": method_name,
                    "AUC": f"{result.auc:.4f}",
                }
            )
    return rows, scores


def test_table4_link_prediction(benchmark, datasets, results_dir):
    rows, scores = benchmark.pedantic(
        _compute_table, args=(datasets,), rounds=1, iterations=1
    )
    emit(
        results_dir,
        "table4_link_prediction",
        format_table(rows, "Table IV — link prediction (ROC-AUC)"),
    )
    if FAST_MODE:
        return  # scaled-down smoke run: shapes not comparable
    # robust shape assertions.  Margins compress toward noise on these
    # synthetic networks (see module docstring), so the check is
    # margin-based, not rank-based: TransN must stay within a small gap of
    # the best competitor on every network and never collapse.
    methods = ("LINE", "Node2Vec", "Metapath2Vec", "HIN2VEC", "MVE",
               "R-GCN", "SimplE", "TransN")
    for ds in datasets:
        by_method = {m: scores[(ds, m)] for m in methods}
        best_competitor = max(v for m, v in by_method.items() if m != "TransN")
        assert by_method["TransN"] > best_competitor - 0.05, (ds, by_method)
        assert by_method["TransN"] > 0.45, (ds, by_method)
