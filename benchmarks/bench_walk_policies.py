"""Benchmark: every pluggable walk policy through the full TransN stack.

Runs each registered :data:`repro.walks.POLICY_NAMES` policy through the
model (``TransNConfig(walk_policy=...)``) on two stress-shaped fixture
graphs — a degree-skewed two-view graph (power-law homo-view) and a
type-imbalanced three-view graph (one view hoards the edge budget) —
then scores the embeddings on the classification / link-prediction /
clustering suite.  A final guard block re-runs the paper's biased
correlated walk on the standard ``two_view_toy`` suite, so a policy
refactor that silently regresses Equations 6-7 shows up here as well as
in the unit goldens.

Results land in ``BENCH_policies.json`` at the repository root.

Run::

    PYTHONPATH=src python benchmarks/bench_walk_policies.py            # full
    PYTHONPATH=src python benchmarks/bench_walk_policies.py --fast     # CI smoke

Fast mode shrinks graphs and iteration counts to smoke-test the wiring;
its scores are not meaningful and its output should never be checked in.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core import TransN, TransNConfig  # noqa: E402
from repro.datasets import (  # noqa: E402
    degree_skewed_graph,
    two_view_toy,
    type_imbalanced_graph,
)
from repro.engine.observability import (  # noqa: E402
    MetricsRegistry,
    RunReport,
    Tracer,
)
from repro.eval import (  # noqa: E402
    run_clustering,
    run_link_prediction,
    run_node_classification,
)
from repro.eval.methods import TransNMethod  # noqa: E402
from repro.walks import POLICY_NAMES  # noqa: E402


def _config(policy: str, fast: bool, seed: int) -> TransNConfig:
    return TransNConfig(
        dim=16 if fast else 32,
        seed=seed,
        num_iterations=2 if fast else 6,
        walk_policy=policy,
    )


def _fit_embeddings(graph, policy: str, fast: bool, seed: int):
    model = TransN(graph, _config(policy, fast, seed))
    model.fit()
    return model.embeddings()


def evaluate_policy(
    graph, labels, policy: str, fast: bool, seed: int
) -> dict:
    """Classification + clustering + link prediction for one policy."""
    started = time.perf_counter()
    embeddings = _fit_embeddings(graph, policy, fast, seed)
    fit_s = time.perf_counter() - started
    classification = run_node_classification(
        embeddings, labels, repeats=3 if fast else 10, seed=seed
    )
    clustering = run_clustering(embeddings, labels, seed=seed)
    link = run_link_prediction(
        lambda: TransNMethod(_config(policy, fast, seed)),
        graph,
        removal_fraction=0.3,
        seed=seed,
    )
    return {
        "policy": policy,
        "fit_seconds": fit_s,
        "classification": {
            "macro_f1": classification.macro_f1,
            "micro_f1": classification.micro_f1,
        },
        "clustering": {"nmi": clustering.nmi},
        "link_prediction": {"auc": link.auc},
    }


def standard_suite_guard(fast: bool, seed: int) -> dict:
    """The paper's walk on the standard toy suite (regression anchor)."""
    graph, labels = two_view_toy(num_per_side=12)
    embeddings = _fit_embeddings(graph, "biased", fast, seed)
    classification = run_node_classification(
        embeddings, labels, repeats=3 if fast else 10, seed=seed
    )
    return {
        "graph": "two_view_toy",
        "policy": "biased",
        "macro_f1": classification.macro_f1,
        "micro_f1": classification.micro_f1,
    }


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--fast",
        action="store_true",
        help="smoke-test sizes for CI; scores not meaningful",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=REPO_ROOT / "BENCH_policies.json",
        help="output JSON path (default: BENCH_policies.json at repo root)",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    num_items = 16 if args.fast else 48
    graphs = {
        "degree_skewed": degree_skewed_graph(
            num_items=num_items, exponent=2.5, seed=args.seed
        ),
        "type_imbalanced": type_imbalanced_graph(
            num_items=num_items, shares=(0.8, 0.15, 0.05), seed=args.seed
        ),
    }

    metrics = MetricsRegistry()
    tracer = Tracer()
    results = []
    with tracer.span("bench_walk_policies", kind="run"):
        for graph_name, (graph, labels) in graphs.items():
            print(f"=== {graph_name}: {graph} ===", flush=True)
            entry = {"graph": graph_name, "nodes": graph.num_nodes,
                     "edges": graph.num_edges, "policies": []}
            for policy in POLICY_NAMES:
                with tracer.span(
                    f"{graph_name}/{policy}", kind="custom"
                ), metrics.timer(f"policy/{graph_name}/{policy}"):
                    scores = evaluate_policy(
                        graph, labels, policy, args.fast, args.seed
                    )
                metrics.observe(
                    f"macro_f1/{graph_name}",
                    scores["classification"]["macro_f1"],
                )
                print(
                    f"  {policy:18s} macro-F1 "
                    f"{scores['classification']['macro_f1']:.3f}  NMI "
                    f"{scores['clustering']['nmi']:.3f}  AUC "
                    f"{scores['link_prediction']['auc']:.3f}  "
                    f"({scores['fit_seconds']:.1f}s)"
                )
                entry["policies"].append(scores)
            results.append(entry)
        with tracer.span("standard_suite_guard", kind="custom"):
            guard = standard_suite_guard(args.fast, args.seed)
        print(
            f"standard suite (two_view_toy, biased): "
            f"macro-F1 {guard['macro_f1']:.3f}"
        )

    payload = {
        "benchmark": "walk_policies",
        "fast_mode": args.fast,
        "policies": list(POLICY_NAMES),
        "results": results,
        "standard_suite": guard,
        "observability": RunReport(
            metrics, tracer, metadata={"benchmark": "walk_policies"}
        ).to_dict(),
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
