"""Benchmark: per-chunk scalar vs. batched cross-view training epochs.

Times :meth:`CrossViewTrainer.train_epoch` on synthetic view-pairs of
growing size for both execution modes:

- *scalar* (``batched=False``): the per-chunk reference path — one
  autograd graph build, backward pass, translator Adam step and two
  RowAdam updates per ``(path_len, d)`` chunk (the literal Algorithm 1
  loop);
- *batched* (``batched=True``): all chunks of a direction gathered into
  one ``(num_chunks, path_len, d)`` tensor, one forward/backward and one
  optimizer step per direction per epoch.

Both modes run identical walk sampling (the PR-2 lockstep engine) from
identically seeded generators, so the comparison isolates the translator
hot loop.  Results land in ``BENCH_cross_view.json`` at the repository
root.

Run::

    PYTHONPATH=src python benchmarks/bench_cross_view.py            # full
    PYTHONPATH=src python benchmarks/bench_cross_view.py --fast     # CI smoke

Fast mode shrinks the view-pairs to smoke-test sizes; its timings are not
meaningful and its output should never be checked in.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.cross_view import CrossViewTrainer  # noqa: E402
from repro.engine.observability import (  # noqa: E402
    MetricsRegistry,
    RunReport,
    Tracer,
)
from repro.graph import HeteroGraph, build_view_pairs, separate_views  # noqa: E402

# (num_users, num_items, num_tags, edges_per_view, paths_per_epoch)
FULL_SIZES = [
    (200, 200, 100, 1_200, 40),
    (800, 800, 400, 5_000, 80),
    (2_000, 2_000, 1_000, 12_000, 160),
]
FAST_SIZES = [
    (30, 30, 20, 150, 6),
    (60, 60, 40, 350, 10),
]


def synthetic_view_pair(
    num_users: int, num_items: int, num_tags: int, edges_per_view: int, seed: int
):
    """A weighted tri-partite graph whose two views share the item nodes.

    ``click`` edges (user-item) and ``tag`` edges (item-tag) induce two
    heter-views with the items as common nodes — the Figure 4 app-store
    shape at benchmark scale.  Weights 1..5 exercise the Eq. 6-7 walker.
    """
    rng = np.random.default_rng(seed)
    graph = HeteroGraph()
    for i in range(num_users):
        graph.add_node(f"u{i}", "user")
    for i in range(num_items):
        graph.add_node(f"i{i}", "item")
    for i in range(num_tags):
        graph.add_node(f"t{i}", "tag")
    seen: set[tuple[str, str]] = set()
    for u, v, w in zip(
        rng.integers(0, num_users, size=edges_per_view),
        rng.integers(0, num_items, size=edges_per_view),
        rng.integers(1, 6, size=edges_per_view),
    ):
        key = (f"u{u}", f"i{v}")
        if key not in seen:
            seen.add(key)
            graph.add_edge(*key, "click", weight=float(w))
    for u, v, w in zip(
        rng.integers(0, num_items, size=edges_per_view),
        rng.integers(0, num_tags, size=edges_per_view),
        rng.integers(1, 6, size=edges_per_view),
    ):
        key = (f"i{u}", f"t{v}")
        if key not in seen:
            seen.add(key)
            graph.add_edge(*key, "tag", weight=float(w))
    views = separate_views(graph)
    return build_view_pairs(views)[0]


def make_trainer(pair, seed: int, paths_per_epoch: int, dim: int, batched: bool):
    rng = np.random.default_rng(seed)
    emb_i = rng.normal(0, 0.1, size=(pair.view_i.num_nodes, dim))
    emb_j = rng.normal(0, 0.1, size=(pair.view_j.num_nodes, dim))
    return CrossViewTrainer(
        pair,
        emb_i,
        emb_j,
        rng=rng,
        dim=dim,
        paths_per_epoch=paths_per_epoch,
        batched=batched,
    )


def timed_epochs(trainer, repeats: int) -> tuple[float, int]:
    """Best epoch wall-clock and the chunk count of the last epoch."""
    best = float("inf")
    num_paths = 0
    for _ in range(repeats):
        start = time.perf_counter()
        losses = trainer.train_epoch()
        best = min(best, time.perf_counter() - start)
        num_paths = losses.num_paths
    return best, num_paths


def bench_one_size(size: tuple, dim: int, seed: int, repeats: int) -> dict:
    num_users, num_items, num_tags, edges_per_view, paths = size
    pair = synthetic_view_pair(num_users, num_items, num_tags, edges_per_view, seed)
    scalar = make_trainer(pair, seed, paths, dim, batched=False)
    batched = make_trainer(pair, seed, paths, dim, batched=True)
    # warm the shared CSR/alias caches so one-time costs drop out
    scalar._sample_chunks(scalar.sub_i, scalar._walker_i, scalar._starts_i)
    batched._sample_chunks(batched.sub_i, batched._walker_i, batched._starts_i)

    scalar_s, scalar_paths = timed_epochs(scalar, repeats)
    batched_s, batched_paths = timed_epochs(batched, repeats)
    return {
        "nodes": pair.view_i.num_nodes + pair.view_j.num_nodes,
        "common_nodes": len(pair.common_nodes),
        "edges_view_i": pair.view_i.num_edges,
        "edges_view_j": pair.view_j.num_edges,
        "paths_per_epoch": paths,
        "chunks_scalar": scalar_paths,
        "chunks_batched": batched_paths,
        "scalar_s": scalar_s,
        "batched_s": batched_s,
        "speedup": scalar_s / batched_s,
    }


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--fast",
        action="store_true",
        help="smoke-test sizes for CI; timings not meaningful",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=REPO_ROOT / "BENCH_cross_view.json",
        help="output JSON path (default: BENCH_cross_view.json at the repo root)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--dim", type=int, default=32)
    args = parser.parse_args(argv)

    sizes = FAST_SIZES if args.fast else FULL_SIZES
    repeats = 2 if args.fast else 3

    metrics = MetricsRegistry()
    tracer = Tracer()
    results = []
    with tracer.span("bench_cross_view", kind="run"):
        for size in sizes:
            print(
                f"benchmarking {size[0]}+{size[1]}+{size[2]} nodes, "
                f"{size[4]} paths/epoch ...",
                flush=True,
            )
            label = f"{size[0]}+{size[1]}+{size[2]}"
            with tracer.span(label, kind="custom", paths_per_epoch=size[4]):
                with metrics.timer(f"size/{label}"):
                    entry = bench_one_size(size, args.dim, args.seed, repeats)
            metrics.observe("speedup/epoch", entry["speedup"])
            print(
                f"  chunks {entry['chunks_batched']:5d}"
                f"  scalar {entry['scalar_s']:8.3f}s"
                f"  batched {entry['batched_s']:8.3f}s"
                f"  speedup {entry['speedup']:6.1f}x"
            )
            results.append(entry)

    largest = results[-1]
    payload = {
        "benchmark": "cross_view",
        "fast_mode": args.fast,
        "dim": args.dim,
        "cross_path_len": 6,
        "num_encoders": 2,
        "results": results,
        "largest_pair": {
            "nodes": largest["nodes"],
            "common_nodes": largest["common_nodes"],
            "paths_per_epoch": largest["paths_per_epoch"],
            "epoch_speedup": largest["speedup"],
        },
        # per-size wall-clock + span tree in the shared run-report schema
        "observability": RunReport(
            metrics, tracer, metadata={"benchmark": "cross_view"}
        ).to_dict(),
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
