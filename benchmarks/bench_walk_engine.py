"""Benchmark: scalar walkers vs. the vectorized lockstep walk engine.

Times corpus construction (Algorithm 1's per-epoch resampling under the
``max(min(degree, 32), 10)`` policy) and full pipeline epoch streaming
(corpus -> pairs -> negative-sampled batches) on synthetic weighted
heter-views of growing size, for both engines:

- *scalar*: :class:`UniformWalker` / :class:`BiasedCorrelatedWalker`
  (one Python-level step per walk per iteration);
- *batched*: :class:`BatchedUniformWalker` /
  :class:`BatchedBiasedCorrelatedWalker` (one vectorized draw across all
  active walks per iteration).

Both engines share the same cached CSR adjacency, so the comparison
isolates the step loop itself.  Results land in ``BENCH_walks.json`` at
the repository root — the seed of the repo's performance trajectory.

Run::

    PYTHONPATH=src python benchmarks/bench_walk_engine.py            # full
    PYTHONPATH=src python benchmarks/bench_walk_engine.py --fast     # CI smoke

Fast mode shrinks the graphs to smoke-test sizes; its timings are not
meaningful and its output should never be checked in.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.engine import CorpusPipeline  # noqa: E402
from repro.engine.observability import (  # noqa: E402
    MetricsRegistry,
    RunReport,
    Tracer,
)
from repro.graph import HeteroGraph, separate_views  # noqa: E402
from repro.walks import (  # noqa: E402
    BatchedBiasedCorrelatedWalker,
    BatchedUniformWalker,
    BiasedCorrelatedWalker,
    UniformWalker,
    build_corpus,
)

FULL_SIZES = [(500, 3_000), (2_000, 12_000), (8_000, 48_000)]
FAST_SIZES = [(80, 300), (160, 700)]


def synthetic_heter_view(num_nodes: int, num_edges: int, seed: int):
    """A random weighted bipartite heter-view (weights 1..5, Figure-4 style)."""
    rng = np.random.default_rng(seed)
    half = num_nodes // 2
    graph = HeteroGraph()
    for i in range(half):
        graph.add_node(f"u{i}", "user")
    for i in range(num_nodes - half):
        graph.add_node(f"b{i}", "item")
    us = rng.integers(0, half, size=num_edges)
    vs = rng.integers(0, num_nodes - half, size=num_edges)
    weights = rng.integers(1, 6, size=num_edges).astype(float)
    for u, v, w in zip(us, vs, weights):
        graph.add_edge(f"u{u}", f"b{v}", "rating", weight=float(w))
    return separate_views(graph)[0]


def timed(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_one_size(
    num_nodes: int, num_edges: int, length: int, seed: int, repeats: int
) -> dict:
    view = synthetic_heter_view(num_nodes, num_edges, seed)
    rng = np.random.default_rng(seed)
    walkers = {
        "uniform": (UniformWalker(view, rng=rng), BatchedUniformWalker(view, rng=rng)),
        "biased": (
            BiasedCorrelatedWalker(view, rng=rng),
            BatchedBiasedCorrelatedWalker(view, rng=rng),
        ),
    }
    # warm both engines: CSR + lazy alias tables are one-time shared costs
    for scalar, batched in walkers.values():
        scalar.walk(view.graph.node_at(0), 2)
        batched.walk_batch(np.zeros(1, dtype=np.int64), 2)

    result = {"nodes": view.num_nodes, "edges": view.num_edges}
    for name, (scalar, batched) in walkers.items():
        scalar_s = timed(
            lambda: build_corpus(view, scalar, length=length, rng=rng), repeats
        )
        batched_s = timed(
            lambda: build_corpus(view, batched, length=length, rng=rng), repeats
        )
        result[name] = {
            "scalar_s": scalar_s,
            "batched_s": batched_s,
            "speedup": scalar_s / batched_s,
        }

    def epoch(walker):
        pipeline = CorpusPipeline(
            sample_corpus=lambda: build_corpus(
                view, walker, length=length, rng=rng
            ),
            num_nodes=view.num_nodes,
            window=2,
            num_negatives=5,
            batch_size=256,
            rng=rng,
        )
        return lambda: sum(1 for _ in pipeline.epoch())

    scalar_epoch = timed(epoch(walkers["biased"][0]), repeats)
    batched_epoch = timed(epoch(walkers["biased"][1]), repeats)
    result["epoch_streaming"] = {
        "scalar_s": scalar_epoch,
        "batched_s": batched_epoch,
        "speedup": scalar_epoch / batched_epoch,
    }
    return result


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--fast",
        action="store_true",
        help="smoke-test sizes for CI; timings not meaningful",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=REPO_ROOT / "BENCH_walks.json",
        help="output JSON path (default: BENCH_walks.json at the repo root)",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    sizes = FAST_SIZES if args.fast else FULL_SIZES
    length = 8 if args.fast else 20
    repeats = 2 if args.fast else 1

    metrics = MetricsRegistry()
    tracer = Tracer()
    results = []
    with tracer.span("bench_walk_engine", kind="run"):
        for num_nodes, num_edges in sizes:
            print(
                f"benchmarking {num_nodes} nodes / {num_edges} edges ...",
                flush=True,
            )
            label = f"{num_nodes}x{num_edges}"
            with tracer.span(label, kind="custom", nodes=num_nodes):
                with metrics.timer(f"size/{label}"):
                    entry = bench_one_size(
                        num_nodes, num_edges, length, args.seed, repeats
                    )
            for key in ("uniform", "biased", "epoch_streaming"):
                stats = entry[key]
                metrics.observe(f"speedup/{key}", stats["speedup"])
                print(
                    f"  {key:16s} scalar {stats['scalar_s']:8.3f}s"
                    f"  batched {stats['batched_s']:8.3f}s"
                    f"  speedup {stats['speedup']:6.1f}x"
                )
            results.append(entry)

    largest = results[-1]
    payload = {
        "benchmark": "walk_engine",
        "fast_mode": args.fast,
        "walk_length": length,
        "walk_policy": {"floor": 10, "cap": 32},
        "results": results,
        "largest_graph": {
            "nodes": largest["nodes"],
            "edges": largest["edges"],
            "biased_corpus_speedup": largest["biased"]["speedup"],
            "uniform_corpus_speedup": largest["uniform"]["speedup"],
            "epoch_streaming_speedup": largest["epoch_streaming"]["speedup"],
        },
        # per-size wall-clock + span tree in the shared run-report schema
        "observability": RunReport(
            metrics, tracer, metadata={"benchmark": "walk_engine"}
        ).to_dict(),
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
