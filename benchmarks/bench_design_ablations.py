"""Design-choice ablations for the substitutions recorded in DESIGN.md §2.

Beyond the paper's own Table V, this bench measures the two implementation
decisions this reproduction had to make where the paper under-specifies:

1. *Similarity-loss normalization* (Eqs. 11-14).  The literal loss is an
   unnormalized inner product, which is unbounded; we default to cosine.
   ``normalize_similarity=False`` runs the literal variant.
2. *Shared vs independent view initialization*.  The paper does not say
   how view-specific embeddings are initialized; we initialize a node
   identically across views so the final averaging combines aligned
   spaces.  The ablation re-randomizes each view's matrix independently.

Both are evaluated with the Table III protocol on the AMiner-like network.
"""

import numpy as np

from repro.core import TransN, TransNConfig
from repro.eval import run_node_classification

from conftest import FAST_MODE, bench_transn_config, emit, format_table


def _fit_and_score(graph, labels, config, independent_init=False):
    model = TransN(graph, config)
    if independent_init:
        rng = np.random.default_rng(config.seed + 1)
        bound = 0.5 / config.dim
        for edge_type, matrix in model.view_embeddings.items():
            matrix[:] = rng.uniform(-bound, bound, size=matrix.shape)
    model.fit()
    result = run_node_classification(
        model.embeddings(), labels, repeats=10, seed=0
    )
    return result.macro_f1, result.micro_f1


def _compute(datasets):
    graph, labels = datasets["aminer"]
    base = bench_transn_config()
    variants = {
        "TransN (cosine loss, shared init)": (base, False),
        "unnormalized inner-product loss": (
            TransNConfig(**{**base.__dict__, "normalize_similarity": False}),
            False,
        ),
        "independent per-view init": (base, True),
        "degree-weighted view average (ext)": (
            TransNConfig(**{**base.__dict__, "view_weighting": "degree"}),
            False,
        ),
    }
    rows = []
    scores = {}
    for name, (config, independent) in variants.items():
        macro, micro = _fit_and_score(graph, labels, config, independent)
        scores[name] = macro
        rows.append(
            {
                "Variant": name,
                "Macro-F1": f"{macro:.4f}",
                "Micro-F1": f"{micro:.4f}",
            }
        )
    return rows, scores


def test_design_ablations(benchmark, datasets, results_dir):
    rows, scores = benchmark.pedantic(
        _compute, args=(datasets,), rounds=1, iterations=1
    )
    emit(
        results_dir,
        "design_ablations",
        format_table(rows, "DESIGN.md §2 — substitution ablations (AMiner)"),
    )
    if FAST_MODE:
        return  # scaled-down smoke run: shapes not comparable
    default = scores["TransN (cosine loss, shared init)"]
    # the default must not be dominated by either alternative
    for variant, score in scores.items():
        assert default > score - 0.07, (variant, score, default)
