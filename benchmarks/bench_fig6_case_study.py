"""Figure 6: t-SNE case study on App-Daily applet embeddings.

Protocol (Section IV-D): sample ten applets per category, learn
embeddings with HIN2VEC, SimplE and TransN, project to 2-D with t-SNE.
The paper judges cluster separation visually; we quantify it with the
silhouette score (embedding space and 2-D projection) — higher means the
Figure 6 scatter looks cleaner.  The 2-D coordinates are written to
``benchmarks/results/fig6_projection_<method>.csv`` for plotting.

Expected shape: TransN's silhouettes above HIN2VEC's and SimplE's (the
paper: "embeddings learned by TransN are more separated").
"""

from repro.baselines import HIN2Vec, SimplE
from repro.viz import save_scatter_svg
from repro.eval import TransNMethod, run_case_study

from conftest import FAST_MODE, bench_transn_config, emit, format_table


def _compute(datasets, results_dir):
    graph, labels = datasets["app-daily"]
    methods = {
        "HIN2VEC": HIN2Vec(dim=32, seed=0),
        "SimplE": SimplE(dim=32, seed=0),
        "TransN": TransNMethod(bench_transn_config()),
    }
    rows = []
    silhouettes = {}
    for name, method in methods.items():
        embeddings = method.fit(graph)
        result = run_case_study(
            embeddings, labels, per_category=10, seed=0
        )
        silhouettes[name] = result.silhouette_embedding
        rows.append(
            {
                "Method": name,
                "Silhouette (embedding)": f"{result.silhouette_embedding:.4f}",
                "Silhouette (2-D t-SNE)": f"{result.silhouette_projection:.4f}",
                "#Applets": len(result.nodes),
            }
        )
        lines = ["node,label,x,y"]
        for node, label, (x, y) in zip(
            result.nodes, result.labels, result.projection
        ):
            lines.append(f"{node},{label},{x:.6f},{y:.6f}")
        (results_dir / f"fig6_projection_{name}.csv").write_text(
            "\n".join(lines) + "\n"
        )
        save_scatter_svg(
            results_dir / f"fig6_projection_{name}.svg",
            result.projection,
            result.labels,
            names=result.nodes,
            title=f"Figure 6 reproduction — {name} on App-Daily",
        )
    return rows, silhouettes


def test_fig6_case_study(benchmark, datasets, results_dir):
    rows, silhouettes = benchmark.pedantic(
        _compute, args=(datasets, results_dir), rounds=1, iterations=1
    )
    emit(
        results_dir,
        "fig6_case_study",
        format_table(
            rows, "Figure 6 — case study: category separation on App-Daily"
        ),
    )
    if FAST_MODE:
        return  # scaled-down smoke run: shapes not comparable
    assert silhouettes["TransN"] > silhouettes["HIN2VEC"] - 0.005
    assert silhouettes["TransN"] > silhouettes["SimplE"]
