"""Benchmark: parallel corpus generation scaling, 1 -> N workers.

Times one corpus build (Algorithm 1's per-epoch resampling under the
``max(min(degree, 32), 10)`` policy) on synthetic weighted heter-views of
growing size, for the serial engine (``workers=0``) and for
:class:`repro.engine.ParallelRuntime` pools of growing width.  The
parallel path pays a per-build overhead (start-node computation, shard
pickling, result transfer) against a per-shard win, so the curve only
bends upward once walks dominate — and only when the machine actually
has spare cores: the payload records ``os.cpu_count()`` precisely so a
flat curve on a 1-core box is read as a machine property, not a
regression.  The per-worker shard timers and the shared-memory byte
gauge from the runtime's observability registry ride along in the
report.

Results land in ``BENCH_parallel.json`` at the repository root.

Run::

    PYTHONPATH=src python benchmarks/bench_parallel.py            # full
    PYTHONPATH=src python benchmarks/bench_parallel.py --fast     # CI smoke

Fast mode shrinks the graphs to smoke-test sizes; its timings are not
meaningful and its output should never be checked in.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.engine.observability import (  # noqa: E402
    MetricsRegistry,
    RunReport,
    Tracer,
)
from repro.engine.parallel import (  # noqa: E402
    ParallelRuntime,
    PrefetchingSampler,
    single_view_seed,
)
from repro.graph import HeteroGraph, separate_views  # noqa: E402
from repro.walks import (  # noqa: E402
    BiasedCorrelatedPolicy,
    LockstepWalker,
    build_corpus,
)

FULL_SIZES = [(2_000, 12_000), (8_000, 48_000), (20_000, 120_000)]
FAST_SIZES = [(200, 800)]
WORKER_COUNTS = [1, 2, 4]


def synthetic_heter_view(num_nodes: int, num_edges: int, seed: int):
    """A random weighted bipartite heter-view (weights 1..5, Figure-4 style)."""
    rng = np.random.default_rng(seed)
    half = num_nodes // 2
    graph = HeteroGraph()
    for i in range(half):
        graph.add_node(f"u{i}", "user")
    for i in range(num_nodes - half):
        graph.add_node(f"b{i}", "item")
    us = rng.integers(0, half, size=num_edges)
    vs = rng.integers(0, num_nodes - half, size=num_edges)
    weights = rng.integers(1, 6, size=num_edges).astype(float)
    for u, v, w in zip(us, vs, weights):
        graph.add_edge(f"u{u}", f"b{v}", "rating", weight=float(w))
    return separate_views(graph)[0]


def timed(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_one_size(
    num_nodes: int, num_edges: int, length: int, seed: int, repeats: int
) -> dict:
    view = synthetic_heter_view(num_nodes, num_edges, seed)
    policy = BiasedCorrelatedPolicy()
    rng = np.random.default_rng(seed)
    walker = LockstepWalker(view, policy, rng=rng)
    walker.walk_batch(np.zeros(1, dtype=np.int64), 2)  # warm alias tables

    serial_s = timed(
        lambda: build_corpus(view, walker, length=length, rng=rng), repeats
    )
    entry = {
        "nodes": view.num_nodes,
        "edges": view.num_edges,
        "serial_s": serial_s,
        "workers": {},
    }
    for workers in WORKER_COUNTS:
        metrics = MetricsRegistry()
        with ParallelRuntime(workers, metrics=metrics) as runtime:
            # warm: publish shared memory + attach in every worker once
            runtime.build_corpus(
                view,
                policy,
                length=2,
                seed_seq=single_view_seed(seed, 0, 0),
            )
            parallel_s = timed(
                lambda: runtime.build_corpus(
                    view,
                    policy,
                    length=length,
                    seed_seq=single_view_seed(seed, 0, 1),
                ),
                repeats,
            )

            # overlap demo: stream 4 prefetched epochs back to back
            draws = iter(range(2, 100))
            sampler = PrefetchingSampler(
                runtime,
                lambda index: lambda: runtime.build_corpus(
                    view,
                    policy,
                    length=length,
                    seed_seq=single_view_seed(seed, 0, index),
                ),
            )
            start = next(draws)
            prefetch_s = timed(
                lambda: [sampler.corpus(i) for i in range(start, start + 2)],
                1,
            ) / 2
            sampler.reset()
            snapshot = metrics.snapshot()
        entry["workers"][str(workers)] = {
            "parallel_s": parallel_s,
            "speedup": serial_s / parallel_s,
            "prefetched_epoch_s": prefetch_s,
            "shared_bytes": snapshot["gauges"].get("parallel/shared_bytes"),
            "worker_seconds": {
                name: stats
                for name, stats in snapshot["timers"].items()
                if name.startswith("parallel/worker/")
            },
            "prefetch": {
                "hits": snapshot["counters"].get("parallel/prefetch/hits", 0),
                "misses": snapshot["counters"].get(
                    "parallel/prefetch/misses", 0
                ),
                "depth": snapshot["gauges"].get("parallel/prefetch/depth"),
            },
        }
    return entry


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--fast",
        action="store_true",
        help="smoke-test sizes for CI; timings not meaningful",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=REPO_ROOT / "BENCH_parallel.json",
        help="output JSON path (default: BENCH_parallel.json at the repo root)",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    sizes = FAST_SIZES if args.fast else FULL_SIZES
    length = 8 if args.fast else 20
    repeats = 1 if args.fast else 2

    metrics = MetricsRegistry()
    tracer = Tracer()
    results = []
    with tracer.span("bench_parallel", kind="run"):
        for num_nodes, num_edges in sizes:
            print(
                f"benchmarking {num_nodes} nodes / {num_edges} edges ...",
                flush=True,
            )
            label = f"{num_nodes}x{num_edges}"
            with tracer.span(label, kind="custom", nodes=num_nodes):
                with metrics.timer(f"size/{label}"):
                    entry = bench_one_size(
                        num_nodes, num_edges, length, args.seed, repeats
                    )
            print(f"  serial {entry['serial_s']:8.3f}s")
            for workers, stats in entry["workers"].items():
                metrics.observe(f"speedup/{workers}w", stats["speedup"])
                print(
                    f"  {workers}w  parallel {stats['parallel_s']:8.3f}s"
                    f"  speedup {stats['speedup']:5.2f}x"
                    f"  prefetched epoch {stats['prefetched_epoch_s']:8.3f}s"
                )
            results.append(entry)

    largest = results[-1]
    payload = {
        "benchmark": "parallel",
        "fast_mode": args.fast,
        "walk_length": length,
        "walk_policy": {"floor": 10, "cap": 32},
        "machine": {
            # the honest context for every speedup number below: with a
            # single core, process fan-out cannot beat the serial engine
            "cpu_count": os.cpu_count(),
            "sched_getaffinity": len(os.sched_getaffinity(0))
            if hasattr(os, "sched_getaffinity")
            else None,
            "start_method": (
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else multiprocessing.get_start_method()
            ),
        },
        "worker_counts": WORKER_COUNTS,
        "results": results,
        "largest_graph": {
            "nodes": largest["nodes"],
            "edges": largest["edges"],
            "scaling_curve": {
                workers: stats["speedup"]
                for workers, stats in largest["workers"].items()
            },
        },
        "observability": RunReport(
            metrics, tracer, metadata={"benchmark": "parallel"}
        ).to_dict(),
    }
    args.out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
