"""Table V: ablation study of TransN's five critical components.

Protocol (Section IV-C): remove one component at a time, rerun the node
classification of Table III.

Paper macro-F1 on App-Daily for reference:

    TransN-Without-Cross-View            0.1197   <- worst
    TransN-With-Simple-Walk              0.2945
    TransN-With-Simple-Translator        0.2591
    TransN-Without-Translation-Tasks     0.2402
    TransN-Without-Reconstruction-Tasks  0.2476
    TransN                               0.3713   <- best

Expected shape here: full TransN beats every degenerate variant (checked
on the mean across datasets), and on the taste-weighted App-Daily the two
walk-sensitive ablations (no-cross-view, simple-walk) fall clearly below
the full model.
"""

import numpy as np

from repro.eval import ablation_methods, run_node_classification

from conftest import FAST_MODE, bench_transn_config, emit, format_table


def _compute_table(datasets):
    rows = []
    scores: dict[tuple[str, str], float] = {}
    methods = ablation_methods(base_config=bench_transn_config())
    for ds_name, (graph, labels) in datasets.items():
        for method_name, factory in methods.items():
            embeddings = factory().fit(graph)
            result = run_node_classification(
                embeddings, labels, repeats=10, seed=0
            )
            scores[(ds_name, method_name)] = result.macro_f1
            rows.append(
                {
                    "Dataset": ds_name,
                    "Variant": method_name,
                    "Macro-F1": f"{result.macro_f1:.4f}",
                    "Micro-F1": f"{result.micro_f1:.4f}",
                }
            )
    return rows, scores


def test_table5_ablation(benchmark, datasets, results_dir):
    rows, scores = benchmark.pedantic(
        _compute_table, args=(datasets,), rounds=1, iterations=1
    )
    emit(
        results_dir,
        "table5_ablation",
        format_table(rows, "Table V — ablation study (macro/micro F1)"),
    )
    if FAST_MODE:
        return  # scaled-down smoke run: shapes not comparable
    variants = [
        "TransN-Without-Cross-View",
        "TransN-With-Simple-Walk",
        "TransN-With-Simple-Translator",
        "TransN-Without-Translation-Tasks",
        "TransN-Without-Reconstruction-Tasks",
    ]
    # full TransN is not dominated by any variant on the cross-dataset
    # mean (tolerance matches the single-seed noise of these small nets;
    # per-dataset middle-variant orderings shuffle in the paper too)
    full_mean = np.mean([scores[(ds, "TransN")] for ds in datasets])
    for variant in variants:
        variant_mean = np.mean([scores[(ds, variant)] for ds in datasets])
        assert full_mean > variant_mean - 0.02, (variant, variant_mean, full_mean)
    # structural claims: the cross-view algorithm and the biased correlated
    # walks carry the weighted-network wins (mean over the two App-* sets)
    app_sets = [ds for ds in datasets if ds.startswith("app")]
    full_app = np.mean([scores[(ds, "TransN")] for ds in app_sets])
    simple_walk_app = np.mean(
        [scores[(ds, "TransN-With-Simple-Walk")] for ds in app_sets]
    )
    assert full_app > simple_walk_app, (full_app, simple_walk_app)
    # the walk ablation collapses on the taste-weighted network
    assert (
        scores[("app-daily", "TransN")]
        > scores[("app-daily", "TransN-With-Simple-Walk")]
    )
