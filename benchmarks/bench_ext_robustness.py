"""Extension experiment: sensitivity to injected noise edges.

Inject random AU edges (0%, 50%, 100% of the original AU count, with
weights drawn uniformly from the existing range) into the App-Daily
network, retrain, and track macro-F1.

Measured finding (the opposite of the naive "view separation isolates
noise" hypothesis): TransN degrades *more* than the type-blind Node2Vec.
The injected edges carry weights with no taste structure, which corrupts
precisely the weight-similarity signal the correlated walks (Eq. 7) ride
— the same dependence Table V's simple-walk ablation demonstrates from
the other side.  The asserted shape is therefore the dependence itself:
TransN's F1 must drop significantly under full weight-randomized noise,
confirming that its App-* advantage really does come from the weight
structure rather than from bare connectivity.
"""

from repro.baselines import Node2Vec
from repro.eval import TransNMethod
from repro.eval.robustness import run_noise_sweep

from conftest import FAST_MODE, bench_transn_config, emit, format_table

FRACTIONS = [0.0, 0.5, 1.0]


def _compute(datasets):
    graph, labels = datasets["app-daily"]
    methods = {
        "Node2Vec": lambda: Node2Vec(dim=32, seed=0),
        "TransN": lambda: TransNMethod(bench_transn_config()),
    }
    rows = []
    curves = {}
    for name, factory in methods.items():
        points = run_noise_sweep(
            factory, graph, labels, "AU", FRACTIONS, seed=0, repeats=10
        )
        curves[name] = points
        for point in points:
            rows.append(
                {
                    "Method": name,
                    "Noise": f"{point.noise_fraction:.0%}",
                    "Macro-F1": f"{point.macro_f1:.4f}",
                    "#Edges": point.num_edges,
                }
            )
    return rows, curves


def test_ext_noise_robustness(benchmark, datasets, results_dir):
    rows, curves = benchmark.pedantic(
        _compute, args=(datasets,), rounds=1, iterations=1
    )
    emit(
        results_dir,
        "ext_noise_robustness",
        format_table(
            rows, "Extension — macro-F1 under injected AU noise (App-Daily)"
        ),
    )
    if FAST_MODE:
        return  # scaled-down smoke run: shapes not comparable
    transn = curves["TransN"]
    # TransN's advantage is weight-borne: weight-randomized noise must
    # erode it measurably ...
    assert transn[-1].macro_f1 < transn[0].macro_f1 - 0.02, transn
    # ... yet not below the random floor (1/6 categories ~ 0.17 macro)
    assert transn[-1].macro_f1 > 0.2, transn
