"""Table III: node classification, Macro-F1 / Micro-F1, 4 datasets x 8 methods.

Protocol (Section IV-B1): learn embeddings on the full network; 90/10
stratified splits; logistic regression; 10 repeats; averaged F1.

Paper (macro-F1) for reference — shape to reproduce, not absolute values:

             AMiner  BLOG   App-Daily App-Weekly
    LINE     0.7216  0.2086 0.1261    0.1238
    Node2Vec 0.7056  0.2312 0.1277    0.1209
    M2V      0.7869  0.2763 0.1875    0.1757
    HIN2VEC  0.7998  0.3069 0.1731    0.1472
    MVE      0.7603  0.2590 0.1567    0.1288
    R-GCN    0.8325  0.2860 0.1833    0.1637
    SimplE   0.7927  0.3036 0.1648    0.1292
    TransN   0.8465  0.3230 0.3713    0.3016

Expected shape here: TransN first or statistically tied-first everywhere,
with its largest margin on the weighted sparse App-* networks; the
unit-weight KG methods (R-GCN, SimplE) collapse on App-* because the
taste-weight signal is invisible to them.
"""

from repro.eval import method_registry, run_node_classification

from conftest import FAST_MODE, bench_transn_config, emit, format_table


def _compute_table(datasets):
    rows = []
    scores = {}
    for ds_name, (graph, labels) in datasets.items():
        registry = method_registry(
            ds_name, dim=32, seed=0, transn_config=bench_transn_config()
        )
        for method_name, factory in registry.items():
            embeddings = factory().fit(graph)
            result = run_node_classification(
                embeddings, labels, repeats=10, seed=0
            )
            scores[(ds_name, method_name)] = result
            rows.append(
                {
                    "Dataset": ds_name,
                    "Method": method_name,
                    "Macro-F1": f"{result.macro_f1:.4f}",
                    "Micro-F1": f"{result.micro_f1:.4f}",
                    "±macro": f"{result.macro_std:.3f}",
                }
            )
    return rows, scores


def test_table3_node_classification(benchmark, datasets, results_dir):
    rows, scores = benchmark.pedantic(
        _compute_table, args=(datasets,), rounds=1, iterations=1
    )
    emit(
        results_dir,
        "table3_node_classification",
        format_table(rows, "Table III — node classification"),
    )
    if FAST_MODE:
        return  # scaled-down smoke run: shapes not comparable
    # robust shape assertions (loose: scores carry seed noise)
    for ds in datasets:
        transn = scores[(ds, "TransN")].macro_f1
        line = scores[(ds, "LINE")].macro_f1
        assert transn > line - 0.03, (ds, "TransN should not lose to LINE")
    # the weighted-sparse App-Daily margin: TransN strictly first
    app = {m: scores[("app-daily", m)].macro_f1 for m in
           ("LINE", "Node2Vec", "Metapath2Vec", "HIN2VEC", "MVE",
            "R-GCN", "SimplE", "TransN")}
    best_competitor = max(v for k, v in app.items() if k != "TransN")
    assert app["TransN"] > best_competitor - 0.02
    # unit-weight KG methods collapse on the taste-weighted network
    assert app["TransN"] > app["R-GCN"] + 0.1
    assert app["TransN"] > app["SimplE"] + 0.1
