"""Extension experiment: node clustering (k-means + NMI).

Not in the paper — the standard third evaluation task in the
network-embedding literature, added here to check that TransN's advantage
carries to a fully unsupervised consumer of the embeddings.  Protocol:
k-means with k = number of ground-truth classes on the labelled nodes'
embeddings; NMI against the labels.

Expected shape (inherited from Table III): TransN leads on the
taste-weighted App-Daily network, where its embeddings separate categories
that unit-weight methods cannot see.
"""

from repro.eval import method_registry, run_clustering

from conftest import FAST_MODE, bench_transn_config, emit, format_table


def _compute(datasets):
    rows = []
    scores = {}
    for ds_name in ("aminer", "app-daily"):
        graph, labels = datasets[ds_name]
        registry = method_registry(
            ds_name, dim=32, seed=0, transn_config=bench_transn_config()
        )
        for method_name, factory in registry.items():
            embeddings = factory().fit(graph)
            result = run_clustering(embeddings, labels, seed=0)
            scores[(ds_name, method_name)] = result.nmi
            rows.append(
                {
                    "Dataset": ds_name,
                    "Method": method_name,
                    "NMI": f"{result.nmi:.4f}",
                    "k": result.num_clusters,
                }
            )
    return rows, scores


def test_ext_clustering(benchmark, datasets, results_dir):
    rows, scores = benchmark.pedantic(
        _compute, args=(datasets,), rounds=1, iterations=1
    )
    emit(
        results_dir,
        "ext_clustering",
        format_table(rows, "Extension — node clustering (k-means, NMI)"),
    )
    if FAST_MODE:
        return  # scaled-down smoke run: shapes not comparable
    app = {m: s for (ds, m), s in scores.items() if ds == "app-daily"}
    # unit-weight KG methods cannot see the taste signal
    assert app["TransN"] > app["R-GCN"] - 0.01
    assert app["TransN"] > app["SimplE"] - 0.02
