"""Benchmark: the embedding serving layer at million-node scale.

Builds a synthetic mixture-of-Gaussians embedding table (the geometry
real TransN embeddings have: tight communities with overlap), writes it
to a TNEMB1 store, and measures the full serving path:

* store write time and **open latency** — the mmap open must be O(ms)
  regardless of store size, because the header parse + size check is
  all that happens before the first query;
* IVF index build time at the benchmarked operating point;
* **recall@10 vs brute force** on sampled stored-vector queries — the
  acceptance bar is >= 0.9 at the operating point recorded in the
  payload (nlist/nprobe ride along so the number is reproducible);
* single-query p50/p99 latency and batched throughput (QPS).

Results land in ``BENCH_serving.json`` at the repository root.

Run::

    PYTHONPATH=src python benchmarks/bench_serving.py            # full, ~1M nodes
    PYTHONPATH=src python benchmarks/bench_serving.py --fast     # CI smoke

Fast mode shrinks the table to smoke-test sizes; its timings are not
meaningful and its output should never be checked in.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.engine.observability import (  # noqa: E402
    MetricsRegistry,
    RunReport,
    Tracer,
)
from repro.serving import (  # noqa: E402
    EmbeddingService,
    EmbeddingStore,
    write_store,
)
from repro.serving.index import BruteForceIndex, recall_at_k  # noqa: E402

FULL = {
    "nodes": 1_000_000,
    "dim": 32,
    "clusters": 256,
    "nlist": 128,
    "nprobe": 16,
    "recall_queries": 200,
    "latency_queries": 400,
    "qps_queries": 8192,
    "qps_batch": 256,
}
FAST = {
    "nodes": 5_000,
    "dim": 16,
    "clusters": 32,
    "nlist": 64,
    "nprobe": 16,
    "recall_queries": 32,
    "latency_queries": 40,
    "qps_queries": 512,
    "qps_batch": 64,
}


def synthetic_embeddings(n: int, dim: int, clusters: int, seed: int):
    """Mixture-of-Gaussians rows, float32, built cluster-block-wise so
    the peak transient stays far below the final table size."""
    rng = np.random.default_rng(seed)
    centers = (rng.standard_normal((clusters, dim)) * 2.0).astype(np.float32)
    matrix = np.empty((n, dim), dtype=np.float32)
    assignment = rng.integers(0, clusters, size=n)
    for c in range(clusters):
        rows = np.flatnonzero(assignment == c)
        matrix[rows] = centers[c] + 0.3 * rng.standard_normal(
            (len(rows), dim)
        ).astype(np.float32)
    return matrix


def timed(fn, repeats: int = 1) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--fast",
        action="store_true",
        help="smoke-test sizes for CI; timings not meaningful",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=REPO_ROOT / "BENCH_serving.json",
        help="output JSON path (default: BENCH_serving.json at the repo root)",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    cfg = FAST if args.fast else FULL
    metrics = MetricsRegistry()
    tracer = Tracer()
    store_path = Path(os.environ.get("TMPDIR", "/tmp")) / "bench_serving.tnemb"

    with tracer.span("bench_serving", kind="run"):
        print(
            f"building {cfg['nodes']:,} x {cfg['dim']} float32 table ...",
            flush=True,
        )
        with metrics.timer("bench/build_table"):
            matrix = synthetic_embeddings(
                cfg["nodes"], cfg["dim"], cfg["clusters"], args.seed
            )
        ids = [f"n{i:07d}" for i in range(cfg["nodes"])]

        with metrics.timer("bench/store_write"):
            write_s = timed(lambda: write_store(store_path, ids, matrix))
        store_bytes = store_path.stat().st_size
        print(f"store write {write_s:.2f}s ({store_bytes / 1e6:.1f} MB)")

        # open latency: header parse + size check only, best of 5 —
        # this is the number that must stay O(ms) at any table size
        open_ms = timed(
            lambda: EmbeddingStore(store_path).close(), repeats=5
        ) * 1e3
        print(f"store open {open_ms:.3f} ms")

        rng = np.random.default_rng(args.seed + 1)
        with EmbeddingService(
            store_path,
            metric="cosine",
            index="ivf",
            nlist=cfg["nlist"],
            nprobe=cfg["nprobe"],
            seed=args.seed,
            batch_size=cfg["qps_batch"],
            metrics=metrics,
            tracer=tracer,
        ) as service:
            print(
                f"building IVF index (nlist={cfg['nlist']}, "
                f"nprobe={cfg['nprobe']}) ...",
                flush=True,
            )
            build_s = timed(lambda: service.index)
            print(f"index build {build_s:.2f}s")

            # recall@10 vs brute force on sampled stored vectors
            sample = rng.choice(
                cfg["nodes"], size=cfg["recall_queries"], replace=False
            )
            queries = service.store.matrix[np.sort(sample)]
            exact_idx, _ = BruteForceIndex(
                service.store.matrix, metric="cosine"
            ).search(queries, 10)
            approx_idx, _ = service.index.search(queries, 10)
            recall = recall_at_k(approx_idx, exact_idx)
            metrics.gauge("bench/recall_at_10", recall)
            print(f"recall@10 vs brute force: {recall:.4f}")

            # single-query latency distribution
            lat_rows = rng.integers(0, cfg["nodes"], cfg["latency_queries"])
            lat_ids = [ids[int(r)] for r in lat_rows]
            latencies = []
            for node in lat_ids:
                start = time.perf_counter()
                service.top_k([node], k=10)
                latencies.append((time.perf_counter() - start) * 1e3)
            p50_ms = float(np.percentile(latencies, 50))
            p99_ms = float(np.percentile(latencies, 99))
            print(f"latency p50 {p50_ms:.2f} ms  p99 {p99_ms:.2f} ms")

            # batched throughput
            qps_rows = rng.integers(0, cfg["nodes"], cfg["qps_queries"])
            qps_ids = [ids[int(r)] for r in qps_rows]
            qps_s = timed(lambda: service.top_k(qps_ids, k=10))
            qps = cfg["qps_queries"] / qps_s
            print(
                f"throughput {qps:,.0f} qps "
                f"(batch {cfg['qps_batch']}, {cfg['qps_queries']} queries)"
            )

    payload = {
        "benchmark": "serving",
        "fast_mode": args.fast,
        "table": {
            "nodes": cfg["nodes"],
            "dim": cfg["dim"],
            "dtype": "float32",
            "clusters": cfg["clusters"],
            "store_bytes": store_bytes,
        },
        "machine": {"cpu_count": os.cpu_count()},
        "operating_point": {
            "metric": "cosine",
            "nlist": cfg["nlist"],
            "nprobe": cfg["nprobe"],
            "k": 10,
        },
        "store_write_s": write_s,
        "open_ms": open_ms,
        "index_build_s": build_s,
        "recall_at_10": recall,
        "p50_ms": p50_ms,
        "p99_ms": p99_ms,
        "qps": qps,
        "qps_batch": cfg["qps_batch"],
        "observability": RunReport(
            metrics, tracer, metadata={"benchmark": "serving"}
        ).to_dict(),
    }
    args.out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.out}")
    store_path.unlink(missing_ok=True)


if __name__ == "__main__":
    main()
