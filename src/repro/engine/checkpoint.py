"""Crash-safe training checkpoints.

A *checkpoint* is one nested state dict — numpy arrays, numbers, strings,
lists, and dicts, as produced by a trainer's ``state_dict()`` — frozen to
disk so an interrupted run can continue bit-exactly.  Three guarantees:

- **Atomicity**: :meth:`CheckpointManager.save` writes to a temporary
  file in the target directory, flushes and fsyncs it, then publishes it
  with :func:`os.replace`.  A crash at any point leaves either the
  previous checkpoint or the new one, never a truncated hybrid.
- **Integrity**: every file carries a magic string, a format version,
  the payload length, and a SHA-256 checksum of the payload.  Loading a
  truncated, corrupted, or future-format file raises
  :class:`CheckpointError` naming the file and the reason — it never
  unpickles garbage.
- **Rotation**: the manager keeps the ``keep`` most recent checkpoints
  and deletes older ones; :meth:`CheckpointManager.load_latest` falls
  back through the rotation when the newest file is damaged.

The :class:`TrainingState` protocol is the contract trainers implement to
participate: ``state_dict()`` returns a snapshot (owning copies of every
array) and ``load_state_dict()`` restores it *in place*, so matrices
shared between components (e.g. TransN's view embeddings, updated by both
the single-view and the cross-view trainer) keep their identity.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import re
import struct
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator, Protocol, runtime_checkable

import numpy as np

MAGIC = b"REPROCKP"
FORMAT_VERSION = 1
_HEADER = struct.Struct("<8sIQ32s")  # magic, version, payload length, sha256


class CheckpointError(ValueError):
    """A checkpoint file could not be read or fails validation."""


@runtime_checkable
class TrainingState(Protocol):
    """Anything whose full training state can be snapshot and restored."""

    def state_dict(self) -> dict[str, Any]: ...

    def load_state_dict(self, state: dict[str, Any]) -> None: ...


@dataclass(frozen=True)
class Checkpoint:
    """One checkpoint loaded from disk."""

    path: Path
    step: int
    state: dict[str, Any]


def dump_state(state: dict[str, Any], path: str | Path) -> None:
    """Write ``state`` to ``path`` atomically with header + checksum."""
    path = Path(path)
    payload = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
    header = _HEADER.pack(
        MAGIC, FORMAT_VERSION, len(payload), hashlib.sha256(payload).digest()
    )
    tmp = path.with_name(path.name + ".tmp")
    try:
        with tmp.open("wb") as handle:
            handle.write(header)
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    _fsync_directory(path.parent)


def load_state(path: str | Path) -> dict[str, Any]:
    """Read and validate a checkpoint written by :func:`dump_state`.

    Raises:
        CheckpointError: naming ``path`` and the failure — missing file,
            truncation, bad magic, future format version, length or
            checksum mismatch — *before* any payload is deserialized.
    """
    path = Path(path)
    try:
        raw = path.read_bytes()
    except FileNotFoundError:
        raise CheckpointError(f"{path}: checkpoint file does not exist") from None
    except OSError as exc:
        raise CheckpointError(f"{path}: cannot read checkpoint: {exc}") from exc
    if len(raw) < _HEADER.size:
        raise CheckpointError(
            f"{path}: truncated checkpoint ({len(raw)} bytes, header needs "
            f"{_HEADER.size})"
        )
    magic, version, length, digest = _HEADER.unpack_from(raw)
    if magic != MAGIC:
        raise CheckpointError(
            f"{path}: not a checkpoint file (bad magic {magic!r})"
        )
    if version > FORMAT_VERSION:
        raise CheckpointError(
            f"{path}: future format version {version} (this build reads "
            f"<= {FORMAT_VERSION}); upgrade the code or use an older "
            f"checkpoint"
        )
    payload = raw[_HEADER.size :]
    if len(payload) != length:
        raise CheckpointError(
            f"{path}: truncated checkpoint (payload is {len(payload)} "
            f"bytes, header promises {length})"
        )
    if hashlib.sha256(payload).digest() != digest:
        raise CheckpointError(
            f"{path}: checksum mismatch — the file is corrupt"
        )
    try:
        state = pickle.loads(payload)
    except Exception as exc:  # unpickling a validated payload failed
        raise CheckpointError(
            f"{path}: cannot deserialize checkpoint payload: {exc}"
        ) from exc
    if not isinstance(state, dict):
        raise CheckpointError(
            f"{path}: checkpoint payload is {type(state).__name__}, "
            "expected a state dict"
        )
    return state


def _fsync_directory(directory: Path) -> None:
    """Best-effort fsync of a directory entry (POSIX durability)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir-open
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - e.g. directories on some FS
        pass
    finally:
        os.close(fd)


class CheckpointManager:
    """Owns one directory of rotated, validated checkpoints.

    Args:
        directory: where checkpoints live; created if missing.
        keep: how many recent checkpoints to retain (older ones are
            deleted after each successful save).
        prefix: file-name prefix, ``<prefix>-<step>.ckpt``.
    """

    SUFFIX = ".ckpt"

    def __init__(
        self, directory: str | Path, keep: int = 3, prefix: str = "ckpt"
    ) -> None:
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        if not re.fullmatch(r"[A-Za-z0-9_.-]+", prefix):
            raise ValueError(f"invalid checkpoint prefix {prefix!r}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.keep = keep
        self.prefix = prefix
        self._pattern = re.compile(
            re.escape(prefix) + r"-(\d+)" + re.escape(self.SUFFIX) + r"\Z"
        )

    # ------------------------------------------------------------------
    def _path_for(self, step: int) -> Path:
        return self.directory / f"{self.prefix}-{step:08d}{self.SUFFIX}"

    def steps(self) -> list[int]:
        """Steps of every checkpoint on disk, oldest first."""
        found = []
        for entry in self.directory.iterdir():
            match = self._pattern.match(entry.name)
            if match:
                found.append(int(match.group(1)))
        return sorted(found)

    def __iter__(self) -> Iterator[Path]:
        return iter(self._path_for(step) for step in self.steps())

    # ------------------------------------------------------------------
    def save(self, state: dict[str, Any], step: int) -> Path:
        """Atomically write ``state`` as checkpoint ``step`` and rotate."""
        if step < 0:
            raise ValueError(f"step must be >= 0, got {step}")
        path = self._path_for(step)
        dump_state(state, path)
        for old in self.steps()[: -self.keep]:
            self._path_for(old).unlink(missing_ok=True)
        return path

    def load(self, step: int) -> Checkpoint:
        """Load one specific checkpoint, strictly (no fallback)."""
        path = self._path_for(step)
        return Checkpoint(path=path, step=step, state=load_state(path))

    def load_latest(self) -> Checkpoint | None:
        """The newest readable checkpoint, or ``None`` if none exist.

        Damaged files are skipped (newest to oldest) with a warning; if
        every file in the rotation is damaged, raises
        :class:`CheckpointError` listing each failure.
        """
        steps = self.steps()
        failures: list[str] = []
        for step in reversed(steps):
            try:
                return self.load(step)
            except CheckpointError as exc:
                failures.append(str(exc))
                warnings.warn(
                    f"skipping damaged checkpoint: {exc}", stacklevel=2
                )
        if failures:
            raise CheckpointError(
                "no readable checkpoint in "
                f"{self.directory}: " + "; ".join(failures)
            )
        return None


def non_finite_entries(state: Any, prefix: str = "") -> list[str]:
    """Paths of float arrays inside ``state`` containing NaN/Inf.

    Walks nested dicts/lists/tuples; only inspects floating-point numpy
    arrays (loss *histories* are plain lists and are deliberately not
    scanned — a guarded NaN loss lives there legitimately after a
    ``skip``-policy incident).
    """
    bad: list[str] = []
    if isinstance(state, dict):
        for key, value in state.items():
            bad.extend(non_finite_entries(value, f"{prefix}{key}/"))
    elif isinstance(state, (list, tuple)):
        for index, value in enumerate(state):
            bad.extend(non_finite_entries(value, f"{prefix}{index}/"))
    elif isinstance(state, np.ndarray):
        if np.issubdtype(state.dtype, np.floating) and not np.all(
            np.isfinite(state)
        ):
            bad.append(prefix.rstrip("/"))
    return bad
