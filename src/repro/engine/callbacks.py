"""Hooks observing and steering a :class:`repro.engine.loop.TrainingLoop`.

A callback receives every lifecycle event of a run:

    on_train_begin
      on_epoch_begin
        on_phase_begin . (on_batch_end)* . on_phase_end     per phase
      on_epoch_end
    on_train_end

All hooks are no-ops on the base class, so subclasses override only what
they need.  Callbacks may call ``loop.request_stop()`` (early stopping) or
mutate phase attributes such as ``lr`` (scheduling) — the loop checks the
stop flag between epochs.
"""

from __future__ import annotations

import math
import statistics
import time
import warnings
from collections import deque
from typing import TYPE_CHECKING, Callable

from repro.engine.faults import fire_os_error
from repro.engine.observability import NULL_REGISTRY

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.engine.checkpoint import CheckpointManager, TrainingState
    from repro.engine.loop import Phase, TrainingLoop

EpochLogs = dict[str, dict[str, float]]  # phase name -> named losses


def _loop_metrics(loop: "TrainingLoop"):
    """The loop's registry (tests drive callbacks with bare stand-ins)."""
    return getattr(loop, "metrics", NULL_REGISTRY)


class Callback:
    """Base class: every hook is a no-op."""

    def on_train_begin(self, loop: "TrainingLoop") -> None: ...

    def on_epoch_begin(self, loop: "TrainingLoop", epoch: int) -> None: ...

    def on_phase_begin(
        self, loop: "TrainingLoop", epoch: int, phase: "Phase"
    ) -> None: ...

    def on_batch_end(
        self,
        loop: "TrainingLoop",
        epoch: int,
        phase: "Phase",
        batch_index: int,
        loss: float,
    ) -> None: ...

    def on_phase_end(
        self,
        loop: "TrainingLoop",
        epoch: int,
        phase: "Phase",
        losses: dict[str, float],
    ) -> None: ...

    def on_epoch_end(
        self, loop: "TrainingLoop", epoch: int, logs: EpochLogs
    ) -> None: ...

    def on_epoch_rollback(self, loop: "TrainingLoop", epoch: int) -> None:
        """The epoch was discarded (``loop.request_retry()``): callbacks
        that recorded anything during it should drop those records."""

    def on_train_end(self, loop: "TrainingLoop") -> None: ...


class LossHistory(Callback):
    """Records each phase's named losses for every epoch.

    ``history[phase_name]`` is a list with one ``{loss_name: value}`` dict
    per epoch (empty dicts mark epochs where the phase reported nothing,
    e.g. a cross-view step that found no trainable paths).
    """

    def __init__(self) -> None:
        self.history: dict[str, list[dict[str, float]]] = {}

    def on_phase_end(self, loop, epoch, phase, losses) -> None:
        self.history.setdefault(phase.name, []).append(dict(losses))

    def on_epoch_rollback(self, loop, epoch) -> None:
        for entries in self.history.values():
            if entries:
                entries.pop()

    def series(self, phase_name: str, loss_name: str = "loss") -> list[float]:
        """One loss as a flat series, skipping epochs that lack it."""
        return [
            entry[loss_name]
            for entry in self.history.get(phase_name, [])
            if loss_name in entry
        ]


class PhaseTimer(Callback):
    """Wall-clock accounting per phase (and per epoch).

    ``totals[phase_name]`` is the cumulative seconds spent inside the
    phase; ``epochs[phase_name]`` the per-epoch durations.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self._started: dict[str, float] = {}
        self.totals: dict[str, float] = {}
        self.epochs: dict[str, list[float]] = {}

    def on_phase_begin(self, loop, epoch, phase) -> None:
        self._started[phase.name] = self._clock()

    def on_phase_end(self, loop, epoch, phase, losses) -> None:
        elapsed = self._clock() - self._started.pop(phase.name)
        self.totals[phase.name] = self.totals.get(phase.name, 0.0) + elapsed
        self.epochs.setdefault(phase.name, []).append(elapsed)

    def on_epoch_rollback(self, loop, epoch) -> None:
        # keep totals honest: the retried epoch's time was still spent,
        # but the per-epoch series must stay one entry per kept epoch
        for name, values in self.epochs.items():
            if values:
                values.pop()


class EarlyStopping(Callback):
    """Stop the run once a monitored loss stops improving.

    Args:
        phase: name of the phase to monitor.
        loss: name of the loss within that phase (default ``"loss"``).
        patience: epochs without sufficient improvement tolerated before
            stopping.
        min_delta: the minimum decrease that counts as an improvement.

    Epochs where the monitored loss is absent (phase reported nothing) are
    ignored entirely — they neither reset nor consume patience.
    """

    def __init__(
        self,
        phase: str,
        loss: str = "loss",
        patience: int = 3,
        min_delta: float = 0.0,
    ) -> None:
        if patience < 1:
            raise ValueError(f"patience must be >= 1, got {patience}")
        if min_delta < 0:
            raise ValueError(f"min_delta must be >= 0, got {min_delta}")
        self.phase = phase
        self.loss = loss
        self.patience = patience
        self.min_delta = min_delta
        self.best: float | None = None
        self.stale_epochs = 0
        self.stopped_epoch: int | None = None

    def on_train_begin(self, loop) -> None:
        self.best = None
        self.stale_epochs = 0
        self.stopped_epoch = None

    def on_epoch_end(self, loop, epoch, logs) -> None:
        value = logs.get(self.phase, {}).get(self.loss)
        if value is None:
            return
        if self.best is None or value < self.best - self.min_delta:
            self.best = value
            self.stale_epochs = 0
            return
        self.stale_epochs += 1
        if self.stale_epochs >= self.patience:
            self.stopped_epoch = epoch
            loop.request_stop()


class LinearLRDecay(Callback):
    """word2vec-style linear learning-rate decay over the run.

    Sets ``phase.lr`` at the start of every epoch, interpolating from
    ``start_lr`` (first epoch) down to ``end_lr`` (last scheduled epoch).
    Applies to every phase in ``phases`` that has an ``lr`` attribute.
    """

    def __init__(
        self,
        phases: list[str] | None,
        start_lr: float,
        end_lr: float,
        num_epochs: int,
    ) -> None:
        if num_epochs < 1:
            raise ValueError(f"num_epochs must be >= 1, got {num_epochs}")
        if start_lr <= 0 or end_lr <= 0:
            raise ValueError("learning rates must be positive")
        self.phases = None if phases is None else set(phases)
        self.start_lr = start_lr
        self.end_lr = end_lr
        self.num_epochs = num_epochs

    def lr_at(self, epoch: int) -> float:
        if self.num_epochs == 1:
            return self.start_lr
        frac = min(epoch, self.num_epochs - 1) / (self.num_epochs - 1)
        return self.start_lr + frac * (self.end_lr - self.start_lr)

    def on_epoch_begin(self, loop, epoch) -> None:
        lr = self.lr_at(epoch)
        for phase in loop.phases:
            if self.phases is not None and phase.name not in self.phases:
                continue
            if hasattr(phase, "lr"):
                phase.lr = lr


class ProgressReporter(Callback):
    """Prints one line per epoch with every phase's losses and duration.

    Example output::

        [epoch 3/10] single_view loss=1.2345 | cross_view translation=0.41
        reconstruction=0.22 | 0.83s
    """

    def __init__(self, print_fn: Callable[[str], None] = print) -> None:
        self.print_fn = print_fn
        self._timer = PhaseTimer()
        self._num_epochs = 0

    def on_train_begin(self, loop) -> None:
        self._num_epochs = loop.num_epochs

    def on_phase_begin(self, loop, epoch, phase) -> None:
        self._timer.on_phase_begin(loop, epoch, phase)

    def on_phase_end(self, loop, epoch, phase, losses) -> None:
        self._timer.on_phase_end(loop, epoch, phase, losses)

    def on_epoch_rollback(self, loop, epoch) -> None:
        self._timer.on_epoch_rollback(loop, epoch)

    def on_epoch_end(self, loop, epoch, logs) -> None:
        parts = []
        elapsed = 0.0
        for phase in loop.phases:
            losses = logs.get(phase.name, {})
            rendered = " ".join(
                f"{name}={value:.4f}" for name, value in losses.items()
            )
            parts.append(f"{phase.name} {rendered}".rstrip())
            durations = self._timer.epochs.get(phase.name, [])
            if durations:
                elapsed += durations[-1]
        self.print_fn(
            f"[epoch {epoch + 1}/{self._num_epochs}] "
            + " | ".join(parts)
            + f" | {elapsed:.2f}s"
        )


class Checkpointer(Callback):
    """Snapshots training state to a :class:`CheckpointManager`.

    Saves every ``every`` epochs and — so early-stopped or completed runs
    always leave a current checkpoint — once more at train end if the
    last epoch was not already on the cadence.  Each checkpoint bundles
    the ``state_provider``'s :meth:`state_dict` with the loop's own state
    (epoch counter, loss history, timings), which is exactly what
    :meth:`TrainingLoop.resume` needs.

    When a :class:`NumericalHealthGuard` runs in the same callback list,
    attach it *before* this checkpointer: a guard that requested a
    rollback marks the epoch discarded (``loop.retry_requested``), and
    the checkpointer refuses to persist the poisoned state.

    A failed write (disk full, permission loss, or the injected
    ``checkpoint.write_error`` fault) never kills the run: checkpoints
    are an optimization, not a correctness requirement, so the error is
    logged as a ``checkpoint/write_errors`` incident and training
    continues — the next cadence epoch simply tries again.
    """

    STATE_FORMAT = 1

    def __init__(
        self,
        manager: "CheckpointManager",
        state_provider: "TrainingState",
        every: int = 1,
        save_on_train_end: bool = True,
    ) -> None:
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self.manager = manager
        self.state_provider = state_provider
        self.every = every
        self.save_on_train_end = save_on_train_end
        self._last_saved_step: int | None = None
        self.write_errors = 0

    def _save(self, loop: "TrainingLoop", step: int) -> None:
        loop_state = loop.state_dict()
        # on_epoch_end fires before the loop advances its counter, so
        # stamp the step this checkpoint actually represents
        loop_state["epochs_completed"] = step
        metrics = _loop_metrics(loop)
        try:
            fire_os_error("checkpoint.write_error")
            path = self.manager.save(
                {
                    "format": self.STATE_FORMAT,
                    "step": step,
                    "model": self.state_provider.state_dict(),
                    "loop": loop_state,
                },
                step=step,
            )
        except OSError as error:
            self.write_errors += 1
            warnings.warn(
                f"checkpoint save at step {step} failed ({error}); "
                "training continues without this snapshot",
                RuntimeWarning,
                stacklevel=2,
            )
            metrics.incident(
                "checkpoint/write_errors", step=step, error=str(error)
            )
            return
        self._last_saved_step = step
        if metrics.enabled:
            size = path.stat().st_size
            metrics.counter("checkpoint/saves")
            metrics.gauge("checkpoint/last_snapshot_bytes", size)
            metrics.event(
                "checkpoint_saved", step=step, bytes=size, path=str(path)
            )

    def on_train_begin(self, loop) -> None:
        self._last_saved_step = None

    def on_epoch_end(self, loop, epoch, logs) -> None:
        if loop.retry_requested:
            return  # a health guard discarded this epoch; don't persist it
        if (epoch + 1) % self.every == 0:
            self._save(loop, epoch + 1)

    def on_train_end(self, loop) -> None:
        step = loop.epochs_completed
        if (
            self.save_on_train_end
            and step > 0
            and self._last_saved_step != step
        ):
            self._save(loop, step)


class NumericalHealthError(RuntimeError):
    """Training produced NaN/Inf values or an exploding loss."""


class NumericalHealthGuard(Callback):
    """Watches per-phase losses (and optionally parameters) for NaN/Inf
    and loss explosions, applying a configurable policy.

    A loss is *unhealthy* when it is non-finite, or when it exceeds
    ``explosion_factor`` times the rolling median of its last ``window``
    healthy values (checked only once at least three healthy values
    exist, so warm-up noise cannot trip it).  With ``check_parameters``
    the guard additionally scans the ``state_provider``'s state dict for
    non-finite float arrays after every clean-looking epoch, catching
    parameters that went NaN without the loss showing it yet.

    Policies:

    - ``"raise"`` (default): raise :class:`NumericalHealthError`.
    - ``"rollback"``: restore the snapshot taken at the epoch's start
      (the state of the last completed epoch — i.e. the last checkpoint
      boundary), halve the ``lr`` of each offending phase, and re-run
      the epoch via ``loop.request_retry()``.  Consecutive failing
      retries halve again (the guard re-reads the phase's lr at every
      epoch start); after ``max_retries`` consecutive failures it
      raises.  Requires a ``state_provider``.
    - ``"skip"``: record the incident and carry on unchanged.

    Every incident is appended to :attr:`incidents` as
    ``(epoch, action, problems)`` for post-mortems and tests.
    """

    POLICIES = ("raise", "rollback", "skip")

    def __init__(
        self,
        policy: str = "raise",
        state_provider: "TrainingState | None" = None,
        explosion_factor: float = 10.0,
        window: int = 8,
        max_retries: int = 3,
        check_parameters: bool = True,
        print_fn: Callable[[str], None] = print,
    ) -> None:
        if policy not in self.POLICIES:
            raise ValueError(
                f"unknown health policy {policy!r}; choose from "
                + ", ".join(self.POLICIES)
            )
        if policy == "rollback" and state_provider is None:
            raise ValueError(
                "the 'rollback' policy needs a state_provider with "
                "state_dict()/load_state_dict() to restore from"
            )
        if explosion_factor <= 1.0:
            raise ValueError(
                f"explosion_factor must be > 1, got {explosion_factor}"
            )
        if window < 3:
            raise ValueError(f"window must be >= 3, got {window}")
        if max_retries < 1:
            raise ValueError(f"max_retries must be >= 1, got {max_retries}")
        self.policy = policy
        self.state_provider = state_provider
        self.explosion_factor = explosion_factor
        self.window = window
        self.max_retries = max_retries
        self.check_parameters = check_parameters
        self.print_fn = print_fn
        self.incidents: list[tuple[int, str, list[str]]] = []
        self._recent: dict[tuple[str, str], deque[float]] = {}
        self._snapshot: dict | None = None
        self._phase_lrs: dict[str, float] = {}
        self._consecutive_retries = 0

    # ------------------------------------------------------------------
    def on_train_begin(self, loop) -> None:
        self._recent = {}
        self._snapshot = None
        self._phase_lrs = {}
        self._consecutive_retries = 0

    def on_epoch_begin(self, loop, epoch) -> None:
        self._phase_lrs = {
            phase.name: float(phase.lr)
            for phase in loop.phases
            if hasattr(phase, "lr")
        }
        if self.policy == "rollback":
            self._snapshot = self.state_provider.state_dict()

    # ------------------------------------------------------------------
    def _scan(self, logs: EpochLogs) -> list[tuple[str | None, str]]:
        """(offending phase, description) for every problem this epoch."""
        problems: list[tuple[str | None, str]] = []
        for phase_name, losses in logs.items():
            for loss_name, value in losses.items():
                label = f"{phase_name}/{loss_name}"
                if not math.isfinite(value):
                    problems.append(
                        (phase_name, f"loss {label} is non-finite ({value})")
                    )
                    continue
                recent = self._recent.get((phase_name, loss_name))
                if recent is not None and len(recent) >= 3:
                    median = statistics.median(recent)
                    if median > 0 and value > self.explosion_factor * median:
                        problems.append(
                            (
                                phase_name,
                                f"loss {label} exploded: {value:.6g} > "
                                f"{self.explosion_factor:g} x rolling "
                                f"median {median:.6g}",
                            )
                        )
        if (
            not problems
            and self.check_parameters
            and self.state_provider is not None
        ):
            from repro.engine.checkpoint import non_finite_entries

            for path in non_finite_entries(self.state_provider.state_dict()):
                problems.append(
                    (None, f"parameter state {path!r} contains NaN/Inf")
                )
        return problems

    def _record_healthy(self, logs: EpochLogs) -> None:
        for phase_name, losses in logs.items():
            for loss_name, value in losses.items():
                key = (phase_name, loss_name)
                if key not in self._recent:
                    self._recent[key] = deque(maxlen=self.window)
                self._recent[key].append(value)

    def _report_incident(
        self, loop, epoch: int, action: str, descriptions: list[str]
    ) -> None:
        self.incidents.append((epoch, action, descriptions))
        metrics = _loop_metrics(loop)
        metrics.counter(f"health/{action}")
        metrics.event(
            "health_incident",
            "; ".join(descriptions),
            epoch=epoch,
            action=action,
        )

    def on_epoch_end(self, loop, epoch, logs) -> None:
        problems = self._scan(logs)
        if not problems:
            self._record_healthy(logs)
            self._consecutive_retries = 0
            return
        descriptions = [text for _, text in problems]
        summary = (
            f"numerical health check failed at epoch {epoch + 1}: "
            + "; ".join(descriptions)
        )
        if self.policy == "raise":
            self._report_incident(loop, epoch, "raise", descriptions)
            raise NumericalHealthError(summary)
        if self.policy == "skip":
            self._report_incident(loop, epoch, "skip", descriptions)
            self.print_fn(f"[health] {summary} — skipping (policy=skip)")
            return
        # rollback
        if self._consecutive_retries >= self.max_retries:
            self._report_incident(loop, epoch, "raise", descriptions)
            raise NumericalHealthError(
                f"{summary} — retry budget ({self.max_retries}) exhausted"
            )
        self._consecutive_retries += 1
        self._report_incident(loop, epoch, "rollback", descriptions)
        self.state_provider.load_state_dict(self._snapshot)
        halved = []
        for name in {p for p, _ in problems if p is not None}:
            phase = next((p for p in loop.phases if p.name == name), None)
            if phase is not None and name in self._phase_lrs:
                phase.lr = self._phase_lrs[name] * 0.5
                halved.append(f"{name} lr -> {phase.lr:g}")
        loop.request_retry()
        detail = f" ({', '.join(halved)})" if halved else ""
        self.print_fn(
            f"[health] {summary} — rolled back to last snapshot, retrying "
            f"epoch {epoch + 1} "
            f"[{self._consecutive_retries}/{self.max_retries}]{detail}"
        )


class RelationBalancer(Callback):
    """BHIN2vec-inspired relation-type-balanced training (arXiv:1912.08925).

    BHIN2vec balances heterogeneous relation types by giving the *worse-
    trained* relation a larger share of the next training round.  Here
    the signal is the per-view skip-gram loss the observability registry
    already records (``single_view/<edge_type>/loss``): after every
    epoch, each trainer's ``walk_scale`` — the multiplier on its next
    corpus's per-node walk counts — is set to
    ``clip((loss / mean_loss) ** strength, min_scale, max_scale)``.
    Views lagging behind the mean loss sample more walks (a bigger share
    of the alternating round); views ahead sample fewer.

    The trainers only need two attributes: ``view.edge_type`` (the
    metric key) and a mutable ``walk_scale``
    (:class:`repro.core.single_view.SingleViewTrainer` has both, and
    checkpoints ``walk_scale`` so resumed runs keep their shares).
    Balancing is a no-op until at least two views have recorded a loss.
    """

    def __init__(
        self,
        trainers,
        strength: float = 1.0,
        min_scale: float = 0.25,
        max_scale: float = 4.0,
        prefix: str = "single_view",
    ) -> None:
        if strength < 0:
            raise ValueError(f"strength must be >= 0, got {strength}")
        if not 0 < min_scale <= 1 <= max_scale:
            raise ValueError(
                "need 0 < min_scale <= 1 <= max_scale, got "
                f"{min_scale}, {max_scale}"
            )
        self.trainers = list(trainers)
        self.strength = strength
        self.min_scale = min_scale
        self.max_scale = max_scale
        self.prefix = prefix

    def _latest_losses(self, metrics) -> dict[str, float]:
        losses: dict[str, float] = {}
        for trainer in self.trainers:
            key = f"{self.prefix}/{trainer.view.edge_type}/loss"
            series = metrics.series_values(key)
            if series:
                losses[trainer.view.edge_type] = float(series[-1])
        return losses

    def on_epoch_end(self, loop, epoch, logs) -> None:
        metrics = _loop_metrics(loop)
        losses = self._latest_losses(metrics)
        if len(losses) < 2:
            return
        mean = sum(losses.values()) / len(losses)
        if mean <= 0:
            return
        for trainer in self.trainers:
            loss = losses.get(trainer.view.edge_type)
            if loss is None or loss <= 0:
                continue
            scale = (loss / mean) ** self.strength
            trainer.walk_scale = min(
                max(scale, self.min_scale), self.max_scale
            )
            metrics.gauge(
                f"balance/{trainer.view.edge_type}/walk_scale",
                trainer.walk_scale,
            )
