"""Hooks observing and steering a :class:`repro.engine.loop.TrainingLoop`.

A callback receives every lifecycle event of a run:

    on_train_begin
      on_epoch_begin
        on_phase_begin . (on_batch_end)* . on_phase_end     per phase
      on_epoch_end
    on_train_end

All hooks are no-ops on the base class, so subclasses override only what
they need.  Callbacks may call ``loop.request_stop()`` (early stopping) or
mutate phase attributes such as ``lr`` (scheduling) — the loop checks the
stop flag between epochs.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.engine.loop import Phase, TrainingLoop

EpochLogs = dict[str, dict[str, float]]  # phase name -> named losses


class Callback:
    """Base class: every hook is a no-op."""

    def on_train_begin(self, loop: "TrainingLoop") -> None: ...

    def on_epoch_begin(self, loop: "TrainingLoop", epoch: int) -> None: ...

    def on_phase_begin(
        self, loop: "TrainingLoop", epoch: int, phase: "Phase"
    ) -> None: ...

    def on_batch_end(
        self,
        loop: "TrainingLoop",
        epoch: int,
        phase: "Phase",
        batch_index: int,
        loss: float,
    ) -> None: ...

    def on_phase_end(
        self,
        loop: "TrainingLoop",
        epoch: int,
        phase: "Phase",
        losses: dict[str, float],
    ) -> None: ...

    def on_epoch_end(
        self, loop: "TrainingLoop", epoch: int, logs: EpochLogs
    ) -> None: ...

    def on_train_end(self, loop: "TrainingLoop") -> None: ...


class LossHistory(Callback):
    """Records each phase's named losses for every epoch.

    ``history[phase_name]`` is a list with one ``{loss_name: value}`` dict
    per epoch (empty dicts mark epochs where the phase reported nothing,
    e.g. a cross-view step that found no trainable paths).
    """

    def __init__(self) -> None:
        self.history: dict[str, list[dict[str, float]]] = {}

    def on_phase_end(self, loop, epoch, phase, losses) -> None:
        self.history.setdefault(phase.name, []).append(dict(losses))

    def series(self, phase_name: str, loss_name: str = "loss") -> list[float]:
        """One loss as a flat series, skipping epochs that lack it."""
        return [
            entry[loss_name]
            for entry in self.history.get(phase_name, [])
            if loss_name in entry
        ]


class PhaseTimer(Callback):
    """Wall-clock accounting per phase (and per epoch).

    ``totals[phase_name]`` is the cumulative seconds spent inside the
    phase; ``epochs[phase_name]`` the per-epoch durations.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self._started: dict[str, float] = {}
        self.totals: dict[str, float] = {}
        self.epochs: dict[str, list[float]] = {}

    def on_phase_begin(self, loop, epoch, phase) -> None:
        self._started[phase.name] = self._clock()

    def on_phase_end(self, loop, epoch, phase, losses) -> None:
        elapsed = self._clock() - self._started.pop(phase.name)
        self.totals[phase.name] = self.totals.get(phase.name, 0.0) + elapsed
        self.epochs.setdefault(phase.name, []).append(elapsed)


class EarlyStopping(Callback):
    """Stop the run once a monitored loss stops improving.

    Args:
        phase: name of the phase to monitor.
        loss: name of the loss within that phase (default ``"loss"``).
        patience: epochs without sufficient improvement tolerated before
            stopping.
        min_delta: the minimum decrease that counts as an improvement.

    Epochs where the monitored loss is absent (phase reported nothing) are
    ignored entirely — they neither reset nor consume patience.
    """

    def __init__(
        self,
        phase: str,
        loss: str = "loss",
        patience: int = 3,
        min_delta: float = 0.0,
    ) -> None:
        if patience < 1:
            raise ValueError(f"patience must be >= 1, got {patience}")
        if min_delta < 0:
            raise ValueError(f"min_delta must be >= 0, got {min_delta}")
        self.phase = phase
        self.loss = loss
        self.patience = patience
        self.min_delta = min_delta
        self.best: float | None = None
        self.stale_epochs = 0
        self.stopped_epoch: int | None = None

    def on_train_begin(self, loop) -> None:
        self.best = None
        self.stale_epochs = 0
        self.stopped_epoch = None

    def on_epoch_end(self, loop, epoch, logs) -> None:
        value = logs.get(self.phase, {}).get(self.loss)
        if value is None:
            return
        if self.best is None or value < self.best - self.min_delta:
            self.best = value
            self.stale_epochs = 0
            return
        self.stale_epochs += 1
        if self.stale_epochs >= self.patience:
            self.stopped_epoch = epoch
            loop.request_stop()


class LinearLRDecay(Callback):
    """word2vec-style linear learning-rate decay over the run.

    Sets ``phase.lr`` at the start of every epoch, interpolating from
    ``start_lr`` (first epoch) down to ``end_lr`` (last scheduled epoch).
    Applies to every phase in ``phases`` that has an ``lr`` attribute.
    """

    def __init__(
        self,
        phases: list[str] | None,
        start_lr: float,
        end_lr: float,
        num_epochs: int,
    ) -> None:
        if num_epochs < 1:
            raise ValueError(f"num_epochs must be >= 1, got {num_epochs}")
        if start_lr <= 0 or end_lr <= 0:
            raise ValueError("learning rates must be positive")
        self.phases = None if phases is None else set(phases)
        self.start_lr = start_lr
        self.end_lr = end_lr
        self.num_epochs = num_epochs

    def lr_at(self, epoch: int) -> float:
        if self.num_epochs == 1:
            return self.start_lr
        frac = min(epoch, self.num_epochs - 1) / (self.num_epochs - 1)
        return self.start_lr + frac * (self.end_lr - self.start_lr)

    def on_epoch_begin(self, loop, epoch) -> None:
        lr = self.lr_at(epoch)
        for phase in loop.phases:
            if self.phases is not None and phase.name not in self.phases:
                continue
            if hasattr(phase, "lr"):
                phase.lr = lr


class ProgressReporter(Callback):
    """Prints one line per epoch with every phase's losses and duration.

    Example output::

        [epoch 3/10] single_view loss=1.2345 | cross_view translation=0.41
        reconstruction=0.22 | 0.83s
    """

    def __init__(self, print_fn: Callable[[str], None] = print) -> None:
        self.print_fn = print_fn
        self._timer = PhaseTimer()
        self._num_epochs = 0

    def on_train_begin(self, loop) -> None:
        self._num_epochs = loop.num_epochs

    def on_phase_begin(self, loop, epoch, phase) -> None:
        self._timer.on_phase_begin(loop, epoch, phase)

    def on_phase_end(self, loop, epoch, phase, losses) -> None:
        self._timer.on_phase_end(loop, epoch, phase, losses)

    def on_epoch_end(self, loop, epoch, logs) -> None:
        parts = []
        elapsed = 0.0
        for phase in loop.phases:
            losses = logs.get(phase.name, {})
            rendered = " ".join(
                f"{name}={value:.4f}" for name, value in losses.items()
            )
            parts.append(f"{phase.name} {rendered}".rstrip())
            durations = self._timer.epochs.get(phase.name, [])
            if durations:
                elapsed += durations[-1]
        self.print_fn(
            f"[epoch {epoch + 1}/{self._num_epochs}] "
            + " | ".join(parts)
            + f" | {elapsed:.2f}s"
        )
