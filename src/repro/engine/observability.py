"""Metrics, tracing, and structured run reports for the training engine.

Three cooperating pieces give every run a structured, serializable record
of what happened (see ``docs/observability.md`` for the full schema):

- :class:`MetricsRegistry` — named **counters** (monotonic totals),
  **gauges** (last-written values), **timers** (duration aggregates), and
  **series** (scalar streams such as per-epoch losses).  Series keep full
  lossless aggregates (count/total/min/max/last) but only a bounded tail
  of raw points, so a million-epoch run cannot exhaust memory; discrete
  **events** (checkpoint saves, health incidents) land in a bounded log.
- :class:`Tracer` — hierarchical wall-clock spans
  (run → epoch → phase → step-group) with optional ``tracemalloc`` memory
  peaks, mirroring how Algorithm 1 nests its alternating phases.
- :class:`RunReport` — bundles a registry snapshot, the span tree, and
  caller metadata into one versioned JSON document, written atomically
  with the same tmp + fsync + ``os.replace`` pattern as
  :mod:`repro.graph.io`.

The whole layer is **zero-cost when disabled**: the :data:`NULL_REGISTRY`
/ :data:`NULL_TRACER` singletons (a :class:`NullRegistry` and
:class:`NullTracer`) implement the same interface as no-ops, and every
instrumented hot path guards real work behind ``metrics.enabled``.  No
part of this module ever touches an RNG, so enabling it cannot change a
training trajectory — the determinism goldens in
``tests/core/test_determinism.py`` pin that.
"""

from __future__ import annotations

import json
import math
import threading
import time
import tracemalloc
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator

from repro.graph.io import atomic_writer

REPORT_FORMAT = "repro-run-report"
REPORT_VERSION = 1


class _Series:
    """One scalar stream: lossless aggregates + a bounded tail of points."""

    __slots__ = ("count", "total", "min", "max", "last", "tail")

    def __init__(self, max_points: int) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.last = 0.0
        self.tail: deque[float] = deque(maxlen=max_points)

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.last = value
        self.tail.append(value)

    def to_dict(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "last": self.last,
            "mean": self.total / self.count,
            # index of the first retained point, so a truncated tail is
            # still positioned correctly on the epoch axis
            "tail_start": self.count - len(self.tail),
            "tail": list(self.tail),
        }


class _Timer:
    """Duration aggregates of one named timed section (no raw samples)."""

    __slots__ = ("count", "total_s", "min_s", "max_s")

    def __init__(self) -> None:
        self.count = 0
        self.total_s = 0.0
        self.min_s = math.inf
        self.max_s = -math.inf

    def add(self, seconds: float) -> None:
        self.count += 1
        self.total_s += seconds
        if seconds < self.min_s:
            self.min_s = seconds
        if seconds > self.max_s:
            self.max_s = seconds

    def to_dict(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "total_s": self.total_s,
            "min_s": self.min_s,
            "max_s": self.max_s,
            "mean_s": self.total_s / self.count,
        }


class MetricsRegistry:
    """Counters, gauges, timers, bounded series, and a bounded event log.

    Args:
        max_series_points: raw points retained per series (aggregates are
            always exact over the full stream).
        max_events: events retained; later events are counted but dropped.

    Check :attr:`enabled` before computing anything expensive purely for
    metrics (gradient norms, uniqueness fractions) — the
    :class:`NullRegistry` reports ``enabled = False`` so instrumented
    code can skip that work entirely when nobody is observing.

    All record operations are thread-safe (one registry lock around each
    dict mutation): the parallel execution layer reports per-worker
    timers, prefetch gauges, and per-pair cross-view metrics from
    concurrent threads into one registry.
    """

    enabled = True

    def __init__(
        self, max_series_points: int = 512, max_events: int = 1024
    ) -> None:
        if max_series_points < 1:
            raise ValueError(
                f"max_series_points must be >= 1, got {max_series_points}"
            )
        if max_events < 1:
            raise ValueError(f"max_events must be >= 1, got {max_events}")
        self.max_series_points = max_series_points
        self.max_events = max_events
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self._series: dict[str, _Series] = {}
        self._timers: dict[str, _Timer] = {}
        self.events: list[dict[str, Any]] = []
        self.dropped_events = 0
        self._event_seq = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def counter(self, name: str, amount: float = 1.0) -> None:
        """Add ``amount`` (default 1) to the monotonic counter ``name``."""
        with self._lock:
            self.counters[name] = self.counters.get(name, 0.0) + amount

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to its latest ``value``."""
        with self._lock:
            self.gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Append ``value`` to the bounded series ``name``."""
        with self._lock:
            series = self._series.get(name)
            if series is None:
                series = self._series[name] = _Series(self.max_series_points)
            series.add(float(value))

    @contextmanager
    def timer(
        self, name: str, clock: Callable[[], float] = time.perf_counter
    ) -> Iterator[None]:
        """Time a ``with`` block into the duration aggregate ``name``."""
        start = clock()
        try:
            yield
        finally:
            elapsed = clock() - start
            self.record_seconds(name, elapsed)

    def record_seconds(self, name: str, seconds: float) -> None:
        """Fold an externally measured duration into timer ``name``.

        The parallel layer measures work inside pool processes and
        reports the elapsed seconds back; this folds them into the same
        aggregates :meth:`timer` feeds.
        """
        with self._lock:
            stat = self._timers.get(name)
            if stat is None:
                stat = self._timers[name] = _Timer()
            stat.add(seconds)

    def event(self, kind: str, message: str = "", **data: Any) -> None:
        """Record a discrete event (bounded log; extras only counted)."""
        with self._lock:
            if len(self.events) >= self.max_events:
                self.dropped_events += 1
                self._event_seq += 1
                return
            self.events.append(
                {
                    "seq": self._event_seq,
                    "kind": kind,
                    "message": message,
                    "data": data,
                }
            )
            self._event_seq += 1

    def incident(self, name: str, message: str = "", **data: Any) -> None:
        """Record a fault-tolerance incident: counter ``name`` + event.

        One call covers both views the run report offers on a handled
        failure — the monotonic total (``counters[name]``) and the
        bounded narrative entry (``events`` with ``kind=name``), so
        degradation paths cannot bump one and forget the other.
        """
        self.counter(name, 1.0)
        self.event(name, message, **data)

    def series_values(self, name: str) -> list[float]:
        """The retained tail of series ``name`` ([] when absent)."""
        series = self._series.get(name)
        return [] if series is None else list(series.tail)

    def series_names(self) -> list[str]:
        return sorted(self._series)

    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """Everything recorded so far, as a JSON-serializable dict.

        Taken under the registry lock so a snapshot during an active
        parallel phase never sees a half-updated timer or series.
        """
        with self._lock:
            return self._snapshot_locked()

    def _snapshot_locked(self) -> dict[str, Any]:
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "series": {
                name: series.to_dict()
                for name, series in sorted(self._series.items())
            },
            "timers": {
                name: stat.to_dict()
                for name, stat in sorted(self._timers.items())
            },
            "events": [dict(event) for event in self.events],
            "dropped_events": self.dropped_events,
        }


class _NullContext:
    """Reusable no-op context manager (shared, stateless)."""

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_CONTEXT = _NullContext()


class NullRegistry(MetricsRegistry):
    """The disabled registry: same interface, every method a no-op.

    ``enabled`` is ``False`` so instrumented code skips metric-only
    computation; :meth:`snapshot` reports an empty structure.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def counter(self, name: str, amount: float = 1.0) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def timer(
        self, name: str, clock: Callable[[], float] = time.perf_counter
    ) -> _NullContext:
        return _NULL_CONTEXT

    def event(self, kind: str, message: str = "", **data: Any) -> None:
        pass

    def incident(self, name: str, message: str = "", **data: Any) -> None:
        pass


NULL_REGISTRY = NullRegistry()


@dataclass
class Span:
    """One node of the trace tree.

    ``duration_s`` is filled when the span closes; ``memory_peak_bytes``
    only when the owning tracer runs with ``trace_memory=True`` (the peak
    covers the span's whole lifetime, children included).
    """

    name: str
    kind: str = "custom"
    attributes: dict[str, Any] = field(default_factory=dict)
    duration_s: float | None = None
    memory_peak_bytes: int | None = None
    children: list["Span"] = field(default_factory=list)
    _child_peak: int = field(default=0, repr=False)

    def to_dict(self) -> dict[str, Any]:
        entry: dict[str, Any] = {
            "name": self.name,
            "kind": self.kind,
            "duration_s": self.duration_s,
        }
        if self.attributes:
            entry["attributes"] = dict(self.attributes)
        if self.memory_peak_bytes is not None:
            entry["memory_peak_bytes"] = self.memory_peak_bytes
        if self.children:
            entry["children"] = [child.to_dict() for child in self.children]
        return entry


class Tracer:
    """Hierarchical wall-clock spans with optional ``tracemalloc`` peaks.

    Args:
        trace_memory: record each span's peak traced allocation.  Starts
            ``tracemalloc`` if it is not already running (and
            :meth:`close` stops it again in that case); tracing roughly
            doubles allocation cost, so this is strictly opt-in.
        clock: injectable monotonic clock (tests).
        max_spans: cap on recorded spans; once reached, further ``span``
            calls still time nothing and record nothing (the drop is
            counted), so runaway loops cannot exhaust memory.
    """

    def __init__(
        self,
        trace_memory: bool = False,
        clock: Callable[[], float] = time.perf_counter,
        max_spans: int = 100_000,
    ) -> None:
        if max_spans < 1:
            raise ValueError(f"max_spans must be >= 1, got {max_spans}")
        self.trace_memory = trace_memory
        self._clock = clock
        self.max_spans = max_spans
        self.roots: list[Span] = []
        self._stack: list[Span] = []
        self._span_count = 0
        self.dropped_spans = 0
        self._started_tracemalloc = False
        if trace_memory and not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_tracemalloc = True

    enabled = True

    @contextmanager
    def span(
        self, name: str, kind: str = "custom", **attributes: Any
    ) -> Iterator[Span | None]:
        """Open a child span of the innermost active span (or a root)."""
        if self._span_count >= self.max_spans:
            self.dropped_spans += 1
            yield None
            return
        self._span_count += 1
        node = Span(name=name, kind=kind, attributes=dict(attributes))
        if self._stack:
            self._stack[-1].children.append(node)
        else:
            self.roots.append(node)
        self._stack.append(node)
        measure_memory = self.trace_memory and tracemalloc.is_tracing()
        if measure_memory:
            tracemalloc.reset_peak()
        start = self._clock()
        try:
            yield node
        finally:
            node.duration_s = self._clock() - start
            self._stack.pop()
            if measure_memory:
                # the global peak since the last reset covers this span's
                # own segment; fold in peaks already closed by children,
                # then reset so the parent's remaining segments are
                # measured on their own
                segment_peak = tracemalloc.get_traced_memory()[1]
                node.memory_peak_bytes = max(segment_peak, node._child_peak)
                tracemalloc.reset_peak()
                if self._stack:
                    parent = self._stack[-1]
                    parent._child_peak = max(
                        parent._child_peak, node.memory_peak_bytes
                    )

    def close(self) -> None:
        """Stop ``tracemalloc`` if this tracer started it (idempotent)."""
        if self._started_tracemalloc and tracemalloc.is_tracing():
            tracemalloc.stop()
        self._started_tracemalloc = False

    def to_dict(self) -> dict[str, Any]:
        return {
            "trace_memory": self.trace_memory,
            "spans": [root.to_dict() for root in self.roots],
            "dropped_spans": self.dropped_spans,
        }


class NullTracer(Tracer):
    """The disabled tracer: ``span`` yields ``None`` and records nothing."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(trace_memory=False)

    @contextmanager
    def span(
        self, name: str, kind: str = "custom", **attributes: Any
    ) -> Iterator[None]:
        yield None

    def close(self) -> None:
        pass


NULL_TRACER = NullTracer()


class RunReport:
    """A versioned JSON document bundling metrics, trace, and metadata.

    The document layout (``docs/observability.md`` documents every
    field)::

        {
          "format": "repro-run-report",
          "version": 1,
          "created_unix": <wall-clock seconds>,
          "metadata": {...caller-supplied...},
          "metrics": <MetricsRegistry.snapshot()>,
          "trace": <Tracer.to_dict()> | null
        }
    """

    def __init__(
        self,
        metrics: MetricsRegistry,
        tracer: Tracer | None = None,
        metadata: dict[str, Any] | None = None,
    ) -> None:
        self.metrics = metrics
        self.tracer = tracer
        self.metadata = dict(metadata or {})

    def to_dict(self) -> dict[str, Any]:
        return {
            "format": REPORT_FORMAT,
            "version": REPORT_VERSION,
            "created_unix": time.time(),
            "metadata": dict(self.metadata),
            "metrics": self.metrics.snapshot(),
            "trace": None if self.tracer is None else self.tracer.to_dict(),
        }

    def write(self, path: str | Path) -> Path:
        """Atomically serialize the report to ``path`` (JSON, indented)."""
        path = Path(path)
        document = self.to_dict()
        with atomic_writer(path) as handle:
            json.dump(document, handle, indent=2, allow_nan=True)
            handle.write("\n")
        return path


def load_report(path: str | Path) -> dict[str, Any]:
    """Read and validate a report written by :meth:`RunReport.write`.

    Raises:
        ValueError: naming ``path`` and the problem — unparseable JSON,
            wrong ``format`` marker, or a future ``version``.
    """
    path = Path(path)
    try:
        document = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: not valid JSON: {exc}") from exc
    if not isinstance(document, dict) or document.get("format") != REPORT_FORMAT:
        raise ValueError(
            f"{path}: not a run report (missing format marker "
            f"{REPORT_FORMAT!r})"
        )
    version = document.get("version")
    if not isinstance(version, int) or version > REPORT_VERSION:
        raise ValueError(
            f"{path}: unsupported report version {version!r} (this build "
            f"reads <= {REPORT_VERSION})"
        )
    return document
