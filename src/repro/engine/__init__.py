"""The unified training engine.

Every trainer in this repository — TransN's Algorithm 1 and all
skip-gram-with-negative-sampling baselines — builds its training loop from
the same three pieces:

- a batch **pipeline** (:class:`CorpusPipeline` for walk corpora,
  :class:`EdgeSamplingPipeline` for LINE-style edge draws) streaming
  (center, context, negatives) minibatches with a reusable noise table;
- **phases** (:class:`SkipGramPhase`, :class:`CallablePhase`) — named
  per-epoch units of work;
- a :class:`TrainingLoop` running the phases under a callback system
  (:class:`LossHistory`, :class:`PhaseTimer`, :class:`EarlyStopping`,
  :class:`LinearLRDecay`, :class:`ProgressReporter`).

This is the seam where instrumentation, scheduling, and future
parallelism/observability work plug in once and apply to every method.
"""

from repro.engine.callbacks import (
    Callback,
    EarlyStopping,
    LinearLRDecay,
    LossHistory,
    PhaseTimer,
    ProgressReporter,
)
from repro.engine.loop import (
    CallablePhase,
    LoopResult,
    Phase,
    SkipGramPhase,
    TrainingLoop,
)
from repro.engine.pipeline import (
    BatchSource,
    CorpusPipeline,
    EdgeSamplingPipeline,
    SkipGramBatch,
)

__all__ = [
    "BatchSource",
    "Callback",
    "CallablePhase",
    "CorpusPipeline",
    "EarlyStopping",
    "EdgeSamplingPipeline",
    "LinearLRDecay",
    "LoopResult",
    "LossHistory",
    "Phase",
    "PhaseTimer",
    "ProgressReporter",
    "SkipGramBatch",
    "SkipGramPhase",
    "TrainingLoop",
]
