"""The unified training engine.

Every trainer in this repository — TransN's Algorithm 1 and all
skip-gram-with-negative-sampling baselines — builds its training loop from
the same three pieces:

- a batch **pipeline** (:class:`CorpusPipeline` for walk corpora,
  :class:`EdgeSamplingPipeline` for LINE-style edge draws) streaming
  (center, context, negatives) minibatches with a reusable noise table;
- **phases** (:class:`SkipGramPhase`, :class:`CallablePhase`) — named
  per-epoch units of work;
- a :class:`TrainingLoop` running the phases under a callback system
  (:class:`LossHistory`, :class:`PhaseTimer`, :class:`EarlyStopping`,
  :class:`LinearLRDecay`, :class:`ProgressReporter`);
- a **fault-tolerance layer** (see ``docs/fault_tolerance.md``): the
  :class:`CheckpointManager` writes atomic, checksummed, rotated
  snapshots of any :class:`TrainingState`; the :class:`Checkpointer`
  callback persists them on an epoch cadence; ``TrainingLoop.resume``
  continues an interrupted run bit-exactly; and the
  :class:`NumericalHealthGuard` catches NaN/Inf losses and loss
  explosions with a raise/rollback/skip policy;
- an **observability layer** (see ``docs/observability.md``): the
  :class:`MetricsRegistry` collects counters/gauges/timers/bounded
  series, the :class:`Tracer` records run → epoch → phase spans with
  optional memory peaks, and a :class:`RunReport` serializes both to a
  versioned JSON file — all zero-cost via the :data:`NULL_REGISTRY` /
  :data:`NULL_TRACER` no-op singletons when nothing asks for a report.

This is the seam where instrumentation, scheduling, and future
parallelism work plug in once and apply to every method.
"""

from repro.engine.callbacks import (
    Callback,
    Checkpointer,
    EarlyStopping,
    LinearLRDecay,
    LossHistory,
    NumericalHealthError,
    NumericalHealthGuard,
    PhaseTimer,
    ProgressReporter,
    RelationBalancer,
)
from repro.engine.checkpoint import (
    Checkpoint,
    CheckpointError,
    CheckpointManager,
    TrainingState,
    dump_state,
    load_state,
    non_finite_entries,
)
from repro.engine.loop import (
    CallablePhase,
    LoopResult,
    Phase,
    SkipGramPhase,
    TrainingLoop,
)
from repro.engine.observability import (
    NULL_REGISTRY,
    NULL_TRACER,
    MetricsRegistry,
    NullRegistry,
    NullTracer,
    RunReport,
    Span,
    Tracer,
    load_report,
)
from repro.engine.pipeline import (
    BatchSource,
    CorpusPipeline,
    EdgeSamplingPipeline,
    SkipGramBatch,
)

__all__ = [
    "BatchSource",
    "Callback",
    "CallablePhase",
    "Checkpoint",
    "CheckpointError",
    "CheckpointManager",
    "Checkpointer",
    "CorpusPipeline",
    "EarlyStopping",
    "EdgeSamplingPipeline",
    "LinearLRDecay",
    "LoopResult",
    "LossHistory",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "NullRegistry",
    "NullTracer",
    "NumericalHealthError",
    "NumericalHealthGuard",
    "Phase",
    "PhaseTimer",
    "ProgressReporter",
    "RelationBalancer",
    "RunReport",
    "SkipGramBatch",
    "SkipGramPhase",
    "Span",
    "Tracer",
    "TrainingLoop",
    "TrainingState",
    "dump_state",
    "load_report",
    "load_state",
    "non_finite_entries",
]
