"""The unified training engine.

Every trainer in this repository — TransN's Algorithm 1 and all
skip-gram-with-negative-sampling baselines — builds its training loop from
the same three pieces:

- a batch **pipeline** (:class:`CorpusPipeline` for walk corpora,
  :class:`EdgeSamplingPipeline` for LINE-style edge draws) streaming
  (center, context, negatives) minibatches with a reusable noise table;
- **phases** (:class:`SkipGramPhase`, :class:`CallablePhase`) — named
  per-epoch units of work;
- a :class:`TrainingLoop` running the phases under a callback system
  (:class:`LossHistory`, :class:`PhaseTimer`, :class:`EarlyStopping`,
  :class:`LinearLRDecay`, :class:`ProgressReporter`);
- a **fault-tolerance layer** (see ``docs/fault_tolerance.md``): the
  :class:`CheckpointManager` writes atomic, checksummed, rotated
  snapshots of any :class:`TrainingState`; the :class:`Checkpointer`
  callback persists them on an epoch cadence; ``TrainingLoop.resume``
  continues an interrupted run bit-exactly; and the
  :class:`NumericalHealthGuard` catches NaN/Inf losses and loss
  explosions with a raise/rollback/skip policy;
- an **observability layer** (see ``docs/observability.md``): the
  :class:`MetricsRegistry` collects counters/gauges/timers/bounded
  series, the :class:`Tracer` records run → epoch → phase spans with
  optional memory peaks, and a :class:`RunReport` serializes both to a
  versioned JSON file — all zero-cost via the :data:`NULL_REGISTRY` /
  :data:`NULL_TRACER` no-op singletons when nothing asks for a report.

- a **fault-injection harness** (:mod:`repro.engine.faults`): the
  :class:`FaultInjector` deterministically arms named fault points
  (worker crashes/hangs, spill bit rot, checkpoint write errors) so
  chaos tests and ``--chaos`` runs can prove the hardening below
  actually preserves bit-identical results;

- a **parallel layer** (see ``docs/parallelism.md``): the
  :class:`ParallelRuntime` fans corpus generation across a process pool
  over shared-memory CSR arrays (:class:`SharedCSR`), trains
  view-disjoint cross-view pairs concurrently (:func:`conflict_waves`),
  and overlaps next-epoch sampling with training
  (:class:`PrefetchingSampler`) — all behind the same
  :class:`BatchSource` protocol, with ``workers=0`` bit-identical to
  the serial path.

This is the seam where instrumentation, scheduling, and parallelism
plug in once and apply to every method.
"""

from repro.engine.callbacks import (
    Callback,
    Checkpointer,
    EarlyStopping,
    LinearLRDecay,
    LossHistory,
    NumericalHealthError,
    NumericalHealthGuard,
    PhaseTimer,
    ProgressReporter,
    RelationBalancer,
)
from repro.engine.checkpoint import (
    Checkpoint,
    CheckpointError,
    CheckpointManager,
    TrainingState,
    dump_state,
    load_state,
    non_finite_entries,
)
from repro.engine.faults import (
    FAULT_POINTS,
    FaultInjected,
    FaultInjector,
    activate,
    get_active,
    scoped,
)
from repro.engine.loop import (
    CallablePhase,
    LoopResult,
    Phase,
    SkipGramPhase,
    TrainingLoop,
)
from repro.engine.observability import (
    NULL_REGISTRY,
    NULL_TRACER,
    MetricsRegistry,
    NullRegistry,
    NullTracer,
    RunReport,
    Span,
    Tracer,
    load_report,
)
from repro.engine.parallel import (
    CROSS_VIEW_TAG,
    SINGLE_VIEW_TAG,
    ParallelRuntime,
    PrefetchingSampler,
    SharedCSR,
    SharedCSRSpec,
    attach_shared_csr,
    conflict_waves,
    pair_rng,
    single_view_seed,
)
from repro.engine.pipeline import (
    BatchSource,
    CorpusPipeline,
    EdgeSamplingPipeline,
    SkipGramBatch,
    StreamingCorpusPipeline,
    block_walks_for_budget,
)

__all__ = [
    "BatchSource",
    "CROSS_VIEW_TAG",
    "Callback",
    "CallablePhase",
    "Checkpoint",
    "CheckpointError",
    "CheckpointManager",
    "Checkpointer",
    "CorpusPipeline",
    "EarlyStopping",
    "EdgeSamplingPipeline",
    "FAULT_POINTS",
    "FaultInjected",
    "FaultInjector",
    "LinearLRDecay",
    "LoopResult",
    "LossHistory",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "NullRegistry",
    "NullTracer",
    "NumericalHealthError",
    "NumericalHealthGuard",
    "ParallelRuntime",
    "Phase",
    "PhaseTimer",
    "PrefetchingSampler",
    "ProgressReporter",
    "RelationBalancer",
    "RunReport",
    "SINGLE_VIEW_TAG",
    "SharedCSR",
    "SharedCSRSpec",
    "SkipGramBatch",
    "StreamingCorpusPipeline",
    "block_walks_for_budget",
    "SkipGramPhase",
    "Span",
    "Tracer",
    "TrainingLoop",
    "TrainingState",
    "activate",
    "attach_shared_csr",
    "conflict_waves",
    "dump_state",
    "get_active",
    "load_report",
    "load_state",
    "non_finite_entries",
    "pair_rng",
    "scoped",
    "single_view_seed",
]
