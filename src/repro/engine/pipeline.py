"""Streaming (center, context, negatives) batch sources.

Every skip-gram-style trainer in this repository — TransN's single-view
algorithm and the five SGNS baselines — consumes the same kind of data:
minibatches of positive (center, context) index pairs with ``m`` negative
indices per pair.  The pipelines here own the full walk→pairs→negatives
(or edge-sample→negatives) chain so trainers only ever see
:class:`SkipGramBatch` objects:

- :class:`CorpusPipeline` — samples a fresh walk corpus per epoch, extracts
  Definition-6 context pairs, and draws negatives from a unigram^0.75
  noise table built once from the first corpus and reused afterwards.
  Corpora are index-space matrices (:class:`repro.walks.WalkCorpus`), so
  pair extraction and noise counts are array operations — nothing between
  walk sampling and the yielded batches leaves NumPy.
- :class:`StreamingCorpusPipeline` — the out-of-core twin: consumes
  fixed-size walk *blocks* (:func:`repro.walks.corpus.stream_corpus`)
  and turns each into batches on the fly under a hard peak-memory
  budget, with the noise table accumulated incrementally from block
  frequency counts during the first epoch and frozen afterwards.
- :class:`EdgeSamplingPipeline` — LINE-style edge sampling: positives are
  weight-proportional edge draws, negatives come from the degree^0.75
  distribution.

All expose ``epoch() -> Iterator[SkipGramBatch]`` (the
:class:`BatchSource` protocol), which is what
:class:`repro.engine.loop.SkipGramPhase` consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Protocol

import numpy as np

from repro.engine.observability import NULL_REGISTRY, MetricsRegistry
from repro.graph.alias import AliasSampler
from repro.graph.csr import csr_adjacency
from repro.graph.heterograph import HeteroGraph
from repro.skipgram import NoiseDistribution
from repro.walks.corpus import WalkCorpus, extract_index_pairs


@dataclass
class SkipGramBatch:
    """One SGNS minibatch in dense-index space.

    Attributes:
        centers: int array (B,) of center indices.
        contexts: int array (B,) of positive context indices.
        negatives: int array (B, m) of negative indices.
    """

    centers: np.ndarray
    contexts: np.ndarray
    negatives: np.ndarray

    def __len__(self) -> int:
        return int(self.centers.shape[0])


class BatchSource(Protocol):
    """Anything that can stream one epoch of SGNS batches."""

    def epoch(self) -> Iterator[SkipGramBatch]: ...


class CorpusPipeline:
    """Walk corpus → context pairs → negative-sampled minibatches.

    Args:
        sample_corpus: zero-argument callable producing a fresh
            :class:`WalkCorpus` (walker draws happen inside it, so the
            caller controls the walk policy and RNG).  The corpus matrix
            must be in the index space of the trained matrix.
        num_nodes: number of rows of the trained matrix.
        window: Definition-6 context window for pair extraction.
        num_negatives: negatives drawn per positive pair.
        batch_size: pairs per yielded batch.
        rng: generator used for the negative draws.
        noise_power: exponent of the noise distribution (word2vec: 0.75).

    The noise table is built from the *first* sampled corpus and cached:
    corpus frequencies are stable enough across epochs that rebuilding the
    table would only add cost (this mirrors the behaviour every trainer in
    the repo had before the engine existed, keeping training bit-for-bit
    reproducible across the refactor).
    """

    def __init__(
        self,
        sample_corpus: Callable[[], WalkCorpus],
        num_nodes: int,
        window: int,
        num_negatives: int = 5,
        batch_size: int = 128,
        rng: np.random.Generator | None = None,
        noise_power: float = 0.75,
    ) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if num_negatives < 1:
            raise ValueError(
                f"num_negatives must be >= 1, got {num_negatives}"
            )
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.sample_corpus = sample_corpus
        self.num_nodes = num_nodes
        self.window = window
        self.num_negatives = num_negatives
        self.batch_size = batch_size
        self.rng = rng or np.random.default_rng()
        self.noise_power = noise_power
        self._noise: NoiseDistribution | None = None
        self.metrics: MetricsRegistry = NULL_REGISTRY
        self.metric_prefix = "pipeline/"

    # ------------------------------------------------------------------
    @classmethod
    def for_policy(
        cls,
        view_or_graph,
        policy,
        *,
        length: int,
        window: int,
        floor: int = 10,
        cap: int = 32,
        walks_per_node: int | None = None,
        num_negatives: int = 5,
        batch_size: int = 128,
        rng: np.random.Generator | None = None,
        noise_power: float = 0.75,
    ) -> "CorpusPipeline":
        """A pipeline walking ``view_or_graph`` with a :class:`WalkPolicy`.

        The one-stop construction path for policy-driven SGNS training:
        the policy is mounted on a lockstep engine sharing ``rng`` with
        the negative draws, and each epoch samples a fresh corpus under
        the degree-based count policy (or a fixed ``walks_per_node``).
        Policies with restricted starts (metapath) only walk from their
        admissible nodes.
        """
        from repro.walks.batched import LockstepWalker
        from repro.walks.corpus import build_corpus

        rng = rng or np.random.default_rng()
        graph = getattr(view_or_graph, "graph", view_or_graph)
        engine = LockstepWalker(view_or_graph, policy, rng=rng)
        return cls(
            sample_corpus=lambda: build_corpus(
                view_or_graph,
                engine,
                length=length,
                floor=floor,
                cap=cap,
                walks_per_node_override=walks_per_node,
                rng=rng,
            ),
            num_nodes=graph.num_nodes,
            window=window,
            num_negatives=num_negatives,
            batch_size=batch_size,
            rng=rng,
            noise_power=noise_power,
        )

    # ------------------------------------------------------------------
    def pairs(self, corpus: WalkCorpus) -> tuple[np.ndarray, np.ndarray]:
        """Flatten ``corpus`` into (centers, contexts) index arrays."""
        return extract_index_pairs(corpus, self.window)

    def noise(self, corpus: WalkCorpus) -> NoiseDistribution:
        """The (cached) noise table, built on first use from ``corpus``."""
        if self._noise is None:
            self._noise = NoiseDistribution(
                corpus.frequency_counts(self.num_nodes),
                self.num_nodes,
                power=self.noise_power,
            )
        return self._noise

    # -- checkpoint protocol -------------------------------------------
    def state_dict(self) -> dict:
        """The pipeline's only mutable state: the cached noise table.

        The table is built from the *first* corpus and reused for the
        whole run, so a resumed run must restore it rather than rebuild
        from its own first (mid-training) corpus — otherwise every
        negative draw after the resume diverges from the uninterrupted
        run.  The raw counts are stored; alias-table construction is
        deterministic, so the rebuilt table is bit-identical.
        """
        return {
            "noise_counts": (
                None if self._noise is None else self._noise.counts.copy()
            ),
        }

    def load_state_dict(self, state: dict) -> None:
        counts = state["noise_counts"]
        if counts is None:
            self._noise = None
        else:
            self._noise = NoiseDistribution(
                counts, self.num_nodes, power=self.noise_power
            )

    def epoch(self) -> Iterator[SkipGramBatch]:
        """Sample one corpus and stream it as minibatches.

        The sampling timer measures the epoch's wait for its corpus —
        under the parallel layer's prefetch this is the *residual* cost
        after overlap (near zero on a hit), which is exactly what the
        scaling benchmarks need to attribute.
        """
        with self.metrics.timer(f"{self.metric_prefix}sampling_seconds"):
            corpus = self.sample_corpus()
        centers, contexts = self.pairs(corpus)
        if centers.size == 0:
            return
        noise = self.noise(corpus)
        for start in range(0, centers.size, self.batch_size):
            end = min(start + self.batch_size, centers.size)
            negatives = noise.sample(
                self.rng, size=(end - start) * self.num_negatives
            ).reshape(end - start, self.num_negatives)
            yield SkipGramBatch(
                centers=centers[start:end],
                contexts=contexts[start:end],
                negatives=negatives,
            )


def pairs_per_walk(length: int, window: int) -> int:
    """Upper bound on Definition-6 pairs one walk of ``length`` yields.

    A full-length walk produces ``length - d`` positions per offset
    ``d <= window``, each emitting both ``(i, i+d)`` directions.  Early
    terminations only shrink this, so the bound is safe for budgeting.
    """
    span = min(window, length - 1)
    return 2 * sum(length - d for d in range(1, span + 1))


def block_walks_for_budget(
    budget_bytes: int,
    length: int,
    window: int,
    num_negatives: int,
    batch_size: int,
    itemsize: int = 8,
) -> int:
    """Largest walk-block size whose data path fits ``budget_bytes``.

    Accounts for every array the streaming chain materializes per block,
    at its worst case (full-length walks, including transient copies):

    - the ``(walks, length)`` index matrix **twice** (walker output plus
      the shuffled copy :func:`repro.walks.corpus.stream_corpus` takes),
    - the int64 ``lengths`` vector twice (same shuffle) and the int64
      permutation order,
    - center/context pair arrays **twice** (the per-offset slices and
      their concatenation) plus one byte per pair for the validity
      masks,
    - one ``batch_size × num_negatives`` int64 negatives array (the only
      per-batch allocation).

    Raises:
        ValueError: if not even a single walk fits the budget.
    """
    if budget_bytes <= 0:
        raise ValueError(f"budget_bytes must be positive, got {budget_bytes}")
    if length < 2:
        raise ValueError(f"length must be >= 2, got {length}")
    pairs = pairs_per_walk(length, window)
    per_walk = (
        2 * length * itemsize  # matrix + shuffled copy
        + 2 * 8  # lengths + shuffled copy
        + 8  # permutation order
        + 4 * pairs * itemsize  # pair slices + concatenated copies
        + pairs  # boolean validity masks
    )
    fixed = batch_size * num_negatives * 8
    walks = (budget_bytes - fixed) // per_walk
    if walks < 1:
        raise ValueError(
            f"corpus budget of {budget_bytes} bytes cannot hold one walk "
            f"(needs {per_walk + fixed} bytes at length={length}, "
            f"window={window}, batch_size={batch_size})"
        )
    return int(walks)


class StreamingCorpusPipeline:
    """Bounded-memory twin of :class:`CorpusPipeline`: blocks, not corpora.

    Instead of materializing one epoch-sized corpus, each epoch consumes
    a stream of fixed-size walk blocks (each a small :class:`WalkCorpus`)
    and turns every block into batches immediately, so peak memory is
    proportional to the block size — not the graph.  Size blocks with
    :func:`block_walks_for_budget` to honour a byte budget; the pipeline
    then *enforces* it, raising if any block's measured data-path bytes
    exceed ``budget_bytes`` (tracked in :attr:`peak_block_bytes`).

    Noise-table semantics mirror the dense pipeline's "first corpus"
    contract at block granularity: during the first epoch the unigram
    counts accumulate block by block (the table is rebuilt from the
    running counts as needed), and after the first complete epoch the
    table freezes — from then on it is exactly the table the dense
    pipeline would have built from that epoch's full corpus.  With a
    single block per epoch, batches and negative draws are bit-identical
    to :class:`CorpusPipeline` given the same RNG.

    Args:
        sample_blocks: zero-argument callable returning a fresh iterable
            of :class:`WalkCorpus` blocks (one draw of the corpus; walker
            RNG consumption happens lazily as the iterable advances).
        budget_bytes: optional hard peak-memory budget for the per-block
            data path.
        noise_dtype: storage dtype for the retained noise counts
            (float32 mode halves them; sampling is unaffected).
    """

    def __init__(
        self,
        sample_blocks: Callable[[], Iterable[WalkCorpus]],
        num_nodes: int,
        window: int,
        num_negatives: int = 5,
        batch_size: int = 128,
        rng: np.random.Generator | None = None,
        noise_power: float = 0.75,
        budget_bytes: int | None = None,
        noise_dtype=np.float64,
    ) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if num_negatives < 1:
            raise ValueError(
                f"num_negatives must be >= 1, got {num_negatives}"
            )
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if budget_bytes is not None and budget_bytes <= 0:
            raise ValueError(
                f"budget_bytes must be positive, got {budget_bytes}"
            )
        self.sample_blocks = sample_blocks
        self.num_nodes = num_nodes
        self.window = window
        self.num_negatives = num_negatives
        self.batch_size = batch_size
        self.rng = rng or np.random.default_rng()
        self.noise_power = noise_power
        self.budget_bytes = budget_bytes
        self.noise_dtype = np.dtype(noise_dtype)
        # float64 accumulator: exact integer counts up to 2**53, and the
        # alias table is always built in float64 anyway
        self._counts = np.zeros(num_nodes, dtype=np.float64)
        self._frozen = False
        self._noise: NoiseDistribution | None = None
        self.peak_block_bytes = 0
        self.metrics: MetricsRegistry = NULL_REGISTRY
        self.metric_prefix = "pipeline/"

    # ------------------------------------------------------------------
    def pairs(self, corpus: WalkCorpus) -> tuple[np.ndarray, np.ndarray]:
        """Flatten one block into (centers, contexts) index arrays."""
        return extract_index_pairs(corpus, self.window)

    def _table(self) -> NoiseDistribution:
        if self._noise is None:
            self._noise = NoiseDistribution(
                self._counts,
                self.num_nodes,
                power=self.noise_power,
                dtype=self.noise_dtype,
            )
        return self._noise

    def noise(self, corpus: WalkCorpus) -> NoiseDistribution:
        """The current noise table (for loss evaluation outside epochs).

        Before any training block has been seen, falls back to a
        transient table over ``corpus`` itself — uncached, so it cannot
        perturb the accumulate-then-freeze schedule.
        """
        if self._noise is not None or self._counts.sum() > 0:
            return self._table()
        return NoiseDistribution(
            corpus.frequency_counts(self.num_nodes),
            self.num_nodes,
            power=self.noise_power,
            dtype=self.noise_dtype,
        )

    def _block_bytes(
        self, block: WalkCorpus, centers: np.ndarray, contexts: np.ndarray
    ) -> int:
        """Measured data-path bytes for one block (mirrors the budget)."""
        return (
            2 * block.matrix.nbytes
            + 2 * block.lengths.nbytes
            + 8 * block.lengths.size
            + 2 * (centers.nbytes + contexts.nbytes)
            + centers.size
            + self.batch_size * self.num_negatives * 8
        )

    # -- checkpoint protocol -------------------------------------------
    def state_dict(self) -> dict:
        """Accumulated noise counts plus the freeze flag.

        Restoring mid-run must reproduce the exact table the
        uninterrupted run would use; the counts are sufficient because
        alias-table construction is deterministic.
        """
        seen = self._counts.sum() > 0
        return {
            "noise_counts": self._counts.copy() if seen else None,
            "noise_frozen": self._frozen,
        }

    def load_state_dict(self, state: dict) -> None:
        counts = state["noise_counts"]
        if counts is None:
            self._counts = np.zeros(self.num_nodes, dtype=np.float64)
        else:
            self._counts = np.asarray(counts, dtype=np.float64).copy()
        # tolerate dense-pipeline state (no freeze flag): a dense table
        # always comes from a completed first corpus, i.e. frozen
        self._frozen = bool(
            state.get("noise_frozen", counts is not None)
        )
        self._noise = None

    # ------------------------------------------------------------------
    def epoch(self) -> Iterator[SkipGramBatch]:
        """Stream one corpus draw block by block as minibatches.

        The sampling timer accumulates the per-block walker waits, so
        the epoch's total sampling cost lands in the same metric the
        dense pipeline reports.
        """
        iterator = iter(self.sample_blocks())
        saw_block = False
        while True:
            with self.metrics.timer(f"{self.metric_prefix}sampling_seconds"):
                block = next(iterator, None)
            if block is None:
                break
            saw_block = True
            if not self._frozen:
                self._counts += block.frequency_counts(self.num_nodes)
                self._noise = None
            centers, contexts = self.pairs(block)
            measured = self._block_bytes(block, centers, contexts)
            if measured > self.peak_block_bytes:
                self.peak_block_bytes = measured
                self.metrics.gauge(
                    f"{self.metric_prefix}peak_block_bytes", measured
                )
            if self.budget_bytes is not None and measured > self.budget_bytes:
                raise MemoryError(
                    f"corpus block needs {measured} bytes, exceeding the "
                    f"{self.budget_bytes}-byte budget; shrink the block "
                    f"size (see block_walks_for_budget)"
                )
            if centers.size == 0:
                continue
            noise = self._table()
            for start in range(0, centers.size, self.batch_size):
                end = min(start + self.batch_size, centers.size)
                negatives = noise.sample(
                    self.rng, size=(end - start) * self.num_negatives
                ).reshape(end - start, self.num_negatives)
                yield SkipGramBatch(
                    centers=centers[start:end],
                    contexts=contexts[start:end],
                    negatives=negatives,
                )
        if saw_block:
            self._frozen = True


class EdgeSamplingPipeline:
    """LINE-style batches: weight-proportional edge draws as positives.

    Each yielded pair is one drawn edge with a random orientation;
    negatives come from the degree^0.75 noise distribution.  One ``epoch``
    streams exactly ``num_samples`` positive draws.
    """

    def __init__(
        self,
        graph: HeteroGraph,
        num_samples: int,
        num_negatives: int = 5,
        batch_size: int = 256,
        rng: np.random.Generator | None = None,
    ) -> None:
        edges = graph.edges
        if not edges:
            raise ValueError("edge sampling needs at least one edge")
        if num_samples < 1:
            raise ValueError(f"num_samples must be >= 1, got {num_samples}")
        self.num_samples = num_samples
        self.num_negatives = num_negatives
        self.batch_size = batch_size
        self.rng = rng or np.random.default_rng()
        self._edge_sampler = AliasSampler([e.weight for e in edges])
        self._sources = np.array(
            [graph.index_of(e.u) for e in edges], dtype=np.int64
        )
        self._targets = np.array(
            [graph.index_of(e.v) for e in edges], dtype=np.int64
        )
        # weighted degrees come precomputed (reduceat over the CSR weight
        # segments) from the adjacency cache shared with the walkers
        degrees = csr_adjacency(graph).weight_sums
        self._noise = NoiseDistribution(degrees, graph.num_nodes)

    def epoch(self) -> Iterator[SkipGramBatch]:
        drawn = 0
        while drawn < self.num_samples:
            batch = min(self.batch_size, self.num_samples - drawn)
            picks = np.asarray(self._edge_sampler.sample(self.rng, size=batch))
            # each undirected edge yields both directions
            flip = self.rng.random(batch) < 0.5
            centers = np.where(flip, self._sources[picks], self._targets[picks])
            contexts = np.where(flip, self._targets[picks], self._sources[picks])
            negatives = self._noise.sample(
                self.rng, size=batch * self.num_negatives
            ).reshape(batch, self.num_negatives)
            yield SkipGramBatch(
                centers=centers, contexts=contexts, negatives=negatives
            )
            drawn += batch
