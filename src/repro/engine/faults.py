"""Deterministic fault injection for chaos-testing the training runtime.

A production run at millions-of-edges scale must survive hung workers,
crashed shards, bit-rotted spill files, and full disks without losing the
epoch.  The hardening that makes that true lives in
:mod:`repro.engine.parallel` (shard watchdog, in-process retry, pool
relaunch), :mod:`repro.walks.spill` (per-block CRC32), and
:class:`repro.core.single_view.SingleViewTrainer` (graceful spill
degradation) — this module provides the *controlled* failures that prove
it works: a seeded :class:`FaultInjector` with named fault points that
tests and the CLI's ``--chaos`` mode can arm.

Fault points
------------

==========================  ==================================================
``worker.crash``            the next pool shard's worker SIGKILLs itself
                            (a true ``kill -9`` mid-shard)
``worker.hang``             the next pool shard's worker sleeps past any
                            reasonable deadline (exercises the shard watchdog)
``worker.exception``        the next pool shard raises
                            :class:`FaultInjected` inside the worker
``spill.write_enospc``      the next spill-block write raises
                            ``OSError(ENOSPC)`` (disk full while recording)
``spill.bitflip``           one byte of the next finalized spill file is
                            flipped (bit rot; detected by block CRCs)
``checkpoint.write_error``  the next checkpoint save raises
                            ``OSError(ENOSPC)``
==========================  ==================================================

Determinism contract
--------------------

An injector never consults wall clock, thread identity, or probability:
a fault point fires on exact invocation counts (``skip`` invocations let
through, then ``times`` firings), and any randomness a fault needs (e.g.
which byte to flip) comes from a per-point generator derived from the
injector's seed — so an armed chaos run is exactly as reproducible as a
clean one.  The hardened code paths are themselves deterministic (failed
shards replay their seeds, corrupt spills regenerate the recorded draw),
which is what lets tests assert *bit-identical* output under faults.

Usage
-----

Tests arm a scoped injector::

    injector = FaultInjector(seed=7).arm("worker.crash")
    with scoped(injector):
        model.fit(...)
    assert injector.fired["worker.crash"] == 1

The CLI arms a process-global one from ``--chaos``::

    repro train g.tsv --out e.txt --chaos worker.crash,spill.bitflip

Production code consults the module-level accessors (:func:`get_active`,
:func:`fire_os_error`, :func:`worker_fault_for_submission`), which are a
``None`` check when nothing is armed — the whole layer is zero-cost
outside chaos runs.
"""

from __future__ import annotations

import errno
import os
import signal
import threading
import time
import zlib
from contextlib import contextmanager
from typing import Any, Iterator

import numpy as np

#: every fault point an injector may arm
FAULT_POINTS = (
    "worker.crash",
    "worker.hang",
    "worker.exception",
    "spill.write_enospc",
    "spill.bitflip",
    "checkpoint.write_error",
)

#: the worker-executed points and the action verb shipped to the worker
_WORKER_ACTIONS = {
    "worker.crash": "crash",
    "worker.hang": "hang",
    "worker.exception": "exception",
}


class FaultInjected(RuntimeError):
    """An armed fault point fired (simulated failure, not a real bug)."""


class _Arming:
    """Invocation bookkeeping of one armed point (under the injector lock)."""

    __slots__ = ("skip", "remaining", "seen")

    def __init__(self, times: int, skip: int) -> None:
        self.skip = skip
        self.remaining = times
        self.seen = 0


class FaultInjector:
    """Seeded, countable fault arming for the named :data:`FAULT_POINTS`.

    Args:
        seed: keys every per-point RNG (:meth:`rng`); two injectors with
            the same seed and armings produce identical chaos.
        hang_seconds: how long a ``worker.hang`` fault sleeps.  Must
            exceed the runtime's ``shard_timeout`` for the watchdog to
            trip; the default is far past any sane deadline.

    Thread safety: :meth:`should_fire` mutates counters under a lock —
    prefetch threads and the training thread may probe points
    concurrently.
    """

    def __init__(self, seed: int = 0, hang_seconds: float = 3600.0) -> None:
        self.seed = int(seed)
        self.hang_seconds = float(hang_seconds)
        self._armings: dict[str, _Arming] = {}
        self._lock = threading.Lock()
        #: point -> number of times it actually fired
        self.fired: dict[str, int] = {}
        self._metrics: Any = None

    # ------------------------------------------------------------------
    def arm(self, point: str, times: int = 1, skip: int = 0) -> "FaultInjector":
        """Arm ``point`` to fire ``times`` times after ``skip`` passes.

        Returns ``self`` so armings chain:
        ``FaultInjector(seed=7).arm("worker.crash").arm("spill.bitflip")``.
        """
        if point not in FAULT_POINTS:
            raise ValueError(
                f"unknown fault point {point!r}; known: {list(FAULT_POINTS)}"
            )
        if times < 1:
            raise ValueError(f"times must be >= 1, got {times}")
        if skip < 0:
            raise ValueError(f"skip must be >= 0, got {skip}")
        with self._lock:
            self._armings[point] = _Arming(times, skip)
        return self

    @classmethod
    def from_spec(
        cls, spec: str, seed: int = 0, hang_seconds: float = 3600.0
    ) -> "FaultInjector":
        """Build an injector from a ``--chaos`` spec string.

        The spec is a comma-separated list of ``point`` or ``point:times``
        entries, e.g. ``"worker.crash,spill.bitflip:2"``.
        """
        injector = cls(seed=seed, hang_seconds=hang_seconds)
        for entry in spec.split(","):
            entry = entry.strip()
            if not entry:
                continue
            point, _, count = entry.partition(":")
            try:
                times = int(count) if count else 1
            except ValueError:
                raise ValueError(
                    f"bad chaos entry {entry!r}: expected point[:times]"
                ) from None
            injector.arm(point, times=times)
        if not injector.armed_points():
            raise ValueError(f"chaos spec {spec!r} arms no fault points")
        return injector

    def armed_points(self) -> list[str]:
        """Points still armed (not yet exhausted), sorted."""
        with self._lock:
            return sorted(
                point
                for point, arming in self._armings.items()
                if arming.remaining > 0
            )

    def bind_metrics(self, metrics: Any) -> None:
        """Emit ``faults/*`` counters and events into ``metrics``
        (a :class:`repro.engine.observability.MetricsRegistry`)."""
        self._metrics = metrics
        if metrics is not None:
            metrics.event(
                "faults/armed",
                "fault injection active",
                points=self.armed_points(),
                seed=self.seed,
            )

    # ------------------------------------------------------------------
    def should_fire(self, point: str) -> bool:
        """Count one invocation of ``point``; ``True`` when it fires.

        Unarmed points always return ``False`` without bookkeeping.
        """
        if point not in FAULT_POINTS:
            raise ValueError(
                f"unknown fault point {point!r}; known: {list(FAULT_POINTS)}"
            )
        with self._lock:
            arming = self._armings.get(point)
            if arming is None or arming.remaining <= 0:
                return False
            arming.seen += 1
            if arming.seen <= arming.skip:
                return False
            arming.remaining -= 1
            self.fired[point] = self.fired.get(point, 0) + 1
            metrics = self._metrics
        if metrics is not None:
            metrics.counter(f"faults/injected/{point}")
            metrics.event("faults/injected", "armed fault fired", point=point)
        return True

    def fire_os_error(self, point: str, err: int = errno.ENOSPC) -> None:
        """Raise ``OSError(err)`` if ``point`` fires this invocation."""
        if self.should_fire(point):
            raise OSError(err, f"{os.strerror(err)} (injected: {point})")

    def rng(self, point: str) -> np.random.Generator:
        """A deterministic per-point generator (e.g. bitflip placement).

        Derived from ``(seed, crc32(point))`` — independent of every
        training stream and of the other points'.
        """
        return np.random.default_rng(
            np.random.SeedSequence((self.seed, zlib.crc32(point.encode())))
        )


# ----------------------------------------------------------------------
# process-global activation (what the instrumented hot paths consult)
# ----------------------------------------------------------------------
_ACTIVE: FaultInjector | None = None


def activate(injector: FaultInjector | None) -> FaultInjector | None:
    """Install ``injector`` as the process-global one; returns the old."""
    global _ACTIVE
    previous, _ACTIVE = _ACTIVE, injector
    return previous


def get_active() -> FaultInjector | None:
    """The currently armed injector, or ``None`` (the production state)."""
    return _ACTIVE


@contextmanager
def scoped(injector: FaultInjector) -> Iterator[FaultInjector]:
    """Activate ``injector`` for a ``with`` block, restoring the old one."""
    previous = activate(injector)
    try:
        yield injector
    finally:
        activate(previous)


def fire_os_error(point: str, err: int = errno.ENOSPC) -> None:
    """Module-level :meth:`FaultInjector.fire_os_error` on the active
    injector; a no-op when nothing is armed."""
    injector = _ACTIVE
    if injector is not None:
        injector.fire_os_error(point, err)


def worker_fault_for_submission() -> tuple[str, float] | None:
    """Decide, in the parent, whether the next pool shard misbehaves.

    Called once per shard submission by the parallel runtime.  Returns a
    picklable ``(action, arg)`` order for :func:`execute_worker_fault`,
    or ``None``.  The decision is consumed here — in-process fallback and
    retry paths never re-fire it, which is what keeps faulted output
    bit-identical to a clean run.
    """
    injector = _ACTIVE
    if injector is None:
        return None
    for point, action in _WORKER_ACTIONS.items():
        if injector.should_fire(point):
            arg = injector.hang_seconds if action == "hang" else 0.0
            return (action, arg)
    return None


def execute_worker_fault(fault: tuple[str, float] | None) -> None:
    """Carry out a parent-ordered fault; runs inside a pool worker."""
    if fault is None:
        return
    action, arg = fault
    if action == "crash":
        # a true kill -9: no cleanup, no exception machinery — the pool
        # sees the worker vanish exactly as under the OOM killer
        os.kill(os.getpid(), signal.SIGKILL)
    elif action == "hang":
        time.sleep(arg)
    elif action == "exception":
        raise FaultInjected(
            "injected worker exception (fault point worker.exception)"
        )
    else:  # pragma: no cover - parent only emits the three actions
        raise ValueError(f"unknown worker fault action {action!r}")
