"""Parallel training runtime: shared-memory corpus workers, concurrent
cross-view waves, and an async prefetch pipeline.

Algorithm 1's two phases are embarrassingly parallel along different
axes, and this module exploits both without touching the training math:

1. **Corpus generation** (the single-view phase's dominant cost) fans
   out across a :class:`~concurrent.futures.ProcessPoolExecutor`.  The
   flat CSR arrays of a view are published once into named
   :mod:`multiprocessing.shared_memory` segments (:class:`SharedCSR`);
   workers attach by name in O(ms) and mount a *detached*
   :class:`~repro.graph.csr.CSRAdjacency` directly over the shared
   buffers — no graph object ever crosses a process boundary, and walk
   policies travel as few-hundred-byte rebuild-from-spec pickles
   (:meth:`~repro.walks.policies.WalkPolicy.__reduce__`).

2. **Cross-view dual learning** trains view-pairs concurrently in
   threads.  Pairs sharing a view would race on the shared embedding
   matrix, so :func:`conflict_waves` greedily colors the pair list into
   waves of view-disjoint pairs; within a wave every trainer touches
   disjoint translators, embeddings and optimizer rows, and NumPy
   releases the GIL on the heavy ops.

3. **Prefetch** (:class:`PrefetchingSampler`) double-buffers corpora:
   while epoch ``t`` trains, epoch ``t+1``'s corpus builds in a
   background thread that feeds the same process pool.

Determinism contract
--------------------
``workers=0`` never constructs a runtime — the serial path is untouched
and stays bit-identical to the determinism goldens.  For ``workers=N``
every random draw derives from a :class:`numpy.random.SeedSequence`
keyed on ``(seed, phase tag, view/pair id, draw index)`` — never on
worker identity, thread schedule, or wall clock — so a fixed ``N``
reproduces exactly across runs, machines, and pool-vs-fallback
execution.  Prefetch changes *when* a corpus is built, not its seeds,
so it does not change results (the one documented exception: relation
balancing scales are captured at schedule time, one epoch early — see
``docs/parallelism.md``).

Fault tolerance
---------------
Shard execution is hardened per failure mode, always preserving the
determinism contract by replaying the failed shard's recorded seed:

* an ordinary exception inside one worker shard (``MemoryError``, an
  injected ``worker.exception``) retries *that shard only* in-process
  (``parallel/shard_retry``) — the pool keeps serving the other shards;
* a shard outliving ``shard_timeout`` trips a watchdog
  (``parallel/shard_timeout``): finished shards are harvested, the hung
  pool is killed, and the rest of the build runs in-process;
* a vanished worker (segfault, OOM kill) surfaces as
  :class:`BrokenProcessPool` and unfinished shards run in-process.

A lost pool is relaunched at the next build under exponential backoff
(``parallel/pool_relaunch``); once losses exceed ``max_pool_relaunches``
the runtime demotes itself to in-process builds for the rest of the run
(``parallel/fallback``, sticky).  Either way every corpus stays
bit-identical to the same-config fault-free run.  The
:mod:`repro.engine.faults` injector provides the controlled failures
that exercise these paths.
"""

from __future__ import annotations

import multiprocessing
import time
import uuid
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Any, Callable, Sequence

import numpy as np

from repro.engine.faults import (
    execute_worker_fault,
    worker_fault_for_submission,
)
from repro.engine.observability import MetricsRegistry, NullRegistry
from repro.graph.csr import CSRAdjacency, csr_adjacency
from repro.graph.heterograph import HeteroGraph
from repro.graph.views import View
from repro.walks.batched import LockstepWalker
from repro.walks.corpus import WalkCorpus, walk_start_nodes
from repro.walks.policies import WalkPolicy, _resolve_graph

#: SeedSequence phase tags — keep single-view and cross-view streams
#: disjoint even when a view code and a pair index collide numerically.
SINGLE_VIEW_TAG = 1
CROSS_VIEW_TAG = 2

#: every optional CSR column a policy may declare in ``required_columns``
KNOWN_COLUMNS = frozenset(
    {"alias", "node_types", "slot_types", "edge_keys", "slot_edge_types"}
)


def single_view_seed(
    seed: int, view_code: int, draw: int
) -> np.random.SeedSequence:
    """The root seed of one view's ``draw``-th corpus build."""
    return np.random.SeedSequence((seed, SINGLE_VIEW_TAG, view_code, draw))


def pair_rng(seed: int, pair_index: int, step: int) -> np.random.Generator:
    """The generator driving one view-pair's ``step``-th cross-view epoch."""
    return np.random.default_rng(
        np.random.SeedSequence((seed, CROSS_VIEW_TAG, pair_index, step))
    )


# ----------------------------------------------------------------------
# shared-memory CSR publication / attachment
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SharedCSRSpec:
    """Picklable recipe for attaching a published CSR in a worker.

    ``fields`` maps :meth:`CSRAdjacency.from_arrays` array kwargs (plus
    the ``alias_prob``/``alias_local`` pair) to
    ``(segment name, dtype str, shape)``; ``meta`` carries the non-array
    kwargs (type-name tuples).  ``token`` keys the worker-side attach
    cache so each worker process attaches a given publication once.
    """

    token: str
    fields: dict[str, tuple[str, str, tuple[int, ...]]]
    meta: dict[str, tuple[str, ...]]
    is_heter: bool = False


class SharedCSR:
    """Owner-side publication of one CSR into shared-memory segments.

    Publishes the six core arrays plus exactly the optional columns in
    ``columns`` (a :attr:`WalkPolicy.required_columns` set), so workers
    never rebuild alias tables or type columns.  The owner keeps its
    resource-tracker registration and must :meth:`close` (unlink) the
    segments when done; :class:`ParallelRuntime` does this on shutdown.
    """

    def __init__(
        self,
        csr: CSRAdjacency,
        columns: frozenset[str] = frozenset(),
        is_heter: bool = False,
    ) -> None:
        unknown = frozenset(columns) - KNOWN_COLUMNS
        if unknown:
            raise ValueError(
                f"unknown CSR columns {sorted(unknown)}; "
                f"known: {sorted(KNOWN_COLUMNS)}"
            )
        self.columns = frozenset(columns)
        self._segments: list[shared_memory.SharedMemory] = []
        fields: dict[str, tuple[str, str, tuple[int, ...]]] = {}
        meta: dict[str, tuple[str, ...]] = {}

        def publish(kwarg: str, array: np.ndarray) -> None:
            array = np.ascontiguousarray(array)
            # zero-length arrays still need a 1-byte segment to exist
            shm = shared_memory.SharedMemory(
                create=True, size=max(array.nbytes, 1)
            )
            self._segments.append(shm)
            view = np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf)
            view[...] = array
            fields[kwarg] = (shm.name, array.dtype.str, array.shape)

        try:
            for name in CSRAdjacency.CORE_FIELDS:
                publish(name, getattr(csr, name))
            if "alias" in self.columns:
                prob, local = csr.alias_tables()
                publish("alias_prob", prob)
                publish("alias_local", local)
            if self.columns & {"node_types", "slot_types"}:
                publish("node_type_codes", csr.node_type_codes)
                meta["type_names"] = tuple(csr.type_names)
            if "slot_types" in self.columns:
                publish("slot_type_codes", csr.slot_type_codes)
            if "edge_keys" in self.columns:
                publish("edge_keys", csr.edge_keys)
            if "slot_edge_types" in self.columns:
                publish("slot_edge_type_codes", csr.slot_edge_type_codes)
                meta["edge_type_names"] = tuple(csr.edge_type_names)
        except BaseException:
            self.close()
            raise
        self.spec = SharedCSRSpec(
            token=uuid.uuid4().hex,
            fields=fields,
            meta=meta,
            is_heter=is_heter,
        )

    @property
    def nbytes(self) -> int:
        """Total shared bytes published (for gauges and tests)."""
        return sum(shm.size for shm in self._segments)

    def close(self) -> None:
        """Close and unlink every segment (idempotent)."""
        segments, self._segments = self._segments, []
        for shm in segments:
            try:
                shm.close()
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass


#: worker-process cache: publication token -> attached detached CSR
_ATTACHED: dict[str, CSRAdjacency] = {}


def attach_shared_csr(
    spec: SharedCSRSpec, unregister: bool = True
) -> CSRAdjacency:
    """Mount a detached :class:`CSRAdjacency` over a publication's segments.

    Each process attaches a given ``spec.token`` once and caches the
    result; subsequent tasks over the same publication reuse it.

    ``unregister`` handles bpo-38119 — attaching registers the segment
    with a resource tracker, which on worker exit would unlink segments
    the owner still needs.  It must be ``True`` exactly when this
    process runs its *own* tracker (spawn-started workers) and ``False``
    when the tracker is inherited from the owner (fork/forkserver):
    there the cache is shared, and unregistering here would strip the
    owner's registration and make its later ``unlink()`` double-
    unregister.  :class:`ParallelRuntime` passes the right value for its
    start method; the owner's :meth:`SharedCSR.close` remains the single
    point of unlink either way.
    """
    csr = _ATTACHED.get(spec.token)
    if csr is not None:
        return csr
    segments: list[shared_memory.SharedMemory] = []
    arrays: dict[str, np.ndarray] = {}
    for kwarg, (name, dtype, shape) in spec.fields.items():
        shm = shared_memory.SharedMemory(name=name)
        if unregister:
            resource_tracker.unregister(shm._name, "shared_memory")
        segments.append(shm)
        array = np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf)
        array.flags.writeable = False  # workers must never mutate the graph
        arrays[kwarg] = array
    alias = None
    if "alias_prob" in arrays:
        alias = (arrays.pop("alias_prob"), arrays.pop("alias_local"))
    csr = CSRAdjacency.from_arrays(**arrays, alias=alias, **spec.meta)
    # keep the segment objects alive as long as the adjacency: their
    # buffers back every array above
    csr._shm_segments = segments
    _ATTACHED[spec.token] = csr
    return csr


# ----------------------------------------------------------------------
# worker task (top-level so it pickles under any start method)
# ----------------------------------------------------------------------
def _walk_shard(
    spec: SharedCSRSpec,
    policy: WalkPolicy,
    shard: np.ndarray,
    length: int,
    seed: np.random.SeedSequence,
    unregister: bool,
    fault: tuple[str, float] | None = None,
) -> tuple[np.ndarray, np.ndarray, float]:
    """Walk one contiguous shard of start nodes; runs inside a worker.

    ``policy`` arrives unbound (rebuild-from-spec pickle) and binds to
    the attached shared-memory adjacency.  Returns the dense walk
    matrix, the per-walk lengths, and the elapsed wall seconds (folded
    into per-worker timers by the parent).

    ``fault`` is a parent-ordered chaos action (crash/hang/raise) decided
    by the active :class:`~repro.engine.faults.FaultInjector` at
    submission time; ``None`` in production.
    """
    execute_worker_fault(fault)
    begin = time.perf_counter()
    csr = attach_shared_csr(spec, unregister=unregister)
    walker = LockstepWalker(
        csr, policy, rng=np.random.default_rng(seed), is_heter=spec.is_heter
    )
    matrix, lengths = walker.walk_batch(shard, length)
    return matrix, lengths, time.perf_counter() - begin


def _walk_shard_local(
    csr: CSRAdjacency,
    policy: WalkPolicy,
    shard: np.ndarray,
    length: int,
    seed: np.random.SeedSequence,
    is_heter: bool,
) -> tuple[np.ndarray, np.ndarray, float]:
    """The in-process twin of :func:`_walk_shard` (fallback path).

    Uses the *original* bound policy and the owner's real adjacency —
    never a spec attach, which in the owning process would wrongly
    unregister the legitimate resource-tracker registration.  Seeds and
    shard are identical, so the output is bit-identical to the pool's.
    """
    begin = time.perf_counter()
    walker = LockstepWalker(
        csr, policy, rng=np.random.default_rng(seed), is_heter=is_heter
    )
    matrix, lengths = walker.walk_batch(shard, length)
    return matrix, lengths, time.perf_counter() - begin


def _ping() -> bool:
    """Warm-up task: forces the pool to launch its workers eagerly."""
    return True


# ----------------------------------------------------------------------
# cross-view wave scheduling
# ----------------------------------------------------------------------
def conflict_waves(keys: Sequence[tuple[Any, Any]]) -> list[list[int]]:
    """Greedily color pair keys into waves of view-disjoint pairs.

    ``keys[i]`` is the ``(edge_type_i, edge_type_j)`` key of pair ``i``;
    two pairs sharing either view must not train concurrently (they
    would race on the shared per-view embedding matrix).  Returns index
    waves in first-fit order — deterministic for a fixed key list, and
    every wave's pairs touch pairwise-disjoint views.
    """
    waves: list[tuple[list[int], set]] = []
    for index, (a, b) in enumerate(keys):
        for members, used in waves:
            if a not in used and b not in used:
                members.append(index)
                used.update((a, b))
                break
        else:
            waves.append(([index], {a, b}))
    return [members for members, _ in waves]


# ----------------------------------------------------------------------
# the runtime
# ----------------------------------------------------------------------
class ParallelRuntime:
    """Owns the worker pool, shared-memory publications, and thread pools.

    One runtime serves a whole model fit.  The process pool is launched
    *eagerly* in ``__init__`` — on fork platforms the workers must be
    forked from the main thread before any prefetch/wave threads exist
    (forking a multithreaded process can inherit held locks).  A pool
    *relaunch* after a mid-run loss (:meth:`_pool_ready`) cannot honor
    that guarantee; workers only run NumPy walk kernels, which keeps the
    inherited-lock risk confined to code that never takes locks.

    Args:
        workers: pool width; also sizes the wave/prefetch thread pools.
        shard_timeout: per-shard watchdog deadline in seconds for
            :meth:`_walk_sharded` (``None`` disables — a hung worker
            then hangs the build, the pre-hardening behavior).
        max_pool_relaunches: pool losses tolerated before the runtime
            demotes itself to in-process builds for the rest of the run.
        relaunch_backoff: base of the exponential relaunch delay,
            ``relaunch_backoff * 2**(losses - 1)`` seconds.
    """

    def __init__(
        self,
        workers: int,
        metrics: MetricsRegistry | None = None,
        *,
        shard_timeout: float | None = None,
        max_pool_relaunches: int = 2,
        relaunch_backoff: float = 0.1,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if shard_timeout is not None and shard_timeout <= 0:
            raise ValueError(
                f"shard_timeout must be positive, got {shard_timeout}"
            )
        if max_pool_relaunches < 0:
            raise ValueError(
                f"max_pool_relaunches must be >= 0, got {max_pool_relaunches}"
            )
        if relaunch_backoff < 0:
            raise ValueError(
                f"relaunch_backoff must be >= 0, got {relaunch_backoff}"
            )
        self.workers = int(workers)
        self.shard_timeout = (
            None if shard_timeout is None else float(shard_timeout)
        )
        self.max_pool_relaunches = int(max_pool_relaunches)
        self.relaunch_backoff = float(relaunch_backoff)
        self._metrics = metrics if metrics is not None else NullRegistry()
        # prefer fork: workers inherit the warm interpreter and attach
        # shared memory without re-importing the world
        context = (
            multiprocessing.get_context("fork")
            if "fork" in multiprocessing.get_all_start_methods()
            else multiprocessing.get_context()
        )
        # spawn workers run their own resource tracker and must drop the
        # attach-side registration (bpo-38119); fork workers share the
        # owner's tracker, where dropping it would be a double-unregister
        self._attach_unregister = context.get_start_method() == "spawn"
        # start the resource tracker BEFORE forking: children must
        # inherit the live tracker fd, or each would lazily spawn its
        # own tracker on first attach and warn about "leaked" segments
        # (actually the owner's) when it exits
        resource_tracker.ensure_running()
        self._context = context
        self._pool: ProcessPoolExecutor | None = ProcessPoolExecutor(
            max_workers=self.workers, mp_context=context
        )
        self._pool.submit(_ping).result()  # fork/spawn workers now
        self._wave_pool: ThreadPoolExecutor | None = None
        self._prefetch_pool: ThreadPoolExecutor | None = None
        #: id(csr) -> (csr, SharedCSR); the csr reference keeps the id valid
        self._shared: dict[int, tuple[CSRAdjacency, SharedCSR]] = {}
        self._pool_broken = False
        self._pool_failures = 0
        self._closed = False
        self._metrics.gauge("parallel/workers", self.workers)

    # -- plumbing ------------------------------------------------------
    def bind_metrics(self, metrics: MetricsRegistry) -> None:
        """Point the runtime's instrumentation at a live registry."""
        self._metrics = metrics
        self._metrics.gauge("parallel/workers", self.workers)

    @property
    def pool_broken(self) -> bool:
        """Whether corpus builds are stickily demoted to in-process mode."""
        return self._pool_broken

    @property
    def pool_failures(self) -> int:
        """How many times the worker pool has been lost so far."""
        return self._pool_failures

    def _demote(self) -> None:
        """Give up on pooled execution for the rest of the run (sticky)."""
        if self._pool_broken:
            return
        self._pool_broken = True
        self._metrics.incident(
            "parallel/fallback",
            "pool relaunch budget spent; corpus builds stay in-process",
            failures=self._pool_failures,
        )

    def _lose_pool(self, label: str) -> None:
        """Discard a broken or hung pool and charge the relaunch budget.

        Remaining workers are killed outright — a hung worker would
        otherwise block a waiting ``shutdown()`` forever.  Overspending
        ``max_pool_relaunches`` demotes the runtime on the spot.
        """
        pool, self._pool = self._pool, None
        self._pool_failures += 1
        if pool is not None:
            for proc in list((pool._processes or {}).values()):
                proc.kill()
            pool.shutdown(wait=False, cancel_futures=True)
        self._metrics.event(
            "parallel/pool_lost",
            "worker pool lost; unfinished shards replay in-process",
            label=label,
            failures=self._pool_failures,
        )
        if self._pool_failures > self.max_pool_relaunches:
            self._demote()

    def _pool_ready(self) -> bool:
        """Whether pooled execution is available, relaunching if needed.

        A lost pool is relaunched lazily at the next build under
        exponential backoff (``relaunch_backoff * 2**(losses - 1)``
        seconds); a failed relaunch counts as another loss.  Returns
        ``False`` when the runtime is (or just became) demoted, or when
        this build should run in-process while the budget recovers.
        """
        if self._pool_broken:
            return False
        if self._pool is not None:
            return True
        delay = self.relaunch_backoff * (2 ** max(self._pool_failures - 1, 0))
        if delay > 0:
            time.sleep(delay)
        pool = None
        try:
            resource_tracker.ensure_running()
            pool = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=self._context
            )
            pool.submit(_ping).result(timeout=60.0)
        except Exception:
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)
            self._pool_failures += 1
            if self._pool_failures > self.max_pool_relaunches:
                self._demote()
            return False
        self._pool = pool
        self._metrics.incident(
            "parallel/pool_relaunch",
            "worker pool relaunched after loss",
            backoff_seconds=delay,
            failures=self._pool_failures,
        )
        return True

    def _shared_for(
        self, csr: CSRAdjacency, columns: frozenset[str], is_heter: bool
    ) -> SharedCSR:
        """Get-or-create the publication of ``csr`` covering ``columns``."""
        key = id(csr)
        entry = self._shared.get(key)
        if entry is not None and entry[0] is csr:
            if entry[1].columns >= columns:
                return entry[1]
            columns = columns | entry[1].columns  # widen, then republish
        if entry is not None:
            entry[1].close()
        shared = SharedCSR(csr, columns=columns, is_heter=is_heter)
        self._shared[key] = (csr, shared)
        self._metrics.gauge(
            "parallel/shared_bytes",
            sum(pub.nbytes for _, pub in self._shared.values()),
        )
        return shared

    def _wave_executor(self) -> ThreadPoolExecutor:
        if self._wave_pool is None:
            self._wave_pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="transn-wave"
            )
        return self._wave_pool

    def _prefetch_executor(self) -> ThreadPoolExecutor:
        if self._prefetch_pool is None:
            self._prefetch_pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="transn-prefetch"
            )
        return self._prefetch_pool

    # -- corpus generation ---------------------------------------------
    def _walk_sharded(
        self,
        csr: CSRAdjacency,
        policy: WalkPolicy,
        shards: Sequence[np.ndarray],
        length: int,
        children: Sequence[np.random.SeedSequence],
        is_heter: bool,
        label: str,
    ) -> list[tuple[np.ndarray, np.ndarray] | None]:
        """Walk ``shards[k]`` under seed ``children[k]``, pool or fallback.

        The shard→seed pairing is positional and unconditional (empty
        shards still consume their child), so the output depends only on
        the shard split and the seeds.  Failure handling, per shard:

        * an ordinary in-worker exception (``MemoryError``, an injected
          ``worker.exception``) retries *that shard only* in-process
          with the same seed (``parallel/shard_retry``) — the pool keeps
          serving the remaining shards;
        * a shard outliving ``shard_timeout`` trips the watchdog
          (``parallel/shard_timeout``): already-finished shards are
          harvested, the hung pool is killed, the rest runs in-process;
        * :class:`BrokenProcessPool` (worker segfaulted / OOM- or
          SIGKILLed) keeps whatever completed and finishes the rest
          in-process.

        Every replay uses the recorded child seed, so the corpus is
        bit-identical however many shards failed.  Pool losses are
        charged to the relaunch budget via :meth:`_lose_pool`.
        """
        results: list[tuple[np.ndarray, np.ndarray] | None]
        results = [None] * len(shards)
        if self._pool_ready():
            shared = self._shared_for(
                csr, policy.required_columns, is_heter
            )
            futures: dict[int, Any] = {}
            pool_lost = False
            try:
                for k, shard in enumerate(shards):
                    if shard.size == 0:
                        continue  # child seed k stays reserved regardless
                    futures[k] = self._pool.submit(
                        _walk_shard,
                        shared.spec,
                        policy,
                        shard,
                        length,
                        children[k],
                        self._attach_unregister,
                        worker_fault_for_submission(),
                    )
            except BrokenProcessPool:
                pool_lost = True
            pending = list(futures.items())
            for n, (k, future) in enumerate(pending):
                if pool_lost:
                    break
                try:
                    matrix, lengths, elapsed = future.result(
                        timeout=self.shard_timeout
                    )
                except FuturesTimeout:
                    self._metrics.incident(
                        "parallel/shard_timeout",
                        "shard outlived the watchdog; killing the pool",
                        label=label,
                        shard=k,
                        timeout_seconds=self.shard_timeout,
                    )
                    # harvest the shards that did finish before the axe
                    for k2, later in pending[n + 1 :]:
                        if not later.done():
                            continue
                        try:
                            m2, l2, e2 = later.result()
                        except Exception:
                            continue  # replayed in-process below
                        results[k2] = (m2, l2)
                        self._metrics.record_seconds(
                            f"parallel/worker/{k2}/seconds", e2
                        )
                    pool_lost = True
                    break
                except BrokenProcessPool:
                    pool_lost = True
                    break
                except Exception as exc:
                    # one bad shard must not abort the run: replay it
                    # alone, same seed, while the pool keeps serving
                    self._metrics.incident(
                        "parallel/shard_retry",
                        "worker shard failed; retrying in-process",
                        label=label,
                        shard=k,
                        error=repr(exc),
                    )
                    matrix, lengths, elapsed = _walk_shard_local(
                        csr, policy, shards[k], length, children[k], is_heter
                    )
                results[k] = (matrix, lengths)
                self._metrics.record_seconds(
                    f"parallel/worker/{k}/seconds", elapsed
                )
            if pool_lost:
                self._lose_pool(label)
        for k, shard in enumerate(shards):
            if shard.size == 0 or results[k] is not None:
                continue
            matrix, lengths, elapsed = _walk_shard_local(
                csr, policy, shard, length, children[k], is_heter
            )
            results[k] = (matrix, lengths)
            self._metrics.record_seconds(
                f"parallel/worker/{k}/seconds", elapsed
            )
        return results

    def build_corpus(
        self,
        view_or_graph: View | HeteroGraph,
        policy: WalkPolicy,
        *,
        length: int,
        floor: int = 10,
        cap: int = 32,
        walks_per_node_override: int | None = None,
        count_scale: float = 1.0,
        seed_seq: np.random.SeedSequence,
        label: str = "corpus",
    ) -> WalkCorpus:
        """Sample one corpus with the start law of ``walks.build_corpus``.

        Starts are computed once in the parent (identical to the serial
        law), split into ``workers`` contiguous shards, and walked
        concurrently.  ``seed_seq`` spawns ``workers + 1`` children —
        shard ``k`` always consumes child ``k`` (even when its shard is
        empty and never submitted) and the final child shuffles the
        assembled corpus, so the result depends only on ``seed_seq`` and
        the worker count, not on scheduling.
        """
        if length < 2:
            raise ValueError(f"walk length must be >= 2, got {length}")
        graph, is_heter = _resolve_graph(view_or_graph)
        csr = csr_adjacency(graph)
        policy = policy.bind(view_or_graph)
        starts = walk_start_nodes(
            csr.degrees,
            policy=policy,
            floor=floor,
            cap=cap,
            walks_per_node_override=walks_per_node_override,
            count_scale=count_scale,
        )
        # stateless spawn: SeedSequence.spawn() advances an internal
        # child counter, so reusing a seed_seq would silently change the
        # draw — derive children by spawn_key instead (bit-identical to
        # .spawn() on a fresh sequence)
        children = [
            np.random.SeedSequence(
                entropy=seed_seq.entropy,
                spawn_key=seed_seq.spawn_key + (k,),
            )
            for k in range(self.workers + 1)
        ]
        shards = np.array_split(starts, self.workers)
        results = self._walk_sharded(
            csr, policy, shards, length, children, is_heter, label
        )
        parts = [part for part in results if part is not None]
        if parts:
            matrix = np.concatenate([m for m, _ in parts])
            lengths = np.concatenate([ln for _, ln in parts])
        else:
            matrix = np.empty((0, length), dtype=np.int64)
            lengths = np.empty(0, dtype=np.int64)
        order = np.random.default_rng(children[-1]).permutation(
            matrix.shape[0]
        )
        self._metrics.counter("parallel/corpus_builds")
        self._metrics.observe(f"parallel/{label}/walks", matrix.shape[0])
        return WalkCorpus(matrix[order], lengths[order], length, graph)

    def stream_corpus(
        self,
        view_or_graph: View | HeteroGraph,
        policy: WalkPolicy,
        *,
        length: int,
        block_walks: int,
        floor: int = 10,
        cap: int = 32,
        walks_per_node_override: int | None = None,
        count_scale: float = 1.0,
        seed_seq: np.random.SeedSequence,
        index_dtype: np.dtype | None = None,
        label: str = "corpus",
    ):
        """Lazily yield the corpus as blocks of at most ``block_walks``.

        Same start law as :meth:`build_corpus`, but starts are cut into
        consecutive blocks and each block is sharded across the workers
        and shuffled independently, so only one block's walks are ever
        resident.  Block ``b`` derives its seeds from
        ``spawn_key + (b, k)`` — disjoint from :meth:`build_corpus`'s
        ``spawn_key + (k,)`` children and independent of every other
        block — so the stream is deterministic for a fixed
        ``(seed_seq, block_walks, workers)`` but is *not* the dense
        build's permutation (same walks, different interleave; the
        trainer documents this as the parallel-streaming stream).

        ``index_dtype`` casts each block's matrix (int32 compact mode)
        before it is yielded.
        """
        if length < 2:
            raise ValueError(f"walk length must be >= 2, got {length}")
        if block_walks < 1:
            raise ValueError(
                f"block_walks must be >= 1, got {block_walks}"
            )
        graph, is_heter = _resolve_graph(view_or_graph)
        csr = csr_adjacency(graph)
        policy = policy.bind(view_or_graph)
        starts = walk_start_nodes(
            csr.degrees,
            policy=policy,
            floor=floor,
            cap=cap,
            walks_per_node_override=walks_per_node_override,
            count_scale=count_scale,
        )
        self._metrics.counter("parallel/corpus_builds")
        self._metrics.observe(f"parallel/{label}/walks", starts.size)
        for b, begin in enumerate(range(0, starts.size, block_walks)):
            block_starts = starts[begin : begin + block_walks]
            children = [
                np.random.SeedSequence(
                    entropy=seed_seq.entropy,
                    spawn_key=seed_seq.spawn_key + (b, k),
                )
                for k in range(self.workers + 1)
            ]
            shards = np.array_split(block_starts, self.workers)
            results = self._walk_sharded(
                csr, policy, shards, length, children, is_heter, label
            )
            parts = [part for part in results if part is not None]
            if parts:
                matrix = np.concatenate([m for m, _ in parts])
                lengths = np.concatenate([ln for _, ln in parts])
            else:  # pragma: no cover - only via empty start law
                matrix = np.empty((0, length), dtype=np.int64)
                lengths = np.empty(0, dtype=np.int64)
            order = np.random.default_rng(children[-1]).permutation(
                matrix.shape[0]
            )
            matrix = matrix[order]
            if index_dtype is not None:
                matrix = matrix.astype(index_dtype, copy=False)
            yield WalkCorpus(matrix, lengths[order], length, graph)

    # -- cross-view waves ----------------------------------------------
    def train_pairs(
        self,
        trainers: Sequence[Any],
        rngs: Sequence[np.random.Generator],
    ) -> list[Any]:
        """Run every pair trainer's epoch, view-disjoint pairs concurrently.

        ``rngs[i]`` drives trainer ``i`` (one spawned stream per pair per
        step — see :func:`pair_rng`), which makes the outcome independent
        of the thread schedule.  Returns each ``train_epoch`` result in
        trainer order.
        """
        if len(trainers) != len(rngs):
            raise ValueError(
                f"{len(trainers)} trainers but {len(rngs)} rngs"
            )
        results: list[Any] = [None] * len(trainers)
        waves = conflict_waves([t.pair.key for t in trainers])
        for wave in waves:
            if len(wave) == 1:
                i = wave[0]
                results[i] = trainers[i].train_epoch(rng=rngs[i])
                continue
            pool = self._wave_executor()
            with self._metrics.timer("parallel/cross_view/wave_seconds"):
                futures = [
                    (i, pool.submit(trainers[i].train_epoch, rng=rngs[i]))
                    for i in wave
                ]
                for i, future in futures:
                    results[i] = future.result()
            self._metrics.observe(
                "parallel/cross_view/wave_width", len(wave)
            )
        self._metrics.gauge("parallel/cross_view/waves", len(waves))
        return results

    # -- lifecycle -----------------------------------------------------
    def shutdown(self) -> None:
        """Stop the pools and unlink every shared segment (idempotent).

        Order matters: prefetch threads feed the process pool, so they
        drain first; segments unlink last, once nothing can attach.
        Each resource is released independently — a pool that broke or
        hung mid-epoch must not leak the thread pools or the shared
        segments, so no step's failure skips the rest.
        """
        if self._closed:
            return
        self._closed = True
        prefetch, self._prefetch_pool = self._prefetch_pool, None
        wave, self._wave_pool = self._wave_pool, None
        pool, self._pool = self._pool, None
        shared, self._shared = list(self._shared.values()), {}
        try:
            if prefetch is not None:
                prefetch.shutdown(wait=True, cancel_futures=True)
        except Exception:  # pragma: no cover - defensive
            pass
        try:
            if wave is not None:
                wave.shutdown(wait=True)
        except Exception:  # pragma: no cover - defensive
            pass
        try:
            if pool is not None:
                pool.shutdown(wait=True, cancel_futures=True)
        except Exception:  # pragma: no cover - defensive
            pass
        for _, publication in shared:
            try:
                publication.close()
            except Exception:  # pragma: no cover - defensive
                pass

    #: alias: ``close()`` and ``shutdown()`` release the same resources
    close = shutdown

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.shutdown()
        except Exception:
            pass

    def __enter__(self) -> "ParallelRuntime":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()


# ----------------------------------------------------------------------
# async prefetch
# ----------------------------------------------------------------------
class PrefetchingSampler:
    """Double-buffers corpus builds behind the training loop.

    ``make_task(t)`` is called on the *consumer's* thread at schedule
    time and must return a zero-argument closure producing draw ``t``'s
    corpus — anything epoch-dependent (e.g. the relation balancer's
    ``count_scale``) is captured then, so the background build reads no
    trainer state.  Because every build is seeded by its draw index, a
    prefetched corpus is identical to one built on demand; prefetching
    changes wall-clock overlap, never results.
    """

    def __init__(
        self,
        runtime: ParallelRuntime,
        make_task: Callable[[int], Callable[[], WalkCorpus]],
    ) -> None:
        self._runtime = runtime
        self._make_task = make_task
        self._pending: tuple[int, Any] | None = None

    @property
    def next_index(self) -> int | None:
        """The draw index currently building in the background, if any."""
        return None if self._pending is None else self._pending[0]

    def corpus(self, index: int) -> WalkCorpus:
        """Corpus for draw ``index``; schedules draw ``index + 1``.

        A pending build for ``index`` is consumed (hit); a pending build
        for any other draw — after a checkpoint restore rewound the
        clock, say — is discarded and the corpus is built synchronously
        (miss).
        """
        pending, self._pending = self._pending, None
        metrics = self._runtime._metrics
        if pending is not None and pending[0] == index:
            corpus = pending[1].result()
            metrics.counter("parallel/prefetch/hits")
        else:
            if pending is not None:
                pending[1].cancel()
                metrics.counter("parallel/prefetch/misses")
            corpus = self._make_task(index)()
        metrics.gauge("parallel/prefetch/depth", 0)
        self._schedule(index + 1)
        return corpus

    def _schedule(self, index: int) -> None:
        task = self._make_task(index)  # capture epoch state on this thread
        self._pending = (
            index,
            self._runtime._prefetch_executor().submit(task),
        )
        self._runtime._metrics.gauge("parallel/prefetch/depth", 1)

    def reset(self) -> None:
        """Discard any in-flight build (e.g. after loading a checkpoint)."""
        pending, self._pending = self._pending, None
        if pending is not None:
            pending[1].cancel()
        self._runtime._metrics.gauge("parallel/prefetch/depth", 0)
