"""The shared training loop: epochs of named phases, observed by callbacks.

Algorithm 1 of the paper alternates a single-view skip-gram step and a
cross-view dual-learning step inside one outer loop; the SGNS baselines
are the degenerate case of a single phase.  :class:`TrainingLoop` models
exactly that shape — an ordered list of :class:`Phase` objects executed
once per epoch — and owns the bookkeeping every trainer used to hand-roll:
loss history, per-phase wall-clock timing, early stopping, learning-rate
scheduling, and progress reporting all attach as
:class:`~repro.engine.callbacks.Callback` hooks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.engine.callbacks import Callback, EpochLogs, LossHistory, PhaseTimer
from repro.engine.observability import (
    NULL_REGISTRY,
    NULL_TRACER,
    MetricsRegistry,
    Tracer,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.pipeline import BatchSource


class Phase:
    """One named unit of per-epoch work.

    Subclasses implement :meth:`run` returning the phase's named losses
    for the epoch (an empty dict when there was nothing to train on).
    """

    def __init__(self, name: str) -> None:
        if not name:
            raise ValueError("phases need a non-empty name")
        self.name = name

    def run(self, loop: "TrainingLoop", epoch: int) -> dict[str, float]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r})"


class CallablePhase(Phase):
    """Adapts a plain function ``(loop, epoch) -> losses`` into a Phase.

    The function may return a dict of named losses, a bare float (stored
    under ``"loss"``), or ``None`` (no losses this epoch).
    """

    def __init__(
        self,
        name: str,
        fn: Callable[["TrainingLoop", int], dict[str, float] | float | None],
    ) -> None:
        super().__init__(name)
        self.fn = fn

    def run(self, loop: "TrainingLoop", epoch: int) -> dict[str, float]:
        result = self.fn(loop, epoch)
        if result is None:
            return {}
        if isinstance(result, dict):
            return result
        return {"loss": float(result)}


class SkipGramPhase(Phase):
    """Streams a :class:`~repro.engine.pipeline.BatchSource` through a
    :class:`~repro.skipgram.trainer.SkipGramTrainer`.

    The learning rate lives on the phase (``self.lr``) so scheduling
    callbacks can adjust it between epochs.
    """

    def __init__(
        self,
        name: str,
        pipeline: "BatchSource",
        trainer,
        lr: float,
    ) -> None:
        super().__init__(name)
        self.pipeline = pipeline
        self.trainer = trainer
        self.lr = lr

    def run(self, loop: "TrainingLoop", epoch: int) -> dict[str, float]:
        total, batches = 0.0, 0
        for batch in self.pipeline.epoch():
            loss = self.trainer.train_batch(
                batch.centers, batch.contexts, batch.negatives, lr=self.lr
            )
            loop.notify_batch(epoch, self, batches, loss)
            total += loss
            batches += 1
        if batches == 0:
            return {}
        return {"loss": total / batches}


@dataclass
class LoopResult:
    """What a finished :meth:`TrainingLoop.run` hands back.

    Attributes:
        history: phase name -> one named-loss dict per epoch.
        timings: phase name -> cumulative wall-clock seconds.
        epoch_timings: phase name -> per-epoch wall-clock seconds.
        epochs_run: total epochs the history covers — executed epochs
            plus, on a resumed run, the restored ones (may be fewer than
            requested when a callback stopped the run).
        stopped_early: whether a callback requested the stop.
    """

    history: dict[str, list[dict[str, float]]] = field(default_factory=dict)
    timings: dict[str, float] = field(default_factory=dict)
    epoch_timings: dict[str, list[float]] = field(default_factory=dict)
    epochs_run: int = 0
    stopped_early: bool = False

    def series(self, phase_name: str, loss_name: str = "loss") -> list[float]:
        """One loss as a flat series, skipping epochs that lack it."""
        return [
            entry[loss_name]
            for entry in self.history.get(phase_name, [])
            if loss_name in entry
        ]


class TrainingLoop:
    """Runs phases for a number of epochs, firing callbacks throughout.

    Args:
        phases: the ordered per-epoch work units.
        callbacks: user hooks; a :class:`LossHistory` and a
            :class:`PhaseTimer` are always attached internally (first in
            the firing order) to populate the :class:`LoopResult`.
        metrics: a :class:`~repro.engine.observability.MetricsRegistry`
            the loop publishes into (``phase/<name>/<loss>`` series,
            ``phase/<name>/seconds`` timings, rollback/stop counters and
            events).  Defaults to the no-op :data:`NULL_REGISTRY`.
        tracer: a :class:`~repro.engine.observability.Tracer` receiving
            run → epoch → phase spans.  Defaults to :data:`NULL_TRACER`.
    """

    def __init__(
        self,
        phases: list[Phase],
        callbacks: list[Callback] | tuple[Callback, ...] = (),
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        if not phases:
            raise ValueError("a training loop needs at least one phase")
        names = [p.name for p in phases]
        if len(set(names)) != len(names):
            raise ValueError(f"phase names must be unique, got {names}")
        self.phases = list(phases)
        self._loss_history = LossHistory()
        self._timer = PhaseTimer()
        self.callbacks: list[Callback] = [
            self._loss_history,
            self._timer,
            *callbacks,
        ]
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.num_epochs = 0
        self.stop_requested = False
        self.retry_requested = False
        self.epochs_completed = 0

    # ------------------------------------------------------------------
    def request_stop(self) -> None:
        """Ask the loop to stop after the current epoch completes."""
        self.stop_requested = True

    def request_retry(self) -> None:
        """Ask the loop to re-run the current epoch instead of advancing.

        Meant for callbacks that restored a snapshot after a failed epoch
        (see :class:`~repro.engine.callbacks.NumericalHealthGuard`): the
        loop fires ``on_epoch_rollback`` on every callback — so history
        and timing records of the discarded epoch are dropped — and then
        executes the same epoch index again.
        """
        self.retry_requested = True

    def notify_batch(
        self, epoch: int, phase: Phase, batch_index: int, loss: float
    ) -> None:
        """Fire ``on_batch_end`` (called by phases that see batches)."""
        for callback in self.callbacks:
            callback.on_batch_end(self, epoch, phase, batch_index, loss)

    # ------------------------------------------------------------------
    # checkpoint/resume support
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """The loop's own training state: epoch counter, loss history,
        and timing records — everything :meth:`run` accumulates that a
        resumed run must carry forward for its :class:`LoopResult` to
        match an uninterrupted run."""
        return {
            "epochs_completed": self.epochs_completed,
            "history": {
                name: [dict(entry) for entry in entries]
                for name, entries in self._loss_history.history.items()
            },
            "timings": dict(self._timer.totals),
            "epoch_timings": {
                name: list(values)
                for name, values in self._timer.epochs.items()
            },
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`state_dict`."""
        missing = {"epochs_completed", "history", "timings", "epoch_timings"}
        missing -= set(state)
        if missing:
            raise ValueError(
                f"loop state is missing keys: {sorted(missing)}"
            )
        self.epochs_completed = int(state["epochs_completed"])
        self._loss_history.history = {
            name: [dict(entry) for entry in entries]
            for name, entries in state["history"].items()
        }
        self._timer.totals = dict(state["timings"])
        self._timer.epochs = {
            name: list(values)
            for name, values in state["epoch_timings"].items()
        }

    def resume(self, num_epochs: int, state: dict) -> LoopResult:
        """Restore ``state`` and continue to ``num_epochs`` total epochs.

        The returned :class:`LoopResult` covers the *whole* run — the
        restored epochs plus the freshly executed ones — so a resumed
        run's history is directly comparable to an uninterrupted run's.
        """
        self.load_state_dict(state)
        return self.run(num_epochs, start_epoch=self.epochs_completed)

    # ------------------------------------------------------------------
    def run(self, num_epochs: int, start_epoch: int = 0) -> LoopResult:
        """Execute epochs ``start_epoch..num_epochs-1`` and return the
        result (``start_epoch > 0`` is the resume path — the loop assumes
        the caller restored the matching state first)."""
        if num_epochs < 0:
            raise ValueError(f"num_epochs must be >= 0, got {num_epochs}")
        if not 0 <= start_epoch <= num_epochs:
            raise ValueError(
                f"start_epoch must be in [0, {num_epochs}], got {start_epoch}"
            )
        self.num_epochs = num_epochs
        self.stop_requested = False
        self.retry_requested = False
        self.epochs_completed = start_epoch
        for callback in self.callbacks:
            callback.on_train_begin(self)
        epoch = start_epoch
        with self.tracer.span(
            "run", kind="run", start_epoch=start_epoch, num_epochs=num_epochs
        ):
            while epoch < num_epochs:
                with self.tracer.span(
                    "epoch", kind="epoch", epoch=epoch
                ) as epoch_span:
                    for callback in self.callbacks:
                        callback.on_epoch_begin(self, epoch)
                    logs: EpochLogs = {}
                    for phase in self.phases:
                        for callback in self.callbacks:
                            callback.on_phase_begin(self, epoch, phase)
                        with self.tracer.span(
                            phase.name, kind="phase", epoch=epoch
                        ) as phase_span:
                            losses = phase.run(self, epoch)
                        for callback in self.callbacks:
                            callback.on_phase_end(self, epoch, phase, losses)
                        logs[phase.name] = losses
                        if self.metrics.enabled:
                            for loss_name, value in losses.items():
                                self.metrics.observe(
                                    f"phase/{phase.name}/{loss_name}", value
                                )
                            if phase_span is not None:
                                self.metrics.observe(
                                    f"phase/{phase.name}/seconds",
                                    phase_span.duration_s,
                                )
                    for callback in self.callbacks:
                        callback.on_epoch_end(self, epoch, logs)
                    if self.retry_requested:
                        if epoch_span is not None:
                            epoch_span.attributes["rolled_back"] = True
                if self.retry_requested:
                    self.retry_requested = False
                    for callback in self.callbacks:
                        callback.on_epoch_rollback(self, epoch)
                    self.metrics.counter("loop/rollbacks")
                    self.metrics.event("epoch_rollback", epoch=epoch)
                    continue
                epoch += 1
                self.epochs_completed = epoch
                if self.stop_requested:
                    self.metrics.event("early_stop", epoch=epoch)
                    break
        for callback in self.callbacks:
            callback.on_train_end(self)
        self.metrics.gauge("loop/epochs_completed", self.epochs_completed)
        return LoopResult(
            history={
                name: list(entries)
                for name, entries in self._loss_history.history.items()
            },
            timings=dict(self._timer.totals),
            epoch_timings={
                name: list(values)
                for name, values in self._timer.epochs.items()
            },
            epochs_run=self.epochs_completed,
            stopped_early=self.stop_requested,
        )
