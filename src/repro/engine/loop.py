"""The shared training loop: epochs of named phases, observed by callbacks.

Algorithm 1 of the paper alternates a single-view skip-gram step and a
cross-view dual-learning step inside one outer loop; the SGNS baselines
are the degenerate case of a single phase.  :class:`TrainingLoop` models
exactly that shape — an ordered list of :class:`Phase` objects executed
once per epoch — and owns the bookkeeping every trainer used to hand-roll:
loss history, per-phase wall-clock timing, early stopping, learning-rate
scheduling, and progress reporting all attach as
:class:`~repro.engine.callbacks.Callback` hooks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.engine.callbacks import Callback, EpochLogs, LossHistory, PhaseTimer

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.pipeline import BatchSource


class Phase:
    """One named unit of per-epoch work.

    Subclasses implement :meth:`run` returning the phase's named losses
    for the epoch (an empty dict when there was nothing to train on).
    """

    def __init__(self, name: str) -> None:
        if not name:
            raise ValueError("phases need a non-empty name")
        self.name = name

    def run(self, loop: "TrainingLoop", epoch: int) -> dict[str, float]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r})"


class CallablePhase(Phase):
    """Adapts a plain function ``(loop, epoch) -> losses`` into a Phase.

    The function may return a dict of named losses, a bare float (stored
    under ``"loss"``), or ``None`` (no losses this epoch).
    """

    def __init__(
        self,
        name: str,
        fn: Callable[["TrainingLoop", int], dict[str, float] | float | None],
    ) -> None:
        super().__init__(name)
        self.fn = fn

    def run(self, loop: "TrainingLoop", epoch: int) -> dict[str, float]:
        result = self.fn(loop, epoch)
        if result is None:
            return {}
        if isinstance(result, dict):
            return result
        return {"loss": float(result)}


class SkipGramPhase(Phase):
    """Streams a :class:`~repro.engine.pipeline.BatchSource` through a
    :class:`~repro.skipgram.trainer.SkipGramTrainer`.

    The learning rate lives on the phase (``self.lr``) so scheduling
    callbacks can adjust it between epochs.
    """

    def __init__(
        self,
        name: str,
        pipeline: "BatchSource",
        trainer,
        lr: float,
    ) -> None:
        super().__init__(name)
        self.pipeline = pipeline
        self.trainer = trainer
        self.lr = lr

    def run(self, loop: "TrainingLoop", epoch: int) -> dict[str, float]:
        total, batches = 0.0, 0
        for batch in self.pipeline.epoch():
            loss = self.trainer.train_batch(
                batch.centers, batch.contexts, batch.negatives, lr=self.lr
            )
            loop.notify_batch(epoch, self, batches, loss)
            total += loss
            batches += 1
        if batches == 0:
            return {}
        return {"loss": total / batches}


@dataclass
class LoopResult:
    """What a finished :meth:`TrainingLoop.run` hands back.

    Attributes:
        history: phase name -> one named-loss dict per epoch.
        timings: phase name -> cumulative wall-clock seconds.
        epoch_timings: phase name -> per-epoch wall-clock seconds.
        epochs_run: epochs actually executed (may be fewer than requested
            when a callback stopped the run).
        stopped_early: whether a callback requested the stop.
    """

    history: dict[str, list[dict[str, float]]] = field(default_factory=dict)
    timings: dict[str, float] = field(default_factory=dict)
    epoch_timings: dict[str, list[float]] = field(default_factory=dict)
    epochs_run: int = 0
    stopped_early: bool = False

    def series(self, phase_name: str, loss_name: str = "loss") -> list[float]:
        """One loss as a flat series, skipping epochs that lack it."""
        return [
            entry[loss_name]
            for entry in self.history.get(phase_name, [])
            if loss_name in entry
        ]


class TrainingLoop:
    """Runs phases for a number of epochs, firing callbacks throughout.

    Args:
        phases: the ordered per-epoch work units.
        callbacks: user hooks; a :class:`LossHistory` and a
            :class:`PhaseTimer` are always attached internally (first in
            the firing order) to populate the :class:`LoopResult`.
    """

    def __init__(
        self,
        phases: list[Phase],
        callbacks: list[Callback] | tuple[Callback, ...] = (),
    ) -> None:
        if not phases:
            raise ValueError("a training loop needs at least one phase")
        names = [p.name for p in phases]
        if len(set(names)) != len(names):
            raise ValueError(f"phase names must be unique, got {names}")
        self.phases = list(phases)
        self._loss_history = LossHistory()
        self._timer = PhaseTimer()
        self.callbacks: list[Callback] = [
            self._loss_history,
            self._timer,
            *callbacks,
        ]
        self.num_epochs = 0
        self.stop_requested = False

    # ------------------------------------------------------------------
    def request_stop(self) -> None:
        """Ask the loop to stop after the current epoch completes."""
        self.stop_requested = True

    def notify_batch(
        self, epoch: int, phase: Phase, batch_index: int, loss: float
    ) -> None:
        """Fire ``on_batch_end`` (called by phases that see batches)."""
        for callback in self.callbacks:
            callback.on_batch_end(self, epoch, phase, batch_index, loss)

    # ------------------------------------------------------------------
    def run(self, num_epochs: int) -> LoopResult:
        """Execute up to ``num_epochs`` epochs and return the result."""
        if num_epochs < 0:
            raise ValueError(f"num_epochs must be >= 0, got {num_epochs}")
        self.num_epochs = num_epochs
        self.stop_requested = False
        epochs_run = 0
        for callback in self.callbacks:
            callback.on_train_begin(self)
        for epoch in range(num_epochs):
            for callback in self.callbacks:
                callback.on_epoch_begin(self, epoch)
            logs: EpochLogs = {}
            for phase in self.phases:
                for callback in self.callbacks:
                    callback.on_phase_begin(self, epoch, phase)
                losses = phase.run(self, epoch)
                for callback in self.callbacks:
                    callback.on_phase_end(self, epoch, phase, losses)
                logs[phase.name] = losses
            for callback in self.callbacks:
                callback.on_epoch_end(self, epoch, logs)
            epochs_run += 1
            if self.stop_requested:
                break
        for callback in self.callbacks:
            callback.on_train_end(self)
        return LoopResult(
            history={
                name: list(entries)
                for name, entries in self._loss_history.history.items()
            },
            timings=dict(self._timer.totals),
            epoch_timings={
                name: list(values)
                for name, values in self._timer.epochs.items()
            },
            epochs_run=epochs_run,
            stopped_early=self.stop_requested,
        )
