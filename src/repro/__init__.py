"""repro — a full reproduction of *TransN: Heterogeneous Network
Representation Learning by Translating Node Embeddings* (ICDE 2020).

Quickstart:
    >>> from repro import TransN, TransNConfig
    >>> from repro.datasets import make_aminer
    >>> graph, labels = make_aminer()
    >>> model = TransN(graph, TransNConfig(num_iterations=2))
    >>> embeddings = model.fit_transform()

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.core import TransN, TransNConfig
from repro.graph import HeteroGraph

__version__ = "1.0.0"

__all__ = ["TransN", "TransNConfig", "HeteroGraph", "__version__"]
