"""Case study (Section IV-D, Figure 6).

The paper samples ten applets per category from App-Daily, projects their
embeddings to 2-D with t-SNE, and judges cluster separation visually.  We
regenerate the same projection and replace the visual judgement with the
silhouette score over (a) the original embeddings and (b) the 2-D
projection — higher means better-separated categories, i.e. "the plot
looks cleaner".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.base import Embeddings
from repro.graph.heterograph import NodeId
from repro.ml import TSNE, silhouette_score


@dataclass(frozen=True)
class CaseStudyResult:
    """Figure 6 artefacts for one method."""

    nodes: list[NodeId]
    labels: list[object]
    projection: np.ndarray  # (n, 2) t-SNE coordinates
    silhouette_embedding: float
    silhouette_projection: float


def select_case_nodes(
    labels: dict[NodeId, object],
    per_category: int = 10,
    seed: int = 0,
) -> list[NodeId]:
    """Sample ``per_category`` labelled nodes from every category."""
    rng = np.random.default_rng(seed)
    by_category: dict[object, list[NodeId]] = {}
    for node, label in labels.items():
        by_category.setdefault(label, []).append(node)
    selected: list[NodeId] = []
    for label in sorted(by_category, key=str):
        pool = sorted(by_category[label], key=str)
        take = min(per_category, len(pool))
        picks = rng.choice(len(pool), size=take, replace=False)
        selected.extend(pool[int(i)] for i in picks)
    return selected


def run_case_study(
    embeddings: Embeddings,
    labels: dict[NodeId, object],
    per_category: int = 10,
    seed: int = 0,
    perplexity: float | None = None,
    normalize: bool = True,
) -> CaseStudyResult:
    """Project sampled nodes with t-SNE and score category separation.

    Embeddings are L2-normalized by default: similarity between
    embeddings is measured by inner products throughout the evaluation
    (Section IV-B2), so the case study should reflect angular structure
    rather than norm differences, which otherwise dominate euclidean
    silhouettes and t-SNE distances.
    """
    nodes = [
        n for n in select_case_nodes(labels, per_category, seed)
        if n in embeddings
    ]
    if len(nodes) < 10:
        raise ValueError("too few labelled embedded nodes for a case study")
    x = np.vstack([embeddings[n] for n in nodes])
    if normalize:
        x = x / (np.linalg.norm(x, axis=1, keepdims=True) + 1e-12)
    y = np.asarray([labels[n] for n in nodes])
    if perplexity is None:
        perplexity = max(2.0, min(15.0, (len(nodes) - 2) / 3.5))
    tsne = TSNE(perplexity=perplexity, seed=seed)
    projection = tsne.fit_transform(x)
    return CaseStudyResult(
        nodes=nodes,
        labels=list(y),
        projection=projection,
        silhouette_embedding=silhouette_score(x, y),
        silhouette_projection=silhouette_score(projection, y),
    )
