"""Evaluation pipelines reproducing Section IV.

- :mod:`~repro.eval.node_classification` — the Table III/V protocol:
  90/10 split, logistic regression, micro/macro F1, averaged over
  repeats.
- :mod:`~repro.eval.link_prediction` — the Table IV protocol: remove 40%
  of the edges, train on the rest, score candidate pairs by embedding
  inner product, report ROC-AUC.
- :mod:`~repro.eval.case_study` — the Figure 6 protocol: sample applets
  per category, project embeddings with t-SNE, quantify cluster
  separation with the silhouette score.
- :mod:`~repro.eval.methods` — the registry of all methods (TransN, its
  five Table V ablations, and the seven baselines) with per-dataset
  settings such as metapaths.
"""

from repro.eval.case_study import CaseStudyResult, run_case_study
from repro.eval.clustering import ClusteringResult, run_clustering
from repro.eval.robustness import RobustnessPoint, inject_noise_edges, run_noise_sweep
from repro.eval.link_prediction import LinkPredictionResult, run_link_prediction
from repro.eval.methods import (
    TransNMethod,
    ablation_methods,
    baseline_methods,
    method_registry,
)
from repro.eval.node_classification import (
    NodeClassificationResult,
    run_node_classification,
)

__all__ = [
    "run_node_classification",
    "run_clustering",
    "ClusteringResult",
    "run_noise_sweep",
    "inject_noise_edges",
    "RobustnessPoint",
    "NodeClassificationResult",
    "run_link_prediction",
    "LinkPredictionResult",
    "run_case_study",
    "CaseStudyResult",
    "TransNMethod",
    "method_registry",
    "baseline_methods",
    "ablation_methods",
]
