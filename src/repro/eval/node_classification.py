"""Node classification (Section IV-B1, Tables III and V).

Protocol: learn embeddings once; then for each of ``repeats`` rounds,
randomly split labelled nodes 90/10, train a logistic-regression
classifier on the 90% and report micro/macro F1 on the 10%; average over
rounds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.base import Embeddings
from repro.graph.heterograph import NodeId
from repro.ml import LogisticRegression, f1_scores, train_test_split


@dataclass(frozen=True)
class NodeClassificationResult:
    """Averaged F1 of one method on one dataset."""

    macro_f1: float
    micro_f1: float
    macro_std: float
    micro_std: float
    repeats: int

    def as_row(self) -> dict[str, float]:
        return {"Macro-F1": self.macro_f1, "Micro-F1": self.micro_f1}


def run_node_classification(
    embeddings: Embeddings,
    labels: dict[NodeId, object],
    train_fraction: float = 0.9,
    repeats: int = 10,
    seed: int = 0,
) -> NodeClassificationResult:
    """Evaluate ``embeddings`` against ``labels`` under the paper protocol.

    Args:
        embeddings: node -> vector (from any :class:`EmbeddingMethod`).
        labels: node -> class label; only labelled nodes participate.
        train_fraction: 0.9 in the paper.
        repeats: 10 in the paper.
        seed: split randomness.
    """
    nodes = [n for n in labels if n in embeddings]
    if len(nodes) < 10:
        raise ValueError(f"too few labelled embedded nodes ({len(nodes)})")
    x = np.vstack([embeddings[n] for n in nodes])
    y = np.asarray([labels[n] for n in nodes])
    rng = np.random.default_rng(seed)

    micro, macro = [], []
    for _ in range(repeats):
        train_idx, test_idx = train_test_split(
            len(nodes), train_fraction, rng, stratify=y
        )
        if test_idx.size == 0 or np.unique(y[train_idx]).size < 2:
            continue
        classifier = LogisticRegression()
        classifier.fit(x[train_idx], y[train_idx])
        predicted = classifier.predict(x[test_idx])
        scores = f1_scores(y[test_idx], predicted)
        micro.append(scores.micro)
        macro.append(scores.macro)
    if not micro:
        raise RuntimeError("no valid evaluation round was produced")
    return NodeClassificationResult(
        macro_f1=float(np.mean(macro)),
        micro_f1=float(np.mean(micro)),
        macro_std=float(np.std(macro)),
        micro_std=float(np.std(micro)),
        repeats=len(micro),
    )
