"""Node clustering — extension task beyond the paper's evaluation.

The network-embedding literature routinely adds unsupervised node
clustering (k-means on the embeddings, scored by NMI against ground-truth
labels) as a third task next to classification and link prediction.  The
paper stops at two; this module provides the third for the same method
interface, and ``benchmarks/bench_ext_clustering.py`` runs it across the
datasets as an extension experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.base import Embeddings
from repro.graph.heterograph import NodeId
from repro.ml.kmeans import KMeans, normalized_mutual_information


@dataclass(frozen=True)
class ClusteringResult:
    """NMI of one method on one dataset."""

    nmi: float
    num_clusters: int
    num_nodes: int


def run_clustering(
    embeddings: Embeddings,
    labels: dict[NodeId, object],
    seed: int = 0,
    num_init: int = 4,
) -> ClusteringResult:
    """K-means the labelled nodes' embeddings; score NMI vs labels.

    k is set to the number of ground-truth classes, the standard protocol.
    """
    nodes = [n for n in labels if n in embeddings]
    if len(nodes) < 10:
        raise ValueError(f"too few labelled embedded nodes ({len(nodes)})")
    x = np.vstack([embeddings[n] for n in nodes])
    y = np.asarray([labels[n] for n in nodes])
    k = np.unique(y).size
    if k < 2:
        raise ValueError("need at least two ground-truth classes")
    predicted = KMeans(num_clusters=k, num_init=num_init, seed=seed).fit_predict(x)
    return ClusteringResult(
        nmi=normalized_mutual_information(y, predicted),
        num_clusters=k,
        num_nodes=len(nodes),
    )
