"""Noise-robustness — extension experiment beyond the paper.

The paper motivates view separation with the observation that individual
views (and, implicitly, real networks) are noisy.  This module measures
that directly: inject a growing fraction of *random* edges of an existing
edge type into the network, retrain, and track classification F1.  A
method that isolates edge types per view should degrade more gracefully
when one type's noise grows than a method that mixes all types into one
context distribution.

``benchmarks/bench_ext_robustness.py`` runs the sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.baselines.base import EmbeddingMethod
from repro.eval.node_classification import run_node_classification
from repro.graph.heterograph import HeteroGraph, NodeId


@dataclass(frozen=True)
class RobustnessPoint:
    """One point of the noise sweep."""

    noise_fraction: float
    macro_f1: float
    micro_f1: float
    num_edges: int


def inject_noise_edges(
    graph: HeteroGraph,
    edge_type: str,
    fraction: float,
    seed: int = 0,
) -> HeteroGraph:
    """Copy ``graph`` and add ``fraction * |E_type|`` random edges.

    New edges reuse ``edge_type`` and connect uniformly random node pairs
    whose types match an existing edge of that type (so the view stays a
    valid homo-/heter-view).  Weights are drawn uniformly from the
    existing weight range.
    """
    if fraction < 0:
        raise ValueError("fraction must be >= 0")
    existing = graph.edges_of_type(edge_type)
    if not existing:
        raise ValueError(f"graph has no edges of type {edge_type!r}")
    rng = np.random.default_rng(seed)

    end_types = {
        frozenset((graph.node_type(e.u), graph.node_type(e.v)))
        for e in existing
    }
    weights = np.array([e.weight for e in existing])
    lo, hi = float(weights.min()), float(weights.max())

    noisy = HeteroGraph()
    for node in graph.nodes:
        noisy.add_node(node, graph.node_type(node))
    for edge in graph.edges:
        noisy.add_edge(edge.u, edge.v, edge.edge_type, edge.weight)

    type_pair = sorted(next(iter(end_types)))
    if len(type_pair) == 1:
        side_a = side_b = graph.nodes_of_type(type_pair[0])
    else:
        side_a = graph.nodes_of_type(type_pair[0])
        side_b = graph.nodes_of_type(type_pair[1])
    num_new = int(round(fraction * len(existing)))
    added = 0
    attempts = 0
    while added < num_new and attempts < 100 * max(num_new, 1):
        attempts += 1
        u = side_a[int(rng.integers(len(side_a)))]
        v = side_b[int(rng.integers(len(side_b)))]
        if u == v:
            continue
        weight = float(rng.uniform(lo, hi)) if hi > lo else lo
        noisy.add_edge(u, v, edge_type, weight)
        added += 1
    return noisy


def run_noise_sweep(
    method_factory: Callable[[], EmbeddingMethod],
    graph: HeteroGraph,
    labels: dict[NodeId, object],
    edge_type: str,
    fractions: list[float],
    seed: int = 0,
    repeats: int = 5,
) -> list[RobustnessPoint]:
    """Retrain and evaluate at each noise fraction."""
    points = []
    for fraction in fractions:
        noisy = (
            graph
            if fraction == 0
            else inject_noise_edges(graph, edge_type, fraction, seed=seed)
        )
        embeddings = method_factory().fit(noisy)
        result = run_node_classification(
            embeddings, labels, repeats=repeats, seed=seed
        )
        points.append(
            RobustnessPoint(
                noise_fraction=fraction,
                macro_f1=result.macro_f1,
                micro_f1=result.micro_f1,
                num_edges=noisy.num_edges,
            )
        )
    return points
