"""Link prediction (Section IV-B2, Table IV).

Protocol: remove ``removal_fraction`` (paper: 40%) of the edges uniformly
at random; sample an equal number of non-adjacent node pairs as negatives;
train embeddings on the *remaining* subnetwork; score every candidate pair
by the inner product of its end-node embeddings; report ROC-AUC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.baselines.base import EmbeddingMethod
from repro.graph.heterograph import HeteroGraph, NodeId
from repro.ml import roc_auc_score


@dataclass(frozen=True)
class LinkPredictionSplit:
    """A reproducible link-prediction instance."""

    train_graph: HeteroGraph
    positive_pairs: list[tuple[NodeId, NodeId]]
    negative_pairs: list[tuple[NodeId, NodeId]]


@dataclass(frozen=True)
class LinkPredictionResult:
    """AUC of one method on one dataset."""

    auc: float
    num_positive: int
    num_negative: int


def make_split(
    graph: HeteroGraph,
    removal_fraction: float = 0.4,
    seed: int = 0,
) -> LinkPredictionSplit:
    """Build the train graph + positive/negative evaluation pairs."""
    if not 0.0 < removal_fraction < 1.0:
        raise ValueError("removal_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    edges = list(graph.edges)
    num_remove = max(1, int(round(removal_fraction * len(edges))))
    removed_idx = rng.choice(len(edges), size=num_remove, replace=False)
    removed = [edges[int(i)] for i in removed_idx]
    train_graph = graph.without_edges(removed)

    positives = [(e.u, e.v) for e in removed]
    nodes = list(graph.nodes)
    negatives: list[tuple[NodeId, NodeId]] = []
    attempts = 0
    while len(negatives) < len(positives) and attempts < 100 * len(positives):
        attempts += 1
        u = nodes[int(rng.integers(len(nodes)))]
        v = nodes[int(rng.integers(len(nodes)))]
        if u != v and not graph.has_edge(u, v):
            negatives.append((u, v))
    if len(negatives) < len(positives):
        raise RuntimeError("could not sample enough non-adjacent pairs")
    return LinkPredictionSplit(train_graph, positives, negatives)


def run_link_prediction(
    method_factory: Callable[[], EmbeddingMethod],
    graph: HeteroGraph,
    removal_fraction: float = 0.4,
    seed: int = 0,
    split: LinkPredictionSplit | None = None,
) -> LinkPredictionResult:
    """Train ``method_factory()`` on the reduced graph and report AUC.

    Passing a precomputed ``split`` lets callers evaluate many methods on
    the identical instance (what the benchmark harness does).
    """
    if split is None:
        split = make_split(graph, removal_fraction, seed)
    method = method_factory()
    embeddings = method.fit(split.train_graph)

    def score(u: NodeId, v: NodeId) -> float:
        return float(np.dot(embeddings[u], embeddings[v]))

    scores = np.array(
        [score(u, v) for u, v in split.positive_pairs]
        + [score(u, v) for u, v in split.negative_pairs]
    )
    truth = np.array(
        [1] * len(split.positive_pairs) + [0] * len(split.negative_pairs)
    )
    return LinkPredictionResult(
        auc=roc_auc_score(truth, scores),
        num_positive=len(split.positive_pairs),
        num_negative=len(split.negative_pairs),
    )
