"""The method registry used by benchmarks and integration tests.

``method_registry(dataset)`` returns name -> zero-argument factory for the
eight Table III/IV methods; ``ablation_methods()`` the six Table V rows.
Per-dataset settings (Metapath2Vec's metapath, chiefly) mirror Section
IV-A3: "APVPA" on AMiner, "UKU" on BLOG, "AUAKA"-style on the app stores —
expressed over this repo's type names.
"""

from __future__ import annotations

from typing import Callable

from repro.baselines import (
    LINE,
    MVE,
    RGCN,
    DeepWalk,
    EmbeddingMethod,
    HIN2Vec,
    Metapath2Vec,
    Node2Vec,
    SimplE,
)
from repro.baselines.base import Embeddings
from repro.core import TransN, TransNConfig
from repro.graph.heterograph import HeteroGraph

MethodFactory = Callable[[], EmbeddingMethod]

# metapaths per dataset, over this repo's node-type names
_METAPATHS: dict[str, list[str]] = {
    "aminer": ["paper", "author", "paper", "venue", "paper"],
    "blog": ["user", "keyword", "user"],
    "app-daily": ["applet", "user", "applet", "keyword", "applet"],
    "app-weekly": ["applet", "user", "applet", "keyword", "applet"],
}


class TransNMethod(EmbeddingMethod):
    """Adapter exposing :class:`repro.core.TransN` as an EmbeddingMethod.

    Args:
        config: model hyper-parameters (including ``checkpoint_every``
            and ``health_policy``, which govern the fault-tolerance layer).
        name: registry display name (Table V variants override it).
        checkpoint_dir: when set, training snapshots into this directory
            (see :meth:`repro.core.TransN.fit`).
        resume: continue from the newest valid checkpoint in
            ``checkpoint_dir`` instead of starting fresh.
        report: path of a run report to write (observability layer);
            equivalent to calling :meth:`enable_report` afterwards.
        trace_memory: include ``tracemalloc`` peaks in the report spans.
    """

    name = "TransN"

    def __init__(
        self,
        config: TransNConfig | None = None,
        name: str | None = None,
        checkpoint_dir: str | None = None,
        resume: bool = False,
        report: str | None = None,
        trace_memory: bool = False,
    ) -> None:
        config = config or TransNConfig()
        super().__init__(
            dim=config.dim,
            seed=config.seed,
            report=report,
            trace_memory=trace_memory,
        )
        self.config = config
        self.checkpoint_dir = checkpoint_dir
        self.resume = resume
        if name is not None:
            self.name = name

    def fit(self, graph: HeteroGraph) -> Embeddings:
        model = TransN(graph, self.config)
        # hand the model this adapter's registry/tracer so enable_report
        # observes TransN's own fit (the model writes the report itself,
        # with model/config/graph metadata richer than the generic one)
        try:
            model.fit(
                callbacks=self.callbacks,
                checkpoint=self.checkpoint_dir,
                resume=self.resume,
                report=self.report_path,
                metrics=self.metrics if self.metrics.enabled else None,
                tracer=self.tracer if self.tracer.enabled else None,
            )
        finally:
            self.tracer.close()
        self.last_run_ = model.last_run
        return model.embeddings()


def baseline_methods(
    dataset: str, dim: int = 32, seed: int = 0
) -> dict[str, MethodFactory]:
    """The seven competitors of Tables III/IV, configured for ``dataset``."""
    key = dataset.lower()
    if key not in _METAPATHS:
        raise ValueError(
            f"unknown dataset {dataset!r}; expected one of {sorted(_METAPATHS)}"
        )
    metapath = _METAPATHS[key]
    return {
        "LINE": lambda: LINE(dim=dim, seed=seed),
        "Node2Vec": lambda: Node2Vec(dim=dim, seed=seed),
        "Metapath2Vec": lambda: Metapath2Vec(metapath, dim=dim, seed=seed),
        "HIN2VEC": lambda: HIN2Vec(dim=dim, seed=seed),
        "MVE": lambda: MVE(dim=dim, seed=seed),
        "R-GCN": lambda: RGCN(dim=dim, seed=seed),
        "SimplE": lambda: SimplE(dim=dim, seed=seed),
    }


def method_registry(
    dataset: str,
    dim: int = 32,
    seed: int = 0,
    transn_config: TransNConfig | None = None,
) -> dict[str, MethodFactory]:
    """All eight methods, TransN last (Table III/IV row order)."""
    config = transn_config or TransNConfig(dim=dim, seed=seed)
    methods = baseline_methods(dataset, dim=dim, seed=seed)
    methods["TransN"] = lambda: TransNMethod(config)
    return methods


def ablation_methods(
    dim: int = 32,
    seed: int = 0,
    base_config: TransNConfig | None = None,
) -> dict[str, MethodFactory]:
    """The six Table V rows (five degenerated variants + full TransN)."""
    base = base_config or TransNConfig(dim=dim, seed=seed)
    return {
        "TransN-Without-Cross-View": lambda: TransNMethod(
            base.without_cross_view(), name="TransN-Without-Cross-View"
        ),
        "TransN-With-Simple-Walk": lambda: TransNMethod(
            base.with_simple_walk(), name="TransN-With-Simple-Walk"
        ),
        "TransN-With-Simple-Translator": lambda: TransNMethod(
            base.with_simple_translator(), name="TransN-With-Simple-Translator"
        ),
        "TransN-Without-Translation-Tasks": lambda: TransNMethod(
            base.without_translation_tasks(),
            name="TransN-Without-Translation-Tasks",
        ),
        "TransN-Without-Reconstruction-Tasks": lambda: TransNMethod(
            base.without_reconstruction_tasks(),
            name="TransN-Without-Reconstruction-Tasks",
        ),
        "TransN": lambda: TransNMethod(base),
    }
