"""Composite differentiable functions built from Tensor primitives."""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import Tensor


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``.

    The max-shift is a constant w.r.t. the graph (detached), which leaves
    the gradient unchanged because softmax is shift-invariant.
    """
    shift = Tensor(x.data.max(axis=axis, keepdims=True))
    exps = (x - shift).exp()
    return exps / exps.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """log(softmax(x)) computed stably via the log-sum-exp trick."""
    shift = Tensor(x.data.max(axis=axis, keepdims=True))
    shifted = x - shift
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def sigmoid(x: Tensor) -> Tensor:
    """Elementwise logistic function, stable for large |x|."""
    # sigma(x) = 0.5 * (tanh(x / 2) + 1) avoids overflow in exp
    return (x * 0.5).tanh() * 0.5 + 0.5


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean categorical cross-entropy of ``logits`` (rows) vs class indices."""
    targets = np.asarray(targets, dtype=np.int64)
    if logits.ndim != 2:
        raise ValueError("logits must be 2-D (batch, classes)")
    if targets.shape != (logits.shape[0],):
        raise ValueError("targets must have one class index per logit row")
    logp = log_softmax(logits, axis=-1)
    mask = np.zeros(logits.shape)
    mask[np.arange(targets.size), targets] = 1.0
    picked = (logp * Tensor(mask)).sum(axis=-1)
    return -picked.mean()


def mse_loss(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean squared error over all elements."""
    diff = prediction - target
    return (diff * diff).mean()


def l2_normalize_rows(x: Tensor, eps: float = 1e-12) -> Tensor:
    """Normalize rows (the last axis) to unit L2 norm (differentiably).

    Works on any leading batch shape: a ``(N, p, d)`` tensor normalizes
    each of its ``N * p`` rows independently.
    """
    norms = (x * x).sum(axis=-1, keepdims=True).clip_min(eps).sqrt()
    return x / norms
