"""Reverse-mode automatic differentiation over numpy arrays.

The paper implements its translators (self-attention + feed-forward encoder
stacks) and the R-GCN baseline with a deep-learning framework.  Offline we
provide the same capability with a compact tape-based autograd engine:

- :class:`~repro.autograd.tensor.Tensor` wraps a numpy array, records the
  operations applied to it, and back-propagates gradients with
  :meth:`~repro.autograd.tensor.Tensor.backward`.
- :mod:`~repro.autograd.functional` adds composite ops (softmax, log-softmax,
  cross-entropy) built from the primitives.
- :func:`~repro.autograd.gradcheck.gradcheck` verifies any scalar-valued
  graph against central finite differences; the test-suite runs it over
  every primitive.
"""

from repro.autograd.functional import (
    cross_entropy,
    log_softmax,
    mse_loss,
    sigmoid,
    softmax,
)
from repro.autograd.gradcheck import gradcheck
from repro.autograd.tensor import Tensor, no_grad

__all__ = [
    "Tensor",
    "no_grad",
    "softmax",
    "log_softmax",
    "sigmoid",
    "cross_entropy",
    "mse_loss",
    "gradcheck",
]
