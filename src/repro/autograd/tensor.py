"""The :class:`Tensor` primitive: numpy arrays with a gradient tape.

The implementation is deliberately small and explicit: every primitive op
creates a child tensor holding a closure that knows how to push the child's
gradient back to its parents.  ``backward()`` topologically sorts the tape
and runs the closures once each.

Broadcasting is fully supported: gradients flowing into a parent whose
shape was broadcast are summed over the broadcast axes (``_unbroadcast``).
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable

import numpy as np

_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad():
    """Context manager that disables tape recording (like torch.no_grad)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` after numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # sum over leading axes added by broadcasting
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # sum over axes that were 1 in the original shape
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array plus (optionally) a gradient and a tape entry.

    Example:
        >>> x = Tensor([[1.0, 2.0]], requires_grad=True)
        >>> y = (x * x).sum()
        >>> y.backward()
        >>> x.grad.tolist()
        [[2.0, 4.0]]
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward")

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        _parents: tuple["Tensor", ...] = (),
        _backward: Callable[[np.ndarray], None] | None = None,
    ) -> None:
        # floating dtypes pass through (float32 mode); everything else —
        # ints, bools, python lists — lands on the float64 default
        array = np.asarray(data)
        if not np.issubdtype(array.dtype, np.floating):
            array = array.astype(np.float64)
        self.data = array
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self._parents = _parents if self.requires_grad else ()
        self._backward = _backward if self.requires_grad else None

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self) -> np.ndarray:
        """The underlying array (shared, not copied)."""
        return self.data

    def item(self) -> float:
        if self.data.size != 1:
            raise ValueError("item() requires a single-element tensor")
        return float(self.data.reshape(()))

    def detach(self) -> "Tensor":
        """A view of the same data cut off from the tape."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({self.data!r}{grad_flag})"

    # ------------------------------------------------------------------
    # autograd driver
    # ------------------------------------------------------------------
    def backward(self, grad: np.ndarray | None = None) -> None:
        """Back-propagate from this tensor.

        ``grad`` defaults to 1 for scalar tensors; non-scalar roots must
        pass an explicit output gradient.
        """
        if not self.requires_grad:
            raise RuntimeError("called backward() on a tensor without grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError(
                    "backward() without an explicit gradient is only "
                    "defined for scalar tensors"
                )
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)
        if grad.shape != self.data.shape:
            raise ValueError(
                f"gradient shape {grad.shape} does not match tensor "
                f"shape {self.data.shape}"
            )

        ordered: list[Tensor] = []
        seen: set[int] = set()

        def visit(node: "Tensor") -> None:
            stack = [(node, iter(node._parents))]
            if id(node) in seen:
                return
            seen.add(id(node))
            while stack:
                current, parents = stack[-1]
                advanced = False
                for parent in parents:
                    if id(parent) not in seen and parent.requires_grad:
                        seen.add(id(parent))
                        stack.append((parent, iter(parent._parents)))
                        advanced = True
                        break
                if not advanced:
                    ordered.append(current)
                    stack.pop()

        visit(self)

        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in reversed(ordered):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node.grad is None:
                node.grad = node_grad.copy()
            else:
                node.grad = node.grad + node_grad
            if node._backward is None:
                continue
            for parent, parent_grad in node._backward(node_grad):
                if not parent.requires_grad:
                    continue
                key = id(parent)
                if key in grads:
                    grads[key] = grads[key] + parent_grad
                else:
                    grads[key] = parent_grad

    # ------------------------------------------------------------------
    # primitive ops
    # ------------------------------------------------------------------
    def _coerce(self, other) -> "Tensor":
        if isinstance(other, Tensor):
            return other
        # scalars adopt this tensor's dtype: a python float becomes a 0-d
        # float64 array under plain asarray, which NEP 50 would promote a
        # float32 operand against, silently upcasting every scalar op
        if np.isscalar(other):
            return Tensor(np.asarray(other, dtype=self.data.dtype))
        return Tensor(other)

    def _make(
        self,
        data: np.ndarray,
        parents: Iterable["Tensor"],
        backward: Callable[[np.ndarray], list],
    ) -> "Tensor":
        parents = tuple(parents)
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        if not requires:
            return Tensor(data)
        return Tensor(data, requires_grad=True, _parents=parents, _backward=backward)

    def __add__(self, other) -> "Tensor":
        other = self._coerce(other)

        def backward(grad):
            return [
                (self, _unbroadcast(grad, self.shape)),
                (other, _unbroadcast(grad, other.shape)),
            ]

        return self._make(self.data + other.data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad):
            return [(self, -grad)]

        return self._make(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        other = self._coerce(other)

        def backward(grad):
            return [
                (self, _unbroadcast(grad, self.shape)),
                (other, _unbroadcast(-grad, other.shape)),
            ]

        return self._make(self.data - other.data, (self, other), backward)

    def __rsub__(self, other) -> "Tensor":
        return self._coerce(other).__sub__(self)

    def __mul__(self, other) -> "Tensor":
        other = self._coerce(other)

        def backward(grad):
            return [
                (self, _unbroadcast(grad * other.data, self.shape)),
                (other, _unbroadcast(grad * self.data, other.shape)),
            ]

        return self._make(self.data * other.data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._coerce(other)

        def backward(grad):
            return [
                (self, _unbroadcast(grad / other.data, self.shape)),
                (
                    other,
                    _unbroadcast(
                        -grad * self.data / (other.data**2), other.shape
                    ),
                ),
            ]

        return self._make(self.data / other.data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return self._coerce(other).__truediv__(self)

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")

        def backward(grad):
            return [(self, grad * exponent * self.data ** (exponent - 1))]

        return self._make(self.data**exponent, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        """Matrix product with numpy's batching semantics.

        Both operands may carry leading batch axes: ``(N, p, d) @ (N, d, p)``
        multiplies per batch element, and a 2-D operand broadcasts against a
        batched one (``(p, p) @ (N, p, d)``).  Gradients of broadcast
        operands are reduced over the batch axes by :func:`_unbroadcast`.
        """
        other = self._coerce(other)
        if self.ndim < 2 or other.ndim < 2:
            raise ValueError("matmul requires tensors with ndim >= 2")

        def backward(grad):
            grad_self = grad @ np.swapaxes(other.data, -1, -2)
            grad_other = np.swapaxes(self.data, -1, -2) @ grad
            return [
                (self, _unbroadcast(grad_self, self.shape)),
                (other, _unbroadcast(grad_other, other.shape)),
            ]

        return self._make(self.data @ other.data, (self, other), backward)

    # ------------------------------------------------------------------
    # shape ops
    # ------------------------------------------------------------------
    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def transpose(self, axis1: int = -2, axis2: int = -1) -> "Tensor":
        """Swap two axes (default: the last two, batch axes untouched)."""

        def backward(grad):
            return [(self, np.swapaxes(grad, axis1, axis2))]

        return self._make(np.swapaxes(self.data, axis1, axis2), (self,), backward)

    def reshape(self, *shape: int) -> "Tensor":
        original = self.shape

        def backward(grad):
            return [(self, grad.reshape(original))]

        return self._make(self.data.reshape(*shape), (self,), backward)

    # ------------------------------------------------------------------
    # reductions
    # ------------------------------------------------------------------
    def sum(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        def backward(grad):
            if axis is None:
                return [(self, np.broadcast_to(grad, self.shape).copy())]
            g = grad
            if not keepdims:
                g = np.expand_dims(g, axis)
            return [(self, np.broadcast_to(g, self.shape).copy())]

        return self._make(
            self.data.sum(axis=axis, keepdims=keepdims), (self,), backward
        )

    def mean(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.shape[a] for a in axis]))
        else:
            count = self.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    # ------------------------------------------------------------------
    # elementwise nonlinearities
    # ------------------------------------------------------------------
    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward(grad):
            return [(self, grad * mask)]

        return self._make(self.data * mask, (self,), backward)

    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad):
            return [(self, grad * out_data)]

        return self._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        def backward(grad):
            return [(self, grad / self.data)]

        return self._make(np.log(self.data), (self,), backward)

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def backward(grad):
            return [(self, grad * 0.5 / out_data)]

        return self._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad):
            return [(self, grad * (1.0 - out_data**2))]

        return self._make(out_data, (self,), backward)

    def clip_min(self, minimum: float) -> "Tensor":
        """Elementwise max(x, minimum) — used to stabilize norms/logs."""
        mask = self.data > minimum

        def backward(grad):
            return [(self, grad * mask)]

        return self._make(np.maximum(self.data, minimum), (self,), backward)

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)

        def backward(grad):
            return [(self, grad * sign)]

        return self._make(np.abs(self.data), (self,), backward)

    def maximum(self, other) -> "Tensor":
        """Elementwise max; ties route gradient to ``self`` (like numpy's
        left-bias convention in subgradient choices)."""
        other = self._coerce(other)
        take_self = self.data >= other.data

        def backward(grad):
            return [
                (self, _unbroadcast(grad * take_self, self.shape)),
                (other, _unbroadcast(grad * ~take_self, other.shape)),
            ]

        return self._make(
            np.maximum(self.data, other.data), (self, other), backward
        )

    def minimum(self, other) -> "Tensor":
        other = self._coerce(other)
        take_self = self.data <= other.data

        def backward(grad):
            return [
                (self, _unbroadcast(grad * take_self, self.shape)),
                (other, _unbroadcast(grad * ~take_self, other.shape)),
            ]

        return self._make(
            np.minimum(self.data, other.data), (self, other), backward
        )

    # ------------------------------------------------------------------
    # indexing and joining
    # ------------------------------------------------------------------
    @staticmethod
    def concat(tensors: list["Tensor"], axis: int = 0) -> "Tensor":
        """Concatenate tensors along ``axis`` with split backward."""
        if not tensors:
            raise ValueError("concat needs at least one tensor")
        sizes = [t.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def backward(grad):
            out = []
            for tensor, start, stop in zip(tensors, offsets, offsets[1:]):
                slicer = [slice(None)] * grad.ndim
                slicer[axis] = slice(start, stop)
                out.append((tensor, grad[tuple(slicer)]))
            return out

        data = np.concatenate([t.data for t in tensors], axis=axis)
        result = tensors[0]._make(data, tensors, backward)
        return result

    @staticmethod
    def stack(tensors: list["Tensor"], axis: int = 0) -> "Tensor":
        """Stack same-shaped tensors along a new axis."""
        if not tensors:
            raise ValueError("stack needs at least one tensor")

        def backward(grad):
            return [
                (tensor, np.take(grad, k, axis=axis))
                for k, tensor in enumerate(tensors)
            ]

        data = np.stack([t.data for t in tensors], axis=axis)
        return tensors[0]._make(data, tensors, backward)

    def take_rows(self, indices) -> "Tensor":
        """Gather rows (axis 0) by integer index, with scatter-add backward.

        This is the embedding-lookup primitive: duplicated indices
        accumulate gradient.
        """
        indices = np.asarray(indices, dtype=np.int64)

        def backward(grad):
            full = np.zeros_like(self.data)
            np.add.at(full, indices, grad)
            return [(self, full)]

        return self._make(self.data[indices], (self,), backward)
