"""Finite-difference gradient verification for the autograd engine."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.autograd.tensor import Tensor


def gradcheck(
    func: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    eps: float = 1e-6,
    atol: float = 1e-4,
    rtol: float = 1e-3,
) -> bool:
    """Compare autograd gradients of a scalar function to central differences.

    Args:
        func: callable taking the tensors in ``inputs`` and returning a
            scalar :class:`Tensor`.
        inputs: leaf tensors with ``requires_grad=True``; their ``grad``
            fields are overwritten.
        eps: finite-difference step.
        atol, rtol: absolute/relative tolerances of the comparison.

    Returns:
        True when every gradient entry matches.

    Raises:
        AssertionError: with a diagnostic message on the first mismatch.
    """
    for tensor in inputs:
        if not tensor.requires_grad:
            raise ValueError("all gradcheck inputs must require grad")
        tensor.zero_grad()

    output = func(*inputs)
    if output.size != 1:
        raise ValueError("gradcheck requires a scalar-valued function")
    output.backward()

    for index, tensor in enumerate(inputs):
        analytic = tensor.grad
        if analytic is None:
            analytic = np.zeros_like(tensor.data)
        numeric = np.zeros_like(tensor.data)
        flat = tensor.data.reshape(-1)
        numeric_flat = numeric.reshape(-1)
        for j in range(flat.size):
            original = flat[j]
            flat[j] = original + eps
            plus = float(func(*inputs).data)
            flat[j] = original - eps
            minus = float(func(*inputs).data)
            flat[j] = original
            numeric_flat[j] = (plus - minus) / (2.0 * eps)
        if not np.allclose(analytic, numeric, atol=atol, rtol=rtol):
            worst = np.abs(analytic - numeric).max()
            raise AssertionError(
                f"gradient mismatch on input {index}: max abs error "
                f"{worst:.3e}\nanalytic=\n{analytic}\nnumeric=\n{numeric}"
            )
    return True
