"""Synthetic AMiner-like academic network.

Schema (matching Table II, row "AMiner"):
    node types: author, paper, venue
    edge types: AA (coauthorship), AP (authorship), PP (citation),
                PV (publication)
    labels:     every paper carries its research topic
    weights:    all unit

Generation: ``num_topics`` planted research communities with *per-edge-type*
noise rates.  This mirrors the paper's motivating observation (Section
III-B): the information inside individual views is biased — e.g. coauthor
edges frequently cross topic boundaries (interdisciplinary collaborations)
while publication venues are strongly topic-aligned.  Type-blind methods
mix the noisy and clean edge types; view-based methods can keep them
apart, which is exactly the behaviour Table III measures.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.heterograph import HeteroGraph, NodeId


@dataclass(frozen=True)
class AMinerConfig:
    """Scale and per-edge-type noise knobs.

    ``*_noise`` is the probability that an edge of that type ignores the
    planted topic structure.  Defaults are ~10x smaller than the paper's
    snapshot (2,161 authors / 2,555 papers / 58 venues); benchmarks can
    pass larger values.
    """

    num_authors: int = 220
    num_papers: int = 260
    num_venues: int = 12
    num_topics: int = 4
    num_institutions: int = 8
    papers_per_author: int = 2
    citations_per_paper: int = 3
    coauthors_per_author: int = 5
    aa_noise: float = 0.2
    pp_noise: float = 0.45
    ap_noise: float = 0.15
    pv_noise: float = 0.2
    seed: int = 7


def make_aminer(
    config: AMinerConfig | None = None,
) -> tuple[HeteroGraph, dict[NodeId, int]]:
    """Generate the network; returns ``(graph, paper_labels)``."""
    cfg = config or AMinerConfig()
    if cfg.num_topics < 2:
        raise ValueError("need at least two topics for classification")
    if cfg.num_venues < cfg.num_topics:
        raise ValueError("need at least one venue per topic")
    rng = np.random.default_rng(cfg.seed)

    authors = [f"a{i}" for i in range(cfg.num_authors)]
    papers = [f"p{i}" for i in range(cfg.num_papers)]
    venues = [f"v{i}" for i in range(cfg.num_venues)]

    author_topic = rng.integers(cfg.num_topics, size=cfg.num_authors)
    author_institution = rng.integers(
        cfg.num_institutions, size=cfg.num_authors
    )
    paper_topic = rng.integers(cfg.num_topics, size=cfg.num_papers)
    venue_topic = np.arange(cfg.num_venues) % cfg.num_topics

    graph = HeteroGraph()
    for node in authors:
        graph.add_node(node, "author")
    for node in papers:
        graph.add_node(node, "paper")
    for node in venues:
        graph.add_node(node, "venue")

    papers_by_topic = [
        np.flatnonzero(paper_topic == t) for t in range(cfg.num_topics)
    ]
    authors_by_institution = [
        np.flatnonzero(author_institution == i)
        for i in range(cfg.num_institutions)
    ]
    venues_by_topic = [
        np.flatnonzero(venue_topic == t) for t in range(cfg.num_topics)
    ]

    # AP: authorship — authors write papers mostly in their home topic
    ap_edges: set[tuple[int, int]] = set()
    for a in range(cfg.num_authors):
        for _ in range(cfg.papers_per_author):
            if rng.random() < cfg.ap_noise:
                p = int(rng.integers(cfg.num_papers))
            else:
                pool = papers_by_topic[int(author_topic[a])]
                if pool.size == 0:
                    continue
                p = int(pool[rng.integers(pool.size)])
            ap_edges.add((a, p))
    for a, p in sorted(ap_edges):
        graph.add_edge(authors[a], papers[p], "AP")

    # AA: coauthorship follows *institutions*, not topics — the orthogonal
    # community structure of Figure 2's affiliation story.  Type-blind
    # methods absorb it into paper embeddings; view-based methods keep it
    # in its own view (papers do not even appear there).
    aa_edges: set[tuple[int, int]] = set()
    for a in range(cfg.num_authors):
        for _ in range(cfg.coauthors_per_author):
            if rng.random() < cfg.aa_noise:
                b = int(rng.integers(cfg.num_authors))
            else:
                pool = authors_by_institution[int(author_institution[a])]
                if pool.size < 2:
                    continue
                b = int(pool[rng.integers(pool.size)])
            if b != a:
                aa_edges.add((min(a, b), max(a, b)))
    for u, v in sorted(aa_edges):
        graph.add_edge(authors[u], authors[v], "AA")

    # PP: citations — moderately noisy
    pp_edges: set[tuple[int, int]] = set()
    for p in range(cfg.num_papers):
        for _ in range(cfg.citations_per_paper):
            if rng.random() < cfg.pp_noise:
                q = int(rng.integers(cfg.num_papers))
            else:
                pool = papers_by_topic[int(paper_topic[p])]
                q = int(pool[rng.integers(pool.size)])
            if q != p:
                pp_edges.add((min(p, q), max(p, q)))
    for p, q in sorted(pp_edges):
        graph.add_edge(papers[p], papers[q], "PP")

    # PV: publication — venues are strongly topic-aligned
    for p in range(cfg.num_papers):
        if rng.random() < cfg.pv_noise:
            v = int(rng.integers(cfg.num_venues))
        else:
            pool = venues_by_topic[int(paper_topic[p])]
            v = int(pool[rng.integers(pool.size)])
        graph.add_edge(papers[p], venues[v], "PV")

    labels = {papers[p]: int(paper_topic[p]) for p in range(cfg.num_papers)}
    return graph, labels
