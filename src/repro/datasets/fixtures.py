"""Tiny deterministic fixture graphs used throughout the test-suite."""

from __future__ import annotations

from repro.graph.heterograph import HeteroGraph, NodeId


def tiny_academic() -> HeteroGraph:
    """The academic network of Figure 2(a).

    Five authors (A1..A5), two papers (P1, P2) with a mutual citation, two
    universities (U1, U2).  Edge types: citation (PP), authorship (AP),
    affiliation (AU).  A1 and A3 share a university but never co-author —
    the paper's running example of cross-view contradiction.
    """
    g = HeteroGraph()
    for a in ("A1", "A2", "A3", "A4", "A5"):
        g.add_node(a, "author")
    for p in ("P1", "P2"):
        g.add_node(p, "paper")
    for u in ("U1", "U2"):
        g.add_node(u, "university")
    g.add_edge("P1", "P2", "citation")
    g.add_edge("A1", "P1", "authorship")
    g.add_edge("A2", "P1", "authorship")
    g.add_edge("A3", "P2", "authorship")
    g.add_edge("A4", "P2", "authorship")
    g.add_edge("A5", "P2", "authorship")
    g.add_edge("A1", "U1", "affiliation")
    g.add_edge("A3", "U1", "affiliation")
    g.add_edge("A2", "U2", "affiliation")
    g.add_edge("A4", "U2", "affiliation")
    g.add_edge("A5", "U2", "affiliation")
    return g


def book_rating_view() -> HeteroGraph:
    """The book-rating heter-view of Figure 4.

    Three readers (R1..R3) and three books (B1..B3); weights are rating
    scores 1..5.  R1 and R3 both dislike B2 (scores 2 and 1) while R2
    likes it (score 5) — the worked example behind the correlated-walk
    term pi_2 (Equation 7).
    """
    g = HeteroGraph()
    for r in ("R1", "R2", "R3"):
        g.add_node(r, "reader")
    for b in ("B1", "B2", "B3"):
        g.add_node(b, "book")
    g.add_edge("R1", "B1", "rating", weight=4.0)
    g.add_edge("R1", "B2", "rating", weight=2.0)
    g.add_edge("R2", "B2", "rating", weight=5.0)
    g.add_edge("R3", "B2", "rating", weight=1.0)
    g.add_edge("R3", "B3", "rating", weight=4.0)
    g.add_edge("R2", "B3", "rating", weight=3.0)
    return g


def two_view_toy(
    num_per_side: int = 8,
) -> tuple[HeteroGraph, dict[NodeId, int]]:
    """A two-view network with planted 2-community structure and labels.

    View "AB" is a heter-view between items and tags; view "AA" is a
    homo-view among items.  Both views agree on the two communities, so
    cross-view transfer is genuinely informative.  Returns
    ``(graph, item_labels)``.
    """
    if num_per_side < 4 or num_per_side % 2:
        raise ValueError("num_per_side must be an even integer >= 4")
    g = HeteroGraph()
    items = [f"i{k}" for k in range(num_per_side)]
    tags = [f"t{k}" for k in range(num_per_side // 2)]
    for node in items:
        g.add_node(node, "item")
    for node in tags:
        g.add_node(node, "tag")
    half = num_per_side // 2
    community = {item: (0 if k < half else 1) for k, item in enumerate(items)}
    # homo-view: ring inside each community plus one weak bridge
    for block in (items[:half], items[half:]):
        for k in range(len(block)):
            g.add_edge(block[k], block[(k + 1) % len(block)], "AA", weight=2.0)
    g.add_edge(items[0], items[half], "AA", weight=0.5)
    # heter-view: items attach to tags of their community
    for k, item in enumerate(items):
        tag_pool = tags[: len(tags) // 2] if community[item] == 0 else tags[len(tags) // 2 :]
        g.add_edge(item, tag_pool[k % len(tag_pool)], "AB", weight=3.0)
        g.add_edge(item, tag_pool[(k + 1) % len(tag_pool)], "AB", weight=1.0)
    return g, community
