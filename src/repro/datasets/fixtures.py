"""Tiny deterministic fixture graphs used throughout the test-suite.

Besides the hand-drawn paper figures, this module grows two seeded
generators for stress-shaped graphs — :func:`degree_skewed_graph` (a
power-law homo-view, exponent knob) and :func:`type_imbalanced_graph`
(edge-type share knob) — used by the walk-policy benchmarks and the
chi-square distribution tests.
"""

from __future__ import annotations

import numpy as np

from repro.graph.heterograph import HeteroGraph, NodeId


def tiny_academic() -> HeteroGraph:
    """The academic network of Figure 2(a).

    Five authors (A1..A5), two papers (P1, P2) with a mutual citation, two
    universities (U1, U2).  Edge types: citation (PP), authorship (AP),
    affiliation (AU).  A1 and A3 share a university but never co-author —
    the paper's running example of cross-view contradiction.
    """
    g = HeteroGraph()
    for a in ("A1", "A2", "A3", "A4", "A5"):
        g.add_node(a, "author")
    for p in ("P1", "P2"):
        g.add_node(p, "paper")
    for u in ("U1", "U2"):
        g.add_node(u, "university")
    g.add_edge("P1", "P2", "citation")
    g.add_edge("A1", "P1", "authorship")
    g.add_edge("A2", "P1", "authorship")
    g.add_edge("A3", "P2", "authorship")
    g.add_edge("A4", "P2", "authorship")
    g.add_edge("A5", "P2", "authorship")
    g.add_edge("A1", "U1", "affiliation")
    g.add_edge("A3", "U1", "affiliation")
    g.add_edge("A2", "U2", "affiliation")
    g.add_edge("A4", "U2", "affiliation")
    g.add_edge("A5", "U2", "affiliation")
    return g


def book_rating_view() -> HeteroGraph:
    """The book-rating heter-view of Figure 4.

    Three readers (R1..R3) and three books (B1..B3); weights are rating
    scores 1..5.  R1 and R3 both dislike B2 (scores 2 and 1) while R2
    likes it (score 5) — the worked example behind the correlated-walk
    term pi_2 (Equation 7).
    """
    g = HeteroGraph()
    for r in ("R1", "R2", "R3"):
        g.add_node(r, "reader")
    for b in ("B1", "B2", "B3"):
        g.add_node(b, "book")
    g.add_edge("R1", "B1", "rating", weight=4.0)
    g.add_edge("R1", "B2", "rating", weight=2.0)
    g.add_edge("R2", "B2", "rating", weight=5.0)
    g.add_edge("R3", "B2", "rating", weight=1.0)
    g.add_edge("R3", "B3", "rating", weight=4.0)
    g.add_edge("R2", "B3", "rating", weight=3.0)
    return g


def two_view_toy(
    num_per_side: int = 8,
) -> tuple[HeteroGraph, dict[NodeId, int]]:
    """A two-view network with planted 2-community structure and labels.

    View "AB" is a heter-view between items and tags; view "AA" is a
    homo-view among items.  Both views agree on the two communities, so
    cross-view transfer is genuinely informative.  Returns
    ``(graph, item_labels)``.
    """
    if num_per_side < 4 or num_per_side % 2:
        raise ValueError("num_per_side must be an even integer >= 4")
    g = HeteroGraph()
    items = [f"i{k}" for k in range(num_per_side)]
    tags = [f"t{k}" for k in range(num_per_side // 2)]
    for node in items:
        g.add_node(node, "item")
    for node in tags:
        g.add_node(node, "tag")
    half = num_per_side // 2
    community = {item: (0 if k < half else 1) for k, item in enumerate(items)}
    # homo-view: ring inside each community plus one weak bridge
    for block in (items[:half], items[half:]):
        for k in range(len(block)):
            g.add_edge(block[k], block[(k + 1) % len(block)], "AA", weight=2.0)
    g.add_edge(items[0], items[half], "AA", weight=0.5)
    # heter-view: items attach to tags of their community
    for k, item in enumerate(items):
        tag_pool = tags[: len(tags) // 2] if community[item] == 0 else tags[len(tags) // 2 :]
        g.add_edge(item, tag_pool[k % len(tag_pool)], "AB", weight=3.0)
        g.add_edge(item, tag_pool[(k + 1) % len(tag_pool)], "AB", weight=1.0)
    return g, community


def degree_skewed_graph(
    num_items: int = 40,
    exponent: float = 2.5,
    seed: int = 0,
) -> tuple[HeteroGraph, dict[NodeId, int]]:
    """A two-view graph whose homo-view degrees follow a power law.

    Items carry attachment weights ``(rank + 1) ** -exponent`` inside each
    of two planted communities; extra homo-view ("II") edges are sampled
    proportional to endpoint weights, so low exponents give near-uniform
    degrees while high exponents concentrate edges on a few hubs.  A ring
    per community keeps every item reachable, and a heter-view ("IT")
    attaches items to their community's tags.  Returns
    ``(graph, item_labels)``.

    Args:
        num_items: even number of item nodes, >= 8.
        exponent: power-law exponent of the attachment weights, > 1.
        seed: RNG seed for the extra-edge sampling.
    """
    if num_items < 8 or num_items % 2:
        raise ValueError("num_items must be an even integer >= 8")
    if exponent <= 1.0:
        raise ValueError(f"exponent must be > 1, got {exponent}")
    rng = np.random.default_rng(seed)
    g = HeteroGraph()
    items = [f"i{k}" for k in range(num_items)]
    half = num_items // 2
    num_tags = max(4, num_items // 8)
    tags = [f"t{k}" for k in range(num_tags)]
    for node in items:
        g.add_node(node, "item")
    for node in tags:
        g.add_node(node, "tag")
    community = {item: (0 if k < half else 1) for k, item in enumerate(items)}
    seen: set[tuple[int, int]] = set()

    def link(a: int, b: int, edge_type: str, weight: float) -> None:
        key = (min(a, b), max(a, b))
        if a != b and key not in seen:
            seen.add(key)
            g.add_edge(items[a], items[b], edge_type, weight=weight)

    # backbone ring per community plus one weak bridge
    for offset in (0, half):
        for k in range(half):
            link(offset + k, offset + (k + 1) % half, "II", 2.0)
    link(0, half, "II", 0.5)
    # preferential extras: endpoint probability ~ rank ** -exponent
    extras = 2 * num_items
    for offset in (0, half):
        weights = (np.arange(1, half + 1, dtype=float)) ** -exponent
        probs = weights / weights.sum()
        us = rng.choice(half, size=extras, p=probs) + offset
        vs = rng.choice(half, size=extras, p=probs) + offset
        for a, b in zip(us, vs):
            link(int(a), int(b), "II", 1.0)
    # heter-view: community tags
    for k, item in enumerate(items):
        pool = tags[: num_tags // 2] if community[item] == 0 else tags[num_tags // 2 :]
        g.add_edge(item, pool[k % len(pool)], "IT", weight=3.0)
        g.add_edge(item, pool[(k + 1) % len(pool)], "IT", weight=1.0)
    return g, community


def type_imbalanced_graph(
    num_items: int = 24,
    shares: tuple[float, float, float] = (0.8, 0.15, 0.05),
    seed: int = 0,
) -> tuple[HeteroGraph, dict[NodeId, int]]:
    """A three-view graph with a controllable edge-type share split.

    ``shares`` sets the fraction of the edge budget spent on the "II"
    homo-view, the "IT" item-tag view, and the "IC" item-category view
    respectively (normalized internally).  The default starves the minor
    views — the regime the relation-balanced policy targets.  Every view
    keeps a minimal backbone so none is empty, and all three agree on the
    planted two-community structure.  Returns ``(graph, item_labels)``.

    Args:
        num_items: even number of item nodes, >= 8.
        shares: relative edge budget per view ("II", "IT", "IC"); all
            entries must be positive.
        seed: RNG seed for edge sampling.
    """
    if num_items < 8 or num_items % 2:
        raise ValueError("num_items must be an even integer >= 8")
    if len(shares) != 3 or any(s <= 0 for s in shares):
        raise ValueError(f"shares must be 3 positive numbers, got {shares}")
    rng = np.random.default_rng(seed)
    fractions = np.asarray(shares, dtype=float)
    fractions /= fractions.sum()
    g = HeteroGraph()
    items = [f"i{k}" for k in range(num_items)]
    half = num_items // 2
    num_tags = max(4, num_items // 6)
    tags = [f"t{k}" for k in range(num_tags)]
    cats = ["c0", "c1"]
    for node in items:
        g.add_node(node, "item")
    for node in tags:
        g.add_node(node, "tag")
    for node in cats:
        g.add_node(node, "category")
    community = {item: (0 if k < half else 1) for k, item in enumerate(items)}
    budget = 6 * num_items
    targets = np.maximum(np.rint(budget * fractions).astype(int), 1)
    seen: set[tuple[NodeId, NodeId]] = set()

    def link(u: NodeId, v: NodeId, edge_type: str, weight: float = 1.0) -> bool:
        key = (min(u, v), max(u, v))
        if u == v or key in seen:
            return False
        seen.add(key)
        g.add_edge(u, v, edge_type, weight=weight)
        return True

    def items_of(side: int) -> list[str]:
        return items[:half] if side == 0 else items[half:]

    # backbones: a ring of items, one edge per tag, one edge per category
    counts = {"II": 0, "IT": 0, "IC": 0}
    for offset in (0, half):
        for k in range(half):
            counts["II"] += link(
                items[offset + k], items[offset + (k + 1) % half], "II", 2.0
            )
    counts["II"] += link(items[0], items[half], "II", 0.5)
    for k, tag in enumerate(tags):
        side = 0 if k < num_tags // 2 else 1
        pool = items_of(side)
        counts["IT"] += link(pool[k % half], tag, "IT", 2.0)
    for side, cat in enumerate(cats):
        counts["IC"] += link(items_of(side)[0], cat, "IC", 2.0)
    # spend the remaining budget per the share split, within-community
    for idx, edge_type in enumerate(("II", "IT", "IC")):
        attempts = 0
        while counts[edge_type] < targets[idx] and attempts < 20 * budget:
            attempts += 1
            side = int(rng.integers(2))
            u = items_of(side)[int(rng.integers(half))]
            if edge_type == "II":
                v = items_of(side)[int(rng.integers(half))]
            elif edge_type == "IT":
                pool = tags[: num_tags // 2] if side == 0 else tags[num_tags // 2 :]
                v = pool[int(rng.integers(len(pool)))]
            else:
                v = cats[side]
            counts[edge_type] += link(u, v, edge_type, 1.0)
    return g, community
