"""Synthetic App-Daily / App-Weekly-like applet-store networks.

Schema (matching Table II, rows "App-Daily" / "App-Weekly"):
    node types: applet, user, keyword
    edge types: AU (usage; weight = time spent), AK (query; weight =
                download count via the keyword's result page)
    labels:     a subset of applets carries a category
    weights:    positive reals encoding *taste levels* (see below)

Weight design — the Figure 4 story, generalized.  Each user (and each
keyword) has a hidden taste table: the weight level it assigns to applets
of each category (like a reader's rating level per genre).  Every edge's
weight is the end-point's taste for the applet's category plus jitter.
Consequences:

- weight *magnitude* is globally uninformative — a heavy edge is just an
  enthusiastic user, in any category — so weight-proportional walks
  (Equation 6 alone, i.e. LINE / Node2Vec style) gain little;
- weight *similarity around a pivot node* is highly informative — two
  edges of one user with similar weights almost surely point at applets
  of the same category, exactly what the correlated term pi_2
  (Equation 7) exploits;
- unit-weight methods (R-GCN, SimplE, metapath/uniform walkers) never see
  the signal at all.

This reproduces the paper's claim that "TransN has more advantages on
weighted networks", and its Table III shape where the gap on App-* is the
largest of all datasets.  ``view_correlation`` keeps the AK view only
weakly coupled to categories (the paper: "a user's usage of an applet
scarcely relates to whether the applet is searched by a keyword"), which
caps the *link-prediction* gain on these networks (Table IV shape).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.graph.heterograph import HeteroGraph, NodeId


@dataclass(frozen=True)
class AppStoreConfig:
    """Scale, taste and correlation knobs."""

    num_applets: int = 360
    num_users: int = 120
    num_keywords: int = 90
    num_categories: int = 6
    usages_per_user: int = 9
    queries_per_keyword: int = 7
    labeled_fraction: float = 0.6
    view_correlation: float = 0.5
    on_category_rate: float = 0.45
    taste_levels: int = 5
    weight_jitter: float = 0.15
    seed: int = 13


def make_appstore(
    config: AppStoreConfig | None = None,
) -> tuple[HeteroGraph, dict[NodeId, int]]:
    """Generate the network; returns ``(graph, applet_labels)``.

    Only ``labeled_fraction`` of the applets appear in ``labels`` —
    mirroring the paper, where 5,375 of ~150k applets are labelled.
    """
    cfg = config or AppStoreConfig()
    if cfg.num_categories < 2:
        raise ValueError("need at least two categories")
    if not 0.0 < cfg.labeled_fraction <= 1.0:
        raise ValueError("labeled_fraction must be in (0, 1]")
    if cfg.taste_levels < 2:
        raise ValueError("need at least two taste levels")
    rng = np.random.default_rng(cfg.seed)

    applets = [f"x{i}" for i in range(cfg.num_applets)]
    users = [f"u{i}" for i in range(cfg.num_users)]
    keywords = [f"k{i}" for i in range(cfg.num_keywords)]

    applet_category = rng.integers(cfg.num_categories, size=cfg.num_applets)
    user_pref = rng.integers(cfg.num_categories, size=cfg.num_users)
    keyword_pref = rng.integers(cfg.num_categories, size=cfg.num_keywords)
    # hidden taste tables: the weight level each user/keyword assigns to
    # applets of each category (Figure 4's rating scores, per category)
    user_taste = rng.integers(
        1, cfg.taste_levels + 1, size=(cfg.num_users, cfg.num_categories)
    ).astype(float)
    keyword_taste = rng.integers(
        1, cfg.taste_levels + 1, size=(cfg.num_keywords, cfg.num_categories)
    ).astype(float)

    graph = HeteroGraph()
    for node in applets:
        graph.add_node(node, "applet")
    for node in users:
        graph.add_node(node, "user")
    for node in keywords:
        graph.add_node(node, "keyword")

    applets_by_category = [
        np.flatnonzero(applet_category == c) for c in range(cfg.num_categories)
    ]

    def _pick_applet(preferred: int) -> int:
        """Mildly prefer the end-point's category, otherwise anything."""
        if rng.random() < cfg.on_category_rate:
            pool = applets_by_category[preferred]
            if pool.size:
                return int(pool[rng.integers(pool.size)])
        return int(rng.integers(cfg.num_applets))

    def _taste_weight(taste_row: np.ndarray, applet: int) -> float:
        level = taste_row[int(applet_category[applet])]
        return float(max(level + rng.normal(0.0, cfg.weight_jitter), 0.1))

    # AU: usage edges; weight = the user's taste for the applet's category
    au_edges: dict[tuple[int, int], float] = {}
    for u in range(cfg.num_users):
        for _ in range(cfg.usages_per_user):
            x = _pick_applet(int(user_pref[u]))
            weight = _taste_weight(user_taste[u], x)
            key = (x, u)
            au_edges[key] = max(au_edges.get(key, 0.0), weight)
    for (x, u), weight in sorted(au_edges.items()):
        graph.add_edge(applets[x], users[u], "AU", weight=round(weight, 3))

    # AK: query edges; the view respects categories only with probability
    # ``view_correlation`` (weak coupling between the two views)
    ak_edges: dict[tuple[int, int], float] = {}
    for k in range(cfg.num_keywords):
        for _ in range(cfg.queries_per_keyword):
            if rng.random() < cfg.view_correlation:
                x = _pick_applet(int(keyword_pref[k]))
            else:
                x = int(rng.integers(cfg.num_applets))
            weight = _taste_weight(keyword_taste[k], x)
            key = (x, k)
            ak_edges[key] = max(ak_edges.get(key, 0.0), weight)
    for (x, k), weight in sorted(ak_edges.items()):
        graph.add_edge(applets[x], keywords[k], "AK", weight=round(weight, 3))

    num_labeled = max(
        cfg.num_categories, int(round(cfg.labeled_fraction * cfg.num_applets))
    )
    # label applets that actually have edges first, so eval sets are useful
    degrees = np.array([graph.degree(a) for a in applets])
    order = np.argsort(-degrees, kind="stable")[:num_labeled]
    labels = {applets[int(i)]: int(applet_category[int(i)]) for i in order}
    return graph, labels


def make_app_daily(
    seed: int = 13, **overrides
) -> tuple[HeteroGraph, dict[NodeId, int]]:
    """The App-Daily preset: one day of logs — fewer users, fewer edges."""
    cfg = replace(AppStoreConfig(seed=seed), **overrides)
    return make_appstore(cfg)


def make_app_weekly(
    seed: int = 17, **overrides
) -> tuple[HeteroGraph, dict[NodeId, int]]:
    """The App-Weekly preset: a week of logs — many more users and usage
    edges over roughly the same applet inventory (as in Table II).  The
    weekly window also accumulates *incidental* usage (one-off opens) that
    a single day's engaged-usage snapshot filters out, so its category
    preference is weaker and its taste weights noisier."""
    base = AppStoreConfig(
        num_applets=380,
        num_users=340,
        num_keywords=95,
        usages_per_user=9,
        queries_per_keyword=7,
        on_category_rate=0.38,
        weight_jitter=0.2,
        seed=seed,
    )
    cfg = replace(base, **overrides)
    return make_appstore(cfg)
