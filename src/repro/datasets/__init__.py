"""Synthetic heterogeneous-network datasets.

The paper evaluates on AMiner, BLOG, App-Daily and App-Weekly (Table II);
the two App-* networks are proprietary Tencent logs and AMiner/BLOG
snapshots are not shipped offline.  Each generator here reproduces the
corresponding *schema* (node types, edge types, weights, labels) with a
planted-community structure so the evaluation exercises the same code
paths and preserves the paper's qualitative comparisons:

- :func:`~repro.datasets.aminer.make_aminer` — authors/papers/venues with
  coauthorship (AA), authorship (AP), citation (PP) and publication (PV)
  edges; papers labelled by research topic; unit weights.
- :func:`~repro.datasets.blog.make_blog` — users/keywords with friendship
  (UU), keyword-usage (UK) and keyword-relevance (KK) edges; users
  labelled by interest; unit weights; *dense*.
- :func:`~repro.datasets.appstore.make_appstore` — applets/users/keywords
  with *weighted* usage (AU) and query (AK) edges; applets labelled by
  category; *sparse*; a ``view_correlation`` knob controls how strongly
  the two views agree (the property the paper credits for the BLOG vs
  App-* link-prediction difference). ``make_app_daily`` /
  ``make_app_weekly`` are the two preset scales.
- :mod:`~repro.datasets.fixtures` — tiny deterministic graphs used by the
  tests (the Figure 2(a) academic network and the Figure 4 book-rating
  view among them).

All generators take a ``seed`` and a ``scale`` so benchmarks can grow them
toward the paper's sizes.  They return ``(graph, labels)`` where ``labels``
maps labelled node IDs to class labels.
"""

from repro.datasets.aminer import AMinerConfig, make_aminer
from repro.datasets.appstore import (
    AppStoreConfig,
    make_app_daily,
    make_app_weekly,
    make_appstore,
)
from repro.datasets.blog import BlogConfig, make_blog
from repro.datasets.fixtures import (
    book_rating_view,
    degree_skewed_graph,
    tiny_academic,
    two_view_toy,
    type_imbalanced_graph,
)

__all__ = [
    "AMinerConfig",
    "make_aminer",
    "BlogConfig",
    "make_blog",
    "AppStoreConfig",
    "make_appstore",
    "make_app_daily",
    "make_app_weekly",
    "tiny_academic",
    "book_rating_view",
    "two_view_toy",
    "degree_skewed_graph",
    "type_imbalanced_graph",
]
