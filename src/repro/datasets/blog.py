"""Synthetic BLOG-like social network.

Schema (matching Table II, row "BLOG"):
    node types: user, keyword
    edge types: UU (friendship), UK (keyword usage), KK (keyword relevance)
    labels:     every user carries an interest field
    weights:    all unit

Signal placement follows the paper's own analysis of why TransN wins on
BLOG: the discriminative information lives in the *keyword* views —
"similar users usually post common keywords" — while friendship is dense
but largely cross-interest (people befriend beyond their interest field).
A type-blind method mixes the noisy dense UU view into every user's
context; a view-based method keeps the clean UK/KK signal separate and
transfers it to the friendship view across the shared user nodes.  The
views are strongly *correlated* (the keyword a user posts predicts their
friends' keywords), which is also what makes BLOG the network where
TransN's link-prediction margin is biggest (Table IV).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.heterograph import HeteroGraph, NodeId


@dataclass(frozen=True)
class BlogConfig:
    """Scale and noise knobs (defaults scaled down from 57k users).

    ``uu_cross_rate`` / ``uk_cross_rate`` are the probabilities that a
    friendship / keyword-usage edge ignores the interest structure.
    """

    num_users: int = 300
    num_keywords: int = 80
    num_interests: int = 8
    friends_per_user: int = 12
    keywords_per_user: int = 5
    keyword_links: int = 90
    uu_cross_rate: float = 0.8
    uk_cross_rate: float = 0.35
    seed: int = 11


def make_blog(
    config: BlogConfig | None = None,
) -> tuple[HeteroGraph, dict[NodeId, int]]:
    """Generate the network; returns ``(graph, user_labels)``."""
    cfg = config or BlogConfig()
    if cfg.num_interests < 2:
        raise ValueError("need at least two interest groups")
    if cfg.num_keywords < 2 * cfg.num_interests:
        raise ValueError("need at least two keywords per interest group")
    rng = np.random.default_rng(cfg.seed)

    users = [f"u{i}" for i in range(cfg.num_users)]
    keywords = [f"k{i}" for i in range(cfg.num_keywords)]
    user_interest = rng.integers(cfg.num_interests, size=cfg.num_users)
    keyword_interest = np.arange(cfg.num_keywords) % cfg.num_interests

    graph = HeteroGraph()
    for node in users:
        graph.add_node(node, "user")
    for node in keywords:
        graph.add_node(node, "keyword")

    users_by_interest = [
        np.flatnonzero(user_interest == g) for g in range(cfg.num_interests)
    ]
    keywords_by_interest = [
        np.flatnonzero(keyword_interest == g) for g in range(cfg.num_interests)
    ]

    # UU: dense friendship, mostly cross-interest (noisy view)
    uu_edges: set[tuple[int, int]] = set()
    for u in range(cfg.num_users):
        for _ in range(cfg.friends_per_user):
            if rng.random() < cfg.uu_cross_rate:
                v = int(rng.integers(cfg.num_users))
            else:
                pool = users_by_interest[int(user_interest[u])]
                if pool.size < 2:
                    continue
                v = int(pool[rng.integers(pool.size)])
            if v != u:
                uu_edges.add((min(u, v), max(u, v)))
    for u, v in sorted(uu_edges):
        graph.add_edge(users[u], users[v], "UU")

    # UK: users post keywords of their interest group (clean view)
    uk_edges: set[tuple[int, int]] = set()
    for u in range(cfg.num_users):
        for _ in range(cfg.keywords_per_user):
            if rng.random() < cfg.uk_cross_rate:
                k = int(rng.integers(cfg.num_keywords))
            else:
                pool = keywords_by_interest[int(user_interest[u])]
                k = int(pool[rng.integers(pool.size)])
            uk_edges.add((u, k))
    for u, k in sorted(uk_edges):
        graph.add_edge(users[u], keywords[k], "UK")

    # KK: keyword relevance within interest groups (clean view)
    kk_edges: set[tuple[int, int]] = set()
    attempts = 0
    while len(kk_edges) < cfg.keyword_links and attempts < 50 * cfg.keyword_links:
        attempts += 1
        pool = keywords_by_interest[int(rng.integers(cfg.num_interests))]
        if pool.size < 2:
            continue
        a, b = (int(x) for x in rng.choice(pool, size=2, replace=False))
        kk_edges.add((min(a, b), max(a, b)))
    for a, b in sorted(kk_edges):
        graph.add_edge(keywords[a], keywords[b], "KK")

    labels = {users[u]: int(user_interest[u]) for u in range(cfg.num_users)}
    return graph, labels
