"""Principal component analysis via SVD (t-SNE initialization + fallback)."""

from __future__ import annotations

import numpy as np


def pca(x: np.ndarray, num_components: int = 2) -> np.ndarray:
    """Project ``x`` (n, d) onto its top principal components.

    Components are sign-normalized (largest-magnitude loading positive)
    so the projection is deterministic.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 2:
        raise ValueError("x must be 2-D")
    if not 1 <= num_components <= min(x.shape):
        raise ValueError(
            f"num_components must be in [1, {min(x.shape)}], got {num_components}"
        )
    centered = x - x.mean(axis=0, keepdims=True)
    u, s, vt = np.linalg.svd(centered, full_matrices=False)
    components = vt[:num_components]
    for row in components:
        pivot = np.argmax(np.abs(row))
        if row[pivot] < 0:
            row *= -1.0
    return centered @ components.T
