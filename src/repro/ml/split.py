"""Seeded train/test splitting with optional stratification."""

from __future__ import annotations

import numpy as np


def train_test_split(
    n: int,
    train_fraction: float,
    rng: np.random.Generator,
    stratify: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Return (train_indices, test_indices) over ``range(n)``.

    Args:
        n: number of samples.
        train_fraction: fraction assigned to the training set (the paper
            uses 0.9).
        rng: the random source — splits are reproducible given a seed.
        stratify: optional label array (n,); when given, each class is
            split independently so class proportions are preserved, with
            at least one training sample per class.
    """
    if not 0.0 < train_fraction < 1.0:
        raise ValueError(f"train_fraction must be in (0, 1), got {train_fraction}")
    if n < 2:
        raise ValueError("need at least two samples to split")
    if stratify is None:
        order = rng.permutation(n)
        cut = max(1, min(n - 1, int(round(train_fraction * n))))
        return np.sort(order[:cut]), np.sort(order[cut:])

    stratify = np.asarray(stratify)
    if stratify.shape != (n,):
        raise ValueError("stratify must have shape (n,)")
    train_parts: list[np.ndarray] = []
    test_parts: list[np.ndarray] = []
    for label in np.unique(stratify):
        indices = np.flatnonzero(stratify == label)
        order = rng.permutation(indices.size)
        cut = max(1, int(round(train_fraction * indices.size)))
        cut = min(cut, indices.size)  # classes of size 1 go fully to train
        train_parts.append(indices[order[:cut]])
        test_parts.append(indices[order[cut:]])
    return (
        np.sort(np.concatenate(train_parts)),
        np.sort(np.concatenate(test_parts)) if test_parts else np.empty(0, dtype=np.int64),
    )
