"""K-means (k-means++ init) and normalized mutual information.

Used by the node-*clustering* extension task (:mod:`repro.eval.clustering`)
— not part of the paper's evaluation, but the standard third task in the
network-embedding literature and a natural consumer of the same
embeddings.
"""

from __future__ import annotations

import numpy as np


class KMeans:
    """Lloyd's algorithm with k-means++ seeding.

    Args:
        num_clusters: k.
        num_init: restarts; the best inertia wins.
        max_iter: Lloyd iterations per restart.
        tol: center-movement convergence threshold.
        seed: RNG seed.
    """

    def __init__(
        self,
        num_clusters: int,
        num_init: int = 4,
        max_iter: int = 100,
        tol: float = 1e-6,
        seed: int = 0,
    ) -> None:
        if num_clusters < 1:
            raise ValueError("num_clusters must be >= 1")
        self.num_clusters = num_clusters
        self.num_init = num_init
        self.max_iter = max_iter
        self.tol = tol
        self.seed = seed
        self.centers_: np.ndarray | None = None
        self.inertia_: float | None = None

    def _plusplus_init(
        self, x: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        n = x.shape[0]
        centers = [x[int(rng.integers(n))]]
        for _ in range(1, self.num_clusters):
            d2 = np.min(
                [((x - c) ** 2).sum(axis=1) for c in centers], axis=0
            )
            total = d2.sum()
            if total <= 0:
                centers.append(x[int(rng.integers(n))])
                continue
            probs = d2 / total
            centers.append(x[int(rng.choice(n, p=probs))])
        return np.array(centers)

    def _lloyd(
        self, x: np.ndarray, centers: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, float]:
        for _ in range(self.max_iter):
            d2 = (
                (x[:, None, :] - centers[None, :, :]) ** 2
            ).sum(axis=2)
            assignment = d2.argmin(axis=1)
            new_centers = centers.copy()
            for k in range(self.num_clusters):
                members = x[assignment == k]
                if members.size:
                    new_centers[k] = members.mean(axis=0)
            shift = np.linalg.norm(new_centers - centers)
            centers = new_centers
            if shift < self.tol:
                break
        d2 = ((x[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
        assignment = d2.argmin(axis=1)
        inertia = float(d2[np.arange(x.shape[0]), assignment].sum())
        return assignment, centers, inertia

    def fit_predict(self, x: np.ndarray) -> np.ndarray:
        """Cluster ``x`` (n, d); returns integer labels (n,)."""
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2:
            raise ValueError("x must be 2-D")
        if x.shape[0] < self.num_clusters:
            raise ValueError("fewer samples than clusters")
        rng = np.random.default_rng(self.seed)
        best: tuple[float, np.ndarray, np.ndarray] | None = None
        for _ in range(self.num_init):
            centers = self._plusplus_init(x, rng)
            assignment, centers, inertia = self._lloyd(x, centers)
            if best is None or inertia < best[0]:
                best = (inertia, assignment, centers)
        assert best is not None
        self.inertia_, assignment, self.centers_ = best
        return assignment


def normalized_mutual_information(
    labels_true: np.ndarray, labels_pred: np.ndarray
) -> float:
    """NMI with arithmetic-mean normalization (sklearn's default)."""
    labels_true = np.asarray(labels_true)
    labels_pred = np.asarray(labels_pred)
    if labels_true.shape != labels_pred.shape or labels_true.ndim != 1:
        raise ValueError("label arrays must be matching 1-D arrays")
    n = labels_true.size
    if n == 0:
        raise ValueError("empty label arrays")
    classes_true = np.unique(labels_true)
    classes_pred = np.unique(labels_pred)
    contingency = np.zeros((classes_true.size, classes_pred.size))
    index_true = {c: i for i, c in enumerate(classes_true)}
    index_pred = {c: i for i, c in enumerate(classes_pred)}
    for t, p in zip(labels_true, labels_pred):
        contingency[index_true[t], index_pred[p]] += 1
    joint = contingency / n
    p_true = joint.sum(axis=1)
    p_pred = joint.sum(axis=0)
    mutual = 0.0
    for i in range(classes_true.size):
        for j in range(classes_pred.size):
            if joint[i, j] > 0:
                mutual += joint[i, j] * np.log(
                    joint[i, j] / (p_true[i] * p_pred[j])
                )
    h_true = -np.sum(p_true[p_true > 0] * np.log(p_true[p_true > 0]))
    h_pred = -np.sum(p_pred[p_pred > 0] * np.log(p_pred[p_pred > 0]))
    denom = 0.5 * (h_true + h_pred)
    if denom <= 0:
        return 1.0 if classes_true.size == classes_pred.size == 1 else 0.0
    return float(mutual / denom)
