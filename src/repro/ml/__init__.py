"""Machine-learning toolkit for the evaluation pipelines.

The paper evaluates embeddings with scikit-learn (logistic regression,
micro/macro F1, ROC-AUC) and visualizes them with t-SNE.  scikit-learn is
not available offline, so this subpackage provides tested equivalents:

- :class:`~repro.ml.logreg.LogisticRegression` — multinomial logistic
  regression fitted with L-BFGS (scipy).
- :mod:`~repro.ml.metrics` — micro/macro F1, accuracy, ROC-AUC,
  silhouette score (the quantitative stand-in for Figure 6's visual
  cluster separation).
- :func:`~repro.ml.split.train_test_split` — seeded, optionally stratified.
- :class:`~repro.ml.tsne.TSNE` and :func:`~repro.ml.pca.pca` — 2-D
  projections for the case study.
"""

from repro.ml.kmeans import KMeans, normalized_mutual_information
from repro.ml.logreg import LogisticRegression
from repro.ml.metrics import (
    accuracy,
    confusion_matrix,
    f1_scores,
    roc_auc_score,
    silhouette_score,
)
from repro.ml.pca import pca
from repro.ml.split import train_test_split
from repro.ml.tsne import TSNE

__all__ = [
    "LogisticRegression",
    "KMeans",
    "normalized_mutual_information",
    "accuracy",
    "confusion_matrix",
    "f1_scores",
    "roc_auc_score",
    "silhouette_score",
    "pca",
    "train_test_split",
    "TSNE",
]
