"""Multinomial logistic regression fitted with L-BFGS.

Matches the role of ``sklearn.linear_model.LogisticRegression`` with
default parameters in the paper's node-classification protocol: an L2
penalty of strength ``1/C`` with C = 1.0, softmax over classes, no
intercept penalty.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import minimize
from scipy.special import logsumexp


class LogisticRegression:
    """Softmax regression with L2 regularization.

    Args:
        c: inverse regularization strength (sklearn's ``C``).
        max_iter: L-BFGS iteration cap.
        tol: L-BFGS gradient tolerance.
    """

    def __init__(self, c: float = 1.0, max_iter: int = 200, tol: float = 1e-6) -> None:
        if c <= 0:
            raise ValueError(f"C must be positive, got {c}")
        self.c = c
        self.max_iter = max_iter
        self.tol = tol
        self.classes_: np.ndarray | None = None
        self.coef_: np.ndarray | None = None  # (num_classes, dim)
        self.intercept_: np.ndarray | None = None  # (num_classes,)

    def _pack(self, coef: np.ndarray, intercept: np.ndarray) -> np.ndarray:
        return np.concatenate([coef.ravel(), intercept])

    def _unpack(self, theta: np.ndarray, k: int, d: int):
        coef = theta[: k * d].reshape(k, d)
        intercept = theta[k * d :]
        return coef, intercept

    def fit(self, x: np.ndarray, y: np.ndarray) -> "LogisticRegression":
        """Fit on features ``x`` (n, d) and integer/str labels ``y`` (n,)."""
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y)
        if x.ndim != 2 or y.shape != (x.shape[0],):
            raise ValueError("x must be (n, d) and y (n,)")
        self.classes_ = np.unique(y)
        k, (n, d) = self.classes_.size, x.shape
        if k < 2:
            raise ValueError("need at least two classes")
        class_index = {label: i for i, label in enumerate(self.classes_)}
        targets = np.array([class_index[label] for label in y])
        onehot = np.zeros((n, k))
        onehot[np.arange(n), targets] = 1.0
        lam = 1.0 / (2.0 * self.c)

        def objective(theta: np.ndarray):
            coef, intercept = self._unpack(theta, k, d)
            logits = x @ coef.T + intercept  # (n, k)
            log_norm = logsumexp(logits, axis=1)
            nll = (log_norm - logits[np.arange(n), targets]).sum()
            loss = nll + lam * np.sum(coef**2)
            probs = np.exp(logits - log_norm[:, None])
            residual = probs - onehot  # (n, k)
            grad_coef = residual.T @ x + 2.0 * lam * coef
            grad_intercept = residual.sum(axis=0)
            return loss, self._pack(grad_coef, grad_intercept)

        theta0 = np.zeros(k * d + k)
        result = minimize(
            objective,
            theta0,
            jac=True,
            method="L-BFGS-B",
            options={"maxiter": self.max_iter, "gtol": self.tol},
        )
        self.coef_, self.intercept_ = self._unpack(result.x, k, d)
        return self

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("fit() must be called before predicting")
        x = np.asarray(x, dtype=np.float64)
        return x @ self.coef_.T + self.intercept_

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        logits = self.decision_function(x)
        logits -= logits.max(axis=1, keepdims=True)
        expd = np.exp(logits)
        return expd / expd.sum(axis=1, keepdims=True)

    def predict(self, x: np.ndarray) -> np.ndarray:
        scores = self.decision_function(x)
        return self.classes_[scores.argmax(axis=1)]
