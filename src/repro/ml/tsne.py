"""Exact t-SNE (van der Maaten & Hinton 2008) for the Figure 6 case study.

The case study projects only ~90 applet embeddings, so the exact O(n^2)
formulation with gradient descent, momentum, and early exaggeration is
entirely adequate (and easy to test).
"""

from __future__ import annotations

import numpy as np

from repro.ml.pca import pca

_EPS = 1e-12


def _pairwise_sq_distances(x: np.ndarray) -> np.ndarray:
    sq = (x**2).sum(axis=1)
    d2 = sq[:, None] + sq[None, :] - 2.0 * (x @ x.T)
    np.fill_diagonal(d2, 0.0)
    return np.maximum(d2, 0.0)


def _binary_search_sigma(
    distances: np.ndarray, perplexity: float, tol: float = 1e-5, max_iter: int = 64
) -> np.ndarray:
    """Per-point conditional distributions P_{j|i} with target perplexity."""
    n = distances.shape[0]
    target_entropy = np.log(perplexity)
    p = np.zeros((n, n))
    for i in range(n):
        beta_lo, beta_hi = 0.0, np.inf
        beta = 1.0
        row = distances[i].copy()
        row[i] = np.inf
        for _ in range(max_iter):
            expd = np.exp(-row * beta)
            expd[i] = 0.0
            total = expd.sum()
            if total <= 0:
                beta *= 0.5
                continue
            probs = expd / total
            entropy = -np.sum(probs * np.log(probs + _EPS))
            diff = entropy - target_entropy
            if abs(diff) < tol:
                break
            if diff > 0:  # entropy too high -> sharpen
                beta_lo = beta
                beta = beta * 2.0 if beta_hi == np.inf else 0.5 * (beta + beta_hi)
            else:
                beta_hi = beta
                beta = beta * 0.5 if beta_lo == 0.0 else 0.5 * (beta + beta_lo)
        p[i] = probs
    return p


class TSNE:
    """2-D (by default) t-SNE embedding.

    Args:
        num_components: output dimensionality.
        perplexity: effective neighbourhood size; must satisfy
            ``3 * perplexity < n - 1``.
        learning_rate: gradient-descent step size.
        num_iter: total optimization iterations.
        seed: RNG seed for the (PCA-initialized, jittered) start.
    """

    def __init__(
        self,
        num_components: int = 2,
        perplexity: float = 15.0,
        learning_rate: float = 100.0,
        num_iter: int = 400,
        seed: int = 0,
    ) -> None:
        if perplexity <= 1:
            raise ValueError("perplexity must exceed 1")
        self.num_components = num_components
        self.perplexity = perplexity
        self.learning_rate = learning_rate
        self.num_iter = num_iter
        self.seed = seed

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        """Embed ``x`` (n, d) into ``num_components`` dimensions."""
        x = np.asarray(x, dtype=np.float64)
        n = x.shape[0]
        if n < 5:
            raise ValueError("t-SNE needs at least 5 points")
        if 3 * self.perplexity >= n - 1:
            raise ValueError(
                f"perplexity {self.perplexity} too large for {n} points"
            )
        rng = np.random.default_rng(self.seed)

        conditional = _binary_search_sigma(_pairwise_sq_distances(x), self.perplexity)
        p = (conditional + conditional.T) / (2.0 * n)
        p = np.maximum(p, _EPS)

        k = min(self.num_components, min(x.shape))
        y = pca(x, num_components=k)
        if k < self.num_components:
            pad = np.zeros((n, self.num_components - k))
            y = np.hstack([y, pad])
        y = y / (y.std(axis=0, keepdims=True) + _EPS) * 1e-2
        y += rng.normal(0.0, 1e-4, size=y.shape)

        velocity = np.zeros_like(y)
        exaggeration_until = min(100, self.num_iter // 4)
        for iteration in range(self.num_iter):
            p_eff = p * 4.0 if iteration < exaggeration_until else p
            d2 = _pairwise_sq_distances(y)
            q_num = 1.0 / (1.0 + d2)
            np.fill_diagonal(q_num, 0.0)
            q = np.maximum(q_num / q_num.sum(), _EPS)
            pq = (p_eff - q) * q_num  # (n, n)
            grad = 4.0 * ((np.diag(pq.sum(axis=1)) - pq) @ y)
            momentum = 0.5 if iteration < exaggeration_until else 0.8
            velocity = momentum * velocity - self.learning_rate * grad
            y = y + velocity
            y -= y.mean(axis=0, keepdims=True)
        return y

    def kl_divergence(self, x: np.ndarray, y: np.ndarray) -> float:
        """KL(P || Q) of an embedding ``y`` of ``x`` (quality diagnostic)."""
        n = x.shape[0]
        conditional = _binary_search_sigma(_pairwise_sq_distances(np.asarray(x, float)), self.perplexity)
        p = np.maximum((conditional + conditional.T) / (2.0 * n), _EPS)
        d2 = _pairwise_sq_distances(np.asarray(y, float))
        q_num = 1.0 / (1.0 + d2)
        np.fill_diagonal(q_num, 0.0)
        q = np.maximum(q_num / q_num.sum(), _EPS)
        mask = ~np.eye(n, dtype=bool)
        return float(np.sum(p[mask] * np.log(p[mask] / q[mask])))
