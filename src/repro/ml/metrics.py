"""Classification and ranking metrics used by the evaluation pipelines."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def confusion_matrix(y_true: np.ndarray, y_pred: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Return (labels, matrix) where matrix[i, j] counts true i / pred j."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError("y_true and y_pred must have the same shape")
    labels = np.unique(np.concatenate([y_true, y_pred]))
    index = {label: i for i, label in enumerate(labels)}
    matrix = np.zeros((labels.size, labels.size), dtype=np.int64)
    for t, p in zip(y_true, y_pred):
        matrix[index[t], index[p]] += 1
    return labels, matrix


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.size == 0:
        raise ValueError("cannot compute accuracy of empty arrays")
    return float((y_true == y_pred).mean())


@dataclass(frozen=True)
class F1Scores:
    """Micro- and macro-averaged F1 (the Table III/V metrics)."""

    micro: float
    macro: float


def f1_scores(y_true: np.ndarray, y_pred: np.ndarray) -> F1Scores:
    """Micro/macro F1 over all classes present in ``y_true`` or ``y_pred``.

    Macro-F1 averages per-class F1 with classes that never occur (no true
    and no predicted samples) contributing 0 — matching sklearn's default
    with zero_division=0.
    """
    labels, matrix = confusion_matrix(y_true, y_pred)
    tp = np.diag(matrix).astype(np.float64)
    fp = matrix.sum(axis=0) - tp
    fn = matrix.sum(axis=1) - tp

    per_class = np.zeros(labels.size)
    denom = 2 * tp + fp + fn
    nonzero = denom > 0
    per_class[nonzero] = 2 * tp[nonzero] / denom[nonzero]
    macro = float(per_class.mean())

    total_tp, total_fp, total_fn = tp.sum(), fp.sum(), fn.sum()
    micro_denom = 2 * total_tp + total_fp + total_fn
    micro = float(2 * total_tp / micro_denom) if micro_denom > 0 else 0.0
    return F1Scores(micro=micro, macro=macro)


def roc_auc_score(y_true: np.ndarray, scores: np.ndarray) -> float:
    """Binary ROC-AUC via the Mann-Whitney U statistic (ties averaged)."""
    y_true = np.asarray(y_true)
    scores = np.asarray(scores, dtype=np.float64)
    if y_true.shape != scores.shape or y_true.ndim != 1:
        raise ValueError("y_true and scores must be matching 1-D arrays")
    positives = y_true == 1
    n_pos = int(positives.sum())
    n_neg = y_true.size - n_pos
    if n_pos == 0 or n_neg == 0:
        raise ValueError("AUC requires both positive and negative samples")
    order = np.argsort(scores, kind="mergesort")
    ranks = np.empty(scores.size, dtype=np.float64)
    sorted_scores = scores[order]
    # average ranks over tied groups
    i = 0
    while i < scores.size:
        j = i
        while j + 1 < scores.size and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        ranks[order[i : j + 1]] = 0.5 * (i + j) + 1.0
        i = j + 1
    rank_sum = ranks[positives].sum()
    u = rank_sum - n_pos * (n_pos + 1) / 2.0
    return float(u / (n_pos * n_neg))


def silhouette_score(x: np.ndarray, labels: np.ndarray) -> float:
    """Mean silhouette coefficient (euclidean) over all samples.

    Used as the quantitative stand-in for Figure 6's visual judgement of
    cluster separation: higher silhouette = more separated categories.
    """
    x = np.asarray(x, dtype=np.float64)
    labels = np.asarray(labels)
    if x.ndim != 2 or labels.shape != (x.shape[0],):
        raise ValueError("x must be (n, d) and labels (n,)")
    unique = np.unique(labels)
    if unique.size < 2:
        raise ValueError("silhouette needs at least two clusters")
    # pairwise distances
    sq = (x**2).sum(axis=1)
    d2 = sq[:, None] + sq[None, :] - 2.0 * (x @ x.T)
    dist = np.sqrt(np.maximum(d2, 0.0))

    n = x.shape[0]
    scores = np.zeros(n)
    masks = {label: labels == label for label in unique}
    for i in range(n):
        own = masks[labels[i]]
        own_count = own.sum()
        if own_count <= 1:
            scores[i] = 0.0
            continue
        a = dist[i, own].sum() / (own_count - 1)
        b = np.inf
        for label in unique:
            if label == labels[i]:
                continue
            other = masks[label]
            b = min(b, dist[i, other].mean())
        scores[i] = (b - a) / max(a, b) if max(a, b) > 0 else 0.0
    return float(scores.mean())
