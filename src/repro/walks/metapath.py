"""Deprecated scalar metapath walker (superseded by MetapathPolicy).

Metapath-constrained walks (Dong et al. 2017) for the Metapath2Vec
baseline.  A metapath is a cyclic sequence of node types, e.g.
``["author", "paper", "venue", "paper", "author"]`` ("APVPA"); at each
step the walker moves to a uniformly random neighbour whose type matches
the next type on the path, wrapping around.

The transition logic now lives in
:class:`repro.walks.policies.MetapathPolicy`; this class survives as a
deprecated scalar entry point executing that policy through
:class:`~repro.walks.walker.ReferenceWalker`.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.graph.heterograph import HeteroGraph, NodeId
from repro.walks.policies import MetapathPolicy
from repro.walks.walker import ReferenceWalker


class MetapathWalker(ReferenceWalker):
    """Deprecated: scalar walks that follow a metapath over node types.

    Use :class:`repro.walks.policies.MetapathPolicy` with the lockstep
    engine for corpora; this wrapper samples the identical distribution
    one walk at a time from the policy's exact probabilities.
    """

    def __init__(
        self,
        graph: HeteroGraph,
        metapath: list[str],
        rng: np.random.Generator | None = None,
    ) -> None:
        warnings.warn(
            "MetapathWalker is deprecated; use "
            "LockstepWalker(graph, MetapathPolicy(metapath)) or "
            "ReferenceWalker(graph, MetapathPolicy(metapath)) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__(graph, MetapathPolicy(metapath), rng=rng)

    @property
    def metapath(self) -> list[str]:
        return list(self.policy.metapath)

    def start_nodes(self) -> list[NodeId]:
        """Nodes of the metapath's first type — valid walk starts."""
        return [
            self.graph.node_at(int(i)) for i in self.policy.start_indices()
        ]
