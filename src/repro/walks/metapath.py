"""Metapath-constrained walks (Dong et al. 2017) for the Metapath2Vec baseline.

A metapath is a cyclic sequence of node types, e.g. ``["author", "paper",
"venue", "paper", "author"]`` ("APVPA").  At each step the walker moves to
a uniformly random neighbour whose type matches the next type on the path,
wrapping around when the pattern is exhausted (the first and last types of
a metapath coincide by convention).
"""

from __future__ import annotations

import numpy as np

from repro.graph.heterograph import HeteroGraph, NodeId


class MetapathWalker:
    """Walks that follow a user-specified metapath over node types."""

    def __init__(
        self,
        graph: HeteroGraph,
        metapath: list[str],
        rng: np.random.Generator | None = None,
    ) -> None:
        if len(metapath) < 2:
            raise ValueError("a metapath needs at least two node types")
        if metapath[0] != metapath[-1]:
            raise ValueError(
                "metapaths must be cyclic (first type == last type), got "
                f"{metapath}"
            )
        unknown = set(metapath) - graph.node_types
        if unknown:
            raise ValueError(f"metapath mentions unknown node types {unknown}")
        self.graph = graph
        self.metapath = list(metapath)
        self.rng = rng or np.random.default_rng()
        # typed adjacency: node -> type -> neighbour list
        self._typed_adj: dict[NodeId, dict[str, list[NodeId]]] = {}
        for node in graph.nodes:
            buckets: dict[str, list[NodeId]] = {}
            for nbr, _, _ in graph.incident(node):
                buckets.setdefault(graph.node_type(nbr), []).append(nbr)
            self._typed_adj[node] = buckets

    def start_nodes(self) -> list[NodeId]:
        """Nodes of the metapath's first type — valid walk starts."""
        return self.graph.nodes_of_type(self.metapath[0])

    def walk(self, start: NodeId, length: int) -> list[NodeId]:
        """One metapath-constrained walk of up to ``length`` nodes.

        The walk stops early when no neighbour of the required next type
        exists.  ``start`` must have the metapath's first node type.
        """
        if self.graph.node_type(start) != self.metapath[0]:
            raise ValueError(
                f"start node {start!r} has type "
                f"{self.graph.node_type(start)!r}, metapath starts with "
                f"{self.metapath[0]!r}"
            )
        # position within the repeating pattern; the pattern body excludes
        # the duplicated final type
        body = self.metapath[:-1]
        path = [start]
        position = 0
        current = start
        while len(path) < length:
            next_type = body[(position + 1) % len(body)]
            candidates = self._typed_adj[current].get(next_type, [])
            if not candidates:
                break
            current = candidates[int(self.rng.integers(len(candidates)))]
            path.append(current)
            position += 1
        return path
