"""Pluggable walk policies: per-step transition logic as vectorized kernels.

ROADMAP item 5.  A :class:`WalkPolicy` owns *what* a walk does at each
step — the transition distribution and whatever per-walk state it needs —
as vectorized operations over the flat :class:`~repro.graph.csr.CSRAdjacency`.
*How* walks advance (the lockstep batching, the dense walk matrix, the
stuck-walk bookkeeping) lives once in
:class:`repro.walks.batched.LockstepWalker`, which executes any policy.

A policy implements two faces of the same distribution:

- :meth:`WalkPolicy.sample_slots` — the fast path: one vectorized draw of
  CSR slot offsets for a whole batch of walks (alias gathers, masked
  row-wise cumsums);
- :meth:`WalkPolicy.slot_probs` — the exact per-slot probability weights
  for a single walk, used by the scalar reference walkers and the
  chi-square equivalence tests.  Both faces share the same weight
  formulas, so scalar/batched equivalence holds by construction.

Policies (see ``docs/walk_policies.md`` for the math):

- :class:`UniformPolicy` — uniform over neighbours (DeepWalk, the
  paper's ``TransN-With-Simple-Walk`` ablation);
- :class:`BiasedCorrelatedPolicy` — the paper's Equations 6-7;
- :class:`Node2VecPolicy` — second-order p/q walks (Grover & Leskovec);
- :class:`MetapathPolicy` — metapath-constrained walks (Dong et al.);
- :class:`HetNode2VecPolicy` — node2vec with type-aware transition
  scaling (Het-node2vec, arXiv:2101.01425);
- :class:`SpaceyMetapathPolicy` — occupancy-reinforced spacey walks
  (HeteSpaceyWalk, arXiv:1909.03228).

The relation-balanced mode (BHIN2vec, arXiv:1912.08925) is not a
per-step policy: it walks with :class:`BiasedCorrelatedPolicy` and
rebalances per-view training shares through
:class:`repro.engine.callbacks.RelationBalancer`.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.graph.csr import CSRAdjacency, csr_adjacency
from repro.graph.heterograph import HeteroGraph
from repro.graph.views import View

_PI2_FLOOR = 1e-9
"""pi_2 floor: keeps Equation 7 well-defined when the worst candidate is
the only neighbour (it can reach exactly zero)."""

STUCK = -1
"""Slot value meaning "no admissible transition": the walk ends here."""


def _resolve_graph(
    view_or_graph: View | HeteroGraph,
) -> tuple[HeteroGraph, bool]:
    """Return (graph, is_heter) for a view or a bare graph.

    A bare graph is treated as homogeneous: correlated steps (Equation 7)
    only apply to heter-views.
    """
    if isinstance(view_or_graph, View):
        return view_or_graph.graph, view_or_graph.is_heter
    return view_or_graph, False


# ----------------------------------------------------------------------
# Shared sampling kernels.  These are the *only* implementations of the
# alias draw and the masked-cumsum transition normalizer; scalar walkers,
# batched policies, and the pi_1/pi_2 code paths all call them.
# ----------------------------------------------------------------------
def alias_slot_draw(
    rng: np.random.Generator, csr: CSRAdjacency, here: np.ndarray
) -> np.ndarray:
    """Weight-proportional slot draws (Equation 6) for a batch of nodes.

    One gathered alias sample per walk over the flattened tables:
    ``slot ~ U{0..deg-1}``, then keep it or redirect to its alias local
    depending on one uniform coin.  Every node in ``here`` must have
    degree >= 1.
    """
    prob, local = csr.alias_tables()
    base = csr.indptr[here]
    slot = rng.integers(0, csr.degrees[here])
    coin = rng.random(here.size)
    return np.where(coin < prob[base + slot], slot, local[base + slot])


def padded_segments(
    csr: CSRAdjacency, here: np.ndarray, values: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Gather per-node CSR segments of ``values`` into a padded matrix.

    Returns ``(matrix, valid, degree)`` where ``matrix`` is
    ``(batch, max_degree)`` (padding cells hold clamped garbage — mask
    with ``valid`` before use) and ``valid`` marks real slots.
    """
    degree = csr.degrees[here]
    width = int(degree.max())
    offsets = np.arange(width, dtype=np.int64)
    slots = csr.indptr[here][:, None] + offsets[None, :]
    valid = offsets[None, :] < degree[:, None]
    matrix = values[np.minimum(slots, values.size - 1)]
    return matrix, valid, degree


def masked_cumsum_draw(
    rng: np.random.Generator,
    probs: np.ndarray,
    valid: np.ndarray,
    degree: np.ndarray,
) -> np.ndarray:
    """One slot draw per row from unnormalized padded distributions.

    The transition normalizer: invalid cells are zeroed, each row is
    inverse-CDF sampled from its masked cumulative sum with a single
    uniform pick.  Rows whose total mass is zero yield :data:`STUCK`.
    """
    probs = np.where(valid, probs, 0.0)
    cumsum = np.cumsum(probs, axis=1)
    total = cumsum[:, -1]
    pick = rng.random(probs.shape[0]) * total
    j = np.minimum((cumsum <= pick[:, None]).sum(axis=1), degree - 1)
    return np.where(total > 0.0, j, STUCK)


# ----------------------------------------------------------------------
# The strategy interface
# ----------------------------------------------------------------------
class WalkPolicy:
    """Per-step transition strategy executed by the lockstep engine.

    A policy is *bound* to one graph (:meth:`bind`) before sampling; the
    engine binds it on construction.  Per-walk state lives in a dict of
    flat arrays indexed by global walk row, created by :meth:`init_state`
    and advanced by :meth:`update_state` — the policy object itself stays
    stateless across batches, so one instance can serve many corpora over
    the same graph.

    Subclasses implement :meth:`sample_slots` (vectorized draws) and
    :meth:`slot_probs` (the exact unnormalized per-slot weights of the
    same distribution, for scalar references and tests).
    """

    name = "policy"

    #: optional CSR columns the policy touches while sampling, beyond the
    #: six core arrays — the shared-memory layer publishes exactly these
    #: so workers never rebuild them ("alias", "node_types", "slot_types",
    #: "edge_keys", "slot_edge_types")
    required_columns: frozenset[str] = frozenset()

    def __init__(self) -> None:
        self.graph: HeteroGraph | None = None
        self.is_heter: bool = False
        self._csr: CSRAdjacency | None = None

    # -- binding -------------------------------------------------------
    def bind(self, view_or_graph: View | HeteroGraph) -> "WalkPolicy":
        """Attach the policy to a view/graph; idempotent per graph."""
        graph, is_heter = _resolve_graph(view_or_graph)
        return self._bind(graph, csr_adjacency(graph), is_heter)

    def bind_csr(
        self, csr: CSRAdjacency, is_heter: bool = False
    ) -> "WalkPolicy":
        """Attach the policy directly to a (possibly detached) adjacency.

        The worker-side binding path of the parallel layer: the CSR
        arrays may live in shared memory with no graph object behind
        them.  Policies whose bind-time precomputation needs type
        information read it from the adjacency's type columns, so a
        detached CSR must carry them (``CSRAdjacency.from_arrays``).
        """
        return self._bind(csr.graph, csr, is_heter)

    def _bind(
        self,
        graph: HeteroGraph | None,
        csr: CSRAdjacency,
        is_heter: bool,
    ) -> "WalkPolicy":
        if self._csr is not None:
            if self._csr is csr or (
                graph is not None and self.graph is graph
            ):
                return self
            raise RuntimeError(
                f"{self.name!r} policy is already bound to a different "
                "graph; create one policy instance per graph"
            )
        self.graph = graph
        self.is_heter = bool(is_heter)
        self._csr = csr
        self._on_bind()
        return self

    def _on_bind(self) -> None:
        """Hook for subclass bind-time precomputation.

        Runs with :attr:`csr` set; :attr:`graph` may be ``None`` (detached
        worker-side binding), so hooks must read type information from the
        adjacency's columns, not the graph.
        """

    # -- worker dispatch -----------------------------------------------
    def spec(self) -> dict:
        """Constructor kwargs rebuilding an equivalent *unbound* policy."""
        return {}

    def __reduce__(self):
        """Pickle as an unbound rebuild-from-spec.

        Binding state (graph, CSR arrays, alias tables) never crosses a
        process boundary — the receiving side re-binds against its own
        (typically shared-memory) adjacency.  This keeps worker dispatch
        payloads a few hundred bytes regardless of graph size.
        """
        return (_rebuild_policy, (type(self), self.spec()))

    @property
    def csr(self) -> CSRAdjacency:
        if self._csr is None:
            raise RuntimeError(
                f"{self.name!r} policy is not bound to a graph yet; "
                "call bind(view_or_graph) first"
            )
        return self._csr

    # -- per-walk state ------------------------------------------------
    def init_state(self, starts: np.ndarray) -> dict[str, np.ndarray]:
        """Fresh per-walk state arrays for a batch starting at ``starts``."""
        return {}

    def update_state(
        self,
        state: dict[str, np.ndarray],
        rows: np.ndarray,
        here: np.ndarray,
        slots: np.ndarray,
    ) -> None:
        """Advance state for walk ``rows`` that stepped ``here -> slots``."""

    # -- sampling ------------------------------------------------------
    def start_indices(self) -> np.ndarray | None:
        """Node indices walks may start from (None = every node)."""
        return None

    def sample_slots(
        self,
        rng: np.random.Generator,
        here: np.ndarray,
        rows: np.ndarray,
        state: dict[str, np.ndarray],
    ) -> np.ndarray:
        """One vectorized step: a CSR slot offset per walk.

        ``here`` holds current node indices (all with degree >= 1),
        ``rows`` the global walk rows (for state lookups).  Returns
        int64 slot offsets into each node's CSR segment, or
        :data:`STUCK` where no admissible transition exists.
        """
        raise NotImplementedError

    def slot_probs(
        self, here: int, state: dict[str, np.ndarray], row: int = 0
    ) -> np.ndarray:
        """Exact unnormalized per-slot weights of one walk's next step.

        The scalar face of :meth:`sample_slots`'s distribution — shares
        its weight formulas.  An all-zero (or empty) result means the
        walk is stuck.  Consumers normalize.
        """
        raise NotImplementedError


class UniformPolicy(WalkPolicy):
    """Uniform over neighbours, weights ignored (DeepWalk / simple-walk).

    Never touches the alias tables or weight columns, so the lazy CSR
    extensions are never built on its behalf.
    """

    name = "uniform"

    def sample_slots(self, rng, here, rows, state):
        return rng.integers(0, self.csr.degrees[here])

    def slot_probs(self, here, state, row=0):
        degree = int(self.csr.degrees[here])
        return np.full(degree, 1.0, dtype=np.float64)


class BiasedCorrelatedPolicy(WalkPolicy):
    """The paper's walk: weight-biased (Eq. 6), correlated (Eq. 7).

    Per batch step the walks split into two groups:

    - *pi_1* walks (first step, Delta = 0, or correlation off) draw one
      gathered alias sample each (:func:`alias_slot_draw`);
    - *pi_1 * pi_2* walks gather candidate weights into a padded matrix,
      apply Equation 7 against each walk's previous edge weight, and
      draw by masked row-wise cumsum.

    ``correlated=None`` (default) enables Equation 7 exactly on
    heter-views, per the paper.
    """

    name = "biased"
    required_columns = frozenset({"alias"})

    def __init__(self, correlated: bool | None = None) -> None:
        super().__init__()
        self._correlated_arg = correlated
        self.correlated: bool = False

    def spec(self):
        return {"correlated": self._correlated_arg}

    def _on_bind(self):
        self.correlated = (
            self.is_heter if self._correlated_arg is None else self._correlated_arg
        )

    def init_state(self, starts):
        return {
            "previous_weight": np.zeros(starts.size, dtype=np.float64),
            "has_previous": np.zeros(starts.size, dtype=bool),
        }

    def pi_weights(
        self, weights: np.ndarray, weight_sum: float, delta: float,
        previous_weight: float | None,
    ) -> np.ndarray:
        """Equation 6 (and 7, when applicable) over one weight segment.

        The single source of the paper's transition formula: the scalar
        reference's ``step_distribution`` and this policy's own
        :meth:`slot_probs` both come here.
        """
        pi1 = weights / weight_sum
        if self.correlated and previous_weight is not None and delta > 0.0:
            pi2 = 1.0 - (weights - previous_weight) / delta
            return pi1 * np.maximum(pi2, _PI2_FLOOR)
        return pi1

    def sample_slots(self, rng, here, rows, state):
        csr = self.csr
        use_pi2 = (
            state["has_previous"][rows] & (csr.delta[here] > 0.0)
            if self.correlated
            else np.zeros(rows.size, dtype=bool)
        )
        slots = np.empty(here.size, dtype=np.int64)
        plain = ~use_pi2
        if plain.any():
            slots[plain] = alias_slot_draw(rng, csr, here[plain])
        if use_pi2.any():
            sub = here[use_pi2]
            previous = state["previous_weight"][rows][use_pi2]
            weights, valid, degree = padded_segments(csr, sub, csr.weights)
            pi1 = weights / csr.weight_sums[sub][:, None]
            pi2 = 1.0 - (weights - previous[:, None]) / csr.delta[sub][:, None]
            probs = np.where(valid, pi1 * np.maximum(pi2, _PI2_FLOOR), 0.0)
            slots[use_pi2] = masked_cumsum_draw(rng, probs, valid, degree)
        return slots

    def update_state(self, state, rows, here, slots):
        csr = self.csr
        state["previous_weight"][rows] = csr.weights[csr.indptr[here] + slots]
        state["has_previous"][rows] = True

    def slot_probs(self, here, state, row=0):
        csr = self.csr
        weights = csr.segment_weights(here)
        if weights.size == 0:
            return weights.astype(np.float64)
        previous: float | None = None
        if state and bool(state["has_previous"][row]):
            previous = float(state["previous_weight"][row])
        return self.pi_weights(
            weights,
            float(csr.weight_sums[here]),
            float(csr.delta[here]),
            previous,
        )


class Node2VecPolicy(WalkPolicy):
    """Second-order p/q walks (node2vec, Grover & Leskovec 2016).

    State is the previous node per walk (-1 on the first step).  First
    steps are plain weight-proportional alias draws; later steps scale
    each candidate edge weight by ``1/p`` (return to the previous node),
    ``1`` (candidate adjacent to the previous node — the vectorized
    distance-1 test via :meth:`CSRAdjacency.has_edges`), or ``1/q``
    (moving outward), then draw by masked cumsum.
    """

    name = "node2vec"
    required_columns = frozenset({"alias", "edge_keys"})

    def __init__(self, p: float = 1.0, q: float = 1.0) -> None:
        super().__init__()
        if p <= 0 or q <= 0:
            raise ValueError(f"p and q must be positive, got p={p}, q={q}")
        self.p = float(p)
        self.q = float(q)

    def spec(self):
        return {"p": self.p, "q": self.q}

    def init_state(self, starts):
        return {"previous": np.full(starts.size, -1, dtype=np.int64)}

    def _pq_factors(
        self, cand: np.ndarray, prev: np.ndarray, current: np.ndarray
    ) -> np.ndarray:
        """Elementwise p/q bias factor; arrays broadcast together."""
        returning = cand == prev
        linked = self.csr.has_edges(prev, cand)
        return np.where(
            returning, 1.0 / self.p, np.where(linked, 1.0, 1.0 / self.q)
        )

    def _first_order_weights(self, here: np.ndarray) -> np.ndarray | None:
        """Padded first-step weights, or None for the alias fast path."""
        return None

    def _first_order_row(self, here: int) -> np.ndarray:
        """Exact first-step weights of one node's segment."""
        return self.csr.segment_weights(here).astype(np.float64)

    def _second_order_weights(
        self, sub: np.ndarray, prev: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Padded ``(weights, valid, degree)`` for second-order rows."""
        csr = self.csr
        weights, valid, degree = padded_segments(csr, sub, csr.weights)
        cand, _, _ = padded_segments(csr, sub, csr.indices)
        factors = self._pq_factors(cand, prev[:, None], sub[:, None])
        return weights * factors, valid, degree

    def sample_slots(self, rng, here, rows, state):
        csr = self.csr
        prev = state["previous"][rows]
        second = prev >= 0
        slots = np.empty(here.size, dtype=np.int64)
        first = ~second
        if first.any():
            fw = self._first_order_weights(here[first])
            if fw is None:
                slots[first] = alias_slot_draw(rng, csr, here[first])
            else:
                _, valid, degree = padded_segments(csr, here[first], csr.weights)
                slots[first] = masked_cumsum_draw(rng, fw, valid, degree)
        if second.any():
            probs, valid, degree = self._second_order_weights(
                here[second], prev[second]
            )
            slots[second] = masked_cumsum_draw(rng, probs, valid, degree)
        return slots

    def update_state(self, state, rows, here, slots):
        state["previous"][rows] = here

    def slot_probs(self, here, state, row=0):
        csr = self.csr
        prev = int(state["previous"][row]) if state else -1
        if prev < 0:
            return self._first_order_row(here)
        weights = csr.segment_weights(here).astype(np.float64)
        if weights.size == 0:
            return weights
        cand = csr.neighbors(here)
        factors = self._pq_factors(
            cand, np.full(cand.size, prev, dtype=np.int64),
            np.full(cand.size, here, dtype=np.int64),
        )
        return weights * factors


class HetNode2VecPolicy(Node2VecPolicy):
    """node2vec with type-aware transition scaling (arXiv:2101.01425).

    Candidate weights gain an extra ``type_switch`` factor whenever the
    candidate's node type differs from the current node's — on *every*
    step, including the first.  ``type_switch > 1`` pushes walks across
    type boundaries (more heterogeneous context windows),
    ``type_switch < 1`` keeps them within a type.
    """

    name = "het-node2vec"
    # first-order steps are padded-cumsum draws (never alias), but the
    # type factors gather node_type_codes and _pq_factors needs edge_keys
    required_columns = frozenset({"edge_keys", "node_types"})

    def __init__(
        self, p: float = 1.0, q: float = 1.0, type_switch: float = 2.0
    ) -> None:
        super().__init__(p=p, q=q)
        if type_switch <= 0:
            raise ValueError(
                f"type_switch must be positive, got {type_switch}"
            )
        self.type_switch = float(type_switch)

    def spec(self):
        return {"p": self.p, "q": self.q, "type_switch": self.type_switch}

    def _switch_factors(
        self, cand: np.ndarray, current: np.ndarray
    ) -> np.ndarray:
        codes = self.csr.node_type_codes
        return np.where(codes[cand] != codes[current], self.type_switch, 1.0)

    def _pq_factors(self, cand, prev, current):
        return super()._pq_factors(cand, prev, current) * self._switch_factors(
            cand, current
        )

    def _first_order_weights(self, here):
        csr = self.csr
        weights, valid, _ = padded_segments(csr, here, csr.weights)
        cand, _, _ = padded_segments(csr, here, csr.indices)
        return weights * self._switch_factors(cand, here[:, None])

    def _first_order_row(self, here):
        csr = self.csr
        weights = csr.segment_weights(here).astype(np.float64)
        if weights.size == 0:
            return weights
        cand = csr.neighbors(here)
        return weights * self._switch_factors(
            cand, np.full(cand.size, here, dtype=np.int64)
        )


def _validate_metapath(metapath: list[str]) -> list[str]:
    if len(metapath) < 2:
        raise ValueError("a metapath needs at least two node types")
    if metapath[0] != metapath[-1]:
        raise ValueError(
            "metapaths must be cyclic (first type == last type), got "
            f"{metapath}"
        )
    return list(metapath)


def _derive_metapath(type_names) -> list[str]:
    """A default cyclic metapath from a collection of node-type names.

    One type -> ``[t, t]``; two types -> ``[a, b, a]`` (sorted order).
    More than two types is ambiguous — callers must pass an explicit
    metapath.
    """
    types = sorted(type_names)
    if len(types) == 1:
        return [types[0], types[0]]
    if len(types) == 2:
        return [types[0], types[1], types[0]]
    raise ValueError(
        "cannot derive a default metapath for a graph with "
        f"{len(types)} node types; pass metapath= explicitly"
    )


class MetapathPolicy(WalkPolicy):
    """Metapath-constrained walks (metapath2vec, Dong et al. 2017).

    State is each walk's position in the (cyclic) metapath body; a step
    moves to a uniformly random neighbour whose type matches the next
    type on the path, wrapping around.  Walks with no matching
    neighbour end (:data:`STUCK`).  ``metapath=None`` derives a default
    cycle from the bound graph's types (1 or 2 types only).

    :meth:`start_indices` restricts corpus starts to the path's first
    type (the metapath2vec protocol), but walks started elsewhere — the
    cross-view trainer launches from arbitrary shared nodes — enter the
    cycle at the first position matching their start type; only a start
    whose type never appears on the path is rejected.
    """

    name = "metapath"
    required_columns = frozenset({"node_types", "slot_types"})

    def __init__(self, metapath: list[str] | None = None) -> None:
        super().__init__()
        self.metapath = (
            None if metapath is None else _validate_metapath(metapath)
        )
        self._body_codes: np.ndarray | None = None

    def spec(self):
        return {"metapath": self.metapath}

    def _on_bind(self):
        csr = self.csr
        if self.metapath is None:
            self.metapath = _derive_metapath(csr.type_names)
        unknown = set(self.metapath) - set(csr.type_names)
        if unknown:
            raise ValueError(
                f"metapath mentions unknown node types {unknown}"
            )
        # the pattern body excludes the duplicated final type
        self._body_codes = np.array(
            [csr.type_code(t) for t in self.metapath[:-1]], dtype=np.int64
        )

    def start_indices(self):
        return np.flatnonzero(
            self.csr.node_type_codes == self._body_codes[0]
        )

    def init_state(self, starts):
        codes = self.csr.node_type_codes[starts]
        body = self._body_codes
        # first metapath position whose type matches each start's type
        matches = codes[:, None] == body[None, :]
        bad = ~matches.any(axis=1)
        if bad.any():
            index = int(starts[np.argmax(bad)])
            type_name = self.csr.type_names[int(codes[np.argmax(bad)])]
            offender = (
                repr(self.graph.node_at(index))
                if self.graph is not None
                else f"at index {index}"
            )
            raise ValueError(
                f"start node {offender} has type {type_name!r}, which "
                f"the metapath {self.metapath!r} never visits"
            )
        return {"position": np.argmax(matches, axis=1).astype(np.int64)}

    def _next_codes(self, position: np.ndarray) -> np.ndarray:
        body = self._body_codes
        return body[(position + 1) % body.size]

    def sample_slots(self, rng, here, rows, state):
        csr = self.csr
        types, valid, degree = padded_segments(csr, here, csr.slot_type_codes)
        allowed = valid & (types == self._next_codes(state["position"][rows])[:, None])
        return masked_cumsum_draw(
            rng, allowed.astype(np.float64), allowed, degree
        )

    def update_state(self, state, rows, here, slots):
        state["position"][rows] += 1

    def slot_probs(self, here, state, row=0):
        csr = self.csr
        position = state["position"][row : row + 1] if state else np.zeros(1, np.int64)
        next_code = int(self._next_codes(position)[0])
        types = csr.slot_type_codes[csr.indptr[here] : csr.indptr[here + 1]]
        return (types == next_code).astype(np.float64)


class SpaceyMetapathPolicy(WalkPolicy):
    """Occupancy-reinforced spacey walks (HeteSpaceyWalk, arXiv:1909.03228).

    Each walk carries an *occupancy vector* counting how often every node
    type appeared on its history.  A candidate edge's weight is scaled by
    ``(occupancy[cand_type] + 1) ** reinforcement`` — the walk
    preferentially revisits types it has spent time in, the vertex-
    reinforced "spacey" approximation of a metapath scheme.

    With a ``metapath``, candidates are first restricted to the types
    the path admits as successors of the current node's type (the walk
    is "spacey": it forgets its exact position and only honours the
    type-transition structure); if no admissible candidate exists the
    restriction is dropped for that step rather than killing the walk.
    """

    name = "spacey"
    required_columns = frozenset({"node_types", "slot_types"})

    def __init__(
        self,
        metapath: list[str] | None = None,
        reinforcement: float = 1.0,
    ) -> None:
        super().__init__()
        if reinforcement < 0:
            raise ValueError(
                f"reinforcement must be >= 0, got {reinforcement}"
            )
        self.metapath = (
            None if metapath is None else _validate_metapath(metapath)
        )
        self.reinforcement = float(reinforcement)
        self._successors: np.ndarray | None = None  # (T, T) admissibility

    def spec(self):
        return {
            "metapath": self.metapath,
            "reinforcement": self.reinforcement,
        }

    def _on_bind(self):
        csr = self.csr
        num_types = len(csr.type_names)
        if self.metapath is None:
            self._successors = np.ones((num_types, num_types), dtype=bool)
            return
        unknown = set(self.metapath) - set(csr.type_names)
        if unknown:
            raise ValueError(
                f"metapath mentions unknown node types {unknown}"
            )
        successors = np.zeros((num_types, num_types), dtype=bool)
        body = [csr.type_code(t) for t in self.metapath[:-1]]
        for k, code in enumerate(body):
            successors[code, body[(k + 1) % len(body)]] = True
        self._successors = successors

    def init_state(self, starts):
        num_types = len(self.csr.type_names)
        occupancy = np.zeros((starts.size, num_types), dtype=np.float64)
        codes = self.csr.node_type_codes[starts]
        occupancy[np.arange(starts.size), codes] = 1.0
        return {"occupancy": occupancy}

    def _occupancy_factors(
        self, occupancy: np.ndarray, cand_types: np.ndarray
    ) -> np.ndarray:
        """``(occ[type] + 1) ** reinforcement`` per candidate."""
        boosted = (occupancy + 1.0) ** self.reinforcement
        return np.take_along_axis(boosted, cand_types, axis=1)

    def sample_slots(self, rng, here, rows, state):
        csr = self.csr
        types, valid, degree = padded_segments(csr, here, csr.slot_type_codes)
        weights, _, _ = padded_segments(csr, here, csr.weights)
        clipped = np.clip(types, 0, len(csr.type_names) - 1)
        admissible = np.take_along_axis(
            self._successors[csr.node_type_codes[here]], clipped, axis=1
        )
        allowed = valid & admissible
        # spacey fallback: rows with no admissible type keep all slots
        mask = np.where(allowed.any(axis=1)[:, None], allowed, valid)
        probs = weights * self._occupancy_factors(
            state["occupancy"][rows], clipped
        )
        return masked_cumsum_draw(rng, np.where(mask, probs, 0.0), mask, degree)

    def update_state(self, state, rows, here, slots):
        csr = self.csr
        nxt = csr.indices[csr.indptr[here] + slots]
        state["occupancy"][rows, csr.node_type_codes[nxt]] += 1.0

    def slot_probs(self, here, state, row=0):
        csr = self.csr
        weights = csr.segment_weights(here).astype(np.float64)
        if weights.size == 0:
            return weights
        types = csr.slot_type_codes[csr.indptr[here] : csr.indptr[here + 1]]
        admissible = self._successors[int(csr.node_type_codes[here])][types]
        if not admissible.any():
            admissible = np.ones(types.size, dtype=bool)
        if state:
            occupancy = state["occupancy"][row : row + 1]
        else:
            occupancy = np.zeros((1, len(csr.type_names)))
        factors = self._occupancy_factors(occupancy, types[None, :])[0]
        return np.where(admissible, weights * factors, 0.0)


def _rebuild_policy(cls: type, kwargs: dict) -> WalkPolicy:
    """Unpickle hook of :meth:`WalkPolicy.__reduce__`: a fresh unbound
    instance from the class and its :meth:`~WalkPolicy.spec` kwargs."""
    return cls(**kwargs)


# ----------------------------------------------------------------------
# Policy registry
# ----------------------------------------------------------------------
_FACTORIES: dict[str, Callable[..., WalkPolicy]] = {
    "uniform": lambda **kw: UniformPolicy(),
    "biased": lambda **kw: BiasedCorrelatedPolicy(
        correlated=kw.get("correlated")
    ),
    "node2vec": lambda **kw: Node2VecPolicy(
        p=kw.get("p", 1.0), q=kw.get("q", 1.0)
    ),
    "metapath": lambda **kw: MetapathPolicy(metapath=kw.get("metapath")),
    "het-node2vec": lambda **kw: HetNode2VecPolicy(
        p=kw.get("p", 1.0),
        q=kw.get("q", 1.0),
        type_switch=kw.get("type_switch", 2.0),
    ),
    "spacey": lambda **kw: SpaceyMetapathPolicy(
        metapath=kw.get("metapath"),
        reinforcement=kw.get("reinforcement", 1.0),
    ),
    # relation-balanced walks with the paper's policy; the balancing
    # itself happens in the training loop (RelationBalancer callback)
    "relation-balanced": lambda **kw: BiasedCorrelatedPolicy(
        correlated=kw.get("correlated")
    ),
}

POLICY_NAMES: tuple[str, ...] = tuple(sorted(_FACTORIES))
"""Valid ``walk_policy`` names, in the order the CLI advertises them."""


def make_policy(name: str, **kwargs) -> WalkPolicy:
    """Instantiate a fresh (unbound) policy by registry name.

    Recognized keyword knobs (ignored by policies that don't use them):
    ``p``, ``q`` (node2vec family), ``type_switch`` (het-node2vec),
    ``metapath`` (metapath/spacey), ``reinforcement`` (spacey),
    ``correlated`` (biased).
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown walk policy {name!r}; choose from {POLICY_NAMES}"
        ) from None
    return factory(**kwargs)
