"""Second-order p/q walks (Grover & Leskovec 2016) for the Node2Vec baseline."""

from __future__ import annotations

import numpy as np

from repro.graph.alias import AliasSampler
from repro.graph.heterograph import HeteroGraph, NodeId


class Node2VecWalker:
    """Biased second-order walks controlled by return (p) and in-out (q).

    Transition weight from edge (t, v) to candidate x:
      * ``w / p`` if x == t (return),
      * ``w``     if x is adjacent to t (distance 1),
      * ``w / q`` otherwise (explore).

    Sampling is O(1) per step via alias tables: first steps use a
    per-node table over edge weights; second-order steps use per-(t, v)
    tables built lazily on first traversal of the edge and cached — the
    classic node2vec preprocessing, amortized instead of paid upfront so
    sparse multi-epoch corpora only ever build tables for edges walks
    actually cross.
    """

    def __init__(
        self,
        graph: HeteroGraph,
        p: float = 1.0,
        q: float = 1.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        if p <= 0 or q <= 0:
            raise ValueError(f"p and q must be positive, got p={p}, q={q}")
        self.graph = graph
        self.p = p
        self.q = q
        self.rng = rng or np.random.default_rng()
        self._neighbor_sets: dict[NodeId, set[NodeId]] = {
            node: set(graph.neighbors(node)) for node in graph.nodes
        }
        self._incident = {node: graph.incident(node) for node in graph.nodes}
        self._first_alias = {
            node: AliasSampler([w for _, w, _ in inc]) if inc else None
            for node, inc in self._incident.items()
        }
        self._second_alias: dict[tuple[NodeId, NodeId], AliasSampler] = {}

    def _first_step(self, start: NodeId) -> NodeId | None:
        sampler = self._first_alias[start]
        if sampler is None:
            return None
        return self._incident[start][sampler.sample(self.rng)][0]

    def _second_sampler(self, prev: NodeId, current: NodeId) -> AliasSampler:
        """The (t, v) transition table, built on first use."""
        key = (prev, current)
        sampler = self._second_alias.get(key)
        if sampler is None:
            incident = self._incident[current]
            prev_neighbors = self._neighbor_sets[prev]
            weights = np.empty(len(incident))
            for j, (candidate, w, _) in enumerate(incident):
                if candidate == prev:
                    weights[j] = w / self.p
                elif candidate in prev_neighbors:
                    weights[j] = w
                else:
                    weights[j] = w / self.q
            sampler = AliasSampler(weights)
            self._second_alias[key] = sampler
        return sampler

    def walk(self, start: NodeId, length: int) -> list[NodeId]:
        """One p/q-biased walk of up to ``length`` nodes."""
        path = [start]
        if length == 1:
            return path
        second = self._first_step(start)
        if second is None:
            return path
        path.append(second)
        while len(path) < length:
            prev, current = path[-2], path[-1]
            incident = self._incident[current]
            if not incident:
                break
            sampler = self._second_sampler(prev, current)
            path.append(incident[sampler.sample(self.rng)][0])
        return path
