"""Deprecated scalar node2vec walker (superseded by Node2VecPolicy).

Second-order p/q walks (Grover & Leskovec 2016).  The transition math
now lives in :class:`repro.walks.policies.Node2VecPolicy`; this class
survives as a deprecated scalar entry point that executes that policy
through :class:`~repro.walks.walker.ReferenceWalker`, so downstream
callers keep working while new code uses
``LockstepWalker(graph, Node2VecPolicy(p, q))``.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.graph.heterograph import HeteroGraph
from repro.walks.policies import Node2VecPolicy
from repro.walks.walker import ReferenceWalker


class Node2VecWalker(ReferenceWalker):
    """Deprecated: scalar second-order p/q walks.

    Transition weight from edge (t, v) to candidate x:
      * ``w / p`` if x == t (return),
      * ``w``     if x is adjacent to t (distance 1),
      * ``w / q`` otherwise (explore).

    Use :class:`repro.walks.policies.Node2VecPolicy` with the lockstep
    engine for corpora; this wrapper samples the identical distribution
    one walk at a time from the policy's exact probabilities.
    """

    def __init__(
        self,
        graph: HeteroGraph,
        p: float = 1.0,
        q: float = 1.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        warnings.warn(
            "Node2VecWalker is deprecated; use "
            "LockstepWalker(graph, Node2VecPolicy(p, q)) or "
            "ReferenceWalker(graph, Node2VecPolicy(p, q)) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__(graph, Node2VecPolicy(p=p, q=q), rng=rng)

    @property
    def p(self) -> float:
        return self.policy.p

    @property
    def q(self) -> float:
        return self.policy.q
