"""The generic lockstep walk engine: one batching loop, any policy.

The scalar walkers in :mod:`repro.walks.walker` advance one walk with one
Python-level step at a time — the dominant cost of Algorithm 1's corpus
resampling.  :class:`LockstepWalker` advances *all* walks of a corpus in
lockstep: every iteration of the step loop asks its
:class:`~repro.walks.policies.WalkPolicy` for one vectorized draw across
the whole batch of active walks, so the per-step cost is a handful of
NumPy gathers instead of a Python loop body per walk.

The engine owns *how* walks advance — the dense walk matrix, lengths,
the live/stuck bookkeeping; the policy owns *what* a step does — the
transition distribution and per-walk state.  Each policy samples exactly
the distribution of its scalar reference (``tests/walks/test_policies.py``
holds the chi-square equivalence evidence per policy).

Walks are returned in *index space* as a dense ``(num_walks, length)``
int64 matrix plus a per-walk length array; slots past a walk's length are
``-1``.  That is precisely the representation
:class:`repro.walks.corpus.WalkCorpus` stores, so corpus construction
never materializes per-walk Python lists.

The pre-refactor engines survive as deprecated aliases:
``BatchedUniformWalker`` == engine + :class:`UniformPolicy`,
``BatchedBiasedCorrelatedWalker`` == engine +
:class:`BiasedCorrelatedPolicy` — bit-for-bit, including RNG consumption
order (the determinism goldens pin this).
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.graph.heterograph import HeteroGraph
from repro.graph.views import View
from repro.walks.policies import (
    BiasedCorrelatedPolicy,
    UniformPolicy,
    WalkPolicy,
    _resolve_graph,
)

from repro.graph.csr import CSRAdjacency, csr_adjacency

PAD = -1
"""Fill value of walk-matrix slots past a walk's end."""


class LockstepWalker:
    """Executes any :class:`WalkPolicy` over batches of walks in lockstep.

    Besides views/graphs, the engine also mounts directly on a (possibly
    detached, shared-memory-backed) :class:`CSRAdjacency` — the parallel
    workers' path, where no graph object exists.  ``is_heter`` only
    matters for that form (views carry their own flag).
    """

    def __init__(
        self,
        view_or_graph: View | HeteroGraph | CSRAdjacency,
        policy: WalkPolicy,
        rng: np.random.Generator | None = None,
        is_heter: bool | None = None,
    ) -> None:
        if isinstance(view_or_graph, CSRAdjacency):
            self._csr = view_or_graph
            self.graph = view_or_graph.graph
            self._is_heter = bool(is_heter) if is_heter is not None else False
            self.policy = policy.bind_csr(
                view_or_graph, is_heter=self._is_heter
            )
        else:
            self.graph, self._is_heter = _resolve_graph(view_or_graph)
            self._csr = csr_adjacency(self.graph)
            self.policy = policy.bind(view_or_graph)
        self.rng = rng or np.random.default_rng()

    def _start_state(
        self, starts: np.ndarray, length: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Allocate (matrix, lengths, current, active) for a batch."""
        starts = np.ascontiguousarray(starts, dtype=np.int64)
        if starts.ndim != 1:
            raise ValueError(f"starts must be 1-D, got shape {starts.shape}")
        if length < 1:
            raise ValueError(f"walk length must be >= 1, got {length}")
        matrix = np.full((starts.size, length), PAD, dtype=np.int64)
        matrix[:, 0] = starts
        lengths = np.ones(starts.size, dtype=np.int64)
        active = self._csr.degrees[starts] > 0
        return matrix, lengths, starts.copy(), active

    def walk_batch(
        self,
        starts: np.ndarray,
        length: int,
        rng: np.random.Generator | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Advance ``starts.size`` walks of the bound policy in lockstep.

        Args:
            starts: 1-D int array of start node *indices*.
            length: nodes per walk.  Walks end early at neighbour-less
                nodes or when the policy reports no admissible
                transition (``STUCK``), mirroring the scalar walkers.
            rng: draw from this generator instead of the walker's own —
                the parallel layer threads per-task spawned streams
                through here so concurrent batches stay deterministic.

        Returns:
            ``(matrix, lengths)`` — the ``(num_walks, length)`` index
            matrix (``-1`` past each walk's end) and per-walk lengths.
        """
        csr = self._csr
        policy = self.policy
        draw_rng = self.rng if rng is None else rng
        matrix, lengths, current, active = self._start_state(starts, length)
        state = policy.init_state(
            np.ascontiguousarray(starts, dtype=np.int64)
        )
        for step in range(1, length):
            live = np.flatnonzero(active)
            if live.size == 0:
                break
            here = current[live]
            slots = policy.sample_slots(draw_rng, here, live, state)
            stuck = slots < 0
            if stuck.any():
                active[live[stuck]] = False
                live, here, slots = live[~stuck], here[~stuck], slots[~stuck]
                if live.size == 0:
                    continue
            nxt = csr.indices[csr.indptr[here] + slots]
            matrix[live, step] = nxt
            lengths[live] += 1
            current[live] = nxt
            policy.update_state(state, live, here, slots)
            active[live] = csr.degrees[nxt] > 0
        return matrix, lengths


def _deprecated(old: str, replacement: str) -> None:
    warnings.warn(
        f"{old} is deprecated; use {replacement} instead",
        DeprecationWarning,
        stacklevel=3,
    )


class BatchedUniformWalker(LockstepWalker):
    """Deprecated alias: engine + :class:`UniformPolicy`."""

    def __init__(
        self,
        view_or_graph: View | HeteroGraph,
        rng: np.random.Generator | None = None,
    ) -> None:
        _deprecated(
            "BatchedUniformWalker",
            "LockstepWalker(view_or_graph, UniformPolicy())",
        )
        super().__init__(view_or_graph, UniformPolicy(), rng=rng)


class BatchedBiasedCorrelatedWalker(LockstepWalker):
    """Deprecated alias: engine + :class:`BiasedCorrelatedPolicy`."""

    def __init__(
        self,
        view_or_graph: View | HeteroGraph,
        rng: np.random.Generator | None = None,
        correlated: bool | None = None,
    ) -> None:
        _deprecated(
            "BatchedBiasedCorrelatedWalker",
            "LockstepWalker(view_or_graph, BiasedCorrelatedPolicy())",
        )
        super().__init__(
            view_or_graph,
            BiasedCorrelatedPolicy(correlated=correlated),
            rng=rng,
        )

    @property
    def correlated(self) -> bool:
        return self.policy.correlated
