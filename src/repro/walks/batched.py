"""Vectorized lockstep walk engines.

The scalar walkers in :mod:`repro.walks.walker` advance one walk with one
Python-level step at a time — the dominant cost of Algorithm 1's corpus
resampling.  The engines here advance *all* walks of a corpus in lockstep:
every iteration of the step loop performs one vectorized draw across the
whole batch of active walks, so the per-step cost is a handful of NumPy
gathers instead of a Python loop body per walk.

Both engines sample exactly the same distributions as their scalar
counterparts (Equations 6-7; the scalar walkers remain the distributional
reference, and ``tests/walks/test_batched.py`` holds the equivalence
evidence):

- :class:`BatchedUniformWalker` — uniform over neighbours;
- :class:`BatchedBiasedCorrelatedWalker` — pi_1 via a single gathered
  alias draw over the flattened tables of the shared
  :class:`~repro.graph.csr.CSRAdjacency`; pi_1 * pi_2 (the correlated
  branch) via a masked row-wise cumulative-sum draw over a
  ``(batch, max_degree)`` weight matrix.

Walks are returned in *index space* as a dense ``(num_walks, length)``
int64 matrix plus a per-walk length array; slots past a walk's length are
``-1``.  That is precisely the representation
:class:`repro.walks.corpus.WalkCorpus` stores, so corpus construction
never materializes per-walk Python lists.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import csr_adjacency
from repro.graph.heterograph import HeteroGraph
from repro.graph.views import View

from repro.walks.walker import _PI2_FLOOR, _resolve_graph

PAD = -1
"""Fill value of walk-matrix slots past a walk's end."""


class _LockstepWalker:
    """Shared state of the batched engines: CSR adjacency + RNG."""

    def __init__(
        self,
        view_or_graph: View | HeteroGraph,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.graph, self._is_heter = _resolve_graph(view_or_graph)
        self._csr = csr_adjacency(self.graph)
        self.rng = rng or np.random.default_rng()

    def _start_state(
        self, starts: np.ndarray, length: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Allocate (matrix, lengths, current, active) for a batch."""
        starts = np.ascontiguousarray(starts, dtype=np.int64)
        if starts.ndim != 1:
            raise ValueError(f"starts must be 1-D, got shape {starts.shape}")
        if length < 1:
            raise ValueError(f"walk length must be >= 1, got {length}")
        matrix = np.full((starts.size, length), PAD, dtype=np.int64)
        matrix[:, 0] = starts
        lengths = np.ones(starts.size, dtype=np.int64)
        active = self._csr.degrees[starts] > 0
        return matrix, lengths, starts.copy(), active


class BatchedUniformWalker(_LockstepWalker):
    """Lockstep uniform walks (the vectorized :class:`UniformWalker`)."""

    def walk_batch(
        self, starts: np.ndarray, length: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Advance ``starts.size`` walks in lockstep.

        Args:
            starts: 1-D int array of start node *indices*.
            length: nodes per walk (walks at neighbour-less nodes end
                early, mirroring the scalar walker).

        Returns:
            ``(matrix, lengths)`` — the ``(num_walks, length)`` index
            matrix (``-1`` past each walk's end) and per-walk lengths.
        """
        csr = self._csr
        matrix, lengths, current, active = self._start_state(starts, length)
        for step in range(1, length):
            live = np.flatnonzero(active)
            if live.size == 0:
                break
            here = current[live]
            slot = self.rng.integers(0, csr.degrees[here])
            nxt = csr.indices[csr.indptr[here] + slot]
            matrix[live, step] = nxt
            lengths[live] += 1
            current[live] = nxt
            active[live] = csr.degrees[nxt] > 0
        return matrix, lengths


class BatchedBiasedCorrelatedWalker(_LockstepWalker):
    """Lockstep biased correlated walks (Equations 6-7, vectorized).

    Per iteration the active walks split into two groups:

    - *pi_1* walks (first step, Delta = 0, or correlation off) draw one
      gathered alias sample each from the flattened tables;
    - *pi_1 * pi_2* walks gather their candidate weights into a padded
      ``(batch, max_degree)`` matrix, apply Equation 7 against each
      walk's previous edge weight, and draw by masked row-wise cumsum —
      the same math as the scalar ``_step_correlated``, across all
      correlated walks at once.
    """

    def __init__(
        self,
        view_or_graph: View | HeteroGraph,
        rng: np.random.Generator | None = None,
        correlated: bool | None = None,
    ) -> None:
        super().__init__(view_or_graph, rng=rng)
        self.correlated = self._is_heter if correlated is None else correlated

    def _pi1_steps(self, here: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized alias draws: (next index, edge weight) per walk."""
        csr = self._csr
        prob, local = csr.alias_tables()
        base = csr.indptr[here]
        slot = self.rng.integers(0, csr.degrees[here])
        coin = self.rng.random(here.size)
        slot = np.where(coin < prob[base + slot], slot, local[base + slot])
        return csr.indices[base + slot], csr.weights[base + slot]

    def _pi2_steps(
        self, here: np.ndarray, previous: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized Equation-7 draws against each walk's previous weight."""
        csr = self._csr
        degree = csr.degrees[here]
        width = int(degree.max())
        offsets = np.arange(width, dtype=np.int64)
        slots = csr.indptr[here][:, None] + offsets[None, :]
        valid = offsets[None, :] < degree[:, None]
        weights = csr.weights[np.minimum(slots, csr.weights.size - 1)]
        pi1 = weights / csr.weight_sums[here][:, None]
        pi2 = 1.0 - (weights - previous[:, None]) / csr.delta[here][:, None]
        probs = np.where(valid, pi1 * np.maximum(pi2, _PI2_FLOOR), 0.0)
        cumsum = np.cumsum(probs, axis=1)
        pick = self.rng.random(here.size) * cumsum[:, -1]
        j = np.minimum((cumsum <= pick[:, None]).sum(axis=1), degree - 1)
        rows = np.arange(here.size)
        return csr.indices[csr.indptr[here] + j], weights[rows, j]

    def walk_batch(
        self, starts: np.ndarray, length: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Advance ``starts.size`` biased (correlated) walks in lockstep.

        Same contract as :meth:`BatchedUniformWalker.walk_batch`.
        """
        csr = self._csr
        matrix, lengths, current, active = self._start_state(starts, length)
        previous_weight = np.zeros(starts.size, dtype=np.float64)
        has_previous = np.zeros(starts.size, dtype=bool)
        for step in range(1, length):
            live = np.flatnonzero(active)
            if live.size == 0:
                break
            here = current[live]
            use_pi2 = (
                has_previous[live] & (csr.delta[here] > 0.0)
                if self.correlated
                else np.zeros(live.size, dtype=bool)
            )
            nxt = np.empty(live.size, dtype=np.int64)
            w = np.empty(live.size, dtype=np.float64)
            plain = ~use_pi2
            if plain.any():
                nxt[plain], w[plain] = self._pi1_steps(here[plain])
            if use_pi2.any():
                nxt[use_pi2], w[use_pi2] = self._pi2_steps(
                    here[use_pi2], previous_weight[live][use_pi2]
                )
            matrix[live, step] = nxt
            lengths[live] += 1
            current[live] = nxt
            previous_weight[live] = w
            has_previous[live] = True
            active[live] = csr.degrees[nxt] > 0
        return matrix, lengths
