"""Walk-count policy (Section IV-A3 of the paper).

TransN starts ``max(min(degree, cap), floor)`` walks from each node — the
paper uses ``max(min(tau_n, 32), 10)``.  High-degree hubs therefore
contribute more walks (the paper's "biased with respect to node degrees"),
but every node, however peripheral, still gets a minimum number of starts
so its embedding is trained.
"""

from __future__ import annotations

import numpy as np

from repro.graph.heterograph import HeteroGraph, NodeId


def _validate_bounds(floor: int, cap: int) -> None:
    if floor < 1:
        raise ValueError(f"floor must be >= 1, got {floor}")
    if cap < floor:
        raise ValueError(f"cap ({cap}) must be >= floor ({floor})")


def walk_counts(
    degrees: np.ndarray, floor: int = 10, cap: int = 32
) -> np.ndarray:
    """Vectorized policy: ``max(min(degree, cap), floor)`` per node.

    ``degrees`` is the per-node degree array (CSR order); the batched
    corpus builder turns the result into walk start indices with one
    ``np.repeat``.
    """
    _validate_bounds(floor, cap)
    return np.maximum(
        np.minimum(np.asarray(degrees, dtype=np.int64), cap), floor
    )


def walks_per_node(
    graph: HeteroGraph,
    node: NodeId,
    floor: int = 10,
    cap: int = 32,
) -> int:
    """Number of walks to start at ``node``: ``max(min(degree, cap), floor)``.

    Args:
        floor: minimum walks per node (paper: 10).
        cap: maximum walks per node (paper: 32).
    """
    _validate_bounds(floor, cap)
    return max(min(graph.degree(node), cap), floor)
