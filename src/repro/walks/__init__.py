"""Random-walk engines.

The single-view algorithm of TransN (Section III-A) samples *biased
correlated* random walks: step probabilities are proportional to edge
weights (Equation 6), and on heter-views additionally favour edges whose
weight is close to the previous step's weight (Equation 7, correlated
walks).  Baselines need their own walkers: uniform walks (DeepWalk and the
simple-walk ablation), second-order p/q walks (Node2Vec), and
metapath-constrained walks (Metapath2Vec).

Two engine families share one cached CSR adjacency per graph:

- scalar walkers (:mod:`repro.walks.walker`) advance one walk at a time
  and return node-ID lists — the distributional reference;
- lockstep walkers (:mod:`repro.walks.batched`) advance a whole corpus
  per vectorized step and return index-space matrices — the production
  path of :func:`~repro.walks.corpus.build_corpus`.
"""

from repro.walks.batched import (
    BatchedBiasedCorrelatedWalker,
    BatchedUniformWalker,
)
from repro.walks.corpus import WalkCorpus, build_corpus, extract_index_pairs
from repro.walks.metapath import MetapathWalker
from repro.walks.node2vec import Node2VecWalker
from repro.walks.policy import walk_counts, walks_per_node
from repro.walks.walker import BiasedCorrelatedWalker, UniformWalker

__all__ = [
    "BiasedCorrelatedWalker",
    "UniformWalker",
    "BatchedBiasedCorrelatedWalker",
    "BatchedUniformWalker",
    "Node2VecWalker",
    "MetapathWalker",
    "WalkCorpus",
    "build_corpus",
    "extract_index_pairs",
    "walk_counts",
    "walks_per_node",
]
