"""Random-walk engines.

The single-view algorithm of TransN (Section III-A) samples *biased
correlated* random walks: step probabilities are proportional to edge
weights (Equation 6), and on heter-views additionally favour edges whose
weight is close to the previous step's weight (Equation 7, correlated
walks).  Baselines need their own walkers: uniform walks (DeepWalk and the
simple-walk ablation), second-order p/q walks (Node2Vec), and
metapath-constrained walks (Metapath2Vec).

All walkers operate on one :class:`~repro.graph.views.View` (or a plain
:class:`~repro.graph.heterograph.HeteroGraph`) and return lists of node IDs.
"""

from repro.walks.corpus import WalkCorpus, build_corpus
from repro.walks.metapath import MetapathWalker
from repro.walks.node2vec import Node2VecWalker
from repro.walks.policy import walks_per_node
from repro.walks.walker import BiasedCorrelatedWalker, UniformWalker

__all__ = [
    "BiasedCorrelatedWalker",
    "UniformWalker",
    "Node2VecWalker",
    "MetapathWalker",
    "WalkCorpus",
    "build_corpus",
    "walks_per_node",
]
