"""Random-walk engines and pluggable walk policies.

The single-view algorithm of TransN (Section III-A) samples *biased
correlated* random walks: step probabilities are proportional to edge
weights (Equation 6), and on heter-views additionally favour edges whose
weight is close to the previous step's weight (Equation 7, correlated
walks).  That walk is one point in a family of heterogeneous strategies;
each strategy is a :class:`~repro.walks.policies.WalkPolicy` — vectorized
per-step transition logic over the shared CSR adjacency — and one generic
lockstep engine (:class:`~repro.walks.batched.LockstepWalker`) executes
any of them (see ``docs/walk_policies.md``):

- ``UniformPolicy`` — DeepWalk / the simple-walk ablation;
- ``BiasedCorrelatedPolicy`` — the paper's Equations 6-7;
- ``Node2VecPolicy`` — second-order p/q walks;
- ``MetapathPolicy`` — metapath-constrained walks;
- ``HetNode2VecPolicy`` — type-aware transition scaling;
- ``SpaceyMetapathPolicy`` — occupancy-reinforced spacey walks;
- relation-balanced mode — biased walks + the
  :class:`~repro.engine.callbacks.RelationBalancer` loop callback.

Scalar execution (:class:`~repro.walks.walker.ReferenceWalker`) samples
the same policies one walk at a time from their exact probabilities — the
distributional reference for tests.  The pre-refactor walker classes
(``BatchedUniformWalker``, ``BatchedBiasedCorrelatedWalker``,
``Node2VecWalker``, ``MetapathWalker``) remain importable but are
deprecated shims over the policy layer.
"""

from repro.walks.batched import (
    BatchedBiasedCorrelatedWalker,
    BatchedUniformWalker,
    LockstepWalker,
)
from repro.walks.corpus import (
    WalkCorpus,
    build_corpus,
    corpus_index_dtype,
    extract_index_pairs,
    stream_corpus,
)
from repro.walks.spill import (
    SpillCorruptionError,
    SpillFormatError,
    SpillReader,
    SpillWriter,
)
from repro.walks.metapath import MetapathWalker
from repro.walks.node2vec import Node2VecWalker
from repro.walks.policies import (
    POLICY_NAMES,
    BiasedCorrelatedPolicy,
    HetNode2VecPolicy,
    MetapathPolicy,
    Node2VecPolicy,
    SpaceyMetapathPolicy,
    UniformPolicy,
    WalkPolicy,
    make_policy,
)
from repro.walks.policy import walk_counts, walks_per_node
from repro.walks.walker import (
    BiasedCorrelatedWalker,
    ReferenceWalker,
    UniformWalker,
)

__all__ = [
    # policy layer
    "WalkPolicy",
    "UniformPolicy",
    "BiasedCorrelatedPolicy",
    "Node2VecPolicy",
    "MetapathPolicy",
    "HetNode2VecPolicy",
    "SpaceyMetapathPolicy",
    "make_policy",
    "POLICY_NAMES",
    # engines
    "LockstepWalker",
    "ReferenceWalker",
    # scalar references
    "BiasedCorrelatedWalker",
    "UniformWalker",
    # deprecated walker classes (shims over the policy layer)
    "BatchedBiasedCorrelatedWalker",
    "BatchedUniformWalker",
    "Node2VecWalker",
    "MetapathWalker",
    # corpus construction
    "WalkCorpus",
    "build_corpus",
    "stream_corpus",
    "corpus_index_dtype",
    "SpillWriter",
    "SpillReader",
    "SpillFormatError",
    "SpillCorruptionError",
    "extract_index_pairs",
    "walk_counts",
    "walks_per_node",
]
