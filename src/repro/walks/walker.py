"""Scalar reference walkers: one walk at a time, exact policy probabilities.

Given the first k steps of a walk ``n_1 .. n_k``, the paper's probability
of stepping to ``n_{k+1}`` is (Equation 4):

- ``pi_1`` alone — proportional to the edge weight (Equation 6) — on
  homo-views, on the first step, or when all of ``n_k``'s incident weights
  are equal (Delta = 0);
- ``pi_1 * pi_2`` otherwise, where ``pi_2`` (Equation 7) is highest for the
  candidate edge whose weight is closest to the previous edge's weight and
  is bounded by ``1 - (w_next - w_prev) / Delta`` with ``Delta`` the spread
  of weights incident to ``n_k``.

These walkers are the *distributional references* for the lockstep engine
(:mod:`repro.walks.batched`): :class:`ReferenceWalker` executes any
:class:`~repro.walks.policies.WalkPolicy` by inverse-CDF sampling its
exact :meth:`~repro.walks.policies.WalkPolicy.slot_probs` — the very same
probability code the vectorized ``sample_slots`` implements — so
scalar/batched equivalence holds by construction rather than by parallel
reimplementation.  ``tests/walks/test_policies.py`` holds the chi-square
evidence per policy.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import csr_adjacency
from repro.graph.heterograph import HeteroGraph, NodeId
from repro.graph.views import View
from repro.walks.policies import (
    BiasedCorrelatedPolicy,
    UniformPolicy,
    WalkPolicy,
    _PI2_FLOOR,
    _resolve_graph,
)

__all__ = [
    "ReferenceWalker",
    "UniformWalker",
    "BiasedCorrelatedWalker",
    "_PI2_FLOOR",
    "_resolve_graph",
]


class ReferenceWalker:
    """Scalar executor of any :class:`WalkPolicy`, one walk at a time.

    Each step evaluates the policy's exact ``slot_probs`` and samples by
    inverse CDF over the cumulative sum — O(degree) per step, which is
    exactly why the lockstep engine exists.  Use this for tests and
    ground-truth distributions, the engine for corpora.
    """

    def __init__(
        self,
        view_or_graph: View | HeteroGraph,
        policy: WalkPolicy,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.graph, _ = _resolve_graph(view_or_graph)
        self._csr = csr_adjacency(self.graph)
        self.policy = policy.bind(view_or_graph)
        self.rng = rng or np.random.default_rng()

    def walk(self, start: NodeId, length: int) -> list[NodeId]:
        """One walk of up to ``length`` nodes starting at ``start``.

        The walk stops early at a node with no neighbours or when the
        policy reports no admissible transition.
        """
        graph = self.graph
        csr = self._csr
        policy = self.policy
        current = graph.index_of(start)
        state = policy.init_state(np.array([current], dtype=np.int64))
        path = [current]
        row = np.zeros(1, dtype=np.int64)
        for _ in range(length - 1):
            probs = policy.slot_probs(current, state, 0)
            if probs.size == 0:
                break
            cumsum = np.cumsum(probs)
            total = cumsum[-1]
            if total <= 0.0:
                break
            pick = self.rng.random() * total
            j = min(
                int(np.searchsorted(cumsum, pick, side="right")),
                probs.size - 1,
            )
            policy.update_state(
                state,
                row,
                np.array([current], dtype=np.int64),
                np.array([j], dtype=np.int64),
            )
            current = int(csr.indices[csr.indptr[current] + j])
            path.append(current)
        return [graph.node_at(i) for i in path]


class UniformWalker(ReferenceWalker):
    """Simple random walks: uniform over neighbours, weights ignored.

    This is both DeepWalk's walker and the paper's
    ``TransN-With-Simple-Walk`` ablation — the scalar reference of
    :class:`~repro.walks.policies.UniformPolicy`.
    """

    def __init__(
        self,
        view_or_graph: View | HeteroGraph,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__(view_or_graph, UniformPolicy(), rng=rng)


class BiasedCorrelatedWalker(ReferenceWalker):
    """The paper's walker: weight-biased (Eq. 6), correlated on heter-views (Eq. 7).

    The scalar reference of
    :class:`~repro.walks.policies.BiasedCorrelatedPolicy`; every
    probability it reports comes from the policy's own
    :meth:`~repro.walks.policies.BiasedCorrelatedPolicy.pi_weights`.
    """

    def __init__(
        self,
        view_or_graph: View | HeteroGraph,
        rng: np.random.Generator | None = None,
        correlated: bool | None = None,
    ) -> None:
        """Args:
        view_or_graph: the view to walk on.
        rng: numpy Generator (a fresh default one when omitted).
        correlated: force Equation 7 on (True) or off (False); by default
            it is enabled exactly on heter-views, per the paper.
        """
        super().__init__(
            view_or_graph,
            BiasedCorrelatedPolicy(correlated=correlated),
            rng=rng,
        )

    @property
    def correlated(self) -> bool:
        return self.policy.correlated

    def step_distribution(
        self, current: NodeId, previous_weight: float | None = None
    ) -> dict[NodeId, float]:
        """Exact next-step distribution from ``current`` (for tests).

        ``previous_weight`` None means a first step / homo-view step
        (pure Equation 6).
        """
        csr = self._csr
        i = self.graph.index_of(current)
        weights = csr.segment_weights(i)
        if weights.size == 0:
            return {}
        probs = self.policy.pi_weights(
            weights,
            float(weights.sum()),
            float(csr.delta[i]),
            previous_weight,
        )
        probs = probs / probs.sum()
        result: dict[NodeId, float] = {}
        for j, p in zip(csr.neighbors(i), probs):
            node = self.graph.node_at(int(j))
            result[node] = result.get(node, 0.0) + float(p)
        return result
