"""First-order walkers: uniform and biased-correlated (Equations 4-7).

Given the first k steps of a walk ``n_1 .. n_k``, the probability of
stepping to ``n_{k+1}`` is (Equation 4):

- ``pi_1`` alone — proportional to the edge weight (Equation 6) — on
  homo-views, on the first step, or when all of ``n_k``'s incident weights
  are equal (Delta = 0);
- ``pi_1 * pi_2`` otherwise, where ``pi_2`` (Equation 7) is highest for the
  candidate edge whose weight is closest to the previous edge's weight and
  is bounded by ``1 - (w_next - w_prev) / Delta`` with ``Delta`` the spread
  of weights incident to ``n_k``.

``pi_2`` can reach exactly zero for the single worst candidate; we floor it
at a small epsilon so that the distribution stays well-defined when that
candidate is the only neighbour.

These walkers advance one walk at a time and serve as the distributional
reference for the vectorized lockstep engines in
:mod:`repro.walks.batched`, which sample the *same* Equation 6-7
distributions but advance a whole corpus per array operation.  Both share
one cached :class:`~repro.graph.csr.CSRAdjacency` per graph, so multiple
walkers over the same view pay for a single O(V+E) adjacency build.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import csr_adjacency
from repro.graph.heterograph import HeteroGraph, NodeId
from repro.graph.views import View

_PI2_FLOOR = 1e-9


def _resolve_graph(view_or_graph: View | HeteroGraph) -> tuple[HeteroGraph, bool]:
    """Return (graph, is_heter) for a view or a bare graph.

    A bare graph is treated as homogeneous: correlated steps (Equation 7)
    only apply to heter-views.
    """
    if isinstance(view_or_graph, View):
        return view_or_graph.graph, view_or_graph.is_heter
    return view_or_graph, False


class UniformWalker:
    """Simple random walks: uniform over neighbours, weights ignored.

    This is both DeepWalk's walker and the paper's
    ``TransN-With-Simple-Walk`` ablation.  It only reads the CSR
    structure arrays — the lazily-built alias tables (which it would
    ignore) are never constructed on its behalf.
    """

    def __init__(
        self,
        view_or_graph: View | HeteroGraph,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.graph, _ = _resolve_graph(view_or_graph)
        self._csr = csr_adjacency(self.graph)
        self.rng = rng or np.random.default_rng()

    def walk(self, start: NodeId, length: int) -> list[NodeId]:
        """One walk of ``length`` nodes starting at ``start``.

        The walk stops early at a node with no neighbours (cannot happen
        inside a view, but plain graphs may contain isolated nodes).
        """
        graph = self.graph
        csr = self._csr
        current = graph.index_of(start)
        path = [current]
        for _ in range(length - 1):
            nbrs = csr.neighbors(current)
            if nbrs.size == 0:
                break
            current = int(nbrs[int(self.rng.integers(nbrs.size))])
            path.append(current)
        return [graph.node_at(i) for i in path]


class BiasedCorrelatedWalker:
    """The paper's walker: weight-biased (Eq. 6), correlated on heter-views (Eq. 7)."""

    def __init__(
        self,
        view_or_graph: View | HeteroGraph,
        rng: np.random.Generator | None = None,
        correlated: bool | None = None,
    ) -> None:
        """Args:
        view_or_graph: the view to walk on.
        rng: numpy Generator (a fresh default one when omitted).
        correlated: force Equation 7 on (True) or off (False); by default
            it is enabled exactly on heter-views, per the paper.
        """
        self.graph, is_heter = _resolve_graph(view_or_graph)
        self.correlated = is_heter if correlated is None else correlated
        self._csr = csr_adjacency(self.graph)
        self.rng = rng or np.random.default_rng()

    def _step_weighted(self, current: int) -> tuple[int, float]:
        """One pi_1 step (O(1) alias draw); returns (next index, weight)."""
        csr = self._csr
        prob, local = csr.alias_tables()
        base = csr.indptr[current]
        slot = int(self.rng.integers(csr.degrees[current]))
        if self.rng.random() >= prob[base + slot]:
            slot = int(local[base + slot])
        return int(csr.indices[base + slot]), float(csr.weights[base + slot])

    def _step_correlated(
        self, current: int, previous_weight: float
    ) -> tuple[int, float]:
        """One pi_1 * pi_2 step (Equation 4, 'otherwise' branch).

        The pi_2 factor depends on the previous edge's weight, so this
        distribution cannot be alias-tabled ahead of time; the cumsum draw
        stays, but only on the correlated branch."""
        csr = self._csr
        weights = csr.segment_weights(current)
        delta = csr.delta[current]
        pi1 = weights / csr.weight_sums[current]
        pi2 = 1.0 - (weights - previous_weight) / delta
        probs = pi1 * np.maximum(pi2, _PI2_FLOOR)
        cumsum = np.cumsum(probs)
        pick = self.rng.random() * cumsum[-1]
        j = min(int(np.searchsorted(cumsum, pick, side="right")), probs.size - 1)
        return int(csr.neighbors(current)[j]), float(weights[j])

    def walk(self, start: NodeId, length: int) -> list[NodeId]:
        """One biased (and, on heter-views, correlated) walk."""
        graph = self.graph
        csr = self._csr
        current = graph.index_of(start)
        path = [current]
        previous_weight: float | None = None
        for _ in range(length - 1):
            if csr.degrees[current] == 0:
                break
            use_pi2 = (
                self.correlated
                and previous_weight is not None
                and csr.delta[current] > 0.0
            )
            if use_pi2:
                nxt, w = self._step_correlated(current, previous_weight)
            else:
                nxt, w = self._step_weighted(current)
            path.append(nxt)
            current = nxt
            previous_weight = w
        return [graph.node_at(i) for i in path]

    def step_distribution(
        self, current: NodeId, previous_weight: float | None = None
    ) -> dict[NodeId, float]:
        """Exact next-step distribution from ``current`` (for tests).

        ``previous_weight`` None means a first step / homo-view step
        (pure Equation 6).
        """
        csr = self._csr
        i = self.graph.index_of(current)
        weights = csr.segment_weights(i)
        if weights.size == 0:
            return {}
        pi1 = weights / weights.sum()
        use_pi2 = (
            self.correlated
            and previous_weight is not None
            and csr.delta[i] > 0.0
        )
        if use_pi2:
            pi2 = 1.0 - (weights - previous_weight) / csr.delta[i]
            probs = pi1 * np.maximum(pi2, _PI2_FLOOR)
        else:
            probs = pi1
        probs = probs / probs.sum()
        result: dict[NodeId, float] = {}
        for j, p in zip(csr.neighbors(i), probs):
            node = self.graph.node_at(int(j))
            result[node] = result.get(node, 0.0) + float(p)
        return result
