"""Index-space walk corpora shared by TransN and the walk-based baselines.

A :class:`WalkCorpus` is a dense ``(num_walks, length)`` int64 matrix of
node *indices* plus a per-walk length array — the exact representation the
lockstep engines in :mod:`repro.walks.batched` emit.  Every corpus
operation downstream of walk sampling (pair extraction, noise counts,
cross-view filtering, re-chunking) is an array transformation of that
matrix, so the walk → skip-gram-batch pipeline never leaves NumPy.

Slots past a walk's end hold :data:`~repro.walks.batched.PAD` (``-1``);
``lengths[i]`` is the number of real nodes of walk ``i``.  Scalar walkers
(node2vec, metapath, the reference walkers) still produce node-ID lists;
:meth:`WalkCorpus.from_paths` packs those into the same matrix form.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Protocol, Sequence

import numpy as np

from repro.graph.csr import csr_adjacency
from repro.graph.heterograph import HeteroGraph, NodeId
from repro.graph.views import View
from repro.walks.batched import PAD, LockstepWalker
from repro.walks.policies import WalkPolicy
from repro.walks.policy import walk_counts


class Walker(Protocol):
    """A scalar walker: ``walk(start, length) -> list[NodeId]``."""

    def walk(self, start: NodeId, length: int) -> list[NodeId]: ...


class BatchedWalker(Protocol):
    """A lockstep walker: ``walk_batch(starts, length) -> (matrix, lengths)``."""

    def walk_batch(
        self, starts: np.ndarray, length: int
    ) -> tuple[np.ndarray, np.ndarray]: ...


class WalkCorpus:
    """A bag of sampled paths over one graph/view, in index space.

    Attributes:
        matrix: ``(num_walks, length)`` node-index matrix, ``-1`` past
            each walk's end.  The index dtype is ``int64`` by default;
            ``int32`` matrices (the streaming/spill compact mode for
            graphs with fewer than ``2**31`` nodes) pass through
            unchanged, halving corpus bytes.
        lengths: ``(num_walks,)`` int64 real length per walk.
        length: the requested walk length (walks may be shorter if they
            got stuck on a neighbour-less node).
        graph: the graph whose index space the matrix lives in; optional
            (``None`` leaves ID translation unavailable but every array
            operation intact).
    """

    def __init__(
        self,
        matrix: np.ndarray,
        lengths: np.ndarray,
        length: int,
        graph: HeteroGraph | None = None,
    ) -> None:
        matrix = np.asarray(matrix)
        if matrix.dtype not in (np.int32, np.int64):
            matrix = matrix.astype(np.int64)
        self.matrix = matrix
        self.lengths = np.asarray(lengths, dtype=np.int64)
        if self.matrix.ndim != 2:
            raise ValueError(
                f"corpus matrix must be 2-D, got shape {self.matrix.shape}"
            )
        if self.lengths.shape != (self.matrix.shape[0],):
            raise ValueError(
                f"lengths shape {self.lengths.shape} does not match "
                f"{self.matrix.shape[0]} walks"
            )
        self.length = length
        self.graph = graph

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_paths(
        cls,
        paths: Sequence[Sequence],
        length: int,
        graph: HeteroGraph | None = None,
    ) -> "WalkCorpus":
        """Pack variable-length paths into the dense matrix form.

        With ``graph``, paths are node-ID sequences mapped through
        ``graph.index_of``; without, they must already be integer indices.
        """
        width = max((len(p) for p in paths), default=0)
        width = max(width, length)
        matrix = np.full((len(paths), width), PAD, dtype=np.int64)
        lengths = np.zeros(len(paths), dtype=np.int64)
        for i, path in enumerate(paths):
            row = (
                [graph.index_of(n) for n in path]
                if graph is not None
                else list(path)
            )
            matrix[i, : len(row)] = row
            lengths[i] = len(row)
        return cls(matrix, lengths, length, graph)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self.matrix.shape[0])

    def __iter__(self) -> Iterator[np.ndarray]:
        """Iterate trimmed index rows (one 1-D array per walk)."""
        for i in range(self.matrix.shape[0]):
            yield self.matrix[i, : self.lengths[i]]

    def paths(self) -> list[list[NodeId]]:
        """The walks as node-ID lists (requires ``graph``)."""
        if self.graph is None:
            raise ValueError("corpus has no graph to translate indices with")
        node_at = self.graph.node_at
        return [[node_at(int(i)) for i in row] for row in self]

    def frequency_counts(self, num_nodes: int) -> np.ndarray:
        """Occurrence count per node index — the skip-gram noise counts.

        One ``np.unique`` over the (valid part of the) index matrix.
        Counts accumulate in the corpus index dtype (int64, or int32 for
        compact corpora) rather than float64 — the values are identical
        once the noise distribution casts them, and an int32 corpus keeps
        its count array at half the bytes too.
        """
        counts = np.zeros(num_nodes, dtype=self.matrix.dtype)
        flat = self.matrix[self.matrix != PAD]
        if flat.size:
            present, present_counts = np.unique(flat, return_counts=True)
            counts[present] = present_counts
        return counts

    def node_frequencies(self) -> dict[NodeId, int]:
        """Occurrence counts keyed by node ID (index when no graph)."""
        flat = self.matrix[self.matrix != PAD]
        present, present_counts = np.unique(flat, return_counts=True)
        if self.graph is None:
            return {
                int(i): int(c) for i, c in zip(present, present_counts)
            }
        node_at = self.graph.node_at
        return {
            node_at(int(i)): int(c) for i, c in zip(present, present_counts)
        }


def extract_index_pairs(
    corpus: WalkCorpus, window: int
) -> tuple[np.ndarray, np.ndarray]:
    """All Definition-6 (center, context) index pairs of ``corpus``.

    Vectorized over the whole matrix: for each offset ``d`` in
    ``1..window`` the pairs ``(n_k, n_{k+d})`` and ``(n_{k+d}, n_k)`` of
    every walk are two strided slices; masking by walk length drops the
    padding.  Pair multiset equals the scalar per-walk window scan; the
    ordering is offset-major instead of walk-major (corpora are shuffled,
    so SGD sees the same mix).
    """
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    matrix, lengths = corpus.matrix, corpus.lengths
    width = matrix.shape[1]
    centers: list[np.ndarray] = []
    contexts: list[np.ndarray] = []
    for d in range(1, window + 1):
        if matrix.shape[0] == 0 or d >= width:
            break
        left = matrix[:, : width - d]
        right = matrix[:, d:]
        valid = (np.arange(width - d)[None, :] + d) < lengths[:, None]
        a, b = left[valid], right[valid]
        centers.append(a)
        contexts.append(b)
        centers.append(b)
        contexts.append(a)
    if not centers:
        empty = np.empty(0, dtype=matrix.dtype)
        return empty, empty.copy()
    return np.concatenate(centers), np.concatenate(contexts)


def walk_start_nodes(
    degrees: np.ndarray,
    policy: WalkPolicy | None = None,
    floor: int = 10,
    cap: int = 32,
    walks_per_node_override: int | None = None,
    count_scale: float = 1.0,
) -> np.ndarray:
    """The exact start-index law of :func:`build_corpus`, standalone.

    Given a view's per-node degree array this applies, in order: the
    degree-based count policy (or a fixed override), isolated-node
    zeroing, the balancer's ``count_scale`` (keeping >= 1 walk where any
    was due), and the policy's start restriction — and repeats each node
    index by its final count.  The parallel corpus builder shares this
    function with the serial path so both build byte-identical start
    arrays before sharding.
    """
    degrees = np.asarray(degrees, dtype=np.int64)
    num_nodes = degrees.size
    if walks_per_node_override is not None:
        counts = np.full(num_nodes, walks_per_node_override, dtype=np.int64)
    else:
        counts = walk_counts(degrees, floor=floor, cap=cap)
    counts = np.where(degrees > 0, counts, 0)  # isolated nodes start nothing
    if count_scale != 1.0:
        if count_scale <= 0:
            raise ValueError(f"count_scale must be > 0, got {count_scale}")
        counts = np.where(
            counts > 0,
            np.maximum(np.rint(counts * count_scale).astype(np.int64), 1),
            0,
        )
    if policy is not None:
        allowed = policy.start_indices()
        if allowed is not None:
            mask = np.zeros(num_nodes, dtype=bool)
            mask[allowed] = True
            counts = np.where(mask, counts, 0)
    return np.repeat(np.arange(num_nodes, dtype=np.int64), counts)


def build_corpus(
    view_or_graph: View | HeteroGraph,
    walker: Walker | BatchedWalker | WalkPolicy,
    length: int,
    floor: int = 10,
    cap: int = 32,
    walks_per_node_override: int | None = None,
    rng: np.random.Generator | None = None,
    count_scale: float = 1.0,
) -> WalkCorpus:
    """Sample walks from every node under the degree-based count policy.

    With a lockstep walker (anything exposing ``walk_batch``) the whole
    corpus is one batched call: start indices are ``np.repeat`` of the
    per-node counts and the walker advances every walk simultaneously.
    A bare :class:`WalkPolicy` is wrapped in a fresh
    :class:`~repro.walks.batched.LockstepWalker` drawing from ``rng``.
    Scalar walkers fall back to one ``walk()`` call per start.

    Args:
        view_or_graph: where to walk.
        walker: a walker already bound to the same view/graph, or a
            :class:`WalkPolicy` to execute on the lockstep engine.
        length: nodes per walk.
        floor, cap: the walk-count policy bounds (paper: 10 and 32).
        walks_per_node_override: fixed count per node; used by baselines
            such as DeepWalk that ignore degree.
        rng: shuffles the corpus so SGD sees mixed nodes; also drives the
            walks themselves when ``walker`` is a bare policy.
        count_scale: multiplier on every node's walk count (>= 1 walk is
            kept where any was due) — the :class:`RelationBalancer`'s
            knob for growing or shrinking one view's training share.
    """
    if length < 2:
        raise ValueError(f"walk length must be >= 2, got {length}")
    graph = view_or_graph.graph if isinstance(view_or_graph, View) else view_or_graph
    rng = rng or np.random.default_rng()
    if isinstance(walker, WalkPolicy):
        walker = LockstepWalker(view_or_graph, walker, rng=rng)
    starts = walk_start_nodes(
        csr_adjacency(graph).degrees,
        policy=getattr(walker, "policy", None),
        floor=floor,
        cap=cap,
        walks_per_node_override=walks_per_node_override,
        count_scale=count_scale,
    )
    if hasattr(walker, "walk_batch"):
        matrix, lengths = walker.walk_batch(starts, length)
        corpus = WalkCorpus(matrix, lengths, length, graph)
    else:
        node_at = graph.node_at
        paths = [walker.walk(node_at(int(i)), length) for i in starts]
        corpus = WalkCorpus.from_paths(paths, length, graph)
    order = rng.permutation(len(corpus))
    return WalkCorpus(
        corpus.matrix[order], corpus.lengths[order], length, graph
    )


def corpus_index_dtype(num_nodes: int) -> np.dtype:
    """The compact index dtype for a graph of ``num_nodes`` nodes.

    ``int32`` whenever every index (and the ``-1`` pad) fits, which
    halves corpus bytes both in memory and in spill files; ``int64``
    only for graphs beyond ``2**31 - 1`` nodes.
    """
    return np.dtype(np.int32 if num_nodes < 2**31 else np.int64)


def stream_corpus(
    view_or_graph: View | HeteroGraph,
    walker: Walker | BatchedWalker | WalkPolicy,
    length: int,
    floor: int = 10,
    cap: int = 32,
    walks_per_node_override: int | None = None,
    rng: np.random.Generator | None = None,
    count_scale: float = 1.0,
    block_walks: int | None = None,
    index_dtype: np.dtype | None = None,
) -> Iterator[WalkCorpus]:
    """The streaming variant of :func:`build_corpus`: fixed-size blocks.

    Start indices follow the exact law of :func:`build_corpus`
    (:func:`walk_start_nodes`), computed once up front; the walks are
    then sampled in blocks of at most ``block_walks`` starts, each block
    shuffled independently and yielded as its own :class:`WalkCorpus`.
    Peak memory is proportional to the block, not the corpus.

    RNG contract: each block consumes the walker's draws and then one
    ``rng.permutation(block size)``, in block order.  When the whole
    corpus fits in one block (``block_walks`` is ``None`` or at least
    the total walk count) this is *exactly* the draw sequence of
    :func:`build_corpus`, so the single-block stream is bit-identical
    to the dense corpus.  Multi-block streams are deterministic for a
    fixed ``(rng state, block_walks)`` but interleave walker draws
    differently, so they are a different — equally valid — sample of
    the same Eq. 6-7 walk law (exactly as ``workers=N`` is).

    Blocks are consumed lazily: pull them in order, and do not interleave
    other draws from ``rng`` mid-stream.

    Args:
        block_walks: maximum walks per yielded block (``None``: one
            block — the dense corpus, streamed).
        index_dtype: cast block matrices to this dtype
            (:func:`corpus_index_dtype` gives the compact choice); the
            cast changes bytes, never index values.

    Everything else matches :func:`build_corpus`.
    """
    if length < 2:
        raise ValueError(f"walk length must be >= 2, got {length}")
    if block_walks is not None and block_walks < 1:
        raise ValueError(f"block_walks must be >= 1, got {block_walks}")
    graph = view_or_graph.graph if isinstance(view_or_graph, View) else view_or_graph
    rng = rng or np.random.default_rng()
    if isinstance(walker, WalkPolicy):
        walker = LockstepWalker(view_or_graph, walker, rng=rng)
    starts = walk_start_nodes(
        csr_adjacency(graph).degrees,
        policy=getattr(walker, "policy", None),
        floor=floor,
        cap=cap,
        walks_per_node_override=walks_per_node_override,
        count_scale=count_scale,
    )
    total = starts.size
    step = total if block_walks is None else min(block_walks, max(total, 1))
    for begin in range(0, total, max(step, 1)):
        shard = starts[begin : begin + step]
        if hasattr(walker, "walk_batch"):
            matrix, lengths = walker.walk_batch(shard, length)
        else:
            node_at = graph.node_at
            paths = [walker.walk(node_at(int(i)), length) for i in shard]
            packed = WalkCorpus.from_paths(paths, length, graph)
            matrix, lengths = packed.matrix, packed.lengths
        order = rng.permutation(matrix.shape[0])
        matrix, lengths = matrix[order], lengths[order]
        if index_dtype is not None:
            matrix = matrix.astype(index_dtype, copy=False)
        yield WalkCorpus(matrix, lengths, length, graph)


def filter_to_nodes(
    corpus: WalkCorpus,
    keep: Iterable[NodeId],
    min_length: int = 2,
) -> WalkCorpus:
    """Drop every node not in ``keep`` from every path.

    This is the cross-view preprocessing step: walks over paired-subviews
    are filtered down to the common nodes of the view-pair.  Paths that end
    up shorter than ``min_length`` are discarded.

    Vectorized as a stable compaction: a boolean keep-matrix is gathered
    from a node mask, surviving entries are slid left with one stable
    ``argsort`` per corpus, and the freed tail is re-padded.
    """
    matrix, lengths = corpus.matrix, corpus.lengths
    if corpus.graph is not None:
        graph = corpus.graph
        # one vectorized pass: unknown nodes land on -1 and are dropped
        keep_idx = graph.indices_of(keep)
        keep_idx = keep_idx[keep_idx >= 0]
        num_nodes = graph.num_nodes
    else:
        keep_idx = np.asarray(
            keep if isinstance(keep, np.ndarray) else list(keep),
            dtype=np.int64,
        )
        upper = int(matrix.max(initial=-1))
        if keep_idx.size:
            upper = max(upper, int(keep_idx.max()))
        num_nodes = upper + 1
    mask = np.zeros(max(num_nodes, 1), dtype=bool)
    mask[keep_idx] = True
    kept = np.zeros(matrix.shape, dtype=bool)
    valid = matrix != PAD
    kept[valid] = mask[matrix[valid]]
    new_lengths = kept.sum(axis=1)
    rows = new_lengths >= min_length
    order = np.argsort(~kept[rows], axis=1, kind="stable")
    compact = np.take_along_axis(matrix[rows], order, axis=1)
    new_lengths = new_lengths[rows]
    width = matrix.shape[1]
    compact[np.arange(width)[None, :] >= new_lengths[:, None]] = PAD
    return WalkCorpus(compact, new_lengths, corpus.length, corpus.graph)


def chunk_paths(corpus: WalkCorpus, chunk_length: int) -> np.ndarray:
    """Cut each path into non-overlapping chunks of exactly ``chunk_length``.

    The translators' feed-forward layers have a (path_len x path_len)
    weight (Equation 9) and therefore need fixed-length inputs; filtered
    cross-view paths have variable length, so we re-chunk them.  Remainders
    shorter than ``chunk_length`` are dropped.

    Returns:
        ``(num_chunks, chunk_length)`` int64 index matrix (no padding —
        every chunk is full by construction).
    """
    if chunk_length < 2:
        raise ValueError(f"chunk length must be >= 2, got {chunk_length}")
    counts = corpus.lengths // chunk_length
    total = int(counts.sum())
    if total == 0:
        return np.empty((0, chunk_length), dtype=np.int64)
    row = np.repeat(np.arange(counts.size, dtype=np.int64), counts)
    first = np.repeat(np.cumsum(counts) - counts, counts)
    within = np.arange(total, dtype=np.int64) - first
    cols = (within * chunk_length)[:, None] + np.arange(
        chunk_length, dtype=np.int64
    )[None, :]
    return corpus.matrix[row[:, None], cols]
