"""Walk-corpus construction shared by TransN and the walk-based baselines."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence

import numpy as np

from repro.graph.heterograph import HeteroGraph, NodeId
from repro.graph.views import View
from repro.walks.policy import walks_per_node


class Walker(Protocol):
    """Anything with a ``walk(start, length) -> list[NodeId]`` method."""

    def walk(self, start: NodeId, length: int) -> list[NodeId]: ...


@dataclass
class WalkCorpus:
    """A bag of sampled paths over one graph/view.

    Attributes:
        walks: the sampled paths (node-ID lists).
        length: the requested walk length (paths may be shorter if a walk
            got stuck on an isolated node).
    """

    walks: list[list[NodeId]]
    length: int

    def __len__(self) -> int:
        return len(self.walks)

    def __iter__(self):
        return iter(self.walks)

    def node_frequencies(self) -> dict[NodeId, int]:
        """Occurrence counts over all paths — the skip-gram noise counts."""
        counts: dict[NodeId, int] = {}
        for walk in self.walks:
            for node in walk:
                counts[node] = counts.get(node, 0) + 1
        return counts


def build_corpus(
    view_or_graph: View | HeteroGraph,
    walker: Walker,
    length: int,
    floor: int = 10,
    cap: int = 32,
    walks_per_node_override: int | None = None,
    rng: np.random.Generator | None = None,
) -> WalkCorpus:
    """Sample walks from every node under the degree-based count policy.

    Args:
        view_or_graph: where to walk.
        walker: a walker already bound to the same view/graph.
        length: nodes per walk.
        floor, cap: the walk-count policy bounds (paper: 10 and 32).
        walks_per_node_override: fixed count per node; used by baselines
            such as DeepWalk that ignore degree.
        rng: used only to shuffle the corpus so SGD sees mixed nodes.
    """
    if length < 2:
        raise ValueError(f"walk length must be >= 2, got {length}")
    graph = view_or_graph.graph if isinstance(view_or_graph, View) else view_or_graph
    rng = rng or np.random.default_rng()
    walks: list[list[NodeId]] = []
    for node in graph.nodes:
        if graph.degree(node) == 0:
            continue
        count = (
            walks_per_node_override
            if walks_per_node_override is not None
            else walks_per_node(graph, node, floor=floor, cap=cap)
        )
        for _ in range(count):
            walks.append(walker.walk(node, length))
    order = rng.permutation(len(walks))
    return WalkCorpus(walks=[walks[i] for i in order], length=length)


def filter_to_nodes(
    corpus: WalkCorpus,
    keep: set[NodeId] | frozenset[NodeId],
    min_length: int = 2,
) -> WalkCorpus:
    """Drop every node not in ``keep`` from every path.

    This is the cross-view preprocessing step: walks over paired-subviews
    are filtered down to the common nodes of the view-pair.  Paths that end
    up shorter than ``min_length`` are discarded.
    """
    filtered = []
    for walk in corpus.walks:
        reduced = [node for node in walk if node in keep]
        if len(reduced) >= min_length:
            filtered.append(reduced)
    return WalkCorpus(walks=filtered, length=corpus.length)


def chunk_paths(
    corpus: WalkCorpus, chunk_length: int
) -> list[Sequence[NodeId]]:
    """Cut each path into non-overlapping chunks of exactly ``chunk_length``.

    The translators' feed-forward layers have a (path_len x path_len)
    weight (Equation 9) and therefore need fixed-length inputs; filtered
    cross-view paths have variable length, so we re-chunk them.  Remainders
    shorter than ``chunk_length`` are dropped.
    """
    if chunk_length < 2:
        raise ValueError(f"chunk length must be >= 2, got {chunk_length}")
    chunks: list[Sequence[NodeId]] = []
    for walk in corpus.walks:
        for offset in range(0, len(walk) - chunk_length + 1, chunk_length):
            chunks.append(walk[offset : offset + chunk_length])
    return chunks
