"""On-disk corpus spill: append walk blocks once, mmap-replay every epoch.

Streaming corpus generation (:func:`repro.walks.corpus.stream_corpus`)
bounds peak memory, but every epoch still pays the full walk-sampling
cost.  The spill file trades disk for that cost, word2vec-style: the
first draw's blocks are appended to a flat binary file as they stream
past, and subsequent draws replay the file through ``mmap`` — the kernel
pages blocks in and out on demand, so replay keeps the same bounded
working set as generation while skipping the walker entirely.

File format (little-endian, version 2)::

    header   magic b"TNSPILL2" | u32 version | u32 index itemsize (4|8)
             | u32 walk length | u64 block count
    block    u64 num_walks | u64 width | u32 crc32
             | num_walks*width index matrix (int32 or int64)
             | num_walks int64 lengths

The per-block ``crc32`` covers the matrix bytes then the lengths bytes,
so a replay detects bit rot (a flipped byte on a failing disk) at the
corrupted block — raised as :class:`SpillCorruptionError` — instead of
silently training on garbage walks.  Version-1 files (``TNSPILL1``)
carry no checksums and are rejected with a clear message; delete and
re-record them.

Writers append to ``<path>.tmp`` and atomically rename on
:meth:`SpillWriter.finalize`, so a crashed or abandoned epoch never
leaves a half-written file where a replay would look for it; int32
index matrices (graphs under ``2**31`` nodes —
:func:`repro.walks.corpus.corpus_index_dtype`) halve the file.

Fault points (:mod:`repro.engine.faults`, imported lazily so this
module stays engine-independent): ``spill.write_enospc`` raises a disk-
full ``OSError`` on the next :meth:`SpillWriter.append`;
``spill.bitflip`` flips one deterministic byte of the just-finalized
file, simulating bit rot the CRC must catch.
"""

from __future__ import annotations

import mmap
import os
import struct
import zlib
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.graph.heterograph import HeteroGraph
from repro.walks.corpus import WalkCorpus

MAGIC = b"TNSPILL2"
LEGACY_MAGIC = b"TNSPILL1"
VERSION = 2
_HEADER = struct.Struct("<8sIIIQ")  # magic, version, itemsize, length, blocks
_BLOCK = struct.Struct("<QQI")  # num_walks, width, crc32


class SpillFormatError(ValueError):
    """The file is not a (complete, current-version) corpus spill."""


class SpillCorruptionError(SpillFormatError):
    """A block's payload does not match its recorded CRC32 (bit rot)."""


class SpillWriter:
    """Append walk blocks to a spill file; atomic on :meth:`finalize`.

    Blocks must share one index dtype (int32 or int64) and one nominal
    walk length; widths may vary per block (scalar walkers can overrun
    the nominal length).  Until :meth:`finalize` the data lives in
    ``<path>.tmp``; :meth:`abort` (or garbage collection) drops it.
    """

    def __init__(self, path: str | Path, length: int, dtype) -> None:
        dtype = np.dtype(dtype)
        if dtype not in (np.dtype(np.int32), np.dtype(np.int64)):
            raise ValueError(f"spill index dtype must be int32/int64, got {dtype}")
        self.path = Path(path)
        self.length = int(length)
        self.dtype = dtype
        self._tmp = self.path.with_name(self.path.name + ".tmp")
        self._tmp.parent.mkdir(parents=True, exist_ok=True)
        self._handle = self._tmp.open("wb")
        self._blocks = 0
        self._first_block_span: tuple[int, int] | None = None
        self._handle.write(
            _HEADER.pack(MAGIC, VERSION, dtype.itemsize, self.length, 0)
        )

    def append(self, matrix: np.ndarray, lengths: np.ndarray) -> None:
        """Append one ``(num_walks, width)`` block, its lengths, and CRC."""
        if self._handle is None:
            raise ValueError("spill writer is closed")
        from repro.engine.faults import fire_os_error  # lazy: no engine dep

        fire_os_error("spill.write_enospc")
        matrix = np.ascontiguousarray(matrix, dtype=self.dtype)
        lengths = np.ascontiguousarray(lengths, dtype=np.int64)
        if matrix.ndim != 2 or lengths.shape != (matrix.shape[0],):
            raise ValueError(
                f"block shape mismatch: matrix {matrix.shape}, "
                f"lengths {lengths.shape}"
            )
        matrix_bytes = matrix.tobytes()
        lengths_bytes = lengths.tobytes()
        crc = zlib.crc32(lengths_bytes, zlib.crc32(matrix_bytes))
        if self._first_block_span is None:
            self._first_block_span = (
                self._handle.tell() + _BLOCK.size,
                len(matrix_bytes) + len(lengths_bytes),
            )
        self._handle.write(
            _BLOCK.pack(matrix.shape[0], matrix.shape[1], crc)
        )
        self._handle.write(matrix_bytes)
        self._handle.write(lengths_bytes)
        self._blocks += 1

    def finalize(self) -> Path:
        """Patch the block count into the header and rename into place."""
        if self._handle is None:
            raise ValueError("spill writer is closed")
        self._handle.seek(0)
        self._handle.write(
            _HEADER.pack(
                MAGIC, VERSION, self.dtype.itemsize, self.length, self._blocks
            )
        )
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._handle.close()
        self._handle = None
        os.replace(self._tmp, self.path)
        self._maybe_bitflip()
        return self.path

    def _maybe_bitflip(self) -> None:
        """Chaos hook: flip one byte of the finalized file (bit rot).

        Fires only when an active injector arms ``spill.bitflip``; the
        byte lands inside the first block's payload (deterministically
        chosen by the injector's per-point RNG) so the CRC check is
        guaranteed to trip on the next replay.
        """
        from repro.engine.faults import get_active  # lazy: no engine dep

        injector = get_active()
        if injector is None or not injector.should_fire("spill.bitflip"):
            return
        if self._first_block_span is None:  # zero-block spill: nothing to rot
            return
        start, nbytes = self._first_block_span
        offset = start + int(injector.rng("spill.bitflip").integers(nbytes))
        with self.path.open("r+b") as handle:
            handle.seek(offset)
            byte = handle.read(1)
            handle.seek(offset)
            handle.write(bytes([byte[0] ^ 0x01]))

    def abort(self) -> None:
        """Drop the half-written temp file (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        self._tmp.unlink(missing_ok=True)

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        if getattr(self, "_handle", None) is not None:
            self.abort()


class SpillReader:
    """Zero-copy block replay over an mmap of a finalized spill file.

    Each :meth:`blocks` pass yields ``(matrix, lengths)`` views backed
    directly by the mapping — no block is ever copied into the heap, so
    a replayed epoch's resident set is whatever the kernel keeps paged
    in, bounded by the block size just like live generation.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._file = self.path.open("rb")
        try:
            self._map = mmap.mmap(
                self._file.fileno(), 0, access=mmap.ACCESS_READ
            )
        except ValueError as error:
            self._file.close()
            raise SpillFormatError(f"{self.path}: empty spill file") from error
        try:
            header = self._map[: _HEADER.size]
            if len(header) < _HEADER.size:
                raise SpillFormatError(f"{self.path}: truncated header")
            magic, version, itemsize, length, blocks = _HEADER.unpack(header)
            if magic == LEGACY_MAGIC:
                raise SpillFormatError(
                    f"{self.path}: version-1 spill file (TNSPILL1) carries "
                    "no block checksums and cannot be verified; delete it "
                    "and re-record the corpus"
                )
            if magic != MAGIC:
                raise SpillFormatError(f"{self.path}: not a corpus spill file")
            if version != VERSION:
                raise SpillFormatError(
                    f"{self.path}: spill version {version}, expected {VERSION}"
                )
            if itemsize not in (4, 8):
                raise SpillFormatError(
                    f"{self.path}: bad index itemsize {itemsize}"
                )
        except SpillFormatError:
            self.close()
            raise
        self.dtype = np.dtype(np.int32 if itemsize == 4 else np.int64)
        self.length = int(length)
        self.num_blocks = int(blocks)

    def blocks(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield every ``(matrix, lengths)`` block, in append order.

        Each block's payload is checked against its recorded CRC32
        before it is yielded; a mismatch raises
        :class:`SpillCorruptionError` naming the block.
        """
        if self._map is None:
            raise ValueError("spill reader is closed")
        offset = _HEADER.size
        size = len(self._map)
        for index in range(self.num_blocks):
            if offset + _BLOCK.size > size:
                raise SpillFormatError(f"{self.path}: truncated block header")
            num_walks, width, crc = _BLOCK.unpack_from(self._map, offset)
            offset += _BLOCK.size
            matrix_bytes = num_walks * width * self.dtype.itemsize
            lengths_bytes = num_walks * 8
            if offset + matrix_bytes + lengths_bytes > size:
                raise SpillFormatError(f"{self.path}: truncated block data")
            actual = zlib.crc32(
                self._map[offset + matrix_bytes : offset + matrix_bytes
                          + lengths_bytes],
                zlib.crc32(self._map[offset : offset + matrix_bytes]),
            )
            if actual != crc:
                raise SpillCorruptionError(
                    f"{self.path}: block {index} CRC mismatch "
                    f"(recorded {crc:#010x}, computed {actual:#010x}); "
                    "the spill file is corrupt"
                )
            matrix = np.frombuffer(
                self._map, dtype=self.dtype, count=num_walks * width,
                offset=offset,
            ).reshape(num_walks, width)
            offset += matrix_bytes
            lengths = np.frombuffer(
                self._map, dtype=np.int64, count=num_walks, offset=offset
            )
            offset += lengths_bytes
            yield matrix, lengths

    def verify(self) -> int:
        """Scan every block's CRC upfront; returns the block count.

        Lets a replay consumer reject a corrupt file *before* handing
        any walks to training (mid-epoch corruption discovery would
        force an epoch restart); raises the same errors as
        :meth:`blocks`.
        """
        count = 0
        for _ in self.blocks():
            count += 1
        return count

    def corpora(self, graph: HeteroGraph | None = None) -> Iterator[WalkCorpus]:
        """The blocks wrapped as :class:`WalkCorpus` objects."""
        for matrix, lengths in self.blocks():
            yield WalkCorpus(matrix, lengths, self.length, graph)

    def close(self) -> None:
        if getattr(self, "_map", None) is not None:
            try:
                self._map.close()
            except BufferError:
                # a replayed block array still points into the mapping;
                # the OS reclaims it when the last view is collected
                return
            self._map = None
        if getattr(self, "_file", None) is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "SpillReader":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        self.close()
