"""Command-line interface.

Subcommands::

    repro generate <dataset> --graph g.tsv --labels l.tsv [--seed N]
    repro stats    <graph.tsv> [--labels l.tsv]
    repro train    <graph.tsv> --out emb.txt [--out-store emb.tnemb]
                   [--method transn] [--dim 32]
                   [--checkpoint-dir ckpts/ --checkpoint-every 2 --resume]
                   [--health-policy raise|rollback|skip]
                   [--report run.json --trace]
                   [--shard-timeout 60 --on-spill-error degrade|raise]
                   [--chaos worker.crash,spill.bitflip] ...
    repro classify <graph.tsv> <labels.tsv> [--method transn] ...
    repro linkpred <graph.tsv> [--method transn] [--removal 0.4] ...
    repro query    <emb.tnemb> (--node ID ... | --nodes-file f | --sample N
                   | --pairs pairs.tsv) [--top-k 10] [--index ivf|brute]
                   [--metric cosine|dot] [--nlist N] [--nprobe N]
                   [--out results.tsv] [--report run.json]
    repro serve    <emb.tnemb> [--top-k 10] ...   # node ids on stdin

Graphs use the TSV format of :mod:`repro.graph.io`; labels are
``node_id<TAB>label`` lines; embeddings use the word2vec text format.

Example end-to-end session::

    repro generate app-daily --graph app.tsv --labels app-labels.tsv
    repro stats app.tsv --labels app-labels.tsv
    repro train app.tsv --out app-emb.txt --method transn --dim 32
    repro classify app.tsv app-labels.tsv --method transn
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.core import TransNConfig
from repro.graph import compute_statistics, load_graph, save_embeddings, save_graph
from repro.graph.heterograph import HeteroGraph
from repro.walks.policies import POLICY_NAMES


def _load_labels(path: str | Path) -> dict[str, str]:
    labels: dict[str, str] = {}
    with Path(path).open() as handle:
        for line_number, raw in enumerate(handle, start=1):
            line = raw.rstrip("\n")
            if not line or line.startswith("#"):
                continue
            parts = line.split("\t")
            if len(parts) != 2:
                raise SystemExit(
                    f"{path}:{line_number}: labels need 'node<TAB>label'"
                )
            labels[parts[0]] = parts[1]
    return labels


def _save_labels(labels: dict, path: str | Path) -> None:
    with Path(path).open("w") as handle:
        for node, label in labels.items():
            handle.write(f"{node}\t{label}\n")


def _make_method(name: str, graph: HeteroGraph, args: argparse.Namespace):
    """Instantiate a method by CLI name."""
    from repro.baselines import LINE, MVE, RGCN, DeepWalk, HIN2Vec, Node2Vec, SimplE
    from repro.eval.methods import TransNMethod

    name = name.lower()
    dim, seed = args.dim, args.seed
    # fault-tolerance options exist only on the train subcommand
    checkpoint_dir = getattr(args, "checkpoint_dir", None)
    checkpoint_every = getattr(args, "checkpoint_every", 1)
    resume = getattr(args, "resume", False)
    health_policy = getattr(args, "health_policy", None)
    report = getattr(args, "report", None)
    trace = getattr(args, "trace", False)
    if resume and checkpoint_dir is None:
        raise SystemExit("--resume needs --checkpoint-dir")
    if trace and report is None:
        raise SystemExit("--trace needs --report")
    walk_policy = getattr(args, "walk_policy", None)
    workers = getattr(args, "workers", 0)
    stream = getattr(args, "stream_corpus", False)
    corpus_budget_mb = getattr(args, "corpus_budget_mb", None)
    spill_dir = getattr(args, "spill_dir", None)
    on_spill_error = getattr(args, "on_spill_error", "degrade")
    shard_timeout = getattr(args, "shard_timeout", None)
    dtype = getattr(args, "dtype", "float64")
    if name == "transn":
        try:
            config = TransNConfig(
                dim=dim,
                seed=seed,
                num_iterations=args.iterations,
                checkpoint_every=checkpoint_every,
                health_policy=health_policy,
                workers=workers,
                stream_corpus=stream,
                corpus_budget_mb=corpus_budget_mb,
                spill_dir=spill_dir,
                on_spill_error=on_spill_error,
                shard_timeout=shard_timeout,
                dtype=dtype,
                **({} if walk_policy is None else {"walk_policy": walk_policy}),
            )
        except ValueError as error:
            raise SystemExit(str(error)) from None
        method = TransNMethod(
            config, checkpoint_dir=checkpoint_dir, resume=resume
        )
    else:
        if walk_policy is not None:
            raise SystemExit(
                "--walk-policy is only supported for --method transn; "
                "baselines fix their own walk strategy"
            )
        if workers:
            raise SystemExit(
                "--workers is only supported for --method transn; "
                "baselines sample their corpora serially"
            )
        if stream or corpus_budget_mb is not None or spill_dir is not None:
            raise SystemExit(
                "--stream-corpus/--corpus-budget-mb/--spill-dir are only "
                "supported for --method transn; baselines materialize "
                "their corpora"
            )
        if shard_timeout is not None:
            raise SystemExit(
                "--shard-timeout is only supported for --method transn; "
                "baselines sample their corpora serially"
            )
        if on_spill_error != "degrade":
            raise SystemExit(
                "--on-spill-error is only supported for --method transn; "
                "baselines never spill corpora"
            )
        if dtype != "float64":
            raise SystemExit(
                "--dtype is only supported for --method transn; "
                "baselines train in float64"
            )
        if checkpoint_dir is not None:
            raise SystemExit(
                "--checkpoint-dir/--resume are only supported for "
                "--method transn; baselines have no snapshot protocol"
            )
        simple = {
            "line": lambda: LINE(dim=dim, seed=seed),
            "deepwalk": lambda: DeepWalk(dim=dim, seed=seed),
            "node2vec": lambda: Node2Vec(dim=dim, seed=seed),
            "hin2vec": lambda: HIN2Vec(dim=dim, seed=seed),
            "mve": lambda: MVE(dim=dim, seed=seed),
            "rgcn": lambda: RGCN(dim=dim, seed=seed),
            "simple": lambda: SimplE(dim=dim, seed=seed),
        }
        if name not in simple:
            raise SystemExit(
                f"unknown method {name!r}; choose from transn, "
                + ", ".join(sorted(simple))
            )
        method = simple[name]()
        if health_policy is not None:
            try:
                method.attach_health_guard(health_policy)
            except ValueError as error:
                raise SystemExit(str(error)) from None
    if report is not None:
        method.enable_report(report, trace_memory=trace)
    if getattr(args, "verbose", False):
        from repro.engine import ProgressReporter

        method.callbacks.append(ProgressReporter())
    return method


def _print_engine_summary(method) -> None:
    """Per-phase loss/timing from the method's engine run, if it had one."""
    run = getattr(method, "last_run_", None)
    if run is None or not run.timings:
        return
    parts = []
    for phase, seconds in run.timings.items():
        final = next(
            (entry for entry in reversed(run.history.get(phase, [])) if entry),
            {},
        )
        rendered = " ".join(f"{k}={v:.4f}" for k, v in final.items())
        tail = f" (final {rendered})" if rendered else ""
        parts.append(f"{phase} {seconds:.2f}s{tail}")
    print(f"phase timings [{run.epochs_run} epochs]: " + "  ".join(parts))


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.datasets import (
        make_aminer,
        make_app_daily,
        make_app_weekly,
        make_blog,
    )
    from repro.datasets.aminer import AMinerConfig
    from repro.datasets.blog import BlogConfig

    makers = {
        "aminer": lambda: make_aminer(AMinerConfig(seed=args.seed)),
        "blog": lambda: make_blog(BlogConfig(seed=args.seed)),
        "app-daily": lambda: make_app_daily(seed=args.seed),
        "app-weekly": lambda: make_app_weekly(seed=args.seed),
    }
    if args.dataset not in makers:
        raise SystemExit(
            f"unknown dataset {args.dataset!r}; choose from "
            + ", ".join(sorted(makers))
        )
    graph, labels = makers[args.dataset]()
    save_graph(graph, args.graph)
    if args.labels:
        _save_labels(labels, args.labels)
    print(f"wrote {graph} to {args.graph}")
    if args.labels:
        print(f"wrote {len(labels)} labels to {args.labels}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    graph = load_graph(args.graph)
    labels = _load_labels(args.labels) if args.labels else None
    stats = compute_statistics(graph, Path(args.graph).stem, labels)
    for key, value in stats.as_row().items():
        print(f"{key:24s} {value}")
    print(f"{'Density':24s} {stats.density:.5f}")
    print(f"{'Average degree':24s} {stats.average_degree:.2f}")
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    from repro.engine import faults

    graph = load_graph(args.graph)
    injector = None
    if getattr(args, "chaos", None):
        if args.method.lower() != "transn":
            raise SystemExit(
                "--chaos is only supported for --method transn; baselines "
                "have no hardened parallel/streaming paths to exercise"
            )
        try:
            injector = faults.FaultInjector.from_spec(
                args.chaos, seed=args.seed
            )
        except ValueError as error:
            raise SystemExit(str(error)) from None
        if (
            "worker.hang" in injector.armed_points()
            and getattr(args, "shard_timeout", None) is None
        ):
            raise SystemExit(
                "--chaos worker.hang needs --shard-timeout (the watchdog "
                "is what detects the hang)"
            )
        faults.activate(injector)
        print(f"chaos armed: {', '.join(injector.armed_points())}")
    try:
        method = _make_method(args.method, graph, args)
        print(f"training {method.name} (d={args.dim}) on {graph} ...")
        embeddings = method.fit(graph)
    finally:
        if injector is not None:
            faults.activate(None)
    if injector is not None:
        fired = ", ".join(
            f"{point} x{count}"
            for point, count in sorted(injector.fired.items())
        )
        print(f"chaos faults fired: {fired or 'none'}")
    _print_engine_summary(method)
    save_embeddings(embeddings, args.out)
    print(f"wrote {len(embeddings)} embeddings to {args.out}")
    if getattr(args, "out_store", None):
        from repro.serving import store_from_embeddings

        store_from_embeddings(embeddings, args.out_store)
        print(f"wrote binary embedding store to {args.out_store}")
    if getattr(args, "report", None):
        print(f"wrote run report to {args.report}")
    return 0


def _make_service(args: argparse.Namespace):
    """Open the store and build an EmbeddingService per the serving flags.

    Returns ``(service, metrics, tracer)``; exits with a message when
    the store is missing/invalid or the flag combination is bad.
    """
    from repro.engine.observability import (
        NULL_REGISTRY,
        NULL_TRACER,
        MetricsRegistry,
        Tracer,
    )
    from repro.serving import EmbeddingService, StoreFormatError

    if args.index == "brute" and args.nprobe is not None:
        raise SystemExit("--nprobe only applies to --index ivf")
    if args.index == "brute" and args.nlist is not None:
        raise SystemExit("--nlist only applies to --index ivf")
    report = getattr(args, "report", None)
    metrics = MetricsRegistry() if report else NULL_REGISTRY
    tracer = Tracer() if report else NULL_TRACER
    if not Path(args.store).is_file():
        raise SystemExit(
            f"embedding store {args.store!r} does not exist; write one "
            "with 'repro train ... --out-store'"
        )
    try:
        service = EmbeddingService(
            args.store,
            metric=args.metric,
            index=args.index,
            nlist=args.nlist,
            nprobe=8 if args.nprobe is None else args.nprobe,
            seed=args.seed,
            batch_size=args.batch_size,
            metrics=metrics,
            tracer=tracer,
        )
    except StoreFormatError as error:
        raise SystemExit(str(error)) from None
    return service, metrics, tracer


def _write_serving_report(args, service, metrics, tracer, extra) -> None:
    from repro.engine.observability import RunReport

    if not getattr(args, "report", None):
        return
    metadata = {
        "command": args.command,
        "store": str(args.store),
        "index": args.index,
        "metric": args.metric,
        "top_k": args.top_k,
        **extra,
    }
    RunReport(metrics, tracer, metadata=metadata).write(args.report)
    print(f"wrote run report to {args.report}", file=sys.stderr)


def _query_nodes(args, service) -> list[str]:
    """The query id list from --node/--nodes-file/--sample."""
    import numpy as np

    if args.node:
        return list(args.node)
    if args.nodes_file:
        nodes = [
            line.strip()
            for line in Path(args.nodes_file).read_text().splitlines()
            if line.strip() and not line.startswith("#")
        ]
        if not nodes:
            raise SystemExit(f"{args.nodes_file}: no node ids found")
        return nodes
    rng = np.random.default_rng(args.seed)
    count = service.store.count
    rows = np.sort(
        rng.choice(count, size=min(args.sample, count), replace=False)
    )
    ids = service.store.ids
    return [ids[int(r)] for r in rows]


def _load_pairs(path: str | Path) -> list[tuple[str, str]]:
    pairs: list[tuple[str, str]] = []
    with Path(path).open() as handle:
        for line_number, raw in enumerate(handle, start=1):
            line = raw.rstrip("\n")
            if not line or line.startswith("#"):
                continue
            parts = line.split("\t")
            if len(parts) != 2:
                raise SystemExit(
                    f"{path}:{line_number}: pairs need 'u<TAB>v', "
                    f"got {len(parts)} fields"
                )
            pairs.append((parts[0], parts[1]))
    if not pairs:
        raise SystemExit(f"{path}: no pairs found")
    return pairs


def _emit_lines(lines: list[str], out: str | None) -> None:
    if out is None:
        for line in lines:
            print(line)
    else:
        from repro.graph.io import atomic_writer

        with atomic_writer(out) as handle:
            for line in lines:
                handle.write(line + "\n")


def _cmd_query(args: argparse.Namespace) -> int:
    chosen = [
        bool(args.node),
        args.nodes_file is not None,
        args.sample is not None,
        args.pairs is not None,
    ]
    if sum(chosen) != 1:
        raise SystemExit(
            "query needs exactly one of --node, --nodes-file, --sample, "
            "or --pairs"
        )
    service, metrics, tracer = _make_service(args)
    with service:
        if args.pairs is not None:
            pairs = _load_pairs(args.pairs)
            try:
                scores = service.score_links(pairs)
            except KeyError as error:
                raise SystemExit(str(error.args[0])) from None
            lines = [
                f"{u}\t{v}\t{score:.9g}"
                for (u, v), score in zip(pairs, scores)
            ]
            extra = {"pairs": len(pairs)}
        else:
            nodes = _query_nodes(args, service)
            try:
                results = service.top_k(
                    nodes, k=args.top_k, nprobe=args.nprobe
                )
            except KeyError as error:
                raise SystemExit(str(error.args[0])) from None
            lines = [
                f"{query}\t{rank}\t{neighbor}\t{score:.9g}"
                for query, entry in zip(nodes, results)
                for rank, (neighbor, score) in enumerate(entry, start=1)
            ]
            extra = {"queries": len(nodes)}
            if args.measure_recall and args.index == "ivf":
                recall = service.measure_recall(k=args.top_k)
                print(
                    f"recall@{args.top_k} vs brute force: {recall:.4f}",
                    file=sys.stderr,
                )
        _emit_lines(lines, args.out)
        _write_serving_report(args, service, metrics, tracer, extra)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Serve top-k queries from stdin (one node id per line) until EOF."""
    service, metrics, tracer = _make_service(args)
    served = errors = 0
    with service:
        service.index  # build before the first request, not during it
        print(
            f"serving top-{args.top_k} queries over {args.store} "
            f"({service.store.count} vectors, {args.index} index); "
            "one node id per line, EOF to stop",
            file=sys.stderr,
        )
        for raw in sys.stdin:
            node = raw.strip()
            if not node:
                continue
            try:
                [entry] = service.top_k([node], k=args.top_k)
            except KeyError as error:
                errors += 1
                print(f"error: {error.args[0]}", file=sys.stderr)
                continue
            served += 1
            for rank, (neighbor, score) in enumerate(entry, start=1):
                print(f"{node}\t{rank}\t{neighbor}\t{score:.9g}")
            sys.stdout.flush()
        print(
            f"served {served} queries ({errors} errors)", file=sys.stderr
        )
        _write_serving_report(
            args, service, metrics, tracer,
            {"served": served, "errors": errors},
        )
    return 0


def _cmd_classify(args: argparse.Namespace) -> int:
    from repro.eval import run_node_classification

    graph = load_graph(args.graph)
    labels = _load_labels(args.labels)
    method = _make_method(args.method, graph, args)
    print(f"training {method.name} on {graph} ...")
    embeddings = method.fit(graph)
    _print_engine_summary(method)
    result = run_node_classification(
        embeddings, labels, repeats=args.repeats, seed=args.seed
    )
    print(
        f"macro-F1 {result.macro_f1:.4f} (±{result.macro_std:.3f})  "
        f"micro-F1 {result.micro_f1:.4f} (±{result.micro_std:.3f})  "
        f"[{result.repeats} repeats]"
    )
    return 0


def _cmd_linkpred(args: argparse.Namespace) -> int:
    from repro.eval import run_link_prediction

    graph = load_graph(args.graph)
    result = run_link_prediction(
        lambda: _make_method(args.method, graph, args),
        graph,
        removal_fraction=args.removal,
        seed=args.seed,
    )
    print(
        f"AUC {result.auc:.4f}  "
        f"({result.num_positive} positives / {result.num_negative} negatives)"
    )
    return 0


def _add_method_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--method",
        default="transn",
        help="transn (default), line, deepwalk, node2vec, hin2vec, mve, "
        "rgcn, or simple",
    )
    parser.add_argument("--dim", type=int, default=32)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--iterations",
        type=int,
        default=TransNConfig().num_iterations,
        help="TransN outer iterations (Algorithm 1's K)",
    )
    parser.add_argument(
        "--walk-policy",
        choices=POLICY_NAMES,
        default=None,
        help="walk strategy for TransN's views (default: the paper's "
        "biased correlated walk)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="corpus-generation worker processes for TransN (0 = serial, "
        "bit-identical to the pre-parallel path; N >= 1 is deterministic "
        "per N — see docs/parallelism.md)",
    )
    parser.add_argument(
        "--stream-corpus",
        action="store_true",
        help="TransN only: stream walk corpora as bounded blocks instead "
        "of materializing them (docs/performance.md)",
    )
    parser.add_argument(
        "--corpus-budget-mb",
        type=float,
        default=None,
        help="hard peak-memory budget (MiB) for the streaming corpus data "
        "path; needs --stream-corpus",
    )
    parser.add_argument(
        "--spill-dir",
        default=None,
        help="directory for on-disk corpus spill files (record once, "
        "mmap-replay later epochs); needs --stream-corpus",
    )
    parser.add_argument(
        "--on-spill-error",
        choices=("degrade", "raise"),
        default="degrade",
        help="TransN only: what a corrupt or unwritable spill file does — "
        "degrade (default: record the incident, disable replay, "
        "regenerate the recorded draw) or raise (abort the run)",
    )
    parser.add_argument(
        "--shard-timeout",
        type=float,
        default=None,
        help="TransN only: per-shard watchdog deadline in seconds for "
        "parallel corpus builds (needs --workers >= 1); a hung shard's "
        "pool is killed and its work replayed in-process bit-identically",
    )
    parser.add_argument(
        "--dtype",
        choices=("float32", "float64"),
        default="float64",
        help="TransN only: storage dtype of embeddings, translators, and "
        "optimizer moments (float32 halves memory)",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="print per-iteration losses and timings while training",
    )


def _add_serving_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("store", help="a TNEMB1 binary embedding store")
    parser.add_argument(
        "--top-k",
        type=int,
        default=10,
        help="neighbors returned per query (default 10)",
    )
    parser.add_argument(
        "--metric",
        choices=("cosine", "dot"),
        default="cosine",
        help="top-k ranking metric (link scores always use the raw "
        "inner product, per Table IV)",
    )
    parser.add_argument(
        "--index",
        choices=("ivf", "brute"),
        default="ivf",
        help="ivf (approximate, default) or brute (exact reference)",
    )
    parser.add_argument(
        "--nlist",
        type=int,
        default=None,
        help="IVF cells (default: sqrt of the store size)",
    )
    parser.add_argument(
        "--nprobe",
        type=int,
        default=None,
        help="IVF cells probed per query (default 8; more = higher "
        "recall, slower)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--batch-size",
        type=int,
        default=256,
        help="internal query execution batch (default 256)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TransN (ICDE 2020) reproduction command-line interface",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_generate = sub.add_parser(
        "generate", help="generate a synthetic dataset"
    )
    p_generate.add_argument("dataset")
    p_generate.add_argument("--graph", required=True)
    p_generate.add_argument("--labels")
    p_generate.add_argument("--seed", type=int, default=0)
    p_generate.set_defaults(func=_cmd_generate)

    p_stats = sub.add_parser("stats", help="print Table II-style statistics")
    p_stats.add_argument("graph")
    p_stats.add_argument("--labels")
    p_stats.set_defaults(func=_cmd_stats)

    p_train = sub.add_parser("train", help="train embeddings and save them")
    p_train.add_argument("graph")
    p_train.add_argument("--out", required=True)
    p_train.add_argument(
        "--out-store",
        default=None,
        help="also write the binary TNEMB1 embedding store (the serving "
        "artifact of 'repro query'/'repro serve'; see docs/serving.md)",
    )
    _add_method_options(p_train)
    p_train.add_argument(
        "--checkpoint-dir",
        help="snapshot training state into this directory (transn only)",
    )
    p_train.add_argument(
        "--checkpoint-every",
        type=int,
        default=1,
        help="iterations between snapshots (default 1)",
    )
    p_train.add_argument(
        "--resume",
        action="store_true",
        help="continue from the newest valid checkpoint in --checkpoint-dir",
    )
    p_train.add_argument(
        "--health-policy",
        choices=["raise", "rollback", "skip"],
        help="guard training against NaN/Inf and loss explosions: raise "
        "(fail fast), rollback (restore last checkpoint and halve the "
        "offending learning rate; transn only), or skip (log and continue)",
    )
    p_train.add_argument(
        "--report",
        help="write a versioned JSON run report (metrics, per-phase "
        "timings, span tree) to this path — see docs/observability.md",
    )
    p_train.add_argument(
        "--trace",
        action="store_true",
        help="include tracemalloc memory peaks in the report's spans "
        "(needs --report; roughly doubles allocation cost)",
    )
    p_train.add_argument(
        "--chaos",
        default=None,
        metavar="POINT[:TIMES][,...]",
        help="arm deterministic fault injection for this run (transn "
        "only): comma-separated fault points, e.g. "
        "'worker.crash,spill.bitflip' — the run must survive them; "
        "incidents land in --report (docs/fault_tolerance.md)",
    )
    p_train.set_defaults(func=_cmd_train)

    p_classify = sub.add_parser(
        "classify", help="node classification (Table III protocol)"
    )
    p_classify.add_argument("graph")
    p_classify.add_argument("labels")
    p_classify.add_argument("--repeats", type=int, default=10)
    _add_method_options(p_classify)
    p_classify.set_defaults(func=_cmd_classify)

    p_linkpred = sub.add_parser(
        "linkpred", help="link prediction (Table IV protocol)"
    )
    p_linkpred.add_argument("graph")
    p_linkpred.add_argument("--removal", type=float, default=0.4)
    _add_method_options(p_linkpred)
    p_linkpred.set_defaults(func=_cmd_linkpred)

    p_query = sub.add_parser(
        "query",
        help="batched top-k / link-score queries over a TNEMB1 store",
    )
    p_query.add_argument(
        "--node",
        action="append",
        default=[],
        metavar="ID",
        help="query node id (repeatable)",
    )
    p_query.add_argument(
        "--nodes-file",
        default=None,
        help="file with one query node id per line",
    )
    p_query.add_argument(
        "--sample",
        type=int,
        default=None,
        metavar="N",
        help="query a seeded sample of N stored nodes (deterministic "
        "for a fixed --seed)",
    )
    p_query.add_argument(
        "--pairs",
        default=None,
        metavar="FILE",
        help="score 'u<TAB>v' pairs by embedding inner product "
        "(the paper's Table IV edge-scoring protocol) instead of top-k",
    )
    p_query.add_argument(
        "--out",
        default=None,
        help="write results to this TSV file instead of stdout",
    )
    p_query.add_argument(
        "--measure-recall",
        action="store_true",
        help="also report recall@k of the ANN index vs brute force on a "
        "seeded sample (ivf only; full exact pass — costs one brute scan)",
    )
    p_query.add_argument(
        "--report",
        default=None,
        help="write a versioned JSON run report of the serving session "
        "(query counters, batch sizes, p50/p99 latency gauges)",
    )
    _add_serving_options(p_query)
    p_query.set_defaults(func=_cmd_query)

    p_serve = sub.add_parser(
        "serve",
        help="serve top-k queries from stdin (one node id per line)",
    )
    p_serve.add_argument(
        "--report",
        default=None,
        help="write a JSON run report of the session at EOF",
    )
    _add_serving_options(p_serve)
    p_serve.set_defaults(func=_cmd_serve)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
