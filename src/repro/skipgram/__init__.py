"""Skip-gram with negative sampling.

Equation (3) of the paper is the skip-gram objective of word2vec applied to
nodes on sampled walks.  We optimize it with negative sampling (Mikolov et
al. 2013) rather than hierarchical softmax — an equivalent-quality
estimator of the same conditional probabilities (the substitution is
recorded in DESIGN.md).

- :func:`~repro.skipgram.context.extract_pairs` implements Definition 6:
  context windows of size 1 on homo-views and 2 on heter-views.
- :class:`~repro.skipgram.negative.NoiseDistribution` is the standard
  unigram^0.75 noise table.
- :class:`~repro.skipgram.trainer.SkipGramTrainer` performs vectorized
  SGD updates on an (input, output) embedding pair.
"""

from repro.skipgram.context import extract_pairs, window_for_view
from repro.skipgram.negative import NoiseDistribution
from repro.skipgram.trainer import SkipGramTrainer

__all__ = [
    "extract_pairs",
    "window_for_view",
    "NoiseDistribution",
    "SkipGramTrainer",
]
