"""Unigram^0.75 noise distribution for negative sampling."""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.graph.alias import AliasSampler


class NoiseDistribution:
    """Sample negative node *indices* with probability ∝ count^power.

    ``counts`` maps dense node indices (0..n-1) to corpus frequencies;
    indices absent from ``counts`` get zero probability.

    The alias table is built over the *observed* nodes only (the indices
    with a positive count): a corpus touching a small subset of a large
    index space pays for its subset, not the full node range.  When
    every node is observed — the TransN views, where each node has
    degree > 0 and therefore starts walks — the compact table is the
    full-range table, so sampling realizations are unchanged.  Alias
    construction always happens in float64 regardless of ``dtype``, so
    the drawn negatives are identical across embedding dtypes.

    Args:
        dtype: storage dtype of the retained count array (float32 mode
            halves it; the default float64 matches the historical
            layout bit for bit).
    """

    def __init__(
        self,
        counts: Mapping[int, int] | np.ndarray,
        num_nodes: int,
        power: float = 0.75,
        dtype=np.float64,
    ) -> None:
        if num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        weights = np.zeros(num_nodes, dtype=np.dtype(dtype))
        if isinstance(counts, np.ndarray):
            if counts.shape != (num_nodes,):
                raise ValueError(
                    f"count array shape {counts.shape} != ({num_nodes},)"
                )
            weights[:] = counts
        else:
            for index, count in counts.items():
                if not 0 <= index < num_nodes:
                    raise ValueError(f"node index {index} out of range")
                weights[index] = count
        if weights.sum() <= 0:
            raise ValueError("noise distribution needs at least one count")
        observed = np.flatnonzero(weights)
        table_weights = np.power(
            weights[observed].astype(np.float64, copy=False), power
        )
        self._sampler = AliasSampler(table_weights)
        # None marks the dense case: draws are already node indices
        self._observed = None if observed.size == num_nodes else observed
        self.num_nodes = num_nodes
        # kept so the distribution can be checkpointed and rebuilt
        # bit-identically (alias-table construction is deterministic)
        self.counts = weights
        self.power = power

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw ``size`` negative node indices."""
        draws = np.asarray(self._sampler.sample(rng, size=size), dtype=np.int64)
        if self._observed is not None:
            draws = self._observed[draws]
        return draws

    def probabilities(self) -> np.ndarray:
        """The exact noise probabilities (for testing)."""
        table = self._sampler.probabilities()
        if self._observed is None:
            return table
        probs = np.zeros(self.num_nodes, dtype=np.float64)
        probs[self._observed] = table
        return probs
