"""Unigram^0.75 noise distribution for negative sampling."""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.graph.alias import AliasSampler


class NoiseDistribution:
    """Sample negative node *indices* with probability ∝ count^power.

    ``counts`` maps dense node indices (0..n-1) to corpus frequencies;
    indices absent from ``counts`` get zero probability.
    """

    def __init__(
        self,
        counts: Mapping[int, int] | np.ndarray,
        num_nodes: int,
        power: float = 0.75,
    ) -> None:
        if num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        weights = np.zeros(num_nodes, dtype=np.float64)
        if isinstance(counts, np.ndarray):
            if counts.shape != (num_nodes,):
                raise ValueError(
                    f"count array shape {counts.shape} != ({num_nodes},)"
                )
            weights[:] = counts
        else:
            for index, count in counts.items():
                if not 0 <= index < num_nodes:
                    raise ValueError(f"node index {index} out of range")
                weights[index] = count
        if weights.sum() <= 0:
            raise ValueError("noise distribution needs at least one count")
        self._sampler = AliasSampler(np.power(weights, power))
        self.num_nodes = num_nodes
        # kept so the distribution can be checkpointed and rebuilt
        # bit-identically (alias-table construction is deterministic)
        self.counts = weights
        self.power = power

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw ``size`` negative node indices."""
        return np.asarray(self._sampler.sample(rng, size=size), dtype=np.int64)

    def probabilities(self) -> np.ndarray:
        """The exact noise probabilities (for testing)."""
        return self._sampler.probabilities()
