"""Vectorized skip-gram-with-negative-sampling trainer.

Owns (or borrows) an input embedding matrix ``W_in`` (the view-specific
node embeddings of Equation 3) and an auxiliary output matrix ``W_out``
(context embeddings).  Gradients are the closed-form SGNS gradients, so no
autograd tape is involved — this is the hot loop of the whole framework.

For a batch of (center c, context o) pairs with negatives ``k_1..k_m``:

    L = -log sigma(w_o . w_c) - sum_j log sigma(-w_{k_j} . w_c)

Updates go through the shared sparse row optimizers of
:mod:`repro.nn.optim`.  The default :class:`~repro.nn.optim.RowSGD` gives
a node occurring several times within a batch the *mean* of its
per-occurrence gradients, not the sum: on small graphs a node can appear
dozens of times per batch; summing would multiply the effective learning
rate by that count and demonstrably diverges, while the mean matches the
sequential word2vec update in expectation.  ``optimizer="adam"`` swaps in
:class:`~repro.nn.optim.RowAdam` for both matrices.
"""

from __future__ import annotations

import numpy as np

from repro.engine.observability import NULL_REGISTRY, MetricsRegistry
from repro.nn.optim import gradient_norm, make_row_optimizer


def _sigmoid(x: np.ndarray) -> np.ndarray:
    out = np.empty_like(x)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    ex = np.exp(x[~positive])
    out[~positive] = ex / (1.0 + ex)
    return out


class SkipGramTrainer:
    """SGNS over a pair of embedding matrices.

    Args:
        embeddings: input embedding matrix of shape (num_nodes, dim);
            updated *in place* so callers can share it (TransN's
            view-specific embeddings are also touched by the cross-view
            algorithm).
        rng: generator used for initialization of the output matrix.
        optimizer: ``"sgd"`` (default, the classic word2vec update) or
            ``"adam"`` — resolved through
            :func:`repro.nn.optim.make_row_optimizer` for both the input
            and the output matrix.
        optimizer_lr: base learning rate stored on the row optimizers;
            the per-call ``lr`` of :meth:`train_batch` overrides it, so
            this matters mainly for Adam's scale.
    """

    def __init__(
        self,
        embeddings: np.ndarray,
        rng: np.random.Generator | None = None,
        optimizer: str = "sgd",
        optimizer_lr: float = 0.025,
    ) -> None:
        if embeddings.ndim != 2:
            raise ValueError("embeddings must be 2-D (num_nodes, dim)")
        self.embeddings = embeddings
        self.num_nodes, self.dim = embeddings.shape
        # word2vec initializes the output (context) matrix to zeros
        self.context = np.zeros_like(embeddings)
        self.input_optimizer = make_row_optimizer(
            optimizer, self.embeddings, lr=optimizer_lr
        )
        self.context_optimizer = make_row_optimizer(
            optimizer, self.context, lr=optimizer_lr
        )
        # observability: no-op unless a caller binds a live registry (see
        # SingleViewTrainer.bind_metrics); metric_prefix namespaces the
        # emitted keys per view
        self.metrics: MetricsRegistry = NULL_REGISTRY
        self.metric_prefix = ""

    def train_batch(
        self,
        centers: np.ndarray,
        contexts: np.ndarray,
        negatives: np.ndarray,
        lr: float,
    ) -> float:
        """One SGD step on a batch of pairs; returns the mean batch loss.

        Args:
            centers: int array (B,) of center-node indices.
            contexts: int array (B,) of positive context indices.
            negatives: int array (B, m) of negative indices.
            lr: SGD learning rate.
        """
        centers = np.asarray(centers, dtype=np.int64)
        contexts = np.asarray(contexts, dtype=np.int64)
        negatives = np.asarray(negatives, dtype=np.int64)
        if centers.shape != contexts.shape or centers.ndim != 1:
            raise ValueError("centers and contexts must be matching 1-D arrays")
        if negatives.ndim != 2 or negatives.shape[0] != centers.shape[0]:
            raise ValueError("negatives must be (batch, num_negatives)")

        w_c = self.embeddings[centers]  # (B, d)
        w_o = self.context[contexts]  # (B, d)
        w_n = self.context[negatives]  # (B, m, d)

        pos_score = np.einsum("bd,bd->b", w_c, w_o)
        neg_score = np.einsum("bd,bmd->bm", w_c, w_n)

        pos_sig = _sigmoid(pos_score)
        neg_sig = _sigmoid(neg_score)

        # dL/d(pos_score) = pos_sig - 1 ; dL/d(neg_score) = neg_sig
        g_pos = pos_sig - 1.0  # (B,)
        g_neg = neg_sig  # (B, m)

        grad_center = g_pos[:, None] * w_o + np.einsum("bm,bmd->bd", g_neg, w_n)
        grad_context = g_pos[:, None] * w_c
        grad_negatives = g_neg[..., None] * w_c[:, None, :]

        self.input_optimizer.update(centers, grad_center, lr=lr)
        # positive-context and negative rows both live in self.context;
        # aggregate them together so a node playing both roles moves once
        out_rows = np.concatenate([contexts, negatives.reshape(-1)])
        out_grads = np.concatenate(
            [grad_context, grad_negatives.reshape(-1, self.dim)]
        )
        self.context_optimizer.update(out_rows, out_grads, lr=lr)

        eps = 1e-12
        loss = -np.log(pos_sig + eps) - np.log(1.0 - neg_sig + eps).sum(axis=1)
        if self.metrics.enabled:
            prefix = self.metric_prefix
            self.metrics.observe(
                f"{prefix}grad_norm/input", gradient_norm([grad_center])
            )
            drawn = negatives.size
            self.metrics.counter(f"{prefix}negatives/drawn", drawn)
            self.metrics.observe(
                f"{prefix}negatives/unique_frac",
                np.unique(negatives).size / drawn if drawn else 0.0,
            )
        return float(loss.mean())

    # -- checkpoint protocol -------------------------------------------
    def state_dict(self) -> dict:
        """Snapshot of the trainer-owned state: the output (context)
        matrix and both row-optimizer states.  The *input* embedding
        matrix is deliberately excluded — it is borrowed from the caller
        (TransN's view embeddings are shared with the cross-view
        trainer), who saves it exactly once."""
        return {
            "context": self.context.copy(),
            "input_optimizer": self.input_optimizer.state_dict(),
            "context_optimizer": self.context_optimizer.state_dict(),
        }

    def load_state_dict(self, state: dict) -> None:
        if state["context"].shape != self.context.shape:
            raise ValueError(
                f"context matrix shape {state['context'].shape} does not "
                f"match trainer shape {self.context.shape}"
            )
        self.context[:] = state["context"]
        self.input_optimizer.load_state_dict(state["input_optimizer"])
        self.context_optimizer.load_state_dict(state["context_optimizer"])

    def loss_batch(
        self,
        centers: np.ndarray,
        contexts: np.ndarray,
        negatives: np.ndarray,
    ) -> float:
        """The mean batch loss without updating any parameters."""
        w_c = self.embeddings[np.asarray(centers, dtype=np.int64)]
        w_o = self.context[np.asarray(contexts, dtype=np.int64)]
        w_n = self.context[np.asarray(negatives, dtype=np.int64)]
        pos = _sigmoid(np.einsum("bd,bd->b", w_c, w_o))
        neg = _sigmoid(np.einsum("bd,bmd->bm", w_c, w_n))
        eps = 1e-12
        loss = -np.log(pos + eps) - np.log(1.0 - neg + eps).sum(axis=1)
        return float(loss.mean())
