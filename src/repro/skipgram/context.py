"""Context-node extraction on sampled paths (Definition 6).

On a path ``n_1 .. n_r``:

- from a *homo-view*, the context of ``n_k`` is ``{n_{k-1}, n_{k+1}}``
  (window 1);
- from a *heter-view*, it is ``{n_{k-2}, n_{k-1}, n_{k+1}, n_{k+2}}``
  (window 2) — the two-hop neighbours are the *indirect* neighbours that
  share a common end-node with ``n_k`` (e.g. two readers of the same book).
"""

from __future__ import annotations

from typing import Sequence

from repro.graph.heterograph import NodeId
from repro.graph.views import View

HOMO_WINDOW = 1
HETER_WINDOW = 2


def window_for_view(view: View) -> int:
    """The Definition-6 window size of ``view`` (1 homo / 2 heter)."""
    return HETER_WINDOW if view.is_heter else HOMO_WINDOW


def extract_pairs(
    walk: Sequence[NodeId], window: int
) -> list[tuple[NodeId, NodeId]]:
    """All (center, context) pairs of ``walk`` under the given window.

    Example:
        >>> extract_pairs(["a", "b", "c"], window=1)
        [('a', 'b'), ('b', 'a'), ('b', 'c'), ('c', 'b')]
    """
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    pairs: list[tuple[NodeId, NodeId]] = []
    r = len(walk)
    for k in range(r):
        low = max(0, k - window)
        high = min(r, k + window + 1)
        for j in range(low, high):
            if j != k:
                pairs.append((walk[k], walk[j]))
    return pairs
