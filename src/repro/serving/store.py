"""Binary, versioned, memory-mappable embedding store (``TNEMB1``).

Training writes embeddings as word2vec text (:mod:`repro.graph.io`) —
human-readable, but a serving process would pay a full parse of every
row before answering its first query.  The store is the production
counterpart: one flat binary file whose vector matrix is exposed
directly over ``mmap``, so opening costs O(ms) regardless of size (a
header read plus a size check — no row is ever parsed) and the kernel
pages vectors in on demand.

File format (little-endian, version 1)::

    header  magic b"TNEMB1\\x00\\x00" | u32 version | u32 itemsize (4|8)
            | u32 dim | u64 count | u64 ids_bytes
            | u32 matrix_crc32 | u32 ids_crc32
    matrix  count * dim float32/float64 values, C order
    ids     utf-8 node ids joined by b"\\n", ids_bytes long

The two CRC32s follow the ``TNSPILL2`` pattern (:mod:`repro.walks.spill`):
they cover the matrix payload and the id table so bit rot is detected as
:class:`StoreCorruptionError` naming the damaged section — but they are
checked by the explicit :meth:`EmbeddingStore.verify` scan, *not* at
open time, which is what keeps opening O(ms).  Truncated files are
caught immediately (the header promises an exact byte size).

Writes go through :func:`repro.graph.io.atomic_writer` in binary mode,
so a crashed writer never leaves a half-written store where a serving
process would look for one.
"""

from __future__ import annotations

import mmap
import struct
import zlib
from pathlib import Path
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.graph.io import atomic_writer, save_embeddings

MAGIC = b"TNEMB1\x00\x00"
LEGACY_MAGIC = b"TNEMB0\x00\x00"
VERSION = 1
_HEADER = struct.Struct("<8sIIIQQII")
# magic, version, itemsize, dim, count, ids_bytes, matrix_crc, ids_crc

HEADER_BYTES = _HEADER.size


class StoreFormatError(ValueError):
    """The file is not a (complete, current-version) embedding store."""


class StoreCorruptionError(StoreFormatError):
    """A payload section does not match its recorded CRC32 (bit rot)."""


def _check_ids(ids: Sequence[str]) -> list[str]:
    checked: list[str] = []
    seen: set[str] = set()
    for node_id in ids:
        node_id = str(node_id)
        if "\n" in node_id:
            raise ValueError(
                f"node id {node_id!r} contains a newline; the id table "
                "is newline-delimited"
            )
        if node_id in seen:
            raise ValueError(f"duplicate node id {node_id!r}")
        seen.add(node_id)
        checked.append(node_id)
    return checked


def write_store(
    path: str | Path, ids: Sequence[str], matrix: np.ndarray
) -> Path:
    """Atomically write ``(ids, matrix)`` as a version-1 embedding store.

    Args:
        path: destination file.
        ids: one unique, newline-free node id per matrix row.
        matrix: ``(count, dim)`` float32 or float64 array.

    Raises:
        ValueError: on an empty/ragged matrix, a non-float dtype, a
            row/id count mismatch, or duplicate/newline-bearing ids.
    """
    path = Path(path)
    matrix = np.ascontiguousarray(matrix)
    if matrix.ndim != 2:
        raise ValueError(f"matrix must be 2-D, got shape {matrix.shape}")
    if matrix.dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
        raise ValueError(
            f"store dtype must be float32/float64, got {matrix.dtype}"
        )
    count, dim = matrix.shape
    if count == 0 or dim == 0:
        raise ValueError(f"cannot store an empty matrix (shape {matrix.shape})")
    ids = _check_ids(ids)
    if len(ids) != count:
        raise ValueError(
            f"id/row count mismatch: {len(ids)} ids vs {count} rows"
        )
    matrix_bytes = matrix.tobytes()
    ids_blob = "\n".join(ids).encode("utf-8")
    with atomic_writer(path, "wb") as handle:
        handle.write(
            _HEADER.pack(
                MAGIC,
                VERSION,
                matrix.dtype.itemsize,
                dim,
                count,
                len(ids_blob),
                zlib.crc32(matrix_bytes),
                zlib.crc32(ids_blob),
            )
        )
        handle.write(matrix_bytes)
        handle.write(ids_blob)
    return path


def store_from_embeddings(
    embeddings: Mapping[str, np.ndarray], path: str | Path
) -> Path:
    """Convert a ``save_embeddings``-style mapping into a binary store.

    Row order is the mapping's iteration order, and the matrix dtype is
    the embeddings' own dtype (float32 stays float32), so the conversion
    is lossless and deterministic — two identical training runs produce
    byte-identical stores.
    """
    if not embeddings:
        raise ValueError("cannot store an empty embedding mapping")
    ids = [str(node) for node in embeddings]
    matrix = np.stack([np.asarray(v) for v in embeddings.values()])
    if matrix.dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
        matrix = matrix.astype(np.float64)
    return write_store(path, ids, matrix)


class EmbeddingStore:
    """A read-only mmap view over a ``TNEMB1`` file.

    Opening parses the fixed-size header and validates the file size
    against it — O(ms) for any store.  The vector matrix is a zero-copy
    ``numpy`` view into the mapping; the id table is decoded lazily on
    first use (:attr:`ids` / :meth:`row_of`), so pure vector access
    never pays for it.

    Raises:
        StoreFormatError: wrong magic (with an upgrade hint for
            version-0 files), wrong version, bad dtype code, or a file
            size that disagrees with the header (truncation).
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._file = self.path.open("rb")
        try:
            self._map = mmap.mmap(
                self._file.fileno(), 0, access=mmap.ACCESS_READ
            )
        except ValueError as error:
            self._file.close()
            raise StoreFormatError(f"{self.path}: empty store file") from error
        try:
            header = self._map[:HEADER_BYTES]
            if len(header) < HEADER_BYTES:
                raise StoreFormatError(f"{self.path}: truncated header")
            (
                magic,
                version,
                itemsize,
                dim,
                count,
                ids_bytes,
                matrix_crc,
                ids_crc,
            ) = _HEADER.unpack(header)
            if magic == LEGACY_MAGIC:
                raise StoreFormatError(
                    f"{self.path}: version-0 embedding store (TNEMB0) — "
                    "this build reads TNEMB1 only; rebuild it with "
                    "repro.serving.store.write_store (or retrain with "
                    "--out-store)"
                )
            if magic != MAGIC:
                raise StoreFormatError(
                    f"{self.path}: not an embedding store (bad magic "
                    f"{magic!r}; expected a TNEMB1 file written by "
                    "repro.serving.store)"
                )
            if version != VERSION:
                raise StoreFormatError(
                    f"{self.path}: store version {version}, expected {VERSION}"
                )
            if itemsize not in (4, 8):
                raise StoreFormatError(
                    f"{self.path}: bad vector itemsize {itemsize} "
                    "(expected 4 for float32 or 8 for float64)"
                )
            if count == 0 or dim == 0:
                raise StoreFormatError(
                    f"{self.path}: empty store ({count} rows, dim {dim})"
                )
            expected = HEADER_BYTES + count * dim * itemsize + ids_bytes
            if len(self._map) != expected:
                raise StoreFormatError(
                    f"{self.path}: file is {len(self._map)} bytes but the "
                    f"header promises {expected} (truncated or trailing "
                    "garbage)"
                )
        except StoreFormatError:
            self.close()
            raise
        self.dtype = np.dtype(np.float32 if itemsize == 4 else np.float64)
        self.count = int(count)
        self.dim = int(dim)
        self._ids_bytes = int(ids_bytes)
        self._matrix_crc = matrix_crc
        self._ids_crc = ids_crc
        self.matrix = np.frombuffer(
            self._map,
            dtype=self.dtype,
            count=self.count * self.dim,
            offset=HEADER_BYTES,
        ).reshape(self.count, self.dim)
        self._ids: list[str] | None = None
        self._row_index: dict[str, int] | None = None

    # ------------------------------------------------------------------
    @property
    def ids(self) -> list[str]:
        """All node ids, in row order (decoded once, on first access)."""
        if self._ids is None:
            blob = self._ids_blob()
            self._ids = blob.decode("utf-8").split("\n")
            if len(self._ids) != self.count:
                raise StoreFormatError(
                    f"{self.path}: id table has {len(self._ids)} entries "
                    f"for {self.count} rows"
                )
        return self._ids

    def _ids_blob(self) -> bytes:
        if self._map is None:
            raise ValueError("embedding store is closed")
        start = HEADER_BYTES + self.count * self.dim * self.dtype.itemsize
        return self._map[start : start + self._ids_bytes]

    def row_of(self, node_id: str) -> int:
        """The matrix row of ``node_id``; raises ``KeyError`` if absent."""
        if self._row_index is None:
            self._row_index = {
                node: row for row, node in enumerate(self.ids)
            }
        try:
            return self._row_index[node_id]
        except KeyError:
            raise KeyError(
                f"node id {node_id!r} is not in store {self.path}"
            ) from None

    def __contains__(self, node_id: str) -> bool:
        if self._row_index is None:
            self._row_index = {
                node: row for row, node in enumerate(self.ids)
            }
        return node_id in self._row_index

    def vector(self, node_id: str) -> np.ndarray:
        """The stored vector of ``node_id`` (a read-only mmap view)."""
        return self.matrix[self.row_of(node_id)]

    def vectors(self, node_ids: Iterable[str]) -> np.ndarray:
        """Gather many vectors into one ``(len(ids), dim)`` array."""
        rows = np.array([self.row_of(n) for n in node_ids], dtype=np.int64)
        return self.matrix[rows]

    def __len__(self) -> int:
        return self.count

    # ------------------------------------------------------------------
    def verify(self) -> None:
        """Check both payload CRC32s (a full-file scan, unlike opening).

        Raises:
            StoreCorruptionError: naming the damaged section (matrix or
                id table) and both CRC values.
        """
        if self._map is None:
            raise ValueError("embedding store is closed")
        matrix_end = HEADER_BYTES + self.count * self.dim * self.dtype.itemsize
        actual = zlib.crc32(self._map[HEADER_BYTES:matrix_end])
        if actual != self._matrix_crc:
            raise StoreCorruptionError(
                f"{self.path}: vector matrix CRC mismatch (recorded "
                f"{self._matrix_crc:#010x}, computed {actual:#010x}); "
                "the store is corrupt"
            )
        actual = zlib.crc32(self._ids_blob())
        if actual != self._ids_crc:
            raise StoreCorruptionError(
                f"{self.path}: id table CRC mismatch (recorded "
                f"{self._ids_crc:#010x}, computed {actual:#010x}); "
                "the store is corrupt"
            )

    def to_embeddings(self) -> dict[str, np.ndarray]:
        """The store as a ``save_embeddings``-style mapping (copied rows,
        dtype preserved) — the inverse of :func:`store_from_embeddings`."""
        return {
            node: self.matrix[row].copy()
            for row, node in enumerate(self.ids)
        }

    def save_text(self, path: str | Path) -> None:
        """Round-trip back to the word2vec text format (lossless: the
        text path preserves the store's dtype and exact values)."""
        save_embeddings(self.to_embeddings(), path)

    # ------------------------------------------------------------------
    def close(self) -> None:
        if getattr(self, "_map", None) is not None:
            self.matrix = None  # type: ignore[assignment]
            try:
                self._map.close()
            except BufferError:
                # a gathered row view still points into the mapping; the
                # OS reclaims it when the last view is collected
                return
            self._map = None
        if getattr(self, "_file", None) is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "EmbeddingStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        self.close()
