"""Embedding serving layer: binary store, ANN index, query service.

The inference path from training artifact to production query — see
``docs/serving.md``:

- :mod:`repro.serving.store` — the ``TNEMB1`` binary, versioned,
  checksummed, memory-mappable embedding store (O(ms) open).
- :mod:`repro.serving.index` — exact and IVF-style approximate top-k
  neighbor search, pure numpy.
- :mod:`repro.serving.service` — batched link-score and top-k query
  execution wired into the observability layer; the engine behind the
  ``repro query`` / ``repro serve`` CLI.
"""

from repro.serving.index import (
    BruteForceIndex,
    IVFIndex,
    make_index,
    recall_at_k,
)
from repro.serving.service import EmbeddingService
from repro.serving.store import (
    EmbeddingStore,
    StoreCorruptionError,
    StoreFormatError,
    store_from_embeddings,
    write_store,
)

__all__ = [
    "BruteForceIndex",
    "EmbeddingService",
    "EmbeddingStore",
    "IVFIndex",
    "StoreCorruptionError",
    "StoreFormatError",
    "make_index",
    "recall_at_k",
    "store_from_embeddings",
    "write_store",
]
