"""Batched query execution over an embedding store: the serving front.

:class:`EmbeddingService` turns a :class:`~repro.serving.store.EmbeddingStore`
into the two online workloads the paper evaluates offline:

- **link scoring** (Table IV's protocol made a query): a batch of
  ``(u, v)`` pairs scored by the inner product of their stored
  embeddings (:meth:`EmbeddingService.score_links`);
- **top-k recommendation** ("top-k apps for this user"): nearest
  stored vectors of a batch of query nodes, answered through a
  pluggable index — exact brute force or the IVF approximate index
  (:meth:`EmbeddingService.top_k`).

Every query batch is instrumented into the run's
:class:`~repro.engine.observability.MetricsRegistry` and
:class:`~repro.engine.observability.Tracer` under the ``serving/``
namespace: query/pair counters, batch-size series, per-batch latency
series with live p50/p99 gauges, index-build timers, and the recall
gauge from :meth:`EmbeddingService.measure_recall`.  The same
:class:`~repro.engine.observability.RunReport` schema training uses
serializes a serving session (``repro query --report``).
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.engine.observability import (
    NULL_REGISTRY,
    NULL_TRACER,
    MetricsRegistry,
    Tracer,
)
from repro.serving.index import (
    BruteForceIndex,
    IVFIndex,
    make_index,
    recall_at_k,
)
from repro.serving.store import EmbeddingStore


def _percentile_gauges(
    metrics: MetricsRegistry, name: str, series: str
) -> None:
    """Refresh ``<name>_p50_ms``/``<name>_p99_ms`` gauges from the
    retained tail of ``series`` (bounded, so this stays cheap)."""
    values = metrics.series_values(series)
    if not values:
        return
    metrics.gauge(f"{name}_p50_ms", float(np.percentile(values, 50)))
    metrics.gauge(f"{name}_p99_ms", float(np.percentile(values, 99)))


class EmbeddingService:
    """Answer link-score and top-k queries over one embedding store.

    Args:
        store: an open :class:`EmbeddingStore` or a path to one (paths
            are opened — and then owned/closed — by the service).
        metric: ``"cosine"`` or ``"dot"`` for top-k ranking.  Link
            scores always use the raw inner product, matching the
            paper's Table IV edge-scoring protocol exactly.
        index: ``"ivf"`` (default), ``"brute"``, or a prebuilt index
            instance.  Built lazily on the first top-k query, so a
            pure link-scoring service never pays for it.
        nlist / nprobe / seed: IVF build parameters (ignored for
            ``"brute"``).
        batch_size: internal execution batch; large query lists are
            chunked so one request never materializes an unbounded
            score matrix.
        metrics / tracer: observability sinks (default: the no-op
            singletons — the service is zero-cost unobserved).
    """

    def __init__(
        self,
        store: EmbeddingStore | str | Path,
        metric: str = "cosine",
        index: str | BruteForceIndex | IVFIndex = "ivf",
        nlist: int | None = None,
        nprobe: int = 8,
        seed: int = 0,
        batch_size: int = 256,
        metrics: MetricsRegistry = NULL_REGISTRY,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self._owns_store = not isinstance(store, EmbeddingStore)
        self.store = (
            store if isinstance(store, EmbeddingStore) else EmbeddingStore(store)
        )
        self.metric = metric
        self.batch_size = int(batch_size)
        self.metrics = metrics
        self.tracer = tracer
        self._index_kind = index if isinstance(index, str) else None
        self._index = None if isinstance(index, str) else index
        self._index_options = {"nlist": nlist, "nprobe": nprobe, "seed": seed}
        if isinstance(index, str) and index not in ("ivf", "brute"):
            raise ValueError(
                f"unknown index kind {index!r}; choose ivf or brute"
            )

    # ------------------------------------------------------------------
    @property
    def index(self) -> BruteForceIndex | IVFIndex:
        """The top-k index, built on first use (timed into
        ``serving/index_build``)."""
        if self._index is None:
            assert self._index_kind is not None
            options = {
                k: v
                for k, v in self._index_options.items()
                if v is not None
            }
            with self.tracer.span("index_build", kind="serving"):
                with self.metrics.timer("serving/index_build"):
                    self._index = make_index(
                        self.store.matrix,
                        self._index_kind,
                        metric=self.metric,
                        **options,
                    )
            if isinstance(self._index, IVFIndex):
                self.metrics.gauge("serving/index_nlist", self._index.nlist)
                self.metrics.gauge("serving/index_nprobe", self._index.nprobe)
        return self._index

    # ------------------------------------------------------------------
    def score_links(
        self, pairs: Sequence[tuple[str, str]]
    ) -> np.ndarray:
        """Inner-product scores for ``(u, v)`` node pairs (Table IV).

        Unknown node ids raise ``KeyError`` naming the id.  Returns one
        float per pair, in order.
        """
        pairs = list(pairs)
        out = np.empty(len(pairs), dtype=np.float64)
        for start in range(0, len(pairs), self.batch_size):
            chunk = pairs[start : start + self.batch_size]
            with self.metrics.timer("serving/link_batch"):
                start_t = _now()
                left = self.store.vectors(u for u, _ in chunk)
                right = self.store.vectors(v for _, v in chunk)
                out[start : start + len(chunk)] = np.einsum(
                    "ij,ij->i", left, right, dtype=np.float64
                )
                self._record_batch("link", len(chunk), _now() - start_t)
        return out

    def top_k(
        self,
        node_ids: Sequence[str],
        k: int = 10,
        nprobe: int | None = None,
        exclude_self: bool = True,
    ) -> list[list[tuple[str, float]]]:
        """Top-``k`` neighbors of each query node, best first.

        Args:
            node_ids: stored node ids to query (``KeyError`` if absent).
            k: neighbors returned per query.
            nprobe: override the index's probe width (IVF only).
            exclude_self: drop the query node from its own result (a
                stored query always retrieves itself first otherwise).
        """
        node_ids = list(node_ids)
        index = self.index
        results: list[list[tuple[str, float]]] = []
        # fetch k+1 so self-exclusion still fills k slots
        fetch = k + 1 if exclude_self else k
        for start in range(0, len(node_ids), self.batch_size):
            chunk = node_ids[start : start + self.batch_size]
            start_t = _now()
            rows = np.array(
                [self.store.row_of(n) for n in chunk], dtype=np.int64
            )
            queries = self.store.matrix[rows]
            kwargs = {} if nprobe is None else {"nprobe": nprobe}
            if isinstance(index, BruteForceIndex) and nprobe is not None:
                kwargs = {}
            idx, scores = index.search(queries, fetch, **kwargs)
            ids = self.store.ids
            for qpos, row in enumerate(rows):
                entry: list[tuple[str, float]] = []
                for col in range(idx.shape[1]):
                    neighbor = int(idx[qpos, col])
                    if exclude_self and neighbor == row:
                        continue
                    entry.append(
                        (ids[neighbor], float(scores[qpos, col]))
                    )
                    if len(entry) == k:
                        break
                results.append(entry)
            self._record_batch("topk", len(chunk), _now() - start_t)
        return results

    # ------------------------------------------------------------------
    def measure_recall(
        self, k: int = 10, sample: int = 64, seed: int = 0
    ) -> float:
        """Recall@``k`` of the configured index against brute force on a
        seeded sample of stored vectors; lands in the
        ``serving/recall_at_k`` gauge.  Returns 1.0 trivially for a
        brute-force service."""
        index = self.index
        if isinstance(index, BruteForceIndex):
            self.metrics.gauge("serving/recall_at_k", 1.0)
            return 1.0
        rng = np.random.default_rng(seed)
        sample = min(sample, self.store.count)
        rows = rng.choice(self.store.count, size=sample, replace=False)
        queries = self.store.matrix[np.sort(rows)]
        exact = BruteForceIndex(self.store.matrix, metric=self.metric)
        approx_idx, _ = index.search(queries, k)
        exact_idx, _ = exact.search(queries, k)
        recall = recall_at_k(approx_idx, exact_idx)
        self.metrics.gauge("serving/recall_at_k", recall)
        self.metrics.gauge("serving/recall_k", float(k))
        return recall

    def _record_batch(
        self, kind: str, batch: int, elapsed_s: float
    ) -> None:
        if not self.metrics.enabled:
            return
        self.metrics.counter("serving/queries", batch)
        self.metrics.counter(f"serving/{kind}_queries", batch)
        self.metrics.observe("serving/batch_size", batch)
        self.metrics.observe("serving/latency_ms", elapsed_s * 1e3)
        self.metrics.record_seconds("serving/query_seconds", elapsed_s)
        _percentile_gauges(
            self.metrics, "serving/latency", "serving/latency_ms"
        )

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close the store if this service opened it (idempotent)."""
        if self._owns_store and self.store is not None:
            self.store.close()

    def __enter__(self) -> "EmbeddingService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _now() -> float:
    return time.perf_counter()
