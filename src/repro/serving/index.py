"""Top-k neighbor search over an embedding matrix: exact and IVF-style.

Two interchangeable indexes answer "which stored vectors score highest
against this query" — the operation behind both of the paper's offline
evaluations turned online (link prediction scores pairs by inner
product, Table IV; recommendation asks for the top-k apps of a user):

- :class:`BruteForceIndex` — exact scores against every row, chunked so
  a million-row matrix never materializes more than a bounded score
  block.  It is the correctness reference the approximate index is
  measured against.
- :class:`IVFIndex` — an inverted-file index in the FAISS IVF-Flat
  shape, pure numpy: a coarse k-means quantizer (:mod:`repro.ml.kmeans`)
  partitions the rows into ``nlist`` cells; a query scores only the
  ``nprobe`` cells whose centroids sit closest, then reranks those
  candidates *exactly*.  Probed cells are nested as ``nprobe`` grows
  (the probe order depends only on the query), so recall is
  monotonically non-decreasing in ``nprobe`` and reaches exactness at
  ``nprobe == nlist`` — both properties are pinned by tests.

Scoring supports ``cosine`` (rows and queries L2-normalized once, then
inner product) and raw ``dot``.  All tie-breaks are stable on row index,
so results are deterministic for a fixed ``(seed, nprobe)``.
"""

from __future__ import annotations

import numpy as np

from repro.ml.kmeans import KMeans

METRICS = ("cosine", "dot")

# cap on the floats one k-means training pass may materialize
# (ml.kmeans builds an (n, k, d) distance tensor per Lloyd iteration)
_KMEANS_FLOAT_BUDGET = 40_000_000


def _normalize_rows(matrix: np.ndarray) -> np.ndarray:
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    norms[norms == 0.0] = 1.0
    return matrix / norms


def _prepare(matrix: np.ndarray, metric: str) -> np.ndarray:
    if metric not in METRICS:
        raise ValueError(
            f"unknown metric {metric!r}; choose from {', '.join(METRICS)}"
        )
    matrix = np.asarray(matrix)
    if matrix.ndim != 2 or matrix.shape[0] == 0:
        raise ValueError(f"matrix must be non-empty 2-D, got {matrix.shape}")
    return _normalize_rows(matrix) if metric == "cosine" else matrix


def _as_queries(queries: np.ndarray, dim: int, metric: str) -> np.ndarray:
    queries = np.atleast_2d(np.asarray(queries))
    if queries.shape[1] != dim:
        raise ValueError(
            f"query dim {queries.shape[1]} != index dim {dim}"
        )
    return _normalize_rows(queries) if metric == "cosine" else queries


def _stable_top_k(
    scores: np.ndarray, k: int
) -> tuple[np.ndarray, np.ndarray]:
    """Per-row top-k of ``scores`` (num_queries, n), ties broken on the
    lower column index; returns ``(indices, scores)`` sorted descending."""
    n = scores.shape[1]
    k = min(k, n)
    if k < n:
        candidates = np.argpartition(scores, n - k, axis=1)[:, n - k :]
    else:
        candidates = np.broadcast_to(
            np.arange(n), scores.shape
        ).copy()
    picked = np.take_along_axis(scores, candidates, axis=1)
    # lexsort per row: primary -score, secondary candidate index
    order = np.lexsort(
        (candidates, -picked), axis=1
    )
    top_idx = np.take_along_axis(candidates, order, axis=1)
    top_scores = np.take_along_axis(picked, order, axis=1)
    return top_idx, top_scores


class BruteForceIndex:
    """Exact top-k by scoring every stored row (the recall reference).

    Args:
        matrix: ``(n, dim)`` embedding rows (e.g.
            :attr:`repro.serving.store.EmbeddingStore.matrix`).
        metric: ``"cosine"`` or ``"dot"``.
        row_chunk: stored rows scored per block, bounding the transient
            score matrix to ``num_queries * row_chunk`` floats.
    """

    exact = True

    def __init__(
        self,
        matrix: np.ndarray,
        metric: str = "cosine",
        row_chunk: int = 262_144,
    ) -> None:
        if row_chunk < 1:
            raise ValueError(f"row_chunk must be >= 1, got {row_chunk}")
        self.metric = metric
        self._base = _prepare(matrix, metric)
        self.num_rows, self.dim = self._base.shape
        self.row_chunk = int(row_chunk)

    def search(
        self, queries: np.ndarray, k: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Top-``k`` rows per query: ``(indices, scores)``, each
        ``(num_queries, k)``, scores descending."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        queries = _as_queries(queries, self.dim, self.metric)
        k = min(k, self.num_rows)
        best_idx = np.empty((queries.shape[0], 0), dtype=np.int64)
        best_scores = np.empty((queries.shape[0], 0), dtype=self._base.dtype)
        for start in range(0, self.num_rows, self.row_chunk):
            block = self._base[start : start + self.row_chunk]
            scores = queries @ block.T
            idx, top = _stable_top_k(scores, k)
            best_idx = np.concatenate([best_idx, idx + start], axis=1)
            best_scores = np.concatenate([best_scores, top], axis=1)
            if best_idx.shape[1] > k:
                order = np.lexsort((best_idx, -best_scores), axis=1)[:, :k]
                best_idx = np.take_along_axis(best_idx, order, axis=1)
                best_scores = np.take_along_axis(best_scores, order, axis=1)
        return best_idx, best_scores


class IVFIndex:
    """Approximate top-k: coarse k-means cells + exact in-cell rerank.

    Build: a k-means quantizer is fit on a bounded sample of the rows
    (sampling keeps :class:`repro.ml.kmeans.KMeans`'s dense distance
    tensor within a fixed float budget at million-row scale), then every
    row is assigned to its nearest centroid in chunks.  Search: score
    the query against all ``nlist`` centroids, probe the ``nprobe``
    nearest cells, rerank their members exactly, and — when the probed
    cells hold fewer than ``k`` members — keep probing further cells in
    the same order until ``k`` candidates exist, so results never pad.

    Args:
        matrix: ``(n, dim)`` embedding rows.
        metric: ``"cosine"`` (rows normalized; centroids live in the
            normalized space, so cell assignment agrees with the
            scoring geometry) or ``"dot"``.
        nlist: number of cells (default ``round(sqrt(n))`` clamped to
            [1, 4096] — the classic IVF sizing rule).
        nprobe: default cells probed per query (overridable per search).
        seed: k-means seed; fixed ``(seed, nprobe)`` makes every search
            deterministic.
        train_sample: rows sampled for the quantizer fit (default: the
            float-budget cap).
        kmeans_iters: Lloyd iterations for the quantizer.
        row_chunk: rows per assignment block at build time.
    """

    exact = False

    def __init__(
        self,
        matrix: np.ndarray,
        metric: str = "cosine",
        nlist: int | None = None,
        nprobe: int = 8,
        seed: int = 0,
        train_sample: int | None = None,
        kmeans_iters: int = 15,
        row_chunk: int = 262_144,
    ) -> None:
        self.metric = metric
        self._base = _prepare(matrix, metric)
        self.num_rows, self.dim = self._base.shape
        if nlist is None:
            nlist = int(round(np.sqrt(self.num_rows)))
        self.nlist = int(np.clip(nlist, 1, min(4096, self.num_rows)))
        if nprobe < 1:
            raise ValueError(f"nprobe must be >= 1, got {nprobe}")
        self.nprobe = min(int(nprobe), self.nlist)
        self.seed = seed

        budget_cap = max(
            self.nlist, _KMEANS_FLOAT_BUDGET // (self.nlist * self.dim)
        )
        if train_sample is None:
            train_sample = budget_cap
        sample_size = int(min(self.num_rows, train_sample, budget_cap))
        sample_size = max(sample_size, self.nlist)
        rng = np.random.default_rng(seed)
        if sample_size < self.num_rows:
            rows = rng.choice(self.num_rows, size=sample_size, replace=False)
            sample = self._base[np.sort(rows)]
        else:
            sample = self._base
        kmeans = KMeans(
            num_clusters=self.nlist,
            num_init=1,
            max_iter=kmeans_iters,
            seed=seed,
        )
        kmeans.fit_predict(np.asarray(sample, dtype=np.float64))
        assert kmeans.centers_ is not None
        self.centroids = kmeans.centers_.astype(self._base.dtype)

        assignment = np.empty(self.num_rows, dtype=np.int64)
        cent_sq = (self.centroids**2).sum(axis=1)
        for start in range(0, self.num_rows, row_chunk):
            block = self._base[start : start + row_chunk]
            # argmin of ||x - c||^2 == argmin of ||c||^2 - 2 x.c
            d2 = cent_sq[None, :] - 2.0 * (block @ self.centroids.T)
            assignment[start : start + block.shape[0]] = d2.argmin(axis=1)
        # inverted lists: rows sorted by cell + per-cell boundaries
        self._order = np.argsort(assignment, kind="stable").astype(np.int64)
        sorted_cells = assignment[self._order]
        self._cell_starts = np.searchsorted(
            sorted_cells, np.arange(self.nlist), side="left"
        )
        self._cell_ends = np.searchsorted(
            sorted_cells, np.arange(self.nlist), side="right"
        )

    def cell_sizes(self) -> np.ndarray:
        """Members per cell (diagnostics; sums to ``num_rows``)."""
        return self._cell_ends - self._cell_starts

    def search(
        self, queries: np.ndarray, k: int, nprobe: int | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Approximate top-``k``: ``(indices, scores)``, scores exact
        for every returned row (only the candidate set is approximate)."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        nprobe = self.nprobe if nprobe is None else int(nprobe)
        if nprobe < 1:
            raise ValueError(f"nprobe must be >= 1, got {nprobe}")
        nprobe = min(nprobe, self.nlist)
        queries = _as_queries(queries, self.dim, self.metric)
        k = min(k, self.num_rows)

        # centroid ranking per query: nearest cells first (L2 in the
        # prepared space; nested in nprobe, so recall is monotone)
        cent_sq = (self.centroids**2).sum(axis=1)
        cell_rank = np.argsort(
            cent_sq[None, :] - 2.0 * (queries @ self.centroids.T),
            kind="stable",
            axis=1,
        )

        num_queries = queries.shape[0]
        out_idx = np.empty((num_queries, k), dtype=np.int64)
        out_scores = np.empty((num_queries, k), dtype=self._base.dtype)
        for qi in range(num_queries):
            probes = nprobe
            while True:
                cells = cell_rank[qi, :probes]
                candidates = np.concatenate(
                    [
                        self._order[
                            self._cell_starts[c] : self._cell_ends[c]
                        ]
                        for c in cells
                    ]
                )
                if candidates.size >= k or probes >= self.nlist:
                    break
                probes = min(probes * 2, self.nlist)
            scores = self._base[candidates] @ queries[qi]
            take = min(k, candidates.size)
            idx, top = _stable_top_k(scores[None, :], take)
            # map candidate positions back to row ids; re-sort stably on
            # (score desc, row id) so output order matches brute force
            rows = candidates[idx[0]]
            order = np.lexsort((rows, -top[0]))
            out_idx[qi] = rows[order]
            out_scores[qi] = top[0][order]
        return out_idx, out_scores


def recall_at_k(
    approx_indices: np.ndarray, exact_indices: np.ndarray
) -> float:
    """Mean fraction of the exact top-k recovered by the approximate
    search (the standard ANN recall@k; both ``(num_queries, k)``)."""
    approx_indices = np.asarray(approx_indices)
    exact_indices = np.asarray(exact_indices)
    if approx_indices.shape != exact_indices.shape:
        raise ValueError(
            f"shape mismatch: {approx_indices.shape} vs {exact_indices.shape}"
        )
    hits = 0
    for approx, exact in zip(approx_indices, exact_indices):
        hits += len(set(approx.tolist()) & set(exact.tolist()))
    return hits / exact_indices.size


def make_index(
    matrix: np.ndarray, kind: str = "ivf", **kwargs
) -> BruteForceIndex | IVFIndex:
    """Index factory keyed by CLI name (``"ivf"`` or ``"brute"``)."""
    if kind == "ivf":
        return IVFIndex(matrix, **kwargs)
    if kind == "brute":
        kwargs.pop("nlist", None)
        kwargs.pop("nprobe", None)
        kwargs.pop("seed", None)
        return BruteForceIndex(matrix, **kwargs)
    raise ValueError(f"unknown index kind {kind!r}; choose ivf or brute")
