"""Translators: the trainable maps between view embedding spaces.

A translator ``T_{i->j}`` projects the embedding matrix of a sampled path
(shape ``path_len x d``) from view i's space into view j's (Equation 10):
a stack of H encoders, each a parameter-free self-attention layer
(Equation 8) followed by a path-mixing feed-forward layer (Equation 9).

Translators also accept a batch of paths as a single
``(num_chunks, path_len, d)`` tensor: every layer then runs one batched
numpy op across all chunks, which is what lets the cross-view trainer do
one forward/backward per direction instead of one per chunk.

The Table V ablation ``TransN-With-Simple-Translator`` replaces each stack
by a single feed-forward layer.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import Tensor
from repro.nn import Encoder, FeedForwardLayer, Module


def _check_path_batch(a: Tensor, path_len: int, dim: int) -> None:
    """Validate a ``(path_len, dim)`` path or ``(N, path_len, dim)`` batch."""
    if a.ndim not in (2, 3) or a.shape[-2:] != (path_len, dim):
        raise ValueError(
            f"translator expects ({path_len}, {dim}) inputs "
            f"(optionally with a leading chunk axis), got {a.shape}"
        )


class Translator(Module):
    """Equation (10): ``T(A) = F(S(... F(S(A)) ...))`` with H encoders.

    The final encoder's feed-forward layer is *linear* (no relu): a relu
    output would confine translated — and, through the translation and
    reconstruction losses, the trained — embeddings to the non-negative
    orthant, which measurably destroys the inner-product geometry the
    link-prediction protocol scores with.  Hidden encoders keep the relu
    of Equation (9).  (Recorded as a substitution in DESIGN.md.)
    """

    def __init__(
        self,
        path_len: int,
        dim: int,
        num_encoders: int,
        rng: np.random.Generator | None = None,
        dtype=np.float64,
    ) -> None:
        if num_encoders < 1:
            raise ValueError("a translator needs at least one encoder")
        rng = rng or np.random.default_rng()
        self.path_len = path_len
        self.dim = dim
        self.encoders = [
            Encoder(
                path_len,
                dim,
                rng=rng,
                activation="relu" if k < num_encoders - 1 else "linear",
                dtype=dtype,
            )
            for k in range(num_encoders)
        ]

    @property
    def num_layers(self) -> int:
        """2H: the self-attention + feed-forward layer count of Eq. 10."""
        return 2 * len(self.encoders)

    def forward(self, a: Tensor) -> Tensor:
        _check_path_batch(a, self.path_len, self.dim)
        for encoder in self.encoders:
            a = encoder(a)
        return a


class SimpleTranslator(Module):
    """Ablation translator: one feed-forward layer, no attention."""

    def __init__(
        self,
        path_len: int,
        dim: int,
        rng: np.random.Generator | None = None,
        dtype=np.float64,
    ) -> None:
        self.path_len = path_len
        self.dim = dim
        self.feed_forward = FeedForwardLayer(path_len, rng=rng, dtype=dtype)

    def forward(self, a: Tensor) -> Tensor:
        _check_path_batch(a, self.path_len, self.dim)
        return self.feed_forward(a)


def make_translator(
    path_len: int,
    dim: int,
    num_encoders: int,
    simple: bool,
    rng: np.random.Generator | None = None,
    dtype=np.float64,
) -> Module:
    """Factory switching between the full and ablated translator.

    ``dtype`` sets the parameter storage dtype; initialization draws stay
    float64 so RNG consumption is identical across dtypes.
    """
    if simple:
        return SimpleTranslator(path_len, dim, rng=rng, dtype=dtype)
    return Translator(path_len, dim, num_encoders, rng=rng, dtype=dtype)
