"""The TransN model: Algorithm 1 end to end.

Usage:
    >>> from repro.core import TransN, TransNConfig
    >>> from repro.datasets import two_view_toy
    >>> graph, _ = two_view_toy()
    >>> model = TransN(graph, TransNConfig(num_iterations=1))
    >>> history = model.fit()
    >>> emb = model.embedding("i0")
    >>> emb.shape
    (32,)
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.engine import Callback, CallablePhase, LoopResult, TrainingLoop
from repro.graph.heterograph import HeteroGraph, NodeId
from repro.graph.views import build_view_pairs, separate_views

from repro.core.config import TransNConfig
from repro.core.cross_view import CrossViewTrainer
from repro.core.single_view import SingleViewTrainer

SINGLE_VIEW_PHASE = "single_view"
CROSS_VIEW_PHASE = "cross_view"


@dataclass
class TrainingHistory:
    """Loss trajectories recorded by :meth:`TransN.fit`."""

    single_view: list[float] = field(default_factory=list)
    translation: list[float] = field(default_factory=list)
    reconstruction: list[float] = field(default_factory=list)

    @property
    def num_iterations(self) -> int:
        return len(self.single_view)


class TransN:
    """Heterogeneous network embedding by translating node embeddings.

    The constructor performs step 1 of Algorithm 1 (view and view-pair
    generation) and allocates one view-specific embedding matrix per view;
    :meth:`fit` runs the K alternating single-view / cross-view
    iterations; the final embedding of a node is the average of its
    view-specific embeddings (Section III-C).
    """

    def __init__(self, graph: HeteroGraph, config: TransNConfig | None = None) -> None:
        if graph.num_edges == 0:
            raise ValueError("TransN needs a graph with at least one edge")
        self.graph = graph
        self.config = config or TransNConfig()
        self.rng = np.random.default_rng(self.config.seed)

        self.views = separate_views(graph)
        self.view_pairs = build_view_pairs(self.views) if self.config.use_cross_view else []

        cfg = self.config
        # word2vec-style init: small uniform noise.  Crucially, a node's
        # view-specific embeddings start IDENTICAL across views (drawn once
        # per node): each view's skip-gram then deforms a shared origin
        # instead of an independent random space, so the final averaging of
        # view-specific embeddings (Section III-C) combines roughly aligned
        # spaces — the cross-view translation keeps them aligned during
        # training.  The paper does not specify initialization; independent
        # per-view inits measurably hurt the averaged embedding.
        bound = 0.5 / cfg.dim
        node_init = self.rng.uniform(
            -bound, bound, size=(graph.num_nodes, cfg.dim)
        )
        self.view_embeddings: dict[str, np.ndarray] = {}
        for view in self.views:
            matrix = np.empty((view.num_nodes, cfg.dim))
            for node in view.graph.nodes:
                matrix[view.graph.index_of(node)] = node_init[
                    graph.index_of(node)
                ]
            self.view_embeddings[view.edge_type] = matrix

        self.single_trainers = [
            SingleViewTrainer(
                view,
                self.view_embeddings[view.edge_type],
                rng=self.rng,
                walk_length=cfg.walk_length,
                walk_floor=cfg.walk_floor,
                walk_cap=cfg.walk_cap,
                num_negatives=cfg.num_negatives,
                batch_size=cfg.batch_size,
                simple_walk=cfg.simple_walk,
            )
            for view in self.views
        ]

        self.cross_trainers = [
            CrossViewTrainer(
                pair,
                self.view_embeddings[pair.view_i.edge_type],
                self.view_embeddings[pair.view_j.edge_type],
                rng=self.rng,
                dim=cfg.dim,
                cross_path_len=cfg.cross_path_len,
                num_encoders=cfg.num_encoders,
                walk_length=cfg.walk_length,
                paths_per_epoch=cfg.cross_paths_per_pair,
                lr_cross=cfg.lr_cross,
                lr_cross_embeddings=cfg.lr_cross_embeddings,
                simple_walk=cfg.simple_walk,
                simple_translator=cfg.simple_translator,
                use_translation_tasks=cfg.use_translation_tasks,
                use_reconstruction_tasks=cfg.use_reconstruction_tasks,
                normalize_similarity=cfg.normalize_similarity,
                batched=cfg.batched_cross_view,
            )
            for pair in self.view_pairs
        ]

        self.history = TrainingHistory()
        self.last_run: LoopResult | None = None
        self.timings: dict[str, float] = {}
        self._fitted = False

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def _single_view_step(self, loop: TrainingLoop, epoch: int) -> dict[str, float]:
        """Lines 3-8 of Algorithm 1: one skip-gram pass per view."""
        losses = [
            trainer.train_epoch(lr=self.config.lr_single)
            for trainer in self.single_trainers
        ]
        value = float(np.mean(losses))
        self.history.single_view.append(value)
        return {"loss": value}

    def _cross_view_step(self, loop: TrainingLoop, epoch: int) -> dict[str, float]:
        """Lines 9-12 of Algorithm 1: dual learning over every view-pair."""
        epoch_losses = [trainer.train_epoch() for trainer in self.cross_trainers]
        trained = [e for e in epoch_losses if e.num_paths > 0]
        if not trained:
            return {}
        translation = float(np.mean([e.translation for e in trained]))
        reconstruction = float(np.mean([e.reconstruction for e in trained]))
        self.history.translation.append(translation)
        self.history.reconstruction.append(reconstruction)
        return {"translation": translation, "reconstruction": reconstruction}

    def fit(
        self,
        num_iterations: int | None = None,
        callbacks: list[Callback] | tuple[Callback, ...] = (),
    ) -> TrainingHistory:
        """Run Algorithm 1 for K iterations; returns the loss history.

        The alternating loop runs as a :class:`repro.engine.TrainingLoop`
        with a ``single_view`` phase and (when view-pairs exist) a
        ``cross_view`` phase, so per-iteration losses and per-phase
        wall-clock timings are observable through engine ``callbacks``
        (e.g. :class:`repro.engine.ProgressReporter` or
        :class:`repro.engine.EarlyStopping`); cumulative timings land in
        :attr:`timings` and the full result in :attr:`last_run`.

        Calling :meth:`fit` again continues training from the current
        state (useful for convergence studies).
        """
        iterations = num_iterations if num_iterations is not None else self.config.num_iterations
        phases = [CallablePhase(SINGLE_VIEW_PHASE, self._single_view_step)]
        if self.cross_trainers:
            phases.append(CallablePhase(CROSS_VIEW_PHASE, self._cross_view_step))
        loop = TrainingLoop(phases, callbacks=callbacks)
        self.last_run = loop.run(iterations)
        for name, seconds in self.last_run.timings.items():
            self.timings[name] = self.timings.get(name, 0.0) + seconds
        self._fitted = True
        return self.history

    # ------------------------------------------------------------------
    # embeddings
    # ------------------------------------------------------------------
    def view_specific_embedding(self, node: NodeId, edge_type: str) -> np.ndarray:
        """The embedding of ``node`` inside the view of ``edge_type``."""
        view = next(v for v in self.views if v.edge_type == edge_type)
        if not view.graph.has_node(node):
            raise KeyError(f"node {node!r} does not appear in view {edge_type!r}")
        return self.view_embeddings[edge_type][view.graph.index_of(node)].copy()

    def embedding(self, node: NodeId) -> np.ndarray:
        """Final embedding of ``node``.

        With ``view_weighting="uniform"`` (the paper, Section III-C) this
        is the plain average of the node's view-specific embeddings; with
        ``"degree"`` (extension) each view is weighted by the node's
        degree inside it, down-weighting views where the node is
        peripheral.

        Nodes isolated in the training graph (possible after edge removal
        in link prediction) get the zero vector.
        """
        if not self.graph.has_node(node):
            raise KeyError(f"unknown node {node!r}")
        vectors = []
        weights = []
        for view in self.views:
            if view.graph.has_node(node):
                matrix = self.view_embeddings[view.edge_type]
                vectors.append(matrix[view.graph.index_of(node)])
                if self.config.view_weighting == "degree":
                    weights.append(float(view.graph.degree(node)))
                else:
                    weights.append(1.0)
        if not vectors:
            return np.zeros(self.config.dim)
        weight_total = sum(weights)
        if weight_total <= 0:
            return np.mean(vectors, axis=0)
        return np.average(vectors, axis=0, weights=weights)

    def embeddings(self) -> dict[NodeId, np.ndarray]:
        """Final embeddings for every node of the input graph."""
        return {node: self.embedding(node) for node in self.graph.nodes}

    def embedding_matrix(self, nodes: list[NodeId] | None = None) -> np.ndarray:
        """Embeddings stacked into an (n, d) matrix, rows following
        ``nodes`` (default: ``graph.nodes`` order)."""
        nodes = list(nodes) if nodes is not None else list(self.graph.nodes)
        return np.vstack([self.embedding(node) for node in nodes])

    def fit_transform(self) -> dict[NodeId, np.ndarray]:
        """``fit()`` followed by :meth:`embeddings`."""
        self.fit()
        return self.embeddings()
